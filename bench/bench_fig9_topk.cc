// Figure 9: top-k spatial keyword query time on the largest dataset,
// varying (a) k and (b) the number of query keywords.
// Methods: KS-CH, KS-HL (the paper's KS-PHL), keyword-aggregated G-tree,
// and ROAD.
#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = selection.road = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  std::vector<NamedMethod> methods = {
      {"KS-CH",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsCh()->TopK(v, k, kw, stats);
       }},
      {"KS-HL",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsHl()->TopK(v, k, kw, stats);
       }},
      {"G-tree",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.GtreeSk()->TopK(v, k, kw, stats);
       }},
      {"ROAD",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.Road()->TopK(v, k, kw, stats);
       }},
  };
  RunParameterSweep("Figure 9", dataset, workload, methods, args.quick);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
