// Shared infrastructure for the per-table / per-figure benchmark harnesses.
//
// Each bench binary reproduces one table or figure of the paper's
// evaluation (see DESIGN.md section 2 for the index). Binaries accept:
//   --dataset=NAME   (DE, ME, FL, E, US; default depends on the bench)
//   --quick          (shrink workloads ~4x for smoke runs)
// and print machine-readable tables: one row per configuration with
// tab-separated columns, plus a header naming the figure being reproduced.
#ifndef KSPIN_BENCH_BENCH_COMMON_H_
#define KSPIN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fs_fbs.h"
#include "baselines/gtree_spatial_keyword.h"
#include "baselines/network_expansion.h"
#include "baselines/road.h"
#include "graph/graph.h"
#include "graph/road_network_generator.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/gtree.h"
#include "routing/hub_labeling.h"
#include "text/inverted_index.h"
#include "text/query_workload.h"
#include "text/relevance.h"
#include "text/zipf_generator.h"

namespace kspin::bench {

/// Parsed command line.
struct BenchArgs {
  std::string dataset;  ///< Empty = bench-specific default.
  bool quick = false;
  bool full = false;
};

BenchArgs ParseArgs(int argc, char** argv);

/// A generated dataset: graph + documents + derived text structures.
struct Dataset {
  DatasetSpec spec;
  Graph graph;
  DocumentStore store;
  std::unique_ptr<InvertedIndex> inverted;
  std::unique_ptr<RelevanceModel> relevance;

  static Dataset Load(const std::string& name);
};

/// Which engines a bench needs (index builds are the expensive part).
struct EngineSelection {
  bool ks_ch = false;    ///< K-SPIN + Contraction Hierarchies.
  bool ks_hl = false;    ///< K-SPIN + hub labels (the paper's KS-PHL).
  bool ks_gt = false;    ///< K-SPIN + G-tree (Section 7.4's KS-GT).
  bool gtree_sk = false;     ///< Keyword-aggregated G-tree baseline.
  bool gtree_opt = false;    ///< Gtree-Opt variant.
  bool road = false;         ///< ROAD-style overlay baseline.
  bool fs_fbs = false;       ///< FS-FBS baseline (BkNN only).
  bool expansion = false;    ///< Network-expansion sanity baseline.
  std::uint32_t rho = 5;
  /// FS-FBS memory budget in backward entries; mirrors the paper's
  /// "dataset too large to build index" failure on big datasets.
  std::size_t fs_fbs_budget = 500000;
};

/// All engines over one dataset, with per-index build times and sizes.
/// The K-SPIN side (ALT + Keyword Separated Index) is built once and
/// shared by all three oracle variants — exactly the decoupling the
/// framework advertises.
class EngineSet {
 public:
  EngineSet(Dataset& dataset, const EngineSelection& selection);

  // Null for engines that were not selected (or failed their budget).
  QueryProcessor* KsCh() { return ks_ch_.get(); }
  QueryProcessor* KsHl() { return ks_hl_.get(); }
  QueryProcessor* KsGt() { return ks_gt_.get(); }
  GTreeSpatialKeyword* GtreeSk() { return gtree_sk_.get(); }
  GTreeSpatialKeyword* GtreeOpt() { return gtree_opt_.get(); }
  RoadBaseline* Road() { return road_.get(); }
  FsFbs* FsFbsEngine() { return fs_fbs_.get(); }
  NetworkExpansionBaseline* Expansion() { return expansion_.get(); }
  GTree* GetGTree() { return gtree_.get(); }
  const std::string& FsFbsFailure() const { return fs_fbs_failure_; }

  /// Factories building independent QueryProcessors over the shared K-SPIN
  /// structures and the CH (resp. hub-label) oracle — feed these to
  /// ParallelQueryExecutor to serve queries from several threads. The
  /// corresponding engine must have been selected.
  std::function<std::unique_ptr<QueryProcessor>()> KsChProcessorFactory();
  std::function<std::unique_ptr<QueryProcessor>()> KsHlProcessorFactory();

  double ChBuildSeconds() const { return ch_build_seconds_; }
  double HlBuildSeconds() const { return hl_build_seconds_; }
  double GtreeBuildSeconds() const { return gtree_build_seconds_; }
  double FsFbsBuildSeconds() const { return fs_fbs_build_seconds_; }
  double KspinBuildSeconds() const { return kspin_build_seconds_; }

  std::size_t ChMemory() const;
  std::size_t HlMemory() const;
  std::size_t GtreeMemory() const;
  std::size_t FsFbsMemory() const;
  /// K-SPIN-side index memory (keyword index + ALT + inverted lists).
  std::size_t KspinMemory() const;

 private:
  Dataset& dataset_;
  std::unique_ptr<ContractionHierarchy> ch_;
  std::unique_ptr<HubLabeling> hl_;
  std::unique_ptr<GTree> gtree_;
  std::unique_ptr<ChOracle> ch_oracle_;
  std::unique_ptr<HubLabelOracle> hl_oracle_;
  std::unique_ptr<GTreeOracle> gtree_oracle_;
  std::unique_ptr<AltIndex> alt_;
  std::unique_ptr<KeywordIndex> keyword_index_;
  std::unique_ptr<QueryProcessor> ks_ch_;
  std::unique_ptr<QueryProcessor> ks_hl_;
  std::unique_ptr<QueryProcessor> ks_gt_;
  std::unique_ptr<GTreeSpatialKeyword> gtree_sk_;
  std::unique_ptr<GTreeSpatialKeyword> gtree_opt_;
  std::unique_ptr<RoadBaseline> road_;
  std::unique_ptr<FsFbs> fs_fbs_;
  std::unique_ptr<NetworkExpansionBaseline> expansion_;
  std::string fs_fbs_failure_;
  double ch_build_seconds_ = 0, hl_build_seconds_ = 0,
         gtree_build_seconds_ = 0, fs_fbs_build_seconds_ = 0,
         kspin_build_seconds_ = 0;
};

/// Timing result for one (method, configuration) cell.
struct Measurement {
  double avg_ms = 0.0;       ///< Mean query latency.
  double qps = 0.0;          ///< Queries per second (1000 / avg_ms).
  std::size_t queries = 0;   ///< Number of queries measured.
};

/// Runs `query` over `queries` until `max_queries` or `budget_seconds` is
/// exhausted (whichever first; at least `min_queries`). The callable gets
/// one SpatialKeywordQuery at a time.
Measurement MeasureQueries(
    const std::vector<SpatialKeywordQuery>& queries,
    std::size_t max_queries, double budget_seconds,
    const std::function<void(const SpatialKeywordQuery&)>& query);

/// Standard workload for a dataset (paper Section 7.1: correlated keyword
/// vectors x uniform vertices). `quick` shrinks it.
QueryWorkload MakeWorkload(const Dataset& dataset, bool quick);

/// Prints a table header: figure id, dataset, columns.
void PrintHeader(const std::string& figure, const Dataset& dataset,
                 const std::vector<std::string>& columns);

/// One formatted row: first cell is the row label, then numeric cells.
void PrintRow(const std::string& label, const std::vector<double>& cells);

/// Formats bytes as MB with two decimals.
double ToMb(std::size_t bytes);

/// A named query method for the k / #terms parameter sweeps (Figures
/// 9-11): the callable runs one query, folding engine counters into
/// `stats` when non-null (timing sweeps pass nullptr — the zero-cost
/// path — and RunCounterComparison passes an accumulator).
struct NamedMethod {
  std::string name;
  std::function<void(VertexId, std::uint32_t, std::span<const KeywordId>,
                     QueryStats*)>
      run;
};

/// The paper's two standard sweeps: (a) k in {1,5,10,25,50} at 2 terms,
/// (b) #terms in 1..6 at k=10. Prints average ms per method per setting.
void RunParameterSweep(const std::string& figure, const Dataset& dataset,
                       QueryWorkload& workload,
                       const std::vector<NamedMethod>& methods, bool quick);

/// Runs every method over the SAME fixed query set (2 terms, k=10) with
/// QueryStats accumulation and prints one JSON object per method: engine
/// counters plus mean latency. This is the apples-to-apples evidence that
/// K-SPIN's per-keyword indexes pay fewer false-positive exact distances
/// than the keyword-aggregated G-tree (docs/observability.md).
void RunCounterComparison(const std::string& figure, const Dataset& dataset,
                          QueryWorkload& workload,
                          const std::vector<NamedMethod>& methods,
                          bool quick);

}  // namespace kspin::bench

#endif  // KSPIN_BENCH_BENCH_COMMON_H_
