// Table 2: road network graphs and keyword dataset statistics for the
// five-dataset ladder (scaled stand-ins for the DIMACS DE/ME/FL/E/US
// datasets; see DESIGN.md section 3).
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int, char**) {
  std::printf("=== Table 2: road network graphs and keyword datasets ===\n");
  std::printf("%-8s\t%10s\t%10s\t%8s\t%10s\t%8s\n", "region", "|V|", "|E|",
              "|O|", "|doc(V)|", "|W|");
  for (const DatasetSpec& spec : BenchmarkDatasetLadder()) {
    Dataset dataset = Dataset::Load(spec.name);
    std::printf("%-8s\t%10zu\t%10zu\t%8zu\t%10zu\t%8u\n", spec.name.c_str(),
                dataset.graph.NumVertices(), dataset.graph.NumEdges(),
                dataset.store.NumLiveObjects(),
                dataset.store.TotalKeywordSlots(), spec.num_keywords);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
