// Figure 15: the apples-to-apples false-positive comparison — top-k query
// time of KS-GT (K-SPIN using the G-tree as its Network Distance Module),
// Gtree-Opt (per-keyword occurrence lists) and the original keyword-
// aggregated G-tree, all over the SAME G-tree matrices.
#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_gt = true;
  selection.gtree_sk = selection.gtree_opt = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  std::vector<NamedMethod> methods = {
      {"KS-GT",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsGt()->TopK(v, k, kw, stats);
       }},
      {"Gtree-Opt",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.GtreeOpt()->TopK(v, k, kw, stats);
       }},
      {"G-tree",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.GtreeSk()->TopK(v, k, kw, stats);
       }},
  };
  RunParameterSweep("Figure 15 (top-k on shared G-tree)", dataset, workload,
                    methods, args.quick);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
