// Mixed read/write workload: sustained query throughput while objects are
// inserted and deleted, with periodic maintenance (Section 6.2's "lazy
// updates allow the system to continue processing incoming queries").
// Reports throughput per phase and the maintenance cost.
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  ContractionHierarchy ch(dataset.graph);
  ChOracle oracle(ch);
  KSpinOptions options;
  options.rho = 5;
  options.lazy_insert_threshold = 12;
  KSpin engine(dataset.graph, dataset.store, oracle, options);

  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());
  Rng rng(31337);

  PrintHeader("Mixed workload: queries under continuous updates", dataset,
              {"updates", "update_ms_avg", "bknn_qps", "topk_qps"});

  const int phases = 5;
  const std::size_t updates_per_phase = args.quick ? 50 : 200;
  std::size_t total_updates = 0;
  std::vector<ObjectId> inserted;
  for (int phase = 0; phase < phases; ++phase) {
    Timer update_timer;
    for (std::size_t i = 0; i < updates_per_phase; ++i) {
      if (!inserted.empty() && rng.Bernoulli(0.3)) {
        engine.DeleteObject(inserted.back());
        inserted.pop_back();
      } else {
        const KeywordId t =
            static_cast<KeywordId>(rng.UniformInt(0, 30));
        inserted.push_back(engine.InsertObject(
            static_cast<VertexId>(
                rng.UniformInt(0, dataset.graph.NumVertices() - 1)),
            {{t, 1},
             {static_cast<KeywordId>(rng.UniformInt(0, 200)), 1}}));
      }
      ++total_updates;
    }
    const double update_ms =
        update_timer.ElapsedMillis() / updates_per_phase;
    const double bknn_qps =
        MeasureQueries(queries, args.quick ? 30 : 150,
                       args.quick ? 0.4 : 1.0,
                       [&](const SpatialKeywordQuery& q) {
                         engine.BooleanKnn(q.vertex, 10, q.keywords,
                                           BooleanOp::kDisjunctive);
                       })
            .qps;
    const double topk_qps =
        MeasureQueries(queries, args.quick ? 30 : 150,
                       args.quick ? 0.4 : 1.0,
                       [&](const SpatialKeywordQuery& q) {
                         engine.TopK(q.vertex, 10, q.keywords);
                       })
            .qps;
    PrintRow("phase " + std::to_string(phase + 1),
             {static_cast<double>(total_updates), update_ms, bknn_qps,
              topk_qps});
  }
  Timer maintain_timer;
  const std::size_t rebuilt = engine.MaintainIndexes();
  std::printf("maintenance: rebuilt %zu indexes in %.1f ms\n", rebuilt,
              maintain_timer.ElapsedMillis());
  const double after_qps =
      MeasureQueries(queries, args.quick ? 30 : 150, args.quick ? 0.4 : 1.0,
                     [&](const SpatialKeywordQuery& q) {
                       engine.BooleanKnn(q.vertex, 10, q.keywords,
                                         BooleanOp::kDisjunctive);
                     })
          .qps;
  std::printf("post-maintenance bknn qps: %.1f\n", after_qps);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
