// Ablation: ALT landmark count (the Lower Bounding Module's only knob).
// More landmarks tighten the lower bounds, shrinking kappa (candidates
// extracted per query, Section 5.1) and network distance computations, at
// a linear memory cost. Section 3 notes the module can combine "more or
// fewer lower-bound heuristics" — this quantifies the trade-off.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  ContractionHierarchy ch(dataset.graph);
  ChOracle oracle(ch);
  KeywordIndexOptions ki;
  ki.nvd.rho = 5;
  KeywordIndex keyword_index(dataset.graph, dataset.store,
                             *dataset.inverted, ki);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());

  PrintHeader("Ablation: ALT landmarks vs candidate efficiency", dataset,
              {"alt_mb", "bknn_ms", "topk_ms", "kappa_per_k",
               "ndist_per_query"});
  for (std::uint32_t landmarks : {2u, 4u, 8u, 16u, 32u}) {
    AltIndex alt(dataset.graph, landmarks);
    QueryProcessor processor(dataset.store, *dataset.inverted,
                             *dataset.relevance, keyword_index, alt,
                             oracle);
    QueryStats stats;
    const Measurement bknn = MeasureQueries(
        queries, args.quick ? 30 : 150, args.quick ? 0.5 : 1.5,
        [&](const SpatialKeywordQuery& q) {
          processor.BooleanKnn(q.vertex, 10, q.keywords,
                               BooleanOp::kDisjunctive, &stats);
        });
    const Measurement topk = MeasureQueries(
        queries, args.quick ? 30 : 150, args.quick ? 0.5 : 1.5,
        [&](const SpatialKeywordQuery& q) {
          processor.TopK(q.vertex, 10, q.keywords);
        });
    PrintRow("landmarks=" + std::to_string(landmarks),
             {ToMb(alt.MemoryBytes()), bknn.avg_ms, topk.avg_ms,
              static_cast<double>(stats.candidates_extracted) /
                  (static_cast<double>(bknn.queries) * 10.0),
              static_cast<double>(stats.network_distance_computations) /
                  static_cast<double>(bknn.queries)});
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
