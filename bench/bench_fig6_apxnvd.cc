// Figure 6: rho-Approximate NVD performance.
//  (a) index size (MB) and construction time (s) versus rho;
//  (b) query time versus rho (BkNN and top-k; k=10, 2 terms);
//  (c) quadtree versus R-tree index size across datasets;
//  (d) parallel NVD construction speedup and efficiency.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "common/timer.h"
#include "kspin/keyword_index.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  // --- (a) + (b): rho sweep -------------------------------------------
  ContractionHierarchy ch(dataset.graph);
  ChOracle oracle(ch);
  AltIndex alt(dataset.graph, 16);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());
  const std::size_t max_queries = args.quick ? 30 : 200;
  const double budget = args.quick ? 0.5 : 2.0;

  PrintHeader("Figure 6a+6b: rho sweep", dataset,
              {"index_mb", "build_s", "bknn_ms", "topk_ms"});
  for (std::uint32_t rho : {1u, 3u, 5u, 7u, 9u, 11u}) {
    Timer timer;
    KeywordIndexOptions ki;
    ki.nvd.rho = rho;
    KeywordIndex index(dataset.graph, dataset.store, *dataset.inverted, ki);
    const double build_s = timer.ElapsedSeconds();
    QueryProcessor processor(dataset.store, *dataset.inverted,
                             *dataset.relevance, index, alt, oracle);
    const double bknn_ms =
        MeasureQueries(queries, max_queries, budget,
                       [&](const SpatialKeywordQuery& q) {
                         processor.BooleanKnn(q.vertex, 10, q.keywords,
                                              BooleanOp::kDisjunctive);
                       })
            .avg_ms;
    const double topk_ms =
        MeasureQueries(queries, max_queries, budget,
                       [&](const SpatialKeywordQuery& q) {
                         processor.TopK(q.vertex, 10, q.keywords);
                       })
            .avg_ms;
    PrintRow("rho=" + std::to_string(rho),
             {ToMb(index.MemoryBytes()), build_s, bknn_ms, topk_ms});
  }

  // --- (c): quadtree vs R-tree size across datasets ---------------------
  {
    std::printf(
        "\n=== Figure 6c: quadtree vs R-tree keyword index size (rho=5) "
        "===\n");
    std::printf("%-8s\t%12s\t%12s\t%12s\n", "region", "occurrences",
                "quadtree_mb", "rtree_mb");
    std::vector<std::string> names = {"DE", "ME", "FL"};
    if (args.full) names = {"DE", "ME", "FL", "E", "US"};
    for (const std::string& name : names) {
      Dataset d = Dataset::Load(name);
      KeywordIndexOptions quad;
      quad.nvd.rho = 5;
      quad.nvd.storage = ApxNvdStorage::kQuadtree;
      KeywordIndex quad_index(d.graph, d.store, *d.inverted, quad);
      KeywordIndexOptions rtree;
      rtree.nvd.rho = 5;
      rtree.nvd.storage = ApxNvdStorage::kRTree;
      KeywordIndex rtree_index(d.graph, d.store, *d.inverted, rtree);
      std::printf("%-8s\t%12zu\t%12.3f\t%12.3f\n", name.c_str(),
                  d.store.TotalKeywordSlots(),
                  ToMb(quad_index.MemoryBytes()),
                  ToMb(rtree_index.MemoryBytes()));
      std::fflush(stdout);
    }
  }

  // --- (d): parallel construction speedup -------------------------------
  {
    std::printf("\n=== Figure 6d: parallel NVD construction ===\n");
    std::printf("%-8s\t%10s\t%10s\t%10s\n", "threads", "build_s", "speedup",
                "efficiency");
    double t1 = 0.0;
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      Timer timer;
      KeywordIndexOptions ki;
      ki.nvd.rho = 5;
      ki.num_threads = threads;
      KeywordIndex index(dataset.graph, dataset.store, *dataset.inverted,
                         ki);
      const double t = timer.ElapsedSeconds();
      if (threads == 1) t1 = t;
      std::printf("%-8u\t%10.2f\t%10.2f\t%10.2f\n", threads, t,
                  t1 > 0 ? t1 / t : 0.0, t1 > 0 ? t1 / (threads * t) : 0.0);
      std::fflush(stdout);
    }
    std::printf(
        "(hardware_concurrency=%u; speedup saturates at the physical core "
        "count)\n",
        std::thread::hardware_concurrency());
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
