// Figure 13: single-keyword BkNN query time versus keyword frequency,
// bucketed by object density |inv(t)| / |V|. Single keywords isolate the
// frequency effect from multi-keyword aggregation artefacts.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, /*quick=*/true);

  struct Bucket {
    double lo, hi;
    const char* label;
  };
  const std::vector<Bucket> buckets = {
      {1e-5, 1e-4, "1e-5"},
      {1e-4, 1e-3, "1e-4"},
      {1e-3, 1e-2, "1e-3"},
      {1e-2, 1.0, "1e-2"},
  };

  PrintHeader("Figure 13: single-keyword B10NN vs keyword density",
              dataset, {"KSCH_ms", "KSHL_ms", "Gtree_ms", "num_queries"});
  for (const Bucket& bucket : buckets) {
    std::vector<SpatialKeywordQuery> queries =
        workload.SingleKeywordDensityBucket(bucket.lo, bucket.hi,
                                            args.quick ? 4 : 10,
                                            args.quick ? 3 : 10);
    if (queries.empty()) {
      PrintRow(std::string("density>=") + bucket.label, {0, 0, 0, 0});
      continue;
    }
    const std::size_t max_queries = args.quick ? 20 : 120;
    const double budget = args.quick ? 0.5 : 1.5;
    const double ksch =
        MeasureQueries(queries, max_queries, budget,
                       [&](const SpatialKeywordQuery& q) {
                         engines.KsCh()->BooleanKnn(
                             q.vertex, 10, q.keywords,
                             BooleanOp::kDisjunctive);
                       })
            .avg_ms;
    const double kshl =
        MeasureQueries(queries, max_queries, budget,
                       [&](const SpatialKeywordQuery& q) {
                         engines.KsHl()->BooleanKnn(
                             q.vertex, 10, q.keywords,
                             BooleanOp::kDisjunctive);
                       })
            .avg_ms;
    const double gtree =
        MeasureQueries(queries, max_queries, budget,
                       [&](const SpatialKeywordQuery& q) {
                         engines.GtreeSk()->BooleanKnn(
                             q.vertex, 10, q.keywords,
                             BooleanOp::kDisjunctive);
                       })
            .avg_ms;
    PrintRow(std::string("density>=") + bucket.label,
             {ksch, kshl, gtree, static_cast<double>(queries.size())});
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
