// Figure 16: machine-independent cost — G-tree *matrix operations* (one
// distance-matrix lookup + add) per top-k query, for KS-GT vs Gtree-Opt vs
// original G-tree over the same shared G-tree index. Fewer matrix ops ==
// fewer false positives; the paper's central evidence for keyword
// separation.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_gt = true;
  selection.gtree_sk = selection.gtree_opt = true;
  EngineSet engines(dataset, selection);
  GTree* gtree = engines.GetGTree();
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  struct Method {
    const char* name;
    std::function<void(const SpatialKeywordQuery&, std::uint32_t)> run;
  };
  const std::vector<Method> methods = {
      {"KS-GT",
       [&](const SpatialKeywordQuery& q, std::uint32_t k) {
         engines.KsGt()->TopK(q.vertex, k, q.keywords);
       }},
      {"Gtree-Opt",
       [&](const SpatialKeywordQuery& q, std::uint32_t k) {
         engines.GtreeOpt()->TopK(q.vertex, k, q.keywords);
       }},
      {"G-tree",
       [&](const SpatialKeywordQuery& q, std::uint32_t k) {
         engines.GtreeSk()->TopK(q.vertex, k, q.keywords);
       }},
  };

  PrintHeader("Figure 16: matrix operations per top-k query (2 terms)",
              dataset, {"k1", "k5", "k10", "k25", "k50"});
  const auto queries = workload.QueriesForLength(2);
  const std::size_t sample =
      std::min<std::size_t>(queries.size(), args.quick ? 10 : 60);
  for (const Method& method : methods) {
    std::vector<double> cells;
    for (std::uint32_t k : {1u, 5u, 10u, 25u, 50u}) {
      gtree->ResetMatrixOps();
      for (std::size_t i = 0; i < sample; ++i) {
        method.run(queries[i], k);
      }
      cells.push_back(static_cast<double>(gtree->MatrixOps()) /
                      static_cast<double>(sample));
    }
    PrintRow(method.name, cells);
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
