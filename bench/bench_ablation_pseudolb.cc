// Ablation: pseudo lower-bound scores (Algorithm 2) versus the valid
// lower bound ST_all on all unseen objects (Section 4.2). Both are exact;
// the pseudo bound should extract fewer candidates and compute fewer
// network distances, translating into lower latency — the design choice
// DESIGN.md calls out.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  PrintHeader("Ablation: pseudo vs valid lower-bound scores (top-k)",
              dataset,
              {"terms", "pseudo_ms", "valid_ms", "pseudo_ndist",
               "valid_ndist", "pseudo_kappa", "valid_kappa"});
  for (std::uint32_t terms = 2; terms <= 6; terms += 2) {
    std::vector<SpatialKeywordQuery> queries(
        workload.QueriesForLength(terms).begin(),
        workload.QueriesForLength(terms).end());
    const std::size_t max_queries = args.quick ? 30 : 150;
    const double budget = args.quick ? 0.5 : 1.5;

    QueryStats pseudo_stats;
    engines.KsCh()->SetUsePseudoLowerBounds(true);
    const Measurement pseudo = MeasureQueries(
        queries, max_queries, budget, [&](const SpatialKeywordQuery& q) {
          engines.KsCh()->TopK(q.vertex, 10, q.keywords, &pseudo_stats);
        });
    QueryStats valid_stats;
    engines.KsCh()->SetUsePseudoLowerBounds(false);
    const Measurement valid = MeasureQueries(
        queries, max_queries, budget, [&](const SpatialKeywordQuery& q) {
          engines.KsCh()->TopK(q.vertex, 10, q.keywords, &valid_stats);
        });
    engines.KsCh()->SetUsePseudoLowerBounds(true);

    PrintRow("terms=" + std::to_string(terms),
             {static_cast<double>(terms), pseudo.avg_ms, valid.avg_ms,
              static_cast<double>(pseudo_stats.network_distance_computations) /
                  pseudo.queries,
              static_cast<double>(valid_stats.network_distance_computations) /
                  valid.queries,
              static_cast<double>(pseudo_stats.candidates_extracted) /
                  pseudo.queries,
              static_cast<double>(valid_stats.candidates_extracted) /
                  valid.queries});
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
