// Figure 8: handling updates.
//  (a) single-keyword BkNN query time after inserting x% of a keyword's
//      objects via lazy updates, for a small / medium / large APX-NVD;
//  (b) average time per lazy insertion and the cost of rebuilding the
//      APX-NVD afterwards.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/timer.h"

namespace kspin::bench {
namespace {

// Picks a keyword whose inverted-list size is closest to `target`, among
// keywords that actually have Voronoi structures.
KeywordId KeywordNearSize(const Dataset& dataset, std::size_t target,
                          std::uint32_t rho) {
  KeywordId best = kInvalidKeyword;
  std::size_t best_gap = SIZE_MAX;
  for (KeywordId t = 0; t < dataset.inverted->NumKeywords(); ++t) {
    const std::size_t size = dataset.inverted->ListSize(t);
    if (size <= rho) continue;
    const std::size_t gap =
        size > target ? size - target : target - size;
    if (gap < best_gap) {
      best_gap = gap;
      best = t;
    }
  }
  return best;
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);
  const std::uint32_t rho = 5;

  // Low / middle / high thirds of the frequency distribution = small /
  // medium / large NVDs (paper's terminology).
  std::size_t max_list = 0;
  for (KeywordId t = 0; t < dataset.inverted->NumKeywords(); ++t) {
    max_list = std::max(max_list, dataset.inverted->ListSize(t));
  }
  struct Target {
    const char* label;
    KeywordId keyword;
  };
  std::vector<Target> targets = {
      {"small", KeywordNearSize(dataset, rho * 3, rho)},
      {"medium", KeywordNearSize(dataset, max_list / 3, rho)},
      {"large", KeywordNearSize(dataset, max_list, rho)},
  };

  ContractionHierarchy ch(dataset.graph);
  ChOracle oracle(ch);
  Rng rng(7777);

  PrintHeader("Figure 8a: query time after x% lazy inserts "
              "(single-keyword B10NN)",
              dataset, {"x0_ms", "x1_ms", "x2_ms", "x3_ms", "x4_ms",
                        "x5_ms"});
  std::printf("(Figure 8b columns follow per NVD: avg insert ms + rebuild "
              "s)\n");

  for (const Target& target : targets) {
    if (target.keyword == kInvalidKeyword) continue;
    // A dedicated engine per keyword so lazy state starts clean. The
    // engine owns a copy of the store.
    KSpinOptions options;
    options.rho = rho;
    options.lazy_insert_threshold = 1u << 30;  // Never auto-flag; we
                                               // rebuild explicitly.
    KSpin engine(dataset.graph, dataset.store, oracle, options);
    const std::size_t list_size =
        engine.Inverted().ListSize(target.keyword);
    const std::vector<KeywordId> keywords = {target.keyword};

    // Query sample for this keyword.
    std::vector<SpatialKeywordQuery> queries;
    for (int i = 0; i < 64; ++i) {
      queries.push_back(
          {static_cast<VertexId>(
               rng.UniformInt(0, dataset.graph.NumVertices() - 1)),
           keywords});
    }
    const std::size_t per_percent =
        std::max<std::size_t>(1, list_size / 100);

    std::vector<double> query_ms;
    double insert_seconds = 0.0;
    std::size_t inserts = 0;
    for (int percent = 0; percent <= 5; ++percent) {
      if (percent > 0) {
        Timer timer;
        for (std::size_t i = 0; i < per_percent; ++i) {
          engine.InsertObject(
              static_cast<VertexId>(
                  rng.UniformInt(0, dataset.graph.NumVertices() - 1)),
              {{target.keyword, 1}});
          ++inserts;
        }
        insert_seconds += timer.ElapsedSeconds();
      }
      query_ms.push_back(
          MeasureQueries(queries, args.quick ? 20 : 100,
                         args.quick ? 0.5 : 1.5,
                         [&](const SpatialKeywordQuery& q) {
                           engine.BooleanKnn(q.vertex, 10, q.keywords,
                                             BooleanOp::kDisjunctive);
                         })
              .avg_ms);
    }
    PrintRow(std::string(target.label) + " (|inv|=" +
                 std::to_string(list_size) + ")",
             query_ms);

    // (b): per-insert cost and rebuild cost.
    Timer rebuild_timer;
    const_cast<ApxNvd*>(engine.Keywords().Index(target.keyword))->Rebuild();
    const double rebuild_s = rebuild_timer.ElapsedSeconds();
    PrintRow(std::string("  fig8b ") + target.label,
             {inserts > 0 ? insert_seconds * 1e3 / inserts : 0.0,
              rebuild_s});
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
