// Serving-layer throughput: closed-loop clients against an in-process
// kspin_server over loopback TCP, sweeping client concurrency.
//
//   bench_server_throughput [--quick]
//
// Each client thread owns one connection and issues back-to-back boolean
// and ranked searches drawn from a fixed query mix. Reported per
// concurrency level: aggregate QPS, client-observed mean / p50 / p99
// latency (microseconds), and the server's own p99 from STATS — the gap
// between the two is queueing + wire overhead.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/road_network_generator.h"
#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"

namespace kspin::bench {
namespace {

struct QueryCase {
  std::string query;
  VertexId from;
  std::uint32_t k;
  bool ranked;
};

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  RoadNetworkOptions road;
  road.grid_width = quick ? 30 : 60;
  road.grid_height = quick ? 30 : 60;
  road.seed = 5;
  const Graph graph = GenerateRoadNetwork(road);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  PoiService service(graph, oracle);

  SyntheticCatalogOptions catalog;
  catalog.num_pois = quick ? 300 : 2000;
  catalog.num_keywords = 40;
  PopulateSyntheticCatalog(service, graph, catalog);

  server::Server server(service);
  server.Start();

  const std::size_t num_vertices = graph.NumVertices();
  const std::vector<QueryCase> mix = {
      {"kw0", static_cast<VertexId>(num_vertices / 7), 10, false},
      {"kw1 or kw2", static_cast<VertexId>(num_vertices / 3), 10, false},
      {"kw0 and kw3", static_cast<VertexId>(num_vertices / 2), 10, false},
      {"(kw1 and kw2) or kw4", static_cast<VertexId>(num_vertices / 5), 10,
       false},
      {"kw0 kw1", static_cast<VertexId>(num_vertices / 4), 10, true},
      {"kw2 kw5 kw9", static_cast<VertexId>(2 * num_vertices / 3), 10,
       true},
  };

  std::printf("# bench_server_throughput: loopback TCP, closed-loop "
              "clients, |V|=%zu, %zu POIs\n",
              num_vertices, service.NumLivePois());
  std::printf("clients\tqps\tmean_us\tp50_us\tp99_us\tserver_p99_us\n");

  const double seconds_per_level = quick ? 0.5 : 2.0;
  for (const int clients : {1, 2, 4, 8}) {
    std::atomic<std::uint64_t> total_queries{0};
    std::atomic<bool> stop{false};
    std::vector<std::vector<std::uint64_t>> latencies(clients);
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        server::Client client;
        client.Connect("127.0.0.1", server.Port());
        auto& local = latencies[t];
        std::size_t next = static_cast<std::size_t>(t);
        while (!stop.load(std::memory_order_relaxed)) {
          const QueryCase& q = mix[next++ % mix.size()];
          const auto begin = std::chrono::steady_clock::now();
          const auto reply =
              client.Search(q.query, q.from, q.k, q.ranked);
          const auto end = std::chrono::steady_clock::now();
          if (!reply.ok()) continue;
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(end -
                                                                    begin)
                  .count()));
          total_queries.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }

    const auto start = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(seconds_per_level));
    stop = true;
    for (auto& thread : threads) thread.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::vector<std::uint64_t> all;
    for (auto& local : latencies) {
      all.insert(all.end(), local.begin(), local.end());
    }
    std::sort(all.begin(), all.end());
    auto percentile = [&all](double p) -> std::uint64_t {
      if (all.empty()) return 0;
      const std::size_t index = std::min(
          all.size() - 1,
          static_cast<std::size_t>(p * static_cast<double>(all.size())));
      return all[index];
    };
    std::uint64_t sum = 0;
    for (const std::uint64_t v : all) sum += v;

    server::Client probe;
    probe.Connect("127.0.0.1", server.Port());
    const auto stats = probe.Stats();

    std::printf("%d\t%.0f\t%llu\t%llu\t%llu\t%llu\n", clients,
                static_cast<double>(total_queries.load()) / elapsed,
                static_cast<unsigned long long>(
                    all.empty() ? 0 : sum / all.size()),
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)),
                static_cast<unsigned long long>(
                    stats.Value("query_latency_p99_us")));
  }

  server.Stop();
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Main(argc, argv); }
