// Figure 10: disjunctive Boolean kNN query time on the largest dataset,
// varying (a) k and (b) the number of query keywords.
// Methods: KS-CH, KS-HL, keyword-aggregated G-tree, FS-FBS (absent when
// its index exceeds the memory budget, as on the paper's US dataset).
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = true;
  selection.fs_fbs = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  std::vector<NamedMethod> methods = {
      {"KS-CH",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw) {
         engines.KsCh()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive);
       }},
      {"KS-HL",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw) {
         engines.KsHl()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive);
       }},
      {"G-tree",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw) {
         engines.GtreeSk()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive);
       }},
  };
  if (engines.FsFbsEngine() != nullptr) {
    methods.push_back(
        {"FS-FBS",
         [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw) {
           engines.FsFbsEngine()->BooleanKnn(v, k, kw,
                                             BooleanOp::kDisjunctive);
         }});
  } else {
    std::printf("FS-FBS: %s\n", engines.FsFbsFailure().c_str());
  }
  RunParameterSweep("Figure 10", dataset, workload, methods, args.quick);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
