// Figure 10: disjunctive Boolean kNN query time on the largest dataset,
// varying (a) k and (b) the number of query keywords.
// Methods: KS-CH, KS-HL, keyword-aggregated G-tree, FS-FBS (absent when
// its index exceeds the memory budget, as on the paper's US dataset).
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = true;
  selection.fs_fbs = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  std::vector<NamedMethod> methods = {
      {"KS-CH",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsCh()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive,
                                    stats);
       }},
      {"KS-HL",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsHl()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive,
                                    stats);
       }},
      {"G-tree",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.GtreeSk()->BooleanKnn(v, k, kw, BooleanOp::kDisjunctive,
                                       stats);
       }},
  };
  if (engines.FsFbsEngine() != nullptr) {
    methods.push_back(
        {"FS-FBS",
         [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
             QueryStats* stats) {
           engines.FsFbsEngine()->BooleanKnn(v, k, kw,
                                             BooleanOp::kDisjunctive, stats);
         }});
  } else {
    std::printf("FS-FBS: %s\n", engines.FsFbsFailure().c_str());
  }
  RunParameterSweep("Figure 10", dataset, workload, methods, args.quick);
  // The observability cross-check: identical queries, per-method engine
  // counters. K-SPIN should report strictly fewer false-positive exact
  // distances than the keyword-aggregated G-tree.
  RunCounterComparison("Figure 10", dataset, workload, methods, args.quick);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
