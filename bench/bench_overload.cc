// Overload-resilience drill: an in-process kspin_server with the full
// overload stack enabled (EDF admission, AIMD limit, CoDel shedding,
// brownout), driven well past capacity, then allowed to recover.
//
//   bench_overload [--quick]
//
// Three phases:
//
//  1. calibrate — closed-loop clients measure sustainable capacity C;
//  2. overload  — open-loop arrivals at 2xC with a per-request deadline:
//     the server must shed enough that what it DOES admit finishes
//     within the SLO, and must never serve a request past its deadline;
//  3. recover   — offered load drops to C/4; brownout must exit and the
//     admission limit climb back.
//
// Checks printed at the end (process exits nonzero on failure):
//  - p99 of admitted requests during steady-state overload within the
//    SLO (2x slack: AIMD oscillates around the SLO boundary by design);
//  - zero requests served after their deadline (10 ms grace for reply
//    flush + clock skew between the two measurement points);
//  - brownout entered during overload and exited after recovery, both
//    visible in the Prometheus METRICS text.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "graph/road_network_generator.h"
#include "routing/contraction_hierarchy.h"
#include "server/client.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/synthetic_catalog.h"

namespace kspin::bench {
namespace {

using Clock = std::chrono::steady_clock;

// A full queue (64 requests x 2 ms / 2 workers = 64 ms sojourn) clearly
// violates this SLO, so sustained saturation forces the controller's
// hand; the AIMD limiter then converges the backlog onto roughly the
// SLO's worth of work.
constexpr std::uint32_t kSloMs = 20;
constexpr std::uint32_t kDeadlineMs = 150;
constexpr std::uint64_t kLateGraceMs = 10;

struct PhaseResult {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;      ///< OVERLOADED replies (any flavour).
  std::uint64_t deadline = 0;  ///< DEADLINE_EXCEEDED replies.
  std::uint64_t degraded = 0;  ///< OK replies flagged DEGRADED.
  std::uint64_t late = 0;      ///< OK replies past deadline + grace.
  std::vector<std::uint64_t> ok_latencies_us;
};

std::uint64_t Percentile(std::vector<std::uint64_t>& values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(values.size())));
  return values[index];
}

/// Runs `threads` clients for `seconds`. `qps` 0 = closed loop;
/// otherwise open loop at that aggregate rate (arrivals keep their
/// schedule however slowly the server answers). `deadline_ms` rides on
/// every request when nonzero.
PhaseResult RunPhase(server::Server& server, int threads, double seconds,
                     double qps, std::uint32_t deadline_ms,
                     std::size_t num_vertices) {
  std::vector<PhaseResult> locals(static_cast<std::size_t>(threads));
  std::vector<std::thread> workers;
  const Clock::time_point phase_end =
      Clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      PhaseResult& local = locals[static_cast<std::size_t>(t)];
      server::Client client;
      client.Connect("127.0.0.1", server.Port());
      const auto interval =
          qps > 0.0 ? std::chrono::microseconds(static_cast<std::int64_t>(
                          1e6 * threads / qps))
                    : std::chrono::microseconds(0);
      Clock::time_point next_send = Clock::now();
      std::size_t i = static_cast<std::size_t>(t);
      while (Clock::now() < phase_end) {
        if (qps > 0.0) {
          const Clock::time_point now = Clock::now();
          if (now < next_send) std::this_thread::sleep_until(next_send);
          next_send += interval;
        }
        const std::string query = "kw" + std::to_string(i++ % 8);
        const VertexId from =
            static_cast<VertexId>((i * 2654435761u) % num_vertices);
        ++local.sent;
        const Clock::time_point begin = Clock::now();
        const auto reply =
            client.Search(query, from, 10, false, deadline_ms);
        const auto elapsed_us = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - begin)
                .count());
        if (reply.ok()) {
          ++local.ok;
          if (reply.degraded) ++local.degraded;
          local.ok_latencies_us.push_back(elapsed_us);
          if (deadline_ms > 0 &&
              elapsed_us > (deadline_ms + kLateGraceMs) * 1000) {
            ++local.late;
          }
        } else if (reply.status == server::StatusCode::kOverloaded) {
          ++local.shed;
        } else if (reply.status ==
                   server::StatusCode::kDeadlineExceeded) {
          ++local.deadline;
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  PhaseResult total;
  for (PhaseResult& local : locals) {
    total.sent += local.sent;
    total.ok += local.ok;
    total.shed += local.shed;
    total.deadline += local.deadline;
    total.degraded += local.degraded;
    total.late += local.late;
    total.ok_latencies_us.insert(total.ok_latencies_us.end(),
                                 local.ok_latencies_us.begin(),
                                 local.ok_latencies_us.end());
  }
  return total;
}

/// First value of `name` in Prometheus exposition text, or 0.
std::uint64_t MetricsValue(const std::string& text,
                           const std::string& name) {
  const std::size_t pos = text.find("\n" + name + " ");
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + name.size() + 2, nullptr, 10);
}

int Main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  RoadNetworkOptions road;
  road.grid_width = 30;
  road.grid_height = 30;
  road.seed = 5;
  const Graph graph = GenerateRoadNetwork(road);
  ContractionHierarchy ch(graph);
  ChOracle oracle(ch);
  PoiService service(graph, oracle);
  SyntheticCatalogOptions catalog;
  catalog.num_pois = 500;
  catalog.num_keywords = 20;
  PopulateSyntheticCatalog(service, graph, catalog);

  server::ServerOptions options;
  options.num_workers = 2;
  options.queue_capacity = 64;
  // Pin a 2 ms floor on per-request service time: the synthetic queries
  // alone are so cheap (~0.1 ms) that no client count overloads the
  // server, and capacity would vary wildly across machines. With the
  // floor, capacity is ~2 workers / 2 ms = ~1000 qps everywhere, so "2x
  // capacity" genuinely saturates.
  options.test_dequeue_delay_ms = 2;
  options.overload.latency_slo_ms = kSloMs;
  options.overload.tick_interval_ms = 20;
  options.overload.codel_target_ms = 10;
  options.overload.brownout_enter_ticks = 2;
  options.overload.brownout_exit_ticks = 5;
  options.overload.brownout_max_k = 5;
  server::Server server(service, options);
  server.Start();
  server::Client probe;
  probe.Connect("127.0.0.1", server.Port());

  const std::size_t num_vertices = graph.NumVertices();
  const int threads = 8;
  const double calibrate_s = quick ? 0.5 : 2.0;
  const double overload_s = quick ? 2.0 : 5.0;
  const double recover_s = quick ? 2.0 : 5.0;

  std::printf("# bench_overload: SLO p99 <= %u ms, deadline %u ms, "
              "workers=2, queue=64\n",
              kSloMs, kDeadlineMs);
  std::printf(
      "phase\toffered_qps\tok\tshed\tdead\tdeg\tlate\tp99_ms\tstate\n");
  const auto report = [&](const char* name, double qps,
                          PhaseResult& result) -> std::uint64_t {
    const std::uint64_t p99_us = Percentile(result.ok_latencies_us, 0.99);
    const auto stats = probe.Stats();
    std::printf("%s\t%.0f\t%llu\t%llu\t%llu\t%llu\t%llu\t%.1f\t%llu\n",
                name, qps, static_cast<unsigned long long>(result.ok),
                static_cast<unsigned long long>(result.shed),
                static_cast<unsigned long long>(result.deadline),
                static_cast<unsigned long long>(result.degraded),
                static_cast<unsigned long long>(result.late),
                static_cast<double>(p99_us) / 1000.0,
                static_cast<unsigned long long>(
                    stats.Value("overload_state")));
    return p99_us;
  };

  // Phase 1: closed-loop capacity estimate.
  PhaseResult calibrate = RunPhase(server, threads, calibrate_s, 0.0,
                                   /*deadline_ms=*/0, num_vertices);
  const double capacity_qps =
      static_cast<double>(calibrate.ok) / calibrate_s;
  report("calibrate", capacity_qps, calibrate);

  // Phase 2: 2x capacity, every request deadlined. The blocking client
  // caps each connection at one request in flight, so offering 2x the
  // closed-loop rate takes a deep pool of connections (64) — pacing
  // alone cannot outrun a saturated server from 8 sockets. The first
  // half-second is an unmeasured ramp: it spans the window where the
  // controller is still discovering the overload (queue filling, AIMD
  // still clamping), which is warm-up, not steady state.
  const int burst_threads = 64;
  PhaseResult ramp = RunPhase(server, burst_threads, 0.5,
                              2.0 * capacity_qps, kDeadlineMs,
                              num_vertices);
  PhaseResult overload =
      RunPhase(server, burst_threads, overload_s, 2.0 * capacity_qps,
               kDeadlineMs, num_vertices);
  const std::uint64_t overload_p99_us =
      report("overload", 2.0 * capacity_qps, overload);
  overload.shed += ramp.shed;
  overload.deadline += ramp.deadline;
  overload.late += ramp.late;
  const auto mid_metrics = probe.Metrics();
  const std::uint64_t entries_mid =
      MetricsValue(mid_metrics.text, "kspin_brownout_entries");

  // Phase 3: recovery at a fraction of capacity.
  PhaseResult recover =
      RunPhase(server, threads, recover_s,
               std::max(1.0, capacity_qps / 4.0), kDeadlineMs,
               num_vertices);
  // Give the controller a few idle ticks to finish exiting brownout.
  for (int i = 0; i < 50; ++i) {
    if (probe.Stats().Value("overload_state") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    probe.Ping();  // Wake the I/O loop so ticks keep firing.
  }
  report("recover", capacity_qps / 4.0, recover);
  const auto end_metrics = probe.Metrics();

  // ----- Checks --------------------------------------------------------
  int failures = 0;
  const auto check = [&](bool ok, const char* what) {
    std::printf("check: %s: %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++failures;
  };
  check(overload.ok > 0, "overload phase admitted some requests");
  // AIMD deliberately oscillates around the SLO boundary (probe up,
  // clamp down), so steady-state p99 sits near the SLO with overshoot
  // on the probing ticks; 2x bounds that overshoot.
  check(overload_p99_us <= 2 * kSloMs * 1000,
        "p99 of admitted requests within SLO at 2x capacity");
  check(overload.late == 0 && recover.late == 0,
        "zero requests served after their deadline");
  check(overload.shed + overload.deadline > 0,
        "overload phase shed the excess");
  check(MetricsValue(end_metrics.text, "kspin_brownout_entries") >= 1 &&
            entries_mid >= 1,
        "brownout entry visible in METRICS");
  check(MetricsValue(end_metrics.text, "kspin_overload_state") == 0,
        "brownout exit (overload_state back to 0) visible in METRICS");

  server.Stop();
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Main(argc, argv); }
