// Motivation experiment (paper Section 1): why network distance matters,
// and why keyword aggregation is cheap in Euclidean space but expensive on
// road networks.
//
// Compares the IR-tree (Euclidean keyword aggregation) against K-SPIN
// (exact network distance):
//  - result quality: how much of the true network-kNN result set the
//    Euclidean answer recovers, and how much farther (by travel time) its
//    answers actually are;
//  - cost: Euclidean query latency vs K-SPIN's.
#include <algorithm>
#include <cstdio>
#include <set>

#include "baselines/ir_tree.h"
#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = true;
  EngineSet engines(dataset, selection);
  IrTree ir_tree(dataset.graph, dataset.store, *dataset.relevance);
  DijkstraWorkspace workspace(dataset.graph.NumVertices());

  QueryWorkload workload = MakeWorkload(dataset, /*quick=*/true);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());
  const std::size_t sample =
      std::min<std::size_t>(queries.size(), args.quick ? 15 : 60);
  constexpr std::uint32_t kK = 10;

  PrintHeader("Motivation: Euclidean IR-tree vs network-distance K-SPIN",
              dataset,
              {"overlap", "travel_inflation", "euclid_ms", "kspin_ms"});

  double overlap_sum = 0.0, inflation_sum = 0.0;
  std::size_t measured = 0;
  for (std::size_t i = 0; i < sample; ++i) {
    const SpatialKeywordQuery& q = queries[i];
    const auto network = engines.KsCh()->BooleanKnn(
        q.vertex, kK, q.keywords, BooleanOp::kDisjunctive);
    const auto euclid = ir_tree.BooleanKnn(
        dataset.graph.VertexCoordinate(q.vertex), kK, q.keywords,
        BooleanOp::kDisjunctive);
    if (network.empty() || euclid.empty()) continue;

    std::set<ObjectId> network_set;
    Distance network_total = 0;
    for (const BkNNResult& r : network) {
      network_set.insert(r.object);
      network_total += r.distance;
    }
    std::size_t hits = 0;
    Distance euclid_total = 0;
    workspace.SingleSource(dataset.graph, q.vertex);
    for (const EuclideanResult& r : euclid) {
      if (network_set.contains(r.object)) ++hits;
      euclid_total += workspace.DistanceTo(
          dataset.store.ObjectVertex(r.object));
    }
    overlap_sum += static_cast<double>(hits) / network.size();
    if (network_total > 0) {
      inflation_sum += static_cast<double>(euclid_total) /
                       static_cast<double>(network_total);
    }
    ++measured;
  }

  const double euclid_ms =
      MeasureQueries(queries, args.quick ? 40 : 300, args.quick ? 0.5 : 2.0,
                     [&](const SpatialKeywordQuery& q) {
                       ir_tree.BooleanKnn(
                           dataset.graph.VertexCoordinate(q.vertex), kK,
                           q.keywords, BooleanOp::kDisjunctive);
                     })
          .avg_ms;
  const double kspin_ms =
      MeasureQueries(queries, args.quick ? 40 : 300, args.quick ? 0.5 : 2.0,
                     [&](const SpatialKeywordQuery& q) {
                       engines.KsCh()->BooleanKnn(q.vertex, kK, q.keywords,
                                                  BooleanOp::kDisjunctive);
                     })
          .avg_ms;

  PrintRow("B10NN (2 terms)",
           {measured > 0 ? overlap_sum / measured : 0.0,
            measured > 0 ? inflation_sum / measured : 0.0, euclid_ms,
            kspin_ms});
  std::printf(
      "(overlap: fraction of the true network-kNN result the Euclidean "
      "answer recovers;\n travel_inflation: total travel time of the "
      "Euclidean answer / true optimum)\n");
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
