// Figure 11: conjunctive Boolean kNN query time on the largest dataset,
// varying (a) k and (b) the number of query keywords. Aggregation is at
// its weakest here: a group's pseudo-document can contain all query
// keywords while no single object does.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = true;
  selection.fs_fbs = true;
  EngineSet engines(dataset, selection);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);

  std::vector<NamedMethod> methods = {
      {"KS-CH",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsCh()->BooleanKnn(v, k, kw, BooleanOp::kConjunctive,
                                    stats);
       }},
      {"KS-HL",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.KsHl()->BooleanKnn(v, k, kw, BooleanOp::kConjunctive,
                                    stats);
       }},
      {"G-tree",
       [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
           QueryStats* stats) {
         engines.GtreeSk()->BooleanKnn(v, k, kw, BooleanOp::kConjunctive,
                                       stats);
       }},
  };
  if (engines.FsFbsEngine() != nullptr) {
    methods.push_back(
        {"FS-FBS",
         [&](VertexId v, std::uint32_t k, std::span<const KeywordId> kw,
             QueryStats* stats) {
           engines.FsFbsEngine()->BooleanKnn(v, k, kw,
                                             BooleanOp::kConjunctive, stats);
         }});
  } else {
    std::printf("FS-FBS: %s\n", engines.FsFbsFailure().c_str());
  }
  RunParameterSweep("Figure 11", dataset, workload, methods, args.quick);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
