// Micro-benchmarks (google-benchmark) of the primitive operations every
// K-SPIN query is composed of: ALT lower bounds, point-to-point distance
// queries per technique, inverted-heap creation/extraction, quadtree point
// location, and NVD construction. Complements the per-figure harnesses.
//
// `--json=FILE` switches to a self-contained lower-bound throughput probe
// (no google-benchmark): it measures the scalar per-pair path and the SIMD
// batch path over the same random-target workload and writes one JSON
// object — consumed by tools/check_bench_lb.py in CI and recorded in
// BENCH_lb.json (docs/performance.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "bench_common.h"
#include "common/random.h"
#include "kspin/inverted_heap.h"
#include "nvd/nvd.h"
#include "routing/alt_kernels.h"

namespace kspin::bench {
namespace {

// Shared state, built once (google-benchmark may re-enter the function).
struct MicroState {
  Dataset dataset = Dataset::Load("ME");
  ContractionHierarchy ch{dataset.graph};
  HubLabeling hl{dataset.graph, ch};
  GTree gtree{dataset.graph, [] {
                GTreeOptions o;
                o.leaf_size = 64;
                return o;
              }()};
  AltIndex alt{dataset.graph, 16};
  KeywordIndex keywords{dataset.graph, dataset.store, *dataset.inverted,
                        [] {
                          KeywordIndexOptions o;
                          o.nvd.rho = 5;
                          return o;
                        }()};
  ChOracle ch_oracle{ch};
  QueryProcessor processor{dataset.store,    *dataset.inverted,
                           *dataset.relevance, keywords,
                           alt,              ch_oracle};
  Rng rng{1234};

  VertexId RandomVertex() {
    return static_cast<VertexId>(
        rng.UniformInt(0, dataset.graph.NumVertices() - 1));
  }
  KeywordId FrequentKeyword() {
    for (KeywordId t = 0; t < dataset.inverted->NumKeywords(); ++t) {
      if (dataset.inverted->ListSize(t) >= 30) return t;
    }
    return 0;
  }
};

MicroState& State() {
  static MicroState* state = new MicroState();
  return *state;
}

void BM_AltLowerBound(benchmark::State& bench) {
  MicroState& s = State();
  VertexId a = s.RandomVertex(), b = s.RandomVertex();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.alt.LowerBound(a, b));
  }
}
BENCHMARK(BM_AltLowerBound);

void BM_AltLowerBoundBatch(benchmark::State& bench) {
  MicroState& s = State();
  constexpr std::size_t kBlock = 256;
  std::vector<VertexId> targets(kBlock);
  for (VertexId& t : targets) t = s.RandomVertex();
  std::vector<Distance> out(kBlock);
  const VertexId src = s.RandomVertex();
  for (auto _ : bench) {
    s.alt.LowerBoundBatch(src, targets, out);
    benchmark::DoNotOptimize(out.data());
    benchmark::ClobberMemory();
  }
  bench.SetItemsProcessed(
      static_cast<std::int64_t>(bench.iterations()) * kBlock);
  bench.SetLabel(detail::AltBatchKernelName());
}
BENCHMARK(BM_AltLowerBoundBatch);

void BM_DistanceDijkstra(benchmark::State& bench) {
  MicroState& s = State();
  DijkstraWorkspace workspace(s.dataset.graph.NumVertices());
  for (auto _ : bench) {
    benchmark::DoNotOptimize(
        workspace.PointToPoint(s.dataset.graph, s.RandomVertex(),
                               s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceDijkstra);

void BM_DistanceCh(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.ch.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceCh);

void BM_DistanceHubLabels(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.hl.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceHubLabels);

void BM_DistanceGtree(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(
        s.gtree.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceGtree);

void BM_InvertedHeapCreate(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex());
    benchmark::DoNotOptimize(heap.MinKey());
  }
}
BENCHMARK(BM_InvertedHeapCreate);

void BM_InvertedHeapDrainTen(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex());
    for (int i = 0; i < 10 && !heap.Empty(); ++i) {
      benchmark::DoNotOptimize(heap.ExtractMin());
    }
  }
}
BENCHMARK(BM_InvertedHeapDrainTen);

// The production path: engines lend pooled scratch, so steady-state heap
// creation performs no allocations. The unpooled variants above price the
// convenience path (fresh scratch per heap).
void BM_InvertedHeapCreatePooled(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  InvertedHeap::Scratch scratch;
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex(), &scratch);
    benchmark::DoNotOptimize(heap.MinKey());
  }
}
BENCHMARK(BM_InvertedHeapCreatePooled);

void BM_InvertedHeapDrainTenPooled(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  InvertedHeap::Scratch scratch;
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex(), &scratch);
    for (int i = 0; i < 10 && !heap.Empty(); ++i) {
      benchmark::DoNotOptimize(heap.ExtractMin());
    }
  }
}
BENCHMARK(BM_InvertedHeapDrainTenPooled);

void BM_NvdBuild(benchmark::State& bench) {
  MicroState& s = State();
  std::vector<VertexId> sites;
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(s.dataset.graph.NumVertices()), 64);
  sites.assign(sample.begin(), sample.end());
  for (auto _ : bench) {
    benchmark::DoNotOptimize(BuildNvd(s.dataset.graph, sites));
  }
}
BENCHMARK(BM_NvdBuild);

void BM_TopKQuery(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.TopK(q.vertex, 10, q.keywords));
  }
}
BENCHMARK(BM_TopKQuery);

void BM_BknnDisjunctive(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.BooleanKnn(
        q.vertex, 10, q.keywords, BooleanOp::kDisjunctive));
  }
}
BENCHMARK(BM_BknnDisjunctive);

// Instrumented twins of the two query benchmarks: identical work plus a
// live QueryStats accumulator. Comparing against the plain variants
// bounds the observability overhead (acceptance: <= 5% with tracing off).
void BM_TopKQueryInstrumented(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  QueryStats stats;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        s.processor.TopK(q.vertex, 10, q.keywords, &stats));
  }
  benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_TopKQueryInstrumented);

void BM_BknnDisjunctiveInstrumented(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  QueryStats stats;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.BooleanKnn(
        q.vertex, 10, q.keywords, BooleanOp::kDisjunctive, &stats));
  }
  benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_BknnDisjunctiveInstrumented);

// ----- --json lower-bound throughput probe ---------------------------------

/// Runs `pass` (evaluating `evals_per_pass` lower bounds) repeatedly for
/// ~0.5 s of wall clock and returns evaluations per second.
template <typename Pass>
double MeasureEvalsPerSec(std::size_t evals_per_pass, Pass&& pass) {
  using Clock = std::chrono::steady_clock;
  pass();  // Warm caches and fault in the matrix.
  std::uint64_t evals = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    pass();
    evals += evals_per_pass;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.5);
  return static_cast<double>(evals) / elapsed;
}

int RunJsonLbProbe(const std::string& path) {
  Dataset dataset = Dataset::Load("ME");
  AltIndex alt{dataset.graph, 16};
  Rng rng{1234};
  const auto random_vertex = [&] {
    return static_cast<VertexId>(
        rng.UniformInt(0, dataset.graph.NumVertices() - 1));
  };

  // One source pricing a block of random targets: the inverted-heap access
  // pattern FlushPending produces. Scalar and batch run the same workload.
  constexpr std::size_t kBlock = 256;
  std::vector<VertexId> targets(kBlock);
  for (VertexId& t : targets) t = random_vertex();
  std::vector<Distance> out(kBlock);
  const VertexId src = random_vertex();
  Distance sink = 0;  // Defeats dead-code elimination.

  const double scalar = MeasureEvalsPerSec(kBlock, [&] {
    for (std::size_t i = 0; i < kBlock; ++i) {
      sink ^= alt.LowerBound(src, targets[i]);
    }
  });
  const double batch = MeasureEvalsPerSec(kBlock, [&] {
    alt.LowerBoundBatch(src, targets, out);
    sink ^= out[0];
  });
  // The seed benchmark's access pattern (one pinned pair, cache hot) for
  // cross-version comparisons against historical BM_AltLowerBound ns/op.
  const VertexId pin_a = random_vertex(), pin_b = random_vertex();
  const double pinned = MeasureEvalsPerSec(1024, [&] {
    for (int i = 0; i < 1024; ++i) sink ^= alt.LowerBound(pin_a, pin_b);
  });

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"dataset\": \"ME\",\n"
               "  \"landmarks\": %zu,\n"
               "  \"row_stride\": %zu,\n"
               "  \"kernel\": \"%s\",\n"
               "  \"block_size\": %zu,\n"
               "  \"scalar_evals_per_sec\": %.0f,\n"
               "  \"batch_evals_per_sec\": %.0f,\n"
               "  \"pinned_pair_evals_per_sec\": %.0f,\n"
               "  \"batch_speedup\": %.3f,\n"
               "  \"checksum\": %llu\n"
               "}\n",
               alt.Landmarks().size(), alt.RowStride(),
               detail::AltBatchKernelName(), kBlock, scalar, batch, pinned,
               batch / scalar, static_cast<unsigned long long>(sink));
  std::fclose(f);
  std::printf("kernel=%s scalar=%.0f batch=%.0f speedup=%.2fx\n",
              detail::AltBatchKernelName(), scalar, batch, batch / scalar);
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      return kspin::bench::RunJsonLbProbe(std::string(arg.substr(7)));
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
