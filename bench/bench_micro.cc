// Micro-benchmarks (google-benchmark) of the primitive operations every
// K-SPIN query is composed of: ALT lower bounds, point-to-point distance
// queries per technique, inverted-heap creation/extraction, quadtree point
// location, and NVD construction. Complements the per-figure harnesses.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "common/random.h"
#include "kspin/inverted_heap.h"
#include "nvd/nvd.h"

namespace kspin::bench {
namespace {

// Shared state, built once (google-benchmark may re-enter the function).
struct MicroState {
  Dataset dataset = Dataset::Load("ME");
  ContractionHierarchy ch{dataset.graph};
  HubLabeling hl{dataset.graph, ch};
  GTree gtree{dataset.graph, [] {
                GTreeOptions o;
                o.leaf_size = 64;
                return o;
              }()};
  AltIndex alt{dataset.graph, 16};
  KeywordIndex keywords{dataset.graph, dataset.store, *dataset.inverted,
                        [] {
                          KeywordIndexOptions o;
                          o.nvd.rho = 5;
                          return o;
                        }()};
  ChOracle ch_oracle{ch};
  QueryProcessor processor{dataset.store,    *dataset.inverted,
                           *dataset.relevance, keywords,
                           alt,              ch_oracle};
  Rng rng{1234};

  VertexId RandomVertex() {
    return static_cast<VertexId>(
        rng.UniformInt(0, dataset.graph.NumVertices() - 1));
  }
  KeywordId FrequentKeyword() {
    for (KeywordId t = 0; t < dataset.inverted->NumKeywords(); ++t) {
      if (dataset.inverted->ListSize(t) >= 30) return t;
    }
    return 0;
  }
};

MicroState& State() {
  static MicroState* state = new MicroState();
  return *state;
}

void BM_AltLowerBound(benchmark::State& bench) {
  MicroState& s = State();
  VertexId a = s.RandomVertex(), b = s.RandomVertex();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.alt.LowerBound(a, b));
  }
}
BENCHMARK(BM_AltLowerBound);

void BM_DistanceDijkstra(benchmark::State& bench) {
  MicroState& s = State();
  DijkstraWorkspace workspace(s.dataset.graph.NumVertices());
  for (auto _ : bench) {
    benchmark::DoNotOptimize(
        workspace.PointToPoint(s.dataset.graph, s.RandomVertex(),
                               s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceDijkstra);

void BM_DistanceCh(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.ch.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceCh);

void BM_DistanceHubLabels(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(s.hl.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceHubLabels);

void BM_DistanceGtree(benchmark::State& bench) {
  MicroState& s = State();
  for (auto _ : bench) {
    benchmark::DoNotOptimize(
        s.gtree.Query(s.RandomVertex(), s.RandomVertex()));
  }
}
BENCHMARK(BM_DistanceGtree);

void BM_InvertedHeapCreate(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex());
    benchmark::DoNotOptimize(heap.MinKey());
  }
}
BENCHMARK(BM_InvertedHeapCreate);

void BM_InvertedHeapDrainTen(benchmark::State& bench) {
  MicroState& s = State();
  HeapGenerator generator(s.keywords, s.alt);
  const KeywordId t = s.FrequentKeyword();
  for (auto _ : bench) {
    InvertedHeap heap = generator.Make(t, s.RandomVertex());
    for (int i = 0; i < 10 && !heap.Empty(); ++i) {
      benchmark::DoNotOptimize(heap.ExtractMin());
    }
  }
}
BENCHMARK(BM_InvertedHeapDrainTen);

void BM_NvdBuild(benchmark::State& bench) {
  MicroState& s = State();
  std::vector<VertexId> sites;
  Rng rng(5);
  auto sample = rng.SampleWithoutReplacement(
      static_cast<std::uint32_t>(s.dataset.graph.NumVertices()), 64);
  sites.assign(sample.begin(), sample.end());
  for (auto _ : bench) {
    benchmark::DoNotOptimize(BuildNvd(s.dataset.graph, sites));
  }
}
BENCHMARK(BM_NvdBuild);

void BM_TopKQuery(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.TopK(q.vertex, 10, q.keywords));
  }
}
BENCHMARK(BM_TopKQuery);

void BM_BknnDisjunctive(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.BooleanKnn(
        q.vertex, 10, q.keywords, BooleanOp::kDisjunctive));
  }
}
BENCHMARK(BM_BknnDisjunctive);

// Instrumented twins of the two query benchmarks: identical work plus a
// live QueryStats accumulator. Comparing against the plain variants
// bounds the observability overhead (acceptance: <= 5% with tracing off).
void BM_TopKQueryInstrumented(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  QueryStats stats;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        s.processor.TopK(q.vertex, 10, q.keywords, &stats));
  }
  benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_TopKQueryInstrumented);

void BM_BknnDisjunctiveInstrumented(benchmark::State& bench) {
  MicroState& s = State();
  QueryWorkload workload = MakeWorkload(s.dataset, /*quick=*/true);
  const auto queries = workload.QueriesForLength(2);
  std::size_t i = 0;
  QueryStats stats;
  for (auto _ : bench) {
    const auto& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(s.processor.BooleanKnn(
        q.vertex, 10, q.keywords, BooleanOp::kDisjunctive, &stats));
  }
  benchmark::DoNotOptimize(stats);
}
BENCHMARK(BM_BknnDisjunctiveInstrumented);

}  // namespace
}  // namespace kspin::bench

BENCHMARK_MAIN();
