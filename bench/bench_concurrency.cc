// Concurrent serving throughput: QPS versus number of worker threads for
// KS-CH and KS-HL (k=10, 2 query keywords), batch execution through
// ParallelQueryExecutor. The speedup8 column is QPS at 8 threads over QPS
// at 1 thread; expect near-linear scaling up to the physical core count
// (on a single-core host every column collapses to ~1x).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/timer.h"
#include "service/parallel_executor.h"

namespace kspin::bench {
namespace {

constexpr std::uint32_t kK = 10;
constexpr std::uint32_t kTerms = 2;
const unsigned kThreadCounts[] = {1, 2, 4, 8};

std::vector<ParallelQueryExecutor::TopKQuery> TopKBatch(
    const std::vector<SpatialKeywordQuery>& queries) {
  std::vector<ParallelQueryExecutor::TopKQuery> batch(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch[i].vertex = queries[i].vertex;
    batch[i].k = kK;
    batch[i].keywords = queries[i].keywords;
  }
  return batch;
}

std::vector<ParallelQueryExecutor::BooleanKnnQuery> BknnBatch(
    const std::vector<SpatialKeywordQuery>& queries) {
  std::vector<ParallelQueryExecutor::BooleanKnnQuery> batch(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch[i].vertex = queries[i].vertex;
    batch[i].k = kK;
    batch[i].keywords = queries[i].keywords;
    batch[i].op = BooleanOp::kDisjunctive;
  }
  return batch;
}

// Repeats the batch until the budget is exhausted and returns total QPS.
template <typename RunBatchFn>
double MeasureBatchQps(std::size_t batch_size, double budget_seconds,
                       const RunBatchFn& run_batch) {
  Timer timer;
  std::size_t completed = 0;
  do {
    run_batch();
    completed += batch_size;
  } while (timer.ElapsedSeconds() < budget_seconds);
  return static_cast<double>(completed) / timer.ElapsedSeconds();
}

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "DE" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  EngineSet engines(dataset, selection);

  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(kTerms).begin(),
      workload.QueriesForLength(kTerms).end());
  const double budget = args.quick ? 0.5 : 2.0;

  const auto topk_batch = TopKBatch(queries);
  const auto bknn_batch = BknnBatch(queries);

  std::vector<std::string> columns;
  for (unsigned t : kThreadCounts) {
    columns.push_back("t" + std::to_string(t) + "_qps");
  }
  columns.push_back("speedup8");
  PrintHeader("Concurrency: batch QPS vs worker threads (k=10, 2 terms)",
              dataset, columns);

  struct Engine {
    const char* name;
    std::function<std::unique_ptr<QueryProcessor>()> factory;
  };
  const Engine engine_rows[] = {
      {"KS-CH", engines.KsChProcessorFactory()},
      {"KS-HL", engines.KsHlProcessorFactory()},
  };

  for (const Engine& engine : engine_rows) {
    std::vector<double> topk_cells, bknn_cells;
    for (unsigned threads : kThreadCounts) {
      ParallelQueryExecutor executor(engine.factory, threads);
      topk_cells.push_back(MeasureBatchQps(
          topk_batch.size(), budget, [&] { executor.TopKBatch(topk_batch); }));
      bknn_cells.push_back(
          MeasureBatchQps(bknn_batch.size(), budget,
                          [&] { executor.BooleanKnnBatch(bknn_batch); }));
    }
    topk_cells.push_back(topk_cells.back() / topk_cells.front());
    bknn_cells.push_back(bknn_cells.back() / bknn_cells.front());
    PrintRow(std::string(engine.name) + " topk", topk_cells);
    PrintRow(std::string(engine.name) + " bknn", bknn_cells);
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
