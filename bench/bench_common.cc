#include "bench_common.h"

#include <cstdio>
#include <cstring>

#include "common/timer.h"

namespace kspin::bench {

BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--dataset=", 0) == 0) {
      args.dataset = arg.substr(std::strlen("--dataset="));
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--full") {
      args.full = true;
    } else if (arg == "--help") {
      std::printf("usage: %s [--dataset=DE|ME|FL|E|US] [--quick] [--full]\n",
                  argv[0]);
      std::exit(0);
    }
  }
  return args;
}

Dataset Dataset::Load(const std::string& name) {
  Dataset dataset;
  dataset.spec = DatasetSpecByName(name);
  RoadNetworkOptions road;
  road.grid_width = dataset.spec.grid_width;
  road.grid_height = dataset.spec.grid_height;
  road.seed = dataset.spec.seed;
  dataset.graph = GenerateRoadNetwork(road);
  KeywordDatasetOptions keywords;
  keywords.num_keywords = dataset.spec.num_keywords;
  keywords.object_fraction = dataset.spec.object_fraction;
  keywords.seed = dataset.spec.seed + 1000;
  dataset.store = GenerateKeywordDataset(dataset.graph, keywords);
  dataset.inverted = std::make_unique<InvertedIndex>(
      dataset.store, dataset.spec.num_keywords);
  dataset.relevance =
      std::make_unique<RelevanceModel>(dataset.store, *dataset.inverted);
  return dataset;
}

EngineSet::EngineSet(Dataset& dataset, const EngineSelection& selection)
    : dataset_(dataset) {
  const bool need_ch = selection.ks_ch || selection.ks_hl ||
                       selection.fs_fbs;
  const bool need_gtree = selection.ks_gt || selection.gtree_sk ||
                          selection.gtree_opt || selection.road;
  Timer timer;
  if (need_ch) {
    timer.Restart();
    ch_ = std::make_unique<ContractionHierarchy>(dataset.graph);
    ch_build_seconds_ = timer.ElapsedSeconds();
  }
  if (selection.ks_hl || selection.fs_fbs) {
    timer.Restart();
    hl_ = std::make_unique<HubLabeling>(dataset.graph, *ch_);
    hl_build_seconds_ = timer.ElapsedSeconds();
  }
  if (need_gtree) {
    timer.Restart();
    GTreeOptions options;
    options.leaf_size = 64;
    gtree_ = std::make_unique<GTree>(dataset.graph, options);
    gtree_build_seconds_ = timer.ElapsedSeconds();
  }

  const bool need_kspin =
      selection.ks_ch || selection.ks_hl || selection.ks_gt;
  if (need_kspin) {
    timer.Restart();
    alt_ = std::make_unique<AltIndex>(dataset.graph, 16);
    KeywordIndexOptions ki;
    ki.nvd.rho = selection.rho;
    keyword_index_ = std::make_unique<KeywordIndex>(
        dataset.graph, dataset.store, *dataset.inverted, ki);
    kspin_build_seconds_ = timer.ElapsedSeconds();
  }
  auto make_processor = [this, &dataset](DistanceOracle& oracle) {
    return std::make_unique<QueryProcessor>(
        dataset.store, *dataset.inverted, *dataset.relevance,
        *keyword_index_, *alt_, oracle);
  };
  if (selection.ks_ch) {
    ch_oracle_ = std::make_unique<ChOracle>(*ch_);
    ks_ch_ = make_processor(*ch_oracle_);
  }
  if (selection.ks_hl) {
    hl_oracle_ = std::make_unique<HubLabelOracle>(*hl_);
    ks_hl_ = make_processor(*hl_oracle_);
  }
  if (selection.ks_gt) {
    gtree_oracle_ = std::make_unique<GTreeOracle>(*gtree_);
    ks_gt_ = make_processor(*gtree_oracle_);
  }
  if (selection.gtree_sk) {
    gtree_sk_ = std::make_unique<GTreeSpatialKeyword>(
        dataset.graph, *gtree_, dataset.store, *dataset.inverted,
        *dataset.relevance, /*use_per_keyword_occurrence=*/false);
  }
  if (selection.gtree_opt) {
    gtree_opt_ = std::make_unique<GTreeSpatialKeyword>(
        dataset.graph, *gtree_, dataset.store, *dataset.inverted,
        *dataset.relevance, /*use_per_keyword_occurrence=*/true);
  }
  if (selection.road) {
    // ROAD shares the keyword aggregates with the G-tree baseline.
    if (gtree_sk_ == nullptr) {
      gtree_sk_ = std::make_unique<GTreeSpatialKeyword>(
          dataset.graph, *gtree_, dataset.store, *dataset.inverted,
          *dataset.relevance, false);
    }
    road_ = std::make_unique<RoadBaseline>(dataset.graph, *gtree_,
                                           dataset.store, *dataset.relevance,
                                           gtree_sk_->Aggregates());
  }
  if (selection.fs_fbs) {
    timer.Restart();
    FsFbsOptions options;
    options.max_backward_entries = selection.fs_fbs_budget;
    try {
      fs_fbs_ = std::make_unique<FsFbs>(dataset.graph, *hl_, dataset.store,
                                        *dataset.inverted, options);
    } catch (const std::runtime_error& e) {
      fs_fbs_failure_ = e.what();
    }
    fs_fbs_build_seconds_ = timer.ElapsedSeconds();
  }
  if (selection.expansion) {
    expansion_ = std::make_unique<NetworkExpansionBaseline>(
        dataset.graph, dataset.store, *dataset.inverted, *dataset.relevance);
  }
}

std::size_t EngineSet::ChMemory() const {
  return ch_ ? ch_->MemoryBytes() : 0;
}
std::size_t EngineSet::HlMemory() const {
  return hl_ ? hl_->MemoryBytes() : 0;
}
std::size_t EngineSet::GtreeMemory() const {
  return gtree_ ? gtree_->MemoryBytes() : 0;
}
std::size_t EngineSet::FsFbsMemory() const {
  return fs_fbs_ ? fs_fbs_->MemoryBytes() : 0;
}
std::size_t EngineSet::KspinMemory() const {
  std::size_t total = 0;
  if (keyword_index_ != nullptr) total += keyword_index_->MemoryBytes();
  if (alt_ != nullptr) total += alt_->MemoryBytes();
  if (dataset_.inverted != nullptr) total += dataset_.inverted->MemoryBytes();
  return total;
}

std::function<std::unique_ptr<QueryProcessor>()>
EngineSet::KsChProcessorFactory() {
  return [this] {
    return std::make_unique<QueryProcessor>(
        dataset_.store, *dataset_.inverted, *dataset_.relevance,
        *keyword_index_, *alt_, *ch_oracle_);
  };
}

std::function<std::unique_ptr<QueryProcessor>()>
EngineSet::KsHlProcessorFactory() {
  return [this] {
    return std::make_unique<QueryProcessor>(
        dataset_.store, *dataset_.inverted, *dataset_.relevance,
        *keyword_index_, *alt_, *hl_oracle_);
  };
}

Measurement MeasureQueries(
    const std::vector<SpatialKeywordQuery>& queries,
    std::size_t max_queries, double budget_seconds,
    const std::function<void(const SpatialKeywordQuery&)>& query) {
  Measurement m;
  if (queries.empty()) return m;
  Timer timer;
  std::size_t i = 0;
  const std::size_t min_queries = std::min<std::size_t>(8, queries.size());
  while (m.queries < max_queries) {
    query(queries[i]);
    ++m.queries;
    i = (i + 1) % queries.size();
    if (m.queries >= min_queries && timer.ElapsedSeconds() > budget_seconds) {
      break;
    }
  }
  const double total = timer.ElapsedSeconds();
  m.avg_ms = total * 1e3 / static_cast<double>(m.queries);
  m.qps = m.avg_ms > 0 ? 1000.0 / m.avg_ms : 0.0;
  return m;
}

QueryWorkload MakeWorkload(const Dataset& dataset, bool quick) {
  WorkloadOptions options;
  options.num_seed_terms = 5;
  options.objects_per_term = quick ? 2 : 6;
  options.vertices_per_vector = quick ? 3 : 10;
  return QueryWorkload(dataset.graph, dataset.store, *dataset.inverted,
                       options);
}

void PrintHeader(const std::string& figure, const Dataset& dataset,
                 const std::vector<std::string>& columns) {
  std::printf("\n=== %s | dataset=%s |V|=%zu |E|=%zu |O|=%zu |W|=%u ===\n",
              figure.c_str(), dataset.spec.name.c_str(),
              dataset.graph.NumVertices(), dataset.graph.NumEdges(),
              dataset.store.NumLiveObjects(), dataset.spec.num_keywords);
  std::printf("%-24s", "config");
  for (const std::string& column : columns) {
    std::printf("\t%s", column.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::string& label, const std::vector<double>& cells) {
  std::printf("%-24s", label.c_str());
  for (double cell : cells) {
    if (cell == static_cast<std::int64_t>(cell) && std::abs(cell) < 1e15) {
      std::printf("\t%lld", static_cast<long long>(cell));
    } else {
      std::printf("\t%.3f", cell);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

double ToMb(std::size_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

void RunParameterSweep(const std::string& figure, const Dataset& dataset,
                       QueryWorkload& workload,
                       const std::vector<NamedMethod>& methods,
                       bool quick) {
  const std::size_t max_queries = quick ? 30 : 200;
  const double budget = quick ? 0.6 : 2.0;

  // (a) varying k, 2 query keywords.
  {
    std::vector<std::string> columns;
    for (std::uint32_t k : {1u, 5u, 10u, 25u, 50u}) {
      columns.push_back("k" + std::to_string(k) + "_ms");
    }
    PrintHeader(figure + "a: query time vs k (2 terms)", dataset, columns);
    std::vector<SpatialKeywordQuery> queries(
        workload.QueriesForLength(2).begin(),
        workload.QueriesForLength(2).end());
    for (const NamedMethod& method : methods) {
      std::vector<double> cells;
      for (std::uint32_t k : {1u, 5u, 10u, 25u, 50u}) {
        cells.push_back(MeasureQueries(queries, max_queries, budget,
                                       [&](const SpatialKeywordQuery& q) {
                                         method.run(q.vertex, k, q.keywords,
                                                    nullptr);
                                       })
                            .avg_ms);
      }
      PrintRow(method.name, cells);
    }
  }

  // (b) varying number of query keywords, k = 10.
  {
    std::vector<std::string> columns;
    for (std::uint32_t terms = 1; terms <= 6; ++terms) {
      columns.push_back("t" + std::to_string(terms) + "_ms");
    }
    PrintHeader(figure + "b: query time vs #terms (k=10)", dataset,
                columns);
    for (const NamedMethod& method : methods) {
      std::vector<double> cells;
      for (std::uint32_t terms = 1; terms <= 6; ++terms) {
        std::vector<SpatialKeywordQuery> queries(
            workload.QueriesForLength(terms).begin(),
            workload.QueriesForLength(terms).end());
        cells.push_back(MeasureQueries(queries, max_queries, budget,
                                       [&](const SpatialKeywordQuery& q) {
                                         method.run(q.vertex, 10, q.keywords,
                                                    nullptr);
                                       })
                            .avg_ms);
      }
      PrintRow(method.name, cells);
    }
  }
}

void RunCounterComparison(const std::string& figure, const Dataset& dataset,
                          QueryWorkload& workload,
                          const std::vector<NamedMethod>& methods,
                          bool quick) {
  // A FIXED query set — no time budget — so every method pays for the
  // exact same queries and the counters compare apples to apples.
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());
  if (queries.empty()) return;
  const std::size_t count = std::min<std::size_t>(quick ? 30 : 200,
                                                  queries.size() * 8);
  constexpr std::uint32_t kK = 10;

  std::printf("\n=== %s: engine counters (JSON, %zu identical queries, "
              "k=%u, 2 terms, dataset %s) ===\n",
              figure.c_str(), count, kK, dataset.spec.name.c_str());
  for (const NamedMethod& method : methods) {
    QueryStats stats;
    Timer timer;
    for (std::size_t i = 0; i < count; ++i) {
      const SpatialKeywordQuery& q = queries[i % queries.size()];
      method.run(q.vertex, kK, q.keywords, &stats);
    }
    const double avg_ms = timer.ElapsedSeconds() * 1e3 /
                          static_cast<double>(count);
    std::printf(
        "{\"method\":\"%s\",\"queries\":%zu,\"avg_ms\":%.4f,"
        "\"distance_computations\":%llu,"
        "\"false_positive_distances\":%llu,"
        "\"candidates_extracted\":%llu,\"lower_bounds_computed\":%llu,"
        "\"candidates_pruned_lb\":%llu,\"heaps_created\":%llu,"
        "\"heap_insertions\":%llu,\"results_returned\":%llu,"
        "\"heap_build_ns\":%llu,\"search_ns\":%llu}\n",
        method.name.c_str(), count, avg_ms,
        static_cast<unsigned long long>(stats.network_distance_computations),
        static_cast<unsigned long long>(stats.false_positive_distances),
        static_cast<unsigned long long>(stats.candidates_extracted),
        static_cast<unsigned long long>(stats.lower_bounds_computed),
        static_cast<unsigned long long>(stats.candidates_pruned_lb),
        static_cast<unsigned long long>(stats.heaps_created),
        static_cast<unsigned long long>(stats.heap_insertions),
        static_cast<unsigned long long>(stats.results_returned),
        static_cast<unsigned long long>(stats.heap_build_ns),
        static_cast<unsigned long long>(stats.search_ns));
  }
  std::fflush(stdout);
}

}  // namespace kspin::bench
