// Figure 14: (a) index size and (b) construction time of every technique
// across the dataset ladder. "Input" is the raw graph + keyword dataset.
// K-SPIN's keyword side (APX-NVDs + ALT + inverted lists) is reported
// separately from the pluggable distance modules, as in the paper.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  std::vector<std::string> names = {"DE", "ME", "FL", "E", "US"};
  if (args.quick) names = {"DE", "ME", "FL"};

  std::printf("=== Figure 14a: index size (MB) ===\n");
  std::printf("%-8s\t%10s\t%10s\t%10s\t%10s\t%10s\t%10s\n", "region",
              "input", "kspin", "ch", "hl", "gtree", "fsfbs");
  std::vector<std::string> time_rows;
  for (const std::string& name : names) {
    Dataset dataset = Dataset::Load(name);
    EngineSelection selection;
    selection.ks_ch = selection.ks_hl = true;
    selection.gtree_sk = true;
    selection.fs_fbs = true;
    EngineSet engines(dataset, selection);
    const double input_mb =
        ToMb(dataset.graph.MemoryBytes() + dataset.inverted->MemoryBytes());
    std::printf("%-8s\t%10.2f\t%10.2f\t%10.2f\t%10.2f\t%10.2f\t", name.c_str(),
                input_mb, ToMb(engines.KspinMemory()),
                ToMb(engines.ChMemory()), ToMb(engines.HlMemory()),
                ToMb(engines.GtreeMemory()));
    if (engines.FsFbsEngine() != nullptr) {
      std::printf("%10.2f\n",
                  ToMb(engines.HlMemory() + engines.FsFbsMemory()));
    } else {
      std::printf("%10s\n", "too-large");
    }
    std::fflush(stdout);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%-8s\t%10.2f\t%10.2f\t%10.2f\t%10.2f", name.c_str(),
                  engines.KspinBuildSeconds(), engines.ChBuildSeconds(),
                  engines.HlBuildSeconds(), engines.GtreeBuildSeconds());
    time_rows.push_back(row);
  }
  std::printf("\n=== Figure 14b: construction time (s) ===\n");
  std::printf("%-8s\t%10s\t%10s\t%10s\t%10s\n", "region", "kspin", "ch",
              "hl", "gtree");
  for (const std::string& row : time_rows) {
    std::printf("%s\n", row.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
