// Figure 14: (a) index size and (b) construction time of every technique
// across the dataset ladder. "Input" is the raw graph + keyword dataset.
// K-SPIN's keyword side (APX-NVDs + ALT + inverted lists) is reported
// separately from the pluggable distance modules, as in the paper.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  std::vector<std::string> names = {"DE", "ME", "FL", "E", "US"};
  if (args.quick) names = {"DE", "ME", "FL"};

  std::printf("=== Figure 14a: index size (MB) ===\n");
  std::printf("%-8s\t%10s\t%10s\t%10s\t%10s\t%10s\t%10s\n", "region",
              "input", "kspin", "ch", "hl", "gtree", "fsfbs");
  std::vector<std::string> time_rows;
  std::vector<std::string> json_rows;
  for (const std::string& name : names) {
    Dataset dataset = Dataset::Load(name);
    EngineSelection selection;
    selection.ks_ch = selection.ks_hl = true;
    selection.gtree_sk = true;
    selection.fs_fbs = true;
    EngineSet engines(dataset, selection);
    const double input_mb =
        ToMb(dataset.graph.MemoryBytes() + dataset.inverted->MemoryBytes());
    std::printf("%-8s\t%10.2f\t%10.2f\t%10.2f\t%10.2f\t%10.2f\t", name.c_str(),
                input_mb, ToMb(engines.KspinMemory()),
                ToMb(engines.ChMemory()), ToMb(engines.HlMemory()),
                ToMb(engines.GtreeMemory()));
    if (engines.FsFbsEngine() != nullptr) {
      std::printf("%10.2f\n",
                  ToMb(engines.HlMemory() + engines.FsFbsMemory()));
    } else {
      std::printf("%10s\n", "too-large");
    }
    std::fflush(stdout);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%-8s\t%10.2f\t%10.2f\t%10.2f\t%10.2f", name.c_str(),
                  engines.KspinBuildSeconds(), engines.ChBuildSeconds(),
                  engines.HlBuildSeconds(), engines.GtreeBuildSeconds());
    time_rows.push_back(row);

    // Machine-readable view: build costs plus engine counters from an
    // identical probe workload (k=10, 2 terms) per method, so the
    // K-SPIN-vs-G-tree false-positive comparison is reproducible straight
    // from this harness's output.
    QueryWorkload workload = MakeWorkload(dataset, /*quick=*/true);
    std::vector<SpatialKeywordQuery> probes(
        workload.QueriesForLength(2).begin(),
        workload.QueriesForLength(2).end());
    const std::size_t probe_count = std::min<std::size_t>(
        probes.size(), args.quick ? 20 : 60);
    struct ProbeMethod {
      const char* key;
      std::function<void(const SpatialKeywordQuery&, QueryStats*)> run;
    };
    const std::vector<ProbeMethod> probe_methods = {
        {"ks_ch",
         [&](const SpatialKeywordQuery& q, QueryStats* s) {
           engines.KsCh()->BooleanKnn(q.vertex, 10, q.keywords,
                                      BooleanOp::kDisjunctive, s);
         }},
        {"gtree",
         [&](const SpatialKeywordQuery& q, QueryStats* s) {
           engines.GtreeSk()->BooleanKnn(q.vertex, 10, q.keywords,
                                         BooleanOp::kDisjunctive, s);
         }},
    };
    std::string counters_json;
    for (const ProbeMethod& pm : probe_methods) {
      QueryStats stats;
      for (std::size_t i = 0; i < probe_count; ++i) {
        pm.run(probes[i], &stats);
      }
      char buf[256];
      std::snprintf(
          buf, sizeof(buf),
          "%s\"%s\":{\"queries\":%zu,\"distance_computations\":%llu,"
          "\"false_positive_distances\":%llu,\"candidates_pruned_lb\":%llu}",
          counters_json.empty() ? "" : ",", pm.key, probe_count,
          static_cast<unsigned long long>(
              stats.network_distance_computations),
          static_cast<unsigned long long>(stats.false_positive_distances),
          static_cast<unsigned long long>(stats.candidates_pruned_lb));
      counters_json += buf;
    }
    char json[768];
    std::snprintf(
        json, sizeof(json),
        "{\"region\":\"%s\",\"input_mb\":%.2f,\"kspin_mb\":%.2f,"
        "\"ch_mb\":%.2f,\"hl_mb\":%.2f,\"gtree_mb\":%.2f,"
        "\"kspin_build_s\":%.2f,\"ch_build_s\":%.2f,\"hl_build_s\":%.2f,"
        "\"gtree_build_s\":%.2f,\"engine_counters\":{%s}}",
        name.c_str(), input_mb, ToMb(engines.KspinMemory()),
        ToMb(engines.ChMemory()), ToMb(engines.HlMemory()),
        ToMb(engines.GtreeMemory()), engines.KspinBuildSeconds(),
        engines.ChBuildSeconds(), engines.HlBuildSeconds(),
        engines.GtreeBuildSeconds(), counters_json.c_str());
    json_rows.push_back(json);
  }
  std::printf("\n=== Figure 14b: construction time (s) ===\n");
  std::printf("%-8s\t%10s\t%10s\t%10s\t%10s\n", "region", "kspin", "ch",
              "hl", "gtree");
  for (const std::string& row : time_rows) {
    std::printf("%s\n", row.c_str());
  }
  std::printf("\n=== Figure 14 (JSON) ===\n");
  for (const std::string& row : json_rows) {
    std::printf("%s\n", row.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
