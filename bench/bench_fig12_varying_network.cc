// Figure 12: query time versus road network size (the five-dataset
// ladder), for (a) top-k and (b) disjunctive BkNN at default parameters
// (k=10, 2 terms). The K-SPIN advantage should grow with network size as
// aggregation hierarchies dilute.
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

constexpr std::uint32_t kK = 10;
constexpr std::uint32_t kTerms = 2;

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  std::vector<std::string> names = {"DE", "ME", "FL", "E", "US"};
  if (args.quick) names = {"DE", "ME", "FL"};

  std::printf(
      "=== Figure 12: query time vs network size (k=%u, %u terms) ===\n",
      kK, kTerms);
  std::printf("%-8s\t%10s", "region", "|V|");
  for (const char* m :
       {"KSCH_topk", "KSHL_topk", "Gtree_topk", "ROAD_topk", "KSCH_bknn",
        "KSHL_bknn", "Gtree_bknn"}) {
    std::printf("\t%s_ms", m);
  }
  std::printf("\n");

  for (const std::string& name : names) {
    Dataset dataset = Dataset::Load(name);
    EngineSelection selection;
    selection.ks_ch = selection.ks_hl = true;
    selection.gtree_sk = selection.road = true;
    EngineSet engines(dataset, selection);
    QueryWorkload workload = MakeWorkload(dataset, /*quick=*/true);
    std::vector<SpatialKeywordQuery> queries(
        workload.QueriesForLength(kTerms).begin(),
        workload.QueriesForLength(kTerms).end());
    const std::size_t max_queries = args.quick ? 30 : 150;
    const double budget = args.quick ? 0.5 : 1.5;
    auto ms = [&](auto&& fn) {
      return MeasureQueries(queries, max_queries, budget,
                            [&](const SpatialKeywordQuery& q) { fn(q); })
          .avg_ms;
    };
    const double ksch_topk = ms([&](const SpatialKeywordQuery& q) {
      engines.KsCh()->TopK(q.vertex, kK, q.keywords);
    });
    const double kshl_topk = ms([&](const SpatialKeywordQuery& q) {
      engines.KsHl()->TopK(q.vertex, kK, q.keywords);
    });
    const double gtree_topk = ms([&](const SpatialKeywordQuery& q) {
      engines.GtreeSk()->TopK(q.vertex, kK, q.keywords);
    });
    const double road_topk = ms([&](const SpatialKeywordQuery& q) {
      engines.Road()->TopK(q.vertex, kK, q.keywords);
    });
    const double ksch_bknn = ms([&](const SpatialKeywordQuery& q) {
      engines.KsCh()->BooleanKnn(q.vertex, kK, q.keywords,
                                 BooleanOp::kDisjunctive);
    });
    const double kshl_bknn = ms([&](const SpatialKeywordQuery& q) {
      engines.KsHl()->BooleanKnn(q.vertex, kK, q.keywords,
                                 BooleanOp::kDisjunctive);
    });
    const double gtree_bknn = ms([&](const SpatialKeywordQuery& q) {
      engines.GtreeSk()->BooleanKnn(q.vertex, kK, q.keywords,
                                    BooleanOp::kDisjunctive);
    });
    std::printf("%-8s\t%10zu\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
                name.c_str(), dataset.graph.NumVertices(), ksch_topk,
                kshl_topk, gtree_topk, road_topk, ksch_bknn, kshl_bknn,
                gtree_bknn);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
