// Ablation: APX-NVD storage backend. Quadtrees guarantee at most rho 1NN
// candidates per point location; R-trees guarantee O(sites) space but may
// return more candidates where MBRs overlap (Section 6.1's trade-off).
// This measures the query-side consequence.
#include <cstdio>

#include "bench_common.h"
#include "common/timer.h"

namespace kspin::bench {
namespace {

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "FL" : args.dataset);

  ContractionHierarchy ch(dataset.graph);
  ChOracle oracle(ch);
  AltIndex alt(dataset.graph, 16);
  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(2).begin(),
      workload.QueriesForLength(2).end());

  PrintHeader("Ablation: quadtree vs R-tree APX-NVD storage", dataset,
              {"index_mb", "build_s", "bknn_ms", "topk_ms",
               "lb_per_query"});
  for (ApxNvdStorage storage :
       {ApxNvdStorage::kQuadtree, ApxNvdStorage::kRTree}) {
    Timer timer;
    KeywordIndexOptions ki;
    ki.nvd.rho = 5;
    ki.nvd.storage = storage;
    KeywordIndex keyword_index(dataset.graph, dataset.store,
                               *dataset.inverted, ki);
    const double build_s = timer.ElapsedSeconds();
    QueryProcessor processor(dataset.store, *dataset.inverted,
                             *dataset.relevance, keyword_index, alt,
                             oracle);
    QueryStats stats;
    const Measurement bknn = MeasureQueries(
        queries, args.quick ? 30 : 150, args.quick ? 0.5 : 1.5,
        [&](const SpatialKeywordQuery& q) {
          processor.BooleanKnn(q.vertex, 10, q.keywords,
                               BooleanOp::kDisjunctive, &stats);
        });
    const Measurement topk = MeasureQueries(
        queries, args.quick ? 30 : 150, args.quick ? 0.5 : 1.5,
        [&](const SpatialKeywordQuery& q) {
          processor.TopK(q.vertex, 10, q.keywords);
        });
    PrintRow(storage == ApxNvdStorage::kQuadtree ? "quadtree" : "rtree",
             {ToMb(keyword_index.MemoryBytes()), build_s, bknn.avg_ms,
              topk.avg_ms,
              static_cast<double>(stats.lower_bounds_computed) /
                  static_cast<double>(bknn.queries)});
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
