// Table 1: index size and query throughput (queries/second) on the largest
// ("US") dataset, default parameters (k=10, 2 query keywords).
//
// Paper rows: K-SPIN+CH, K-SPIN+PHL (here: hub labels), Spatial Keyword
// G-tree, ROAD, FS-FBS (which fails to build within its memory budget on
// the large dataset — the paper's "dataset too large" row).
#include <cstdio>

#include "bench_common.h"

namespace kspin::bench {
namespace {

constexpr std::uint32_t kK = 10;
constexpr std::uint32_t kTerms = 2;

int Run(int argc, char** argv) {
  BenchArgs args = ParseArgs(argc, argv);
  Dataset dataset = Dataset::Load(args.dataset.empty() ? "US" : args.dataset);

  EngineSelection selection;
  selection.ks_ch = selection.ks_hl = true;
  selection.gtree_sk = selection.road = selection.fs_fbs = true;
  EngineSet engines(dataset, selection);

  QueryWorkload workload = MakeWorkload(dataset, args.quick);
  std::vector<SpatialKeywordQuery> queries(
      workload.QueriesForLength(kTerms).begin(),
      workload.QueriesForLength(kTerms).end());
  const std::size_t max_queries = args.quick ? 40 : 400;
  const double budget = args.quick ? 1.0 : 4.0;

  PrintHeader("Table 1: index size and throughput", dataset,
              {"index_mb", "topk_qps", "bknn_qps"});

  auto measure_topk = [&](auto&& fn) {
    return MeasureQueries(queries, max_queries, budget,
                          [&](const SpatialKeywordQuery& q) {
                            fn(q.vertex, kK, q.keywords);
                          })
        .qps;
  };
  auto measure_bknn = [&](auto&& fn) {
    return MeasureQueries(queries, max_queries, budget,
                          [&](const SpatialKeywordQuery& q) {
                            fn(q.vertex, kK, q.keywords);
                          })
        .qps;
  };

  PrintRow("KS-CH (kspin+ch)",
           {ToMb(engines.KspinMemory()) + ToMb(engines.ChMemory()),
            measure_topk([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.KsCh()->TopK(v, k, kw);
            }),
            measure_bknn([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.KsCh()->BooleanKnn(v, k, kw,
                                         BooleanOp::kDisjunctive);
            })});
  PrintRow("KS-HL (kspin+hublabels)",
           {ToMb(engines.KspinMemory()) + ToMb(engines.HlMemory()),
            measure_topk([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.KsHl()->TopK(v, k, kw);
            }),
            measure_bknn([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.KsHl()->BooleanKnn(v, k, kw,
                                         BooleanOp::kDisjunctive);
            })});
  PrintRow("SK G-tree",
           {ToMb(engines.GtreeMemory()) + ToMb(engines.GtreeSk()->MemoryBytes()),
            measure_topk([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.GtreeSk()->TopK(v, k, kw);
            }),
            measure_bknn([&](VertexId v, std::uint32_t k, auto& kw) {
              engines.GtreeSk()->BooleanKnn(v, k, kw,
                                            BooleanOp::kDisjunctive);
            })});
  {
    // Measure first: ROAD's shortcut cache fills lazily, so its memory is
    // only meaningful after queries ran.
    const double road_topk_qps =
        measure_topk([&](VertexId v, std::uint32_t k, auto& kw) {
          engines.Road()->TopK(v, k, kw);
        });
    PrintRow("ROAD",
             {ToMb(engines.GtreeMemory()) +
                  ToMb(engines.Road()->MemoryBytes()),
              road_topk_qps,
              // The paper marks ROAD's BkNN column as unsupported (X):
              // ROAD was designed for top-k; report 0.
              0.0});
  }
  if (engines.FsFbsEngine() != nullptr) {
    PrintRow("FS-FBS",
             {ToMb(engines.HlMemory()) + ToMb(engines.FsFbsMemory()), 0.0,
              measure_bknn([&](VertexId v, std::uint32_t k, auto& kw) {
                engines.FsFbsEngine()->BooleanKnn(
                    v, k, kw, BooleanOp::kDisjunctive);
              })});
  } else {
    std::printf("%-24s\t%s\n", "FS-FBS",
                "index too large to build within memory budget");
  }
  return 0;
}

}  // namespace
}  // namespace kspin::bench

int main(int argc, char** argv) { return kspin::bench::Run(argc, argv); }
