file(REMOVE_RECURSE
  "CMakeFiles/example_live_updates.dir/live_updates.cpp.o"
  "CMakeFiles/example_live_updates.dir/live_updates.cpp.o.d"
  "example_live_updates"
  "example_live_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_live_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
