# Empty dependencies file for example_live_updates.
# This may be replaced when dependencies are built.
