# Empty dependencies file for example_search_service.
# This may be replaced when dependencies are built.
