file(REMOVE_RECURSE
  "CMakeFiles/example_search_service.dir/search_service.cpp.o"
  "CMakeFiles/example_search_service.dir/search_service.cpp.o.d"
  "example_search_service"
  "example_search_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_search_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
