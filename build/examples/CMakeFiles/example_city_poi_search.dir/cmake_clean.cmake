file(REMOVE_RECURSE
  "CMakeFiles/example_city_poi_search.dir/city_poi_search.cpp.o"
  "CMakeFiles/example_city_poi_search.dir/city_poi_search.cpp.o.d"
  "example_city_poi_search"
  "example_city_poi_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_city_poi_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
