# Empty compiler generated dependencies file for example_city_poi_search.
# This may be replaced when dependencies are built.
