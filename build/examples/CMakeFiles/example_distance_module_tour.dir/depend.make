# Empty dependencies file for example_distance_module_tour.
# This may be replaced when dependencies are built.
