file(REMOVE_RECURSE
  "CMakeFiles/example_distance_module_tour.dir/distance_module_tour.cpp.o"
  "CMakeFiles/example_distance_module_tour.dir/distance_module_tour.cpp.o.d"
  "example_distance_module_tour"
  "example_distance_module_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_distance_module_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
