# Empty dependencies file for bench_fig6_apxnvd.
# This may be replaced when dependencies are built.
