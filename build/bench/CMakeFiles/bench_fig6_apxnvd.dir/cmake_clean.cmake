file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_apxnvd.dir/bench_fig6_apxnvd.cc.o"
  "CMakeFiles/bench_fig6_apxnvd.dir/bench_fig6_apxnvd.cc.o.d"
  "bench_fig6_apxnvd"
  "bench_fig6_apxnvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_apxnvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
