# Empty dependencies file for bench_updates_throughput.
# This may be replaced when dependencies are built.
