file(REMOVE_RECURSE
  "CMakeFiles/bench_updates_throughput.dir/bench_updates_throughput.cc.o"
  "CMakeFiles/bench_updates_throughput.dir/bench_updates_throughput.cc.o.d"
  "bench_updates_throughput"
  "bench_updates_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_updates_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
