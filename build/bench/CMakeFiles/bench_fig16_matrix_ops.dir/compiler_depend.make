# Empty compiler generated dependencies file for bench_fig16_matrix_ops.
# This may be replaced when dependencies are built.
