file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bknn_disjunctive.dir/bench_fig10_bknn_disjunctive.cc.o"
  "CMakeFiles/bench_fig10_bknn_disjunctive.dir/bench_fig10_bknn_disjunctive.cc.o.d"
  "bench_fig10_bknn_disjunctive"
  "bench_fig10_bknn_disjunctive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bknn_disjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
