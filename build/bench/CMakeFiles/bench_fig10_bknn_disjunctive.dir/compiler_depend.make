# Empty compiler generated dependencies file for bench_fig10_bknn_disjunctive.
# This may be replaced when dependencies are built.
