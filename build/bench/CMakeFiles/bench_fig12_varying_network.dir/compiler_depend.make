# Empty compiler generated dependencies file for bench_fig12_varying_network.
# This may be replaced when dependencies are built.
