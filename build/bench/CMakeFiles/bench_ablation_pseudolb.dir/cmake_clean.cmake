file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pseudolb.dir/bench_ablation_pseudolb.cc.o"
  "CMakeFiles/bench_ablation_pseudolb.dir/bench_ablation_pseudolb.cc.o.d"
  "bench_ablation_pseudolb"
  "bench_ablation_pseudolb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pseudolb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
