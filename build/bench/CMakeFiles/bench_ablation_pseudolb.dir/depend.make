# Empty dependencies file for bench_ablation_pseudolb.
# This may be replaced when dependencies are built.
