file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_index_costs.dir/bench_fig14_index_costs.cc.o"
  "CMakeFiles/bench_fig14_index_costs.dir/bench_fig14_index_costs.cc.o.d"
  "bench_fig14_index_costs"
  "bench_fig14_index_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_index_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
