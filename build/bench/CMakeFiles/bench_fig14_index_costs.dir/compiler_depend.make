# Empty compiler generated dependencies file for bench_fig14_index_costs.
# This may be replaced when dependencies are built.
