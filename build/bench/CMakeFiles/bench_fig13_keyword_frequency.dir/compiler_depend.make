# Empty compiler generated dependencies file for bench_fig13_keyword_frequency.
# This may be replaced when dependencies are built.
