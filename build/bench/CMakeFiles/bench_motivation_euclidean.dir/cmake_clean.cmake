file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_euclidean.dir/bench_motivation_euclidean.cc.o"
  "CMakeFiles/bench_motivation_euclidean.dir/bench_motivation_euclidean.cc.o.d"
  "bench_motivation_euclidean"
  "bench_motivation_euclidean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_euclidean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
