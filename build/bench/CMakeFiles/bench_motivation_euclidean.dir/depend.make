# Empty dependencies file for bench_motivation_euclidean.
# This may be replaced when dependencies are built.
