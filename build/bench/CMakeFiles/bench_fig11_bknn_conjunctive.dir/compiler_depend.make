# Empty compiler generated dependencies file for bench_fig11_bknn_conjunctive.
# This may be replaced when dependencies are built.
