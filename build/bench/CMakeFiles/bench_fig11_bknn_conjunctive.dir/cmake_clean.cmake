file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bknn_conjunctive.dir/bench_fig11_bknn_conjunctive.cc.o"
  "CMakeFiles/bench_fig11_bknn_conjunctive.dir/bench_fig11_bknn_conjunctive.cc.o.d"
  "bench_fig11_bknn_conjunctive"
  "bench_fig11_bknn_conjunctive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bknn_conjunctive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
