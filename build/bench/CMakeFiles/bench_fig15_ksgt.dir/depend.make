# Empty dependencies file for bench_fig15_ksgt.
# This may be replaced when dependencies are built.
