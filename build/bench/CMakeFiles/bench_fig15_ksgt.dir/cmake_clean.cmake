file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_ksgt.dir/bench_fig15_ksgt.cc.o"
  "CMakeFiles/bench_fig15_ksgt.dir/bench_fig15_ksgt.cc.o.d"
  "bench_fig15_ksgt"
  "bench_fig15_ksgt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_ksgt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
