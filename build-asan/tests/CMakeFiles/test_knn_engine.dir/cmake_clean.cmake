file(REMOVE_RECURSE
  "CMakeFiles/test_knn_engine.dir/test_knn_engine.cc.o"
  "CMakeFiles/test_knn_engine.dir/test_knn_engine.cc.o.d"
  "test_knn_engine"
  "test_knn_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_knn_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
