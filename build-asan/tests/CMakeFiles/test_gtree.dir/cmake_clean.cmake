file(REMOVE_RECURSE
  "CMakeFiles/test_gtree.dir/test_gtree.cc.o"
  "CMakeFiles/test_gtree.dir/test_gtree.cc.o.d"
  "test_gtree"
  "test_gtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
