# Empty dependencies file for test_gtree.
# This may be replaced when dependencies are built.
