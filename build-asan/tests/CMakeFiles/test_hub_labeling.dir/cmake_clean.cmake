file(REMOVE_RECURSE
  "CMakeFiles/test_hub_labeling.dir/test_hub_labeling.cc.o"
  "CMakeFiles/test_hub_labeling.dir/test_hub_labeling.cc.o.d"
  "test_hub_labeling"
  "test_hub_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hub_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
