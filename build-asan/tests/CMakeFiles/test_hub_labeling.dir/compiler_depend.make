# Empty compiler generated dependencies file for test_hub_labeling.
# This may be replaced when dependencies are built.
