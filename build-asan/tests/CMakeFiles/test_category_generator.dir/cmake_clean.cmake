file(REMOVE_RECURSE
  "CMakeFiles/test_category_generator.dir/test_category_generator.cc.o"
  "CMakeFiles/test_category_generator.dir/test_category_generator.cc.o.d"
  "test_category_generator"
  "test_category_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_category_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
