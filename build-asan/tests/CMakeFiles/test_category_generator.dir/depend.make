# Empty dependencies file for test_category_generator.
# This may be replaced when dependencies are built.
