file(REMOVE_RECURSE
  "CMakeFiles/test_inverted_heap.dir/test_inverted_heap.cc.o"
  "CMakeFiles/test_inverted_heap.dir/test_inverted_heap.cc.o.d"
  "test_inverted_heap"
  "test_inverted_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inverted_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
