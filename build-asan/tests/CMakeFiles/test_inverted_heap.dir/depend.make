# Empty dependencies file for test_inverted_heap.
# This may be replaced when dependencies are built.
