# Empty compiler generated dependencies file for test_ir_tree.
# This may be replaced when dependencies are built.
