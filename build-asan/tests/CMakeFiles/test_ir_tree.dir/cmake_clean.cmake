file(REMOVE_RECURSE
  "CMakeFiles/test_ir_tree.dir/test_ir_tree.cc.o"
  "CMakeFiles/test_ir_tree.dir/test_ir_tree.cc.o.d"
  "test_ir_tree"
  "test_ir_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
