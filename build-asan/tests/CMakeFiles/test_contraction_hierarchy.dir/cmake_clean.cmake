file(REMOVE_RECURSE
  "CMakeFiles/test_contraction_hierarchy.dir/test_contraction_hierarchy.cc.o"
  "CMakeFiles/test_contraction_hierarchy.dir/test_contraction_hierarchy.cc.o.d"
  "test_contraction_hierarchy"
  "test_contraction_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contraction_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
