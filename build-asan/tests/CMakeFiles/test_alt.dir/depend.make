# Empty dependencies file for test_alt.
# This may be replaced when dependencies are built.
