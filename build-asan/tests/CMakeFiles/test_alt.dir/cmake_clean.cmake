file(REMOVE_RECURSE
  "CMakeFiles/test_alt.dir/test_alt.cc.o"
  "CMakeFiles/test_alt.dir/test_alt.cc.o.d"
  "test_alt"
  "test_alt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
