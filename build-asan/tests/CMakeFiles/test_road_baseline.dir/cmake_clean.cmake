file(REMOVE_RECURSE
  "CMakeFiles/test_road_baseline.dir/test_road_baseline.cc.o"
  "CMakeFiles/test_road_baseline.dir/test_road_baseline.cc.o.d"
  "test_road_baseline"
  "test_road_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_road_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
