file(REMOVE_RECURSE
  "CMakeFiles/test_kspin.dir/test_kspin.cc.o"
  "CMakeFiles/test_kspin.dir/test_kspin.cc.o.d"
  "test_kspin"
  "test_kspin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kspin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
