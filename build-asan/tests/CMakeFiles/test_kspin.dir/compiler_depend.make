# Empty compiler generated dependencies file for test_kspin.
# This may be replaced when dependencies are built.
