file(REMOVE_RECURSE
  "CMakeFiles/test_apx_nvd.dir/test_apx_nvd.cc.o"
  "CMakeFiles/test_apx_nvd.dir/test_apx_nvd.cc.o.d"
  "test_apx_nvd"
  "test_apx_nvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apx_nvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
