file(REMOVE_RECURSE
  "CMakeFiles/test_query_processor.dir/test_query_processor.cc.o"
  "CMakeFiles/test_query_processor.dir/test_query_processor.cc.o.d"
  "test_query_processor"
  "test_query_processor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_processor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
