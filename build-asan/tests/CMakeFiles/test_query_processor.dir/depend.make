# Empty dependencies file for test_query_processor.
# This may be replaced when dependencies are built.
