file(REMOVE_RECURSE
  "CMakeFiles/test_nvd.dir/test_nvd.cc.o"
  "CMakeFiles/test_nvd.dir/test_nvd.cc.o.d"
  "test_nvd"
  "test_nvd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
