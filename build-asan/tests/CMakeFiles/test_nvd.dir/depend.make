# Empty dependencies file for test_nvd.
# This may be replaced when dependencies are built.
