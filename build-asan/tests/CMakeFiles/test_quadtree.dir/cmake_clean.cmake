file(REMOVE_RECURSE
  "CMakeFiles/test_quadtree.dir/test_quadtree.cc.o"
  "CMakeFiles/test_quadtree.dir/test_quadtree.cc.o.d"
  "test_quadtree"
  "test_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
