# Empty dependencies file for test_quadtree.
# This may be replaced when dependencies are built.
