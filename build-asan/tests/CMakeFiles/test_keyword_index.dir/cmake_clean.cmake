file(REMOVE_RECURSE
  "CMakeFiles/test_keyword_index.dir/test_keyword_index.cc.o"
  "CMakeFiles/test_keyword_index.dir/test_keyword_index.cc.o.d"
  "test_keyword_index"
  "test_keyword_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_keyword_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
