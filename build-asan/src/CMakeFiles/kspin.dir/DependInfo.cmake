
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fs_fbs.cc" "src/CMakeFiles/kspin.dir/baselines/fs_fbs.cc.o" "gcc" "src/CMakeFiles/kspin.dir/baselines/fs_fbs.cc.o.d"
  "/root/repo/src/baselines/gtree_spatial_keyword.cc" "src/CMakeFiles/kspin.dir/baselines/gtree_spatial_keyword.cc.o" "gcc" "src/CMakeFiles/kspin.dir/baselines/gtree_spatial_keyword.cc.o.d"
  "/root/repo/src/baselines/ir_tree.cc" "src/CMakeFiles/kspin.dir/baselines/ir_tree.cc.o" "gcc" "src/CMakeFiles/kspin.dir/baselines/ir_tree.cc.o.d"
  "/root/repo/src/baselines/network_expansion.cc" "src/CMakeFiles/kspin.dir/baselines/network_expansion.cc.o" "gcc" "src/CMakeFiles/kspin.dir/baselines/network_expansion.cc.o.d"
  "/root/repo/src/baselines/road.cc" "src/CMakeFiles/kspin.dir/baselines/road.cc.o" "gcc" "src/CMakeFiles/kspin.dir/baselines/road.cc.o.d"
  "/root/repo/src/common/morton.cc" "src/CMakeFiles/kspin.dir/common/morton.cc.o" "gcc" "src/CMakeFiles/kspin.dir/common/morton.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/kspin.dir/common/random.cc.o" "gcc" "src/CMakeFiles/kspin.dir/common/random.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/CMakeFiles/kspin.dir/common/timer.cc.o" "gcc" "src/CMakeFiles/kspin.dir/common/timer.cc.o.d"
  "/root/repo/src/graph/dimacs_io.cc" "src/CMakeFiles/kspin.dir/graph/dimacs_io.cc.o" "gcc" "src/CMakeFiles/kspin.dir/graph/dimacs_io.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/kspin.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/kspin.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/CMakeFiles/kspin.dir/graph/graph_builder.cc.o" "gcc" "src/CMakeFiles/kspin.dir/graph/graph_builder.cc.o.d"
  "/root/repo/src/graph/road_network_generator.cc" "src/CMakeFiles/kspin.dir/graph/road_network_generator.cc.o" "gcc" "src/CMakeFiles/kspin.dir/graph/road_network_generator.cc.o.d"
  "/root/repo/src/io/serialization.cc" "src/CMakeFiles/kspin.dir/io/serialization.cc.o" "gcc" "src/CMakeFiles/kspin.dir/io/serialization.cc.o.d"
  "/root/repo/src/kspin/inverted_heap.cc" "src/CMakeFiles/kspin.dir/kspin/inverted_heap.cc.o" "gcc" "src/CMakeFiles/kspin.dir/kspin/inverted_heap.cc.o.d"
  "/root/repo/src/kspin/keyword_index.cc" "src/CMakeFiles/kspin.dir/kspin/keyword_index.cc.o" "gcc" "src/CMakeFiles/kspin.dir/kspin/keyword_index.cc.o.d"
  "/root/repo/src/kspin/knn_engine.cc" "src/CMakeFiles/kspin.dir/kspin/knn_engine.cc.o" "gcc" "src/CMakeFiles/kspin.dir/kspin/knn_engine.cc.o.d"
  "/root/repo/src/kspin/kspin.cc" "src/CMakeFiles/kspin.dir/kspin/kspin.cc.o" "gcc" "src/CMakeFiles/kspin.dir/kspin/kspin.cc.o.d"
  "/root/repo/src/kspin/query_processor.cc" "src/CMakeFiles/kspin.dir/kspin/query_processor.cc.o" "gcc" "src/CMakeFiles/kspin.dir/kspin/query_processor.cc.o.d"
  "/root/repo/src/nvd/apx_nvd.cc" "src/CMakeFiles/kspin.dir/nvd/apx_nvd.cc.o" "gcc" "src/CMakeFiles/kspin.dir/nvd/apx_nvd.cc.o.d"
  "/root/repo/src/nvd/nvd.cc" "src/CMakeFiles/kspin.dir/nvd/nvd.cc.o" "gcc" "src/CMakeFiles/kspin.dir/nvd/nvd.cc.o.d"
  "/root/repo/src/nvd/nvd_updates.cc" "src/CMakeFiles/kspin.dir/nvd/nvd_updates.cc.o" "gcc" "src/CMakeFiles/kspin.dir/nvd/nvd_updates.cc.o.d"
  "/root/repo/src/nvd/quadtree.cc" "src/CMakeFiles/kspin.dir/nvd/quadtree.cc.o" "gcc" "src/CMakeFiles/kspin.dir/nvd/quadtree.cc.o.d"
  "/root/repo/src/nvd/rtree.cc" "src/CMakeFiles/kspin.dir/nvd/rtree.cc.o" "gcc" "src/CMakeFiles/kspin.dir/nvd/rtree.cc.o.d"
  "/root/repo/src/routing/alt.cc" "src/CMakeFiles/kspin.dir/routing/alt.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/alt.cc.o.d"
  "/root/repo/src/routing/contraction_hierarchy.cc" "src/CMakeFiles/kspin.dir/routing/contraction_hierarchy.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/contraction_hierarchy.cc.o.d"
  "/root/repo/src/routing/dijkstra.cc" "src/CMakeFiles/kspin.dir/routing/dijkstra.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/dijkstra.cc.o.d"
  "/root/repo/src/routing/gtree.cc" "src/CMakeFiles/kspin.dir/routing/gtree.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/gtree.cc.o.d"
  "/root/repo/src/routing/hub_labeling.cc" "src/CMakeFiles/kspin.dir/routing/hub_labeling.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/hub_labeling.cc.o.d"
  "/root/repo/src/routing/lower_bound.cc" "src/CMakeFiles/kspin.dir/routing/lower_bound.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/lower_bound.cc.o.d"
  "/root/repo/src/routing/partitioner.cc" "src/CMakeFiles/kspin.dir/routing/partitioner.cc.o" "gcc" "src/CMakeFiles/kspin.dir/routing/partitioner.cc.o.d"
  "/root/repo/src/service/parallel_executor.cc" "src/CMakeFiles/kspin.dir/service/parallel_executor.cc.o" "gcc" "src/CMakeFiles/kspin.dir/service/parallel_executor.cc.o.d"
  "/root/repo/src/service/poi_service.cc" "src/CMakeFiles/kspin.dir/service/poi_service.cc.o" "gcc" "src/CMakeFiles/kspin.dir/service/poi_service.cc.o.d"
  "/root/repo/src/service/query_parser.cc" "src/CMakeFiles/kspin.dir/service/query_parser.cc.o" "gcc" "src/CMakeFiles/kspin.dir/service/query_parser.cc.o.d"
  "/root/repo/src/text/category_generator.cc" "src/CMakeFiles/kspin.dir/text/category_generator.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/category_generator.cc.o.d"
  "/root/repo/src/text/document_store.cc" "src/CMakeFiles/kspin.dir/text/document_store.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/document_store.cc.o.d"
  "/root/repo/src/text/inverted_index.cc" "src/CMakeFiles/kspin.dir/text/inverted_index.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/inverted_index.cc.o.d"
  "/root/repo/src/text/query_workload.cc" "src/CMakeFiles/kspin.dir/text/query_workload.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/query_workload.cc.o.d"
  "/root/repo/src/text/relevance.cc" "src/CMakeFiles/kspin.dir/text/relevance.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/relevance.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/kspin.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/text/zipf_generator.cc" "src/CMakeFiles/kspin.dir/text/zipf_generator.cc.o" "gcc" "src/CMakeFiles/kspin.dir/text/zipf_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
