# Empty dependencies file for kspin.
# This may be replaced when dependencies are built.
