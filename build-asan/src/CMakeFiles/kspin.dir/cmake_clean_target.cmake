file(REMOVE_RECURSE
  "libkspin.a"
)
