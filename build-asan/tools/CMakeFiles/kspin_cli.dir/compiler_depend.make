# Empty compiler generated dependencies file for kspin_cli.
# This may be replaced when dependencies are built.
