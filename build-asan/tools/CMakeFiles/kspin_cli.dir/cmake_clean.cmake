file(REMOVE_RECURSE
  "CMakeFiles/kspin_cli.dir/kspin_cli.cc.o"
  "CMakeFiles/kspin_cli.dir/kspin_cli.cc.o.d"
  "kspin_cli"
  "kspin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kspin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
