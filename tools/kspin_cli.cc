// kspin_cli: command-line front end for dataset generation, index
// pre-processing with on-disk persistence, and ad-hoc queries — the
// offline/online split a production deployment would use.
//
//   kspin_cli generate --dataset=FL --dir=/tmp/fl
//       Generates the synthetic road network + keyword dataset and writes
//       graph.bin, docs.bin (binary) plus graph.gr/graph.co (DIMACS).
//   kspin_cli build --dir=/tmp/fl
//       Loads the dataset, builds the Contraction Hierarchy and hub
//       labels, and persists them (ch.bin, hl.bin).
//   kspin_cli stats --dir=/tmp/fl
//       Prints dataset and index statistics.
//   kspin_cli query --dir=/tmp/fl --vertex=123 --k=5 --op=or
//                   --keywords=3,17,42 [--module=ch|hl] [--ranked]
//       Loads everything back and answers a Boolean kNN or ranked top-k
//       query, reporting latency.
//   kspin_cli snapshot --dir=/tmp/fl [--snapshots=/tmp/fl/snapshots]
//       Builds the full serving state from the dataset and writes one
//       crash-safe, checksummed snapshot file (docs/persistence.md).
//   kspin_cli restore --dir=IGNORED --snapshots=/tmp/fl/snapshots
//                     [--vertex=V --k=K --keywords=3,17]
//       Restores the newest valid snapshot (skipping corrupt ones) and
//       optionally answers a query against the restored state.
//   kspin_cli fetch --endpoints=H:P[,H:P...] --snapshots=/tmp/fl/snapshots
//       Pulls the newest valid snapshot from the first reachable server
//       (FETCH_SNAPSHOT, chunked + CRC-checked), validates it end-to-end,
//       and writes it crash-safely into the snapshots directory — offline
//       replica seeding / backup.
//   kspin_cli metrics --endpoints=H:P[,H:P...] [--watch] [--interval-ms=T]
//       Scrapes the Prometheus text exposition (METRICS opcode,
//       docs/observability.md) from the first reachable server. --watch
//       re-scrapes every --interval-ms (default 2000) until interrupted
//       and prints counter/histogram series as DELTAS per interval
//       (gauges stay raw), so rates are readable without a Prometheus
//       server doing the rate() for you.
//   kspin_cli diag --endpoints=H:P[,H:P...]
//       Dumps the server's in-memory flight recorder (DUMP_DIAG opcode):
//       the last few thousand request spans and control-plane events
//       (promotions, fencing, brownout transitions, replication source
//       switches), one JSON line each, oldest first. Served inline by
//       the I/O thread, so it works even on a saturated server.
//   kspin_cli insert --endpoints=H:P[,...] --vertex=V --name=NAME
//                    --tags=thai,takeaway
//   kspin_cli delete --endpoints=H:P[,...] --id=N
//   kspin_cli update --endpoints=H:P[,...] --id=N [--add=a,b] [--remove=c]
//       Durable write-path mutations (v3 opcodes, docs/protocol.md):
//       idempotency-keyed so retries and failover redirects apply at most
//       once; the reply's op-log sequence is printed.
//   kspin_cli health --endpoints=H:P[,H:P...]
//       One row per endpoint: role, primary epoch, applied op-log
//       sequence, snapshot sequence, queue depth — the failover dashboard.
//   kspin_cli promote --endpoints=H:P[,...] [--min-applied=N]
//       Flips the FIRST endpoint to primary (PROMOTE opcode), bumping the
//       primary epoch; refused when its applied sequence is below N.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "graph/dimacs_io.h"
#include "graph/road_network_generator.h"
#include "io/serialization.h"
#include "io/snapshot.h"
#include "kspin/kspin.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "routing/hub_labeling.h"
#include "server/client.h"
#include "server/failover.h"
#include "server/replication.h"
#include "service/poi_service.h"
#include "service/service_snapshot.h"
#include "text/zipf_generator.h"

namespace kspin::cli {
namespace {

struct Args {
  std::string command;
  std::string dir = ".";
  std::string snapshots;  // Defaults to <dir>/snapshots.
  std::string endpoints;  // For `fetch`: comma-separated HOST:PORT list.
  std::string dataset = "FL";
  std::string op = "or";
  std::string module = "ch";
  VertexId vertex = 0;
  std::uint32_t k = 10;
  std::vector<KeywordId> keywords;
  bool ranked = false;
  bool watch = false;               // For `metrics`: keep scraping.
  std::uint32_t interval_ms = 2000; // Delay between --watch scrapes.
  // For `promote`: refuse when the target's applied sequence is lower.
  std::uint64_t min_applied = 0;
  // For `insert` / `delete` / `update` (the online mutation commands).
  ObjectId id = kInvalidObject;
  std::string name;
  std::vector<std::string> tags;     // insert: keyword strings.
  std::vector<std::string> adds;     // update: keywords to add.
  std::vector<std::string> removes;  // update: keywords to remove.
};

/// "a,b,c" -> {"a","b","c"} (empty string -> empty list).
std::vector<std::string> SplitCommaList(const std::string& list) {
  std::vector<std::string> out;
  std::stringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

Args Parse(int argc, char** argv) {
  Args args;
  if (argc < 2) return args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("dir")) args.dir = *v;
    if (auto v = value("snapshots")) args.snapshots = *v;
    if (auto v = value("endpoints")) args.endpoints = *v;
    if (auto v = value("dataset")) args.dataset = *v;
    if (auto v = value("op")) args.op = *v;
    if (auto v = value("module")) args.module = *v;
    if (auto v = value("vertex")) args.vertex = std::stoul(*v);
    if (auto v = value("k")) args.k = std::stoul(*v);
    if (arg == "--ranked") args.ranked = true;
    if (arg == "--watch") args.watch = true;
    if (auto v = value("interval-ms")) args.interval_ms = std::stoul(*v);
    if (auto v = value("min-applied")) args.min_applied = std::stoull(*v);
    if (auto v = value("id")) args.id = std::stoul(*v);
    if (auto v = value("name")) args.name = *v;
    if (auto v = value("tags")) args.tags = SplitCommaList(*v);
    if (auto v = value("add")) args.adds = SplitCommaList(*v);
    if (auto v = value("remove")) args.removes = SplitCommaList(*v);
    if (auto v = value("keywords")) {
      std::stringstream in(*v);
      std::string token;
      while (std::getline(in, token, ',')) {
        args.keywords.push_back(std::stoul(token));
      }
    }
  }
  if (args.snapshots.empty()) args.snapshots = args.dir + "/snapshots";
  return args;
}

template <typename T, typename LoadFn>
T LoadFile(const std::string& path, LoadFn load) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return load(in);
}

template <typename SaveFn>
void SaveFile(const std::string& path, SaveFn save) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  save(out);
}

int Generate(const Args& args) {
  const DatasetSpec spec = DatasetSpecByName(args.dataset);
  RoadNetworkOptions road;
  road.grid_width = spec.grid_width;
  road.grid_height = spec.grid_height;
  road.seed = spec.seed;
  Timer timer;
  const Graph graph = GenerateRoadNetwork(road);
  KeywordDatasetOptions kw;
  kw.num_keywords = spec.num_keywords;
  kw.object_fraction = spec.object_fraction;
  kw.seed = spec.seed + 1000;
  const DocumentStore store = GenerateKeywordDataset(graph, kw);
  std::printf("generated %s: |V|=%zu |E|=%zu |O|=%zu (%.1fs)\n",
              spec.name.c_str(), graph.NumVertices(), graph.NumEdges(),
              store.NumLiveObjects(), timer.ElapsedSeconds());

  SaveFile(args.dir + "/graph.bin",
           [&](std::ostream& out) { SaveGraph(graph, out); });
  SaveFile(args.dir + "/docs.bin",
           [&](std::ostream& out) { SaveDocumentStore(store, out); });
  SaveFile(args.dir + "/graph.gr",
           [&](std::ostream& out) { WriteDimacsGraph(graph, out); });
  SaveFile(args.dir + "/graph.co",
           [&](std::ostream& out) { WriteDimacsCoordinates(graph, out); });
  std::printf("wrote graph.bin, docs.bin, graph.gr, graph.co to %s\n",
              args.dir.c_str());
  return 0;
}

int Build(const Args& args) {
  const Graph graph = LoadFile<Graph>(
      args.dir + "/graph.bin", [](std::istream& in) { return LoadGraph(in); });
  Timer timer;
  const ContractionHierarchy ch(graph);
  std::printf("contraction hierarchy: %.1fs, %zu shortcuts\n",
              timer.ElapsedSeconds(), ch.NumShortcuts());
  timer.Restart();
  const HubLabeling hl(graph, ch);
  std::printf("hub labels: %.1fs, avg label %.1f\n", timer.ElapsedSeconds(),
              hl.AverageLabelSize());
  SaveFile(args.dir + "/ch.bin", [&](std::ostream& out) {
    SaveContractionHierarchy(ch, out);
  });
  SaveFile(args.dir + "/hl.bin",
           [&](std::ostream& out) { SaveHubLabeling(hl, out); });
  std::printf("wrote ch.bin, hl.bin to %s\n", args.dir.c_str());
  return 0;
}

int Stats(const Args& args) {
  const Graph graph = LoadFile<Graph>(
      args.dir + "/graph.bin", [](std::istream& in) { return LoadGraph(in); });
  const DocumentStore store =
      LoadFile<DocumentStore>(args.dir + "/docs.bin", [](std::istream& in) {
        return LoadDocumentStore(in);
      });
  std::printf("graph: |V|=%zu |E|=%zu (%.1f MB)\n", graph.NumVertices(),
              graph.NumEdges(), graph.MemoryBytes() / 1048576.0);
  std::printf("objects: %zu live, %zu keyword slots\n",
              store.NumLiveObjects(), store.TotalKeywordSlots());
  KeywordId max_keyword = 0;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    for (const DocEntry& e : store.Document(o)) {
      max_keyword = std::max(max_keyword, e.keyword);
    }
  }
  InvertedIndex inverted(store, max_keyword + 1);
  std::size_t nonempty = 0, tiny = 0;
  for (KeywordId t = 0; t <= max_keyword; ++t) {
    if (inverted.ListSize(t) > 0) ++nonempty;
    if (inverted.ListSize(t) > 0 && inverted.ListSize(t) <= 5) ++tiny;
  }
  std::printf("keywords: %zu non-empty, %zu (%.0f%%) under the rho=5 "
              "cutoff (Observation 1)\n",
              nonempty, tiny, 100.0 * tiny / std::max<std::size_t>(1,
                                                                   nonempty));
  return 0;
}

int Query(const Args& args) {
  const Graph graph = LoadFile<Graph>(
      args.dir + "/graph.bin", [](std::istream& in) { return LoadGraph(in); });
  DocumentStore store =
      LoadFile<DocumentStore>(args.dir + "/docs.bin", [](std::istream& in) {
        return LoadDocumentStore(in);
      });
  if (args.keywords.empty()) {
    std::fprintf(stderr, "query: --keywords required\n");
    return 1;
  }
  if (args.vertex >= graph.NumVertices()) {
    std::fprintf(stderr, "query: vertex out of range\n");
    return 1;
  }

  // Network Distance Module from disk; K-SPIN side built fresh (it is the
  // cheap part and depends on the live object set).
  const ContractionHierarchy ch = LoadFile<ContractionHierarchy>(
      args.dir + "/ch.bin",
      [](std::istream& in) { return LoadContractionHierarchy(in); });
  std::optional<HubLabeling> hl;
  ChOracle ch_oracle(ch);
  std::optional<HubLabelOracle> hl_oracle;
  DistanceOracle* oracle = &ch_oracle;
  if (args.module == "hl") {
    hl = LoadFile<HubLabeling>(args.dir + "/hl.bin", [](std::istream& in) {
      return LoadHubLabeling(in);
    });
    hl_oracle.emplace(*hl);
    oracle = &*hl_oracle;
  }

  Timer build_timer;
  KSpin engine(graph, std::move(store), *oracle);
  std::printf("k-spin side built in %.2fs (module: %s)\n",
              build_timer.ElapsedSeconds(), oracle->Name().c_str());

  Timer query_timer;
  if (args.ranked) {
    const auto results = engine.TopK(args.vertex, args.k, args.keywords);
    const double ms = query_timer.ElapsedMillis();
    for (const TopKResult& r : results) {
      std::printf("object %u  score %.2f  travel %llu  relevance %.3f\n",
                  r.object, r.score,
                  static_cast<unsigned long long>(r.distance), r.relevance);
    }
    std::printf("top-%u in %.3f ms\n", args.k, ms);
  } else {
    const BooleanOp op = args.op == "and" ? BooleanOp::kConjunctive
                                          : BooleanOp::kDisjunctive;
    const auto results =
        engine.BooleanKnn(args.vertex, args.k, args.keywords, op);
    const double ms = query_timer.ElapsedMillis();
    for (const BkNNResult& r : results) {
      std::printf("object %u  travel %llu\n", r.object,
                  static_cast<unsigned long long>(r.distance));
    }
    std::printf("B%uNN (%s) in %.3f ms\n", args.k, args.op.c_str(), ms);
  }
  return 0;
}

// Builds the serving state from the dataset files and writes one
// crash-safe snapshot (temp file + fsync + atomic rename; see
// docs/persistence.md) into the snapshot directory.
int Snapshot(const Args& args) {
  const Graph graph = LoadFile<Graph>(
      args.dir + "/graph.bin", [](std::istream& in) { return LoadGraph(in); });
  const DocumentStore store =
      LoadFile<DocumentStore>(args.dir + "/docs.bin", [](std::istream& in) {
        return LoadDocumentStore(in);
      });

  std::optional<ContractionHierarchy> ch;
  std::optional<ChOracle> ch_oracle;
  std::optional<DijkstraOracle> dijkstra_oracle;
  DistanceOracle* oracle;
  if (std::filesystem::exists(args.dir + "/ch.bin")) {
    ch = LoadFile<ContractionHierarchy>(
        args.dir + "/ch.bin",
        [](std::istream& in) { return LoadContractionHierarchy(in); });
    ch_oracle.emplace(*ch);
    oracle = &*ch_oracle;
  } else {
    dijkstra_oracle.emplace(graph);
    oracle = &*dijkstra_oracle;
  }

  // Re-express the dataset at the service layer ("poi<slot>" / "kw<id>")
  // so the snapshot carries the full string-level catalogue.
  Timer timer;
  PoiService service(graph, *oracle);
  std::vector<std::string> keywords;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    keywords.clear();
    for (const DocEntry& e : store.Document(o)) {
      keywords.push_back("kw" + std::to_string(e.keyword));
    }
    service.AddPoi("poi" + std::to_string(o), store.ObjectVertex(o),
                   keywords);
  }
  std::printf("service state built in %.1fs (%zu pois, module: %s)\n",
              timer.ElapsedSeconds(), service.NumLivePois(),
              oracle->Name().c_str());

  std::filesystem::create_directories(args.snapshots);
  const auto existing = io::FindSnapshots(args.snapshots);
  const std::uint64_t sequence =
      existing.empty() ? 1 : existing.front().first + 1;
  const std::string path =
      (std::filesystem::path(args.snapshots) / io::SnapshotFileName(sequence))
          .string();
  timer.Restart();
  ServiceSnapshotArtifacts extra;
  if (ch) extra.ch = &*ch;
  WriteServiceSnapshotFile(path, service, extra);
  std::printf("wrote snapshot %llu: %s (%.1f MB, %.2fs)\n",
              static_cast<unsigned long long>(sequence), path.c_str(),
              std::filesystem::file_size(path) / 1048576.0,
              timer.ElapsedSeconds());
  return 0;
}

// Restores the newest valid snapshot and optionally answers a query
// against the restored state — end-to-end proof the file round-trips.
int Restore(const Args& args) {
  std::vector<std::string> skipped;
  Timer timer;
  std::optional<LoadedServiceSnapshot> loaded =
      LoadNewestValidServiceSnapshot(args.snapshots, nullptr, &skipped);
  for (const std::string& reason : skipped) {
    std::fprintf(stderr, "snapshot skipped: %s\n", reason.c_str());
  }
  if (!loaded) {
    std::fprintf(stderr, "restore: no valid snapshot in %s\n",
                 args.snapshots.c_str());
    return 1;
  }
  const Graph& graph = *loaded->state.graph;

  std::unique_ptr<ContractionHierarchy> ch = std::move(loaded->state.ch);
  std::optional<ChOracle> ch_oracle;
  std::optional<DijkstraOracle> dijkstra_oracle;
  DistanceOracle* oracle;
  if (ch != nullptr) {
    ch_oracle.emplace(*ch);
    oracle = &*ch_oracle;
  } else {
    dijkstra_oracle.emplace(graph);
    oracle = &*dijkstra_oracle;
  }

  PoiService service(graph, *oracle,
                     std::move(loaded->state.catalog.vocabulary),
                     std::move(loaded->state.catalog.names),
                     std::move(loaded->state.store),
                     std::move(loaded->state.alt),
                     std::move(loaded->state.keyword_index));
  std::printf(
      "restored snapshot %llu from %s in %.2fs: |V|=%zu |E|=%zu, %zu pois, "
      "module: %s\n",
      static_cast<unsigned long long>(loaded->sequence), loaded->path.c_str(),
      timer.ElapsedSeconds(), graph.NumVertices(), graph.NumEdges(),
      service.NumLivePois(), oracle->Name().c_str());

  if (!args.keywords.empty()) {
    if (args.vertex >= graph.NumVertices()) {
      std::fprintf(stderr, "restore: vertex out of range\n");
      return 1;
    }
    std::string query;
    for (std::size_t i = 0; i < args.keywords.size(); ++i) {
      if (i > 0) query += args.op == "and" ? " and " : " or ";
      query += "kw" + std::to_string(args.keywords[i]);
    }
    Timer query_timer;
    const auto results = service.Search(query, args.vertex, args.k);
    const double ms = query_timer.ElapsedMillis();
    for (const PoiResult& r : results) {
      std::printf("%u\t%s\ttime=%llu\n", r.id, r.name.c_str(),
                  static_cast<unsigned long long>(r.travel_time));
    }
    std::printf("\"%s\" -> %zu results in %.3f ms\n", query.c_str(),
                results.size(), ms);
  }
  return 0;
}

/// "H1:P1,H2:P2" -> endpoints; empty (with stderr diagnostics) on a parse
/// error or an empty list.
std::vector<server::Endpoint> ParseEndpointList(const char* command,
                                                const std::string& list) {
  if (list.empty()) {
    std::fprintf(stderr, "%s: --endpoints=H:P[,H:P...] required\n", command);
    return {};
  }
  std::vector<server::Endpoint> endpoints;
  std::stringstream in(list);
  std::string token;
  while (std::getline(in, token, ',')) {
    const auto endpoint = server::ParseEndpoint(token);
    if (!endpoint) {
      std::fprintf(stderr, "%s: bad endpoint (want HOST:PORT): %s\n",
                   command, token.c_str());
      return {};
    }
    endpoints.push_back(*endpoint);
  }
  return endpoints;
}

// Pulls the newest valid snapshot from the first reachable endpoint into
// the snapshots directory (the offline flavour of replica bootstrap).
int Fetch(const Args& args) {
  const auto endpoints = ParseEndpointList("fetch", args.endpoints);
  if (endpoints.empty()) return 1;

  for (const server::Endpoint& endpoint : endpoints) {
    std::uint64_t sequence = 0;
    std::string bytes;
    std::string error;
    try {
      server::Client client;
      client.Connect(endpoint.host, endpoint.port);
      Timer timer;
      if (!server::FetchSnapshotBytes(client, 0, 256 * 1024, &sequence,
                                      &bytes, &error)) {
        std::fprintf(stderr, "fetch: %s rejected: %s\n",
                     endpoint.ToString().c_str(), error.c_str());
        continue;
      }
      // Full container validation before the file becomes restorable.
      io::SnapshotReader validate(bytes);
      std::filesystem::create_directories(args.snapshots);
      const std::string path = (std::filesystem::path(args.snapshots) /
                                io::SnapshotFileName(sequence))
                                   .string();
      io::WriteFileAtomically(path, [&](std::ostream& out) {
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      });
      std::printf("fetched snapshot %llu from %s: %s (%.1f MB, %.2fs)\n",
                  static_cast<unsigned long long>(sequence),
                  endpoint.ToString().c_str(), path.c_str(),
                  bytes.size() / 1048576.0, timer.ElapsedSeconds());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "fetch: %s failed: %s\n",
                   endpoint.ToString().c_str(), e.what());
    }
  }
  std::fprintf(stderr, "fetch: no endpoint yielded a snapshot\n");
  return 1;
}

// One parsed Prometheus exposition: series in file order plus each
// metric's declared # TYPE, so watch mode can tell counters from gauges.
struct ParsedScrape {
  std::vector<std::pair<std::string, double>> series;  // "name{labels}" -> v
  std::map<std::string, std::string> types;            // metric -> type
};

ParsedScrape ParseExposition(const std::string& text) {
  ParsedScrape scrape;
  std::stringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::stringstream meta(line);
      std::string hash, kind, name, type;
      if (meta >> hash >> kind >> name >> type && kind == "TYPE") {
        scrape.types[name] = type;
      }
      continue;
    }
    // Exemplar lines put "# {trace_id=...} value" after the sample; the
    // sample itself ends before the '#'.
    std::string sample = line;
    if (const std::size_t hash = sample.find(" # "); hash != std::string::npos) {
      sample.resize(hash);
    }
    const std::size_t space = sample.rfind(' ');
    if (space == std::string::npos || space + 1 >= sample.size()) continue;
    try {
      scrape.series.emplace_back(sample.substr(0, space),
                                 std::stod(sample.substr(space + 1)));
    } catch (const std::exception&) {
      // Unparsable value (e.g. NaN spelled oddly): skip the series.
    }
  }
  return scrape;
}

/// The declared type of the metric a series key belongs to. Histogram
/// series are named <metric>_bucket/_sum/_count, so strip labels and
/// those suffixes before the TYPE lookup.
std::string SeriesType(const ParsedScrape& scrape, const std::string& key) {
  std::string name = key.substr(0, key.find('{'));
  auto it = scrape.types.find(name);
  if (it != scrape.types.end()) return it->second;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (name.size() > n && name.compare(name.size() - n, n, suffix) == 0) {
      it = scrape.types.find(name.substr(0, name.size() - n));
      if (it != scrape.types.end()) return it->second;
    }
  }
  return "untyped";
}

// Scrapes the Prometheus text exposition from the first reachable
// endpoint; with --watch, keeps scraping until interrupted, printing
// counter and histogram series as deltas per interval (rates an operator
// can read directly) and gauges raw.
int Metrics(const Args& args) {
  const auto endpoints = ParseEndpointList("metrics", args.endpoints);
  if (endpoints.empty()) return 1;
  std::map<std::string, double> previous;
  bool have_previous = false;
  while (true) {
    bool scraped = false;
    for (const server::Endpoint& endpoint : endpoints) {
      try {
        server::Client client;
        client.Connect(endpoint.host, endpoint.port);
        const auto reply = client.Metrics();
        if (!reply.ok()) {
          std::fprintf(stderr, "metrics: %s rejected: %s\n",
                       endpoint.ToString().c_str(), reply.error.c_str());
          continue;
        }
        if (!args.watch) {
          std::fputs(reply.text.c_str(), stdout);
        } else {
          const ParsedScrape scrape = ParseExposition(reply.text);
          std::printf("# scrape of %s (%s per %ums; gauges raw)\n",
                      endpoint.ToString().c_str(),
                      have_previous ? "counter deltas" : "raw first scrape",
                      args.interval_ms);
          std::map<std::string, double> current;
          for (const auto& [key, value] : scrape.series) {
            current[key] = value;
            const std::string type = SeriesType(scrape, key);
            const bool cumulative =
                type == "counter" || type == "histogram";
            double shown = value;
            if (cumulative && have_previous) {
              const auto prev = previous.find(key);
              // A counter below its previous value means the server
              // restarted; show the raw count rather than a bogus
              // negative delta.
              shown = (prev != previous.end() && value >= prev->second)
                          ? value - prev->second
                          : value;
            }
            // Quiet cumulative series add nothing between scrapes.
            if (cumulative && have_previous && shown == 0) continue;
            std::printf("%s %.17g%s\n", key.c_str(), shown,
                        cumulative && have_previous ? " (delta)" : "");
          }
          previous = std::move(current);
          have_previous = true;
        }
        std::fflush(stdout);
        scraped = true;
        break;
      } catch (const std::exception& e) {
        std::fprintf(stderr, "metrics: %s failed: %s\n",
                     endpoint.ToString().c_str(), e.what());
      }
    }
    if (!args.watch) return scraped ? 0 : 1;
    // Watch mode keeps going through scrape failures (the server may be
    // restarting); each round is separated by a blank line.
    std::printf("\n");
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(args.interval_ms));
  }
}

// Dumps the flight recorder (DUMP_DIAG) of the first reachable endpoint:
// recent request spans and control-plane events as JSON lines, oldest
// first. Answered inline by the server's I/O thread, so this works even
// when the admission queue is rejecting everything else.
int Diag(const Args& args) {
  const auto endpoints = ParseEndpointList("diag", args.endpoints);
  if (endpoints.empty()) return 1;
  for (const server::Endpoint& endpoint : endpoints) {
    try {
      server::Client client;
      client.Connect(endpoint.host, endpoint.port);
      const auto reply = client.DumpDiag();
      if (!reply.ok()) {
        std::fprintf(stderr, "diag: %s rejected: %s\n",
                     endpoint.ToString().c_str(), reply.error.c_str());
        continue;
      }
      std::fputs(reply.text.c_str(), stdout);
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "diag: %s failed: %s\n",
                   endpoint.ToString().c_str(), e.what());
    }
  }
  std::fprintf(stderr, "diag: no endpoint answered\n");
  return 1;
}

// One health row per endpoint: who is primary, at which epoch, and how
// far each has applied — the operator's failover dashboard. Unreachable
// endpoints are reported but do not fail the command (that is the whole
// point of asking during an outage).
int Health(const Args& args) {
  const auto endpoints = ParseEndpointList("health", args.endpoints);
  if (endpoints.empty()) return 1;
  bool any = false;
  std::printf("endpoint\trole\tepoch\tapplied\tsnapshot\tqueue\n");
  for (const server::Endpoint& endpoint : endpoints) {
    try {
      server::Client client;
      client.Connect(endpoint.host, endpoint.port);
      const auto reply = client.Health();
      if (!reply.ok()) {
        std::printf("%s\trejected: %s\n", endpoint.ToString().c_str(),
                    reply.error.c_str());
        continue;
      }
      const auto& h = reply.health;
      std::printf("%s\t%s\t%llu\t%llu\t%llu\t%llu\n",
                  endpoint.ToString().c_str(),
                  h.role == 0 ? "primary" : "replica",
                  static_cast<unsigned long long>(h.primary_epoch),
                  static_cast<unsigned long long>(h.applied_sequence),
                  static_cast<unsigned long long>(h.snapshot_sequence),
                  static_cast<unsigned long long>(h.queue_depth));
      any = true;
    } catch (const std::exception& e) {
      std::printf("%s\tunreachable: %s\n", endpoint.ToString().c_str(),
                  e.what());
    }
  }
  return any ? 0 : 1;
}

// Flips the FIRST endpoint of --endpoints to primary (PROMOTE opcode).
// Deliberately not failover-routed: the operator names the server to
// promote, and that is where the request goes.
int Promote(const Args& args) {
  const auto endpoints = ParseEndpointList("promote", args.endpoints);
  if (endpoints.empty()) return 1;
  try {
    server::Client client;
    client.Connect(endpoints.front().host, endpoints.front().port);
    const auto reply = client.Promote(args.min_applied);
    if (!reply.ok()) {
      std::fprintf(stderr, "promote: rejected: %s\n", reply.error.c_str());
      return 1;
    }
    std::printf("promoted %s: epoch=%llu applied=%llu\n",
                endpoints.front().ToString().c_str(),
                static_cast<unsigned long long>(reply.epoch),
                static_cast<unsigned long long>(reply.applied_sequence));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "promote: failed: %s\n", e.what());
    return 1;
  }
}

// Shared tail of the three mutation commands: route the write through a
// FailoverClient (NOT_PRIMARY redirects + idempotent retries) and print
// the acked object id and op-log sequence.
int Mutate(const char* command, const Args& args,
           const std::function<server::Client::MutateReply(
               server::FailoverClient&)>& op) {
  const auto endpoints = ParseEndpointList(command, args.endpoints);
  if (endpoints.empty()) return 1;
  try {
    server::FailoverClient client(endpoints);
    const auto reply = op(client);
    if (!reply.ok()) {
      std::fprintf(stderr, "%s: rejected: %s\n", command,
                   reply.error.c_str());
      return 1;
    }
    std::printf("%u\tseq=%llu\n", reply.id,
                static_cast<unsigned long long>(reply.sequence));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: failed: %s\n", command, e.what());
    return 1;
  }
}

int Insert(const Args& args) {
  if (args.name.empty()) {
    std::fprintf(stderr, "insert: --name=NAME required\n");
    return 1;
  }
  return Mutate("insert", args, [&](server::FailoverClient& client) {
    return client.InsertDoc(args.vertex, args.name, args.tags);
  });
}

int Delete(const Args& args) {
  if (args.id == kInvalidObject) {
    std::fprintf(stderr, "delete: --id=N required\n");
    return 1;
  }
  return Mutate("delete", args, [&](server::FailoverClient& client) {
    return client.DeleteDoc(args.id);
  });
}

int Update(const Args& args) {
  if (args.id == kInvalidObject) {
    std::fprintf(stderr, "update: --id=N required\n");
    return 1;
  }
  if (args.adds.empty() && args.removes.empty()) {
    std::fprintf(stderr, "update: need --add=... and/or --remove=...\n");
    return 1;
  }
  return Mutate("update", args, [&](server::FailoverClient& client) {
    return client.UpdateDoc(args.id, args.adds, args.removes);
  });
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  try {
    if (args.command == "generate") return Generate(args);
    if (args.command == "build") return Build(args);
    if (args.command == "stats") return Stats(args);
    if (args.command == "query") return Query(args);
    if (args.command == "snapshot") return Snapshot(args);
    if (args.command == "restore") return Restore(args);
    if (args.command == "fetch") return Fetch(args);
    if (args.command == "metrics") return Metrics(args);
    if (args.command == "diag") return Diag(args);
    if (args.command == "health") return Health(args);
    if (args.command == "promote") return Promote(args);
    if (args.command == "insert") return Insert(args);
    if (args.command == "delete") return Delete(args);
    if (args.command == "update") return Update(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(
      stderr,
      "usage: kspin_cli "
      "<generate|build|stats|query|snapshot|restore|fetch|metrics|diag|"
      "health|promote|insert|delete|update> [--dir=DIR]\n"
      "  generate --dataset=DE|ME|FL|E|US\n"
      "  query --vertex=V --k=K --keywords=1,2,3 [--op=and|or]\n"
      "        [--module=ch|hl] [--ranked]\n"
      "  snapshot [--snapshots=DIR]   write a crash-safe snapshot\n"
      "  restore  [--snapshots=DIR] [--vertex=V --k=K --keywords=1,2]\n"
      "  fetch    --endpoints=H:P[,...] [--snapshots=DIR]   pull newest\n"
      "           snapshot from a running server\n"
      "  metrics  --endpoints=H:P[,...] [--watch] [--interval-ms=T]\n"
      "           scrape Prometheus text; --watch prints counter deltas\n"
      "           per interval (gauges raw)\n"
      "  diag     --endpoints=H:P[,...]   dump the flight recorder:\n"
      "           recent spans + control-plane events as JSON lines\n"
      "  health   --endpoints=H:P[,...]   one row per endpoint: role,\n"
      "           primary epoch, applied op-log sequence\n"
      "  promote  --endpoints=H:P[,...] [--min-applied=N]   flip the\n"
      "           FIRST endpoint to primary, bumping the epoch\n"
      "  insert   --endpoints=H:P[,...] --vertex=V --name=NAME\n"
      "           [--tags=a,b,c]   durable insert (prints id + sequence)\n"
      "  delete   --endpoints=H:P[,...] --id=N   durable delete\n"
      "  update   --endpoints=H:P[,...] --id=N [--add=a,b] [--remove=c]\n"
      "           durable keyword update\n");
  return args.command.empty() ? 1 : 0;
}

}  // namespace
}  // namespace kspin::cli

int main(int argc, char** argv) { return kspin::cli::Main(argc, argv); }
