// kspin_server: serves K-SPIN spatial keyword queries over TCP using the
// framed wire protocol (docs/protocol.md).
//
//   kspin_server [--port=P] [--workers=N] [--queue=CAP]
//                [--grid=WxH] [--pois=N] [--keywords=N] [--seed=S]
//                [--module=ch|dijkstra]
//                [--snapshot-dir=DIR] [--snapshot-period-ms=T]
//                [--snapshot-keep=N] [--oplog-dir=DIR]
//                [--idempotency-cache-size=N]
//                [--role=primary|replica] [--primary=HOST:PORT]
//                [--replica-poll-ms=T]
//                [--trace=FILE] [--trace-max-bytes=N] [--trace-keep=N]
//                [--recorder-capacity=N] [--slow-query-ms=T]
//                [--slo-ms=T] [--overload-tick-ms=T] [--min-limit=N]
//                [--codel-target-ms=T] [--brownout-enter-ticks=N]
//                [--brownout-exit-ticks=N] [--brownout-max-k=K]
//                [--per-client-qps=Q] [--retry-after-ms=T]
//                [--service-floor-ms=T]
//
// Overload control (docs/protocol.md "Overload control & degradation"):
// --slo-ms engages the AIMD admission limiter and brownout against the
// given query p99 objective; --codel-target-ms sheds requests that
// overstayed the sojourn target in a congested queue; --per-client-qps
// rate-limits each connection; --retry-after-ms pins the RETRY_AFTER
// hint carried on OVERLOADED replies (0 = adaptive). --service-floor-ms
// pins a minimum per-request service time so drills and smoke tests can
// saturate a toy world with a handful of clients — do not set it in
// production.
//
// Observability (docs/observability.md): --trace=FILE appends one JSON
// line per executed search (query fingerprint, stage timings, engine
// counter deltas); --trace-max-bytes=N rotates the file at N bytes
// keeping --trace-keep old generations; --slow-query-ms=T logs searches
// slower than T ms to stderr with the same trace line. The METRICS
// opcode (kspin_cli metrics) exposes Prometheus text either way, and
// --recorder-capacity sizes the in-memory flight recorder dumped by the
// DUMP_DIAG opcode (kspin_cli diag).
//
// Builds a synthetic road network + POI catalogue (names "poi<N>",
// keywords "kw<K>"), constructs the distance oracle, binds 127.0.0.1:P
// (P=0 picks an ephemeral port) and serves until SIGINT/SIGTERM, then
// shuts down gracefully: stop accepting, drain admitted requests, flush
// responses. Prints "listening on port <P>" once ready — scripts (e.g.
// tools/server_smoke_test.sh) key off that line.
//
// With --snapshot-dir, boot is restore-or-rebuild: the newest valid
// snapshot in DIR (surviving a kill -9, torn writes, bit rot — every file
// is checksummed) is restored verbatim, including its graph; only when no
// usable snapshot exists is the synthetic world built from the flags.
// The SNAPSHOT / RELOAD opcodes are enabled, and a period > 0 snapshots
// in the background (docs/persistence.md).
//
// The durable op log (docs/persistence.md, "The operation log") defaults
// to the snapshot directory; --oplog-dir=DIR moves it, --oplog-dir= (an
// empty value) disables it. With the log enabled every acknowledged
// mutation is fsynced before the reply, boot replays records past the
// restored snapshot, and background snapshots truncate replayed segments.
//
// With --role=replica --primary=HOST:PORT the server rejects POI writes
// with NOT_PRIMARY and tracks the primary: at boot it tries to fetch the
// primary's newest snapshot into --snapshot-dir (so the replica starts
// from the primary's state rather than its own synthetic build), then
// keeps polling every --replica-poll-ms, tailing the primary's op log
// (FETCH_OPLOG) and falling back to whole-snapshot transfers when the
// log cannot serve it (docs/protocol.md "Replication").
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "graph/road_network_generator.h"
#include "io/snapshot.h"
#include "routing/contraction_hierarchy.h"
#include "routing/dijkstra.h"
#include "server/client.h"
#include "server/replication.h"
#include "server/server.h"
#include "service/poi_service.h"
#include "service/service_snapshot.h"
#include "service/synthetic_catalog.h"

namespace kspin::serverd {
namespace {

struct Args {
  std::uint16_t port = 0;
  unsigned workers = 0;
  std::size_t queue = 256;
  std::uint32_t grid_width = 40;
  std::uint32_t grid_height = 40;
  std::size_t pois = 800;
  std::uint32_t keywords = 40;
  std::uint64_t seed = 7;
  std::string module = "ch";
  std::string snapshot_dir;
  std::uint32_t snapshot_period_ms = 0;
  std::size_t snapshot_keep = 4;
  std::string oplog_dir;
  bool oplog_dir_set = false;
  std::size_t idempotency_cache = 4096;
  std::string role = "primary";
  std::string primary;
  std::uint32_t replica_poll_ms = 1000;
  std::string trace_path;
  std::uint64_t trace_max_bytes = 0;
  std::uint32_t trace_keep = 3;
  std::size_t recorder_capacity = 2048;
  std::uint32_t slow_query_ms = 0;
  std::uint32_t service_floor_ms = 0;
  server::OverloadOptions overload;
  bool bad = false;
};

Args Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("port")) {
      args.port = static_cast<std::uint16_t>(std::stoul(*v));
    } else if (auto v = value("workers")) {
      args.workers = static_cast<unsigned>(std::stoul(*v));
    } else if (auto v = value("queue")) {
      args.queue = std::stoul(*v);
    } else if (auto v = value("grid")) {
      const std::size_t x = v->find('x');
      if (x == std::string::npos) {
        args.bad = true;
      } else {
        args.grid_width = std::stoul(v->substr(0, x));
        args.grid_height = std::stoul(v->substr(x + 1));
      }
    } else if (auto v = value("pois")) {
      args.pois = std::stoul(*v);
    } else if (auto v = value("keywords")) {
      args.keywords = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("seed")) {
      args.seed = std::stoull(*v);
    } else if (auto v = value("module")) {
      args.module = *v;
    } else if (auto v = value("snapshot-dir")) {
      args.snapshot_dir = *v;
    } else if (auto v = value("snapshot-period-ms")) {
      args.snapshot_period_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("snapshot-keep")) {
      args.snapshot_keep = std::stoul(*v);
    } else if (auto v = value("oplog-dir")) {
      args.oplog_dir = *v;
      args.oplog_dir_set = true;
    } else if (auto v = value("idempotency-cache-size")) {
      args.idempotency_cache = std::stoul(*v);
    } else if (auto v = value("role")) {
      args.role = *v;
    } else if (auto v = value("primary")) {
      args.primary = *v;
    } else if (auto v = value("replica-poll-ms")) {
      args.replica_poll_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("trace")) {
      args.trace_path = *v;
    } else if (auto v = value("trace-max-bytes")) {
      args.trace_max_bytes = std::stoull(*v);
    } else if (auto v = value("trace-keep")) {
      args.trace_keep = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("recorder-capacity")) {
      args.recorder_capacity = std::stoul(*v);
    } else if (auto v = value("slow-query-ms")) {
      args.slow_query_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("slo-ms")) {
      args.overload.latency_slo_ms = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("overload-tick-ms")) {
      args.overload.tick_interval_ms = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("min-limit")) {
      args.overload.min_limit = std::stoul(*v);
    } else if (auto v = value("codel-target-ms")) {
      args.overload.codel_target_ms = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("brownout-enter-ticks")) {
      args.overload.brownout_enter_ticks = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("brownout-exit-ticks")) {
      args.overload.brownout_exit_ticks = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("brownout-max-k")) {
      args.overload.brownout_max_k = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("per-client-qps")) {
      args.overload.per_client_qps = std::stod(*v);
    } else if (auto v = value("retry-after-ms")) {
      args.overload.retry_after_ms = static_cast<std::uint32_t>(
          std::stoul(*v));
    } else if (auto v = value("service-floor-ms")) {
      args.service_floor_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else {
      args.bad = true;
    }
  }
  return args;
}

// Self-pipe written by the signal handler; main blocks reading it.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

/// Replica boot: fetch the primary's newest snapshot into `dir` so the
/// restore-or-rebuild path below starts from the primary's state. Best
/// effort — an unreachable primary just means "boot from local state and
/// let the background poll catch up".
void BootstrapFromPrimary(const server::Endpoint& primary,
                          const std::string& dir) {
  try {
    server::Client client;
    client.Connect(primary.host, primary.port);
    std::uint64_t sequence = 0;
    std::string bytes;
    std::string error;
    if (!server::FetchSnapshotBytes(client, 0, 256 * 1024, &sequence, &bytes,
                                    &error)) {
      std::fprintf(stderr, "bootstrap: fetch from %s failed: %s\n",
                   primary.ToString().c_str(), error.c_str());
      return;
    }
    // Reject a corrupt transfer before writing it where the restore path
    // would trust it.
    io::SnapshotReader validate(bytes);
    const std::string path =
        (std::filesystem::path(dir) / io::SnapshotFileName(sequence))
            .string();
    std::filesystem::create_directories(dir);
    io::WriteFileAtomically(path, [&](std::ostream& out) {
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    });
    std::printf("bootstrap: fetched snapshot %llu from %s (%zu bytes)\n",
                static_cast<unsigned long long>(sequence),
                primary.ToString().c_str(), bytes.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bootstrap: fetch from %s failed: %s\n",
                 primary.ToString().c_str(), e.what());
  }
}

int Main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  const bool is_replica = args.role == "replica";
  std::optional<server::Endpoint> primary;
  if (!args.primary.empty()) {
    primary = server::ParseEndpoint(args.primary);
    if (!primary) {
      std::fprintf(stderr, "bad --primary (want HOST:PORT): %s\n",
                   args.primary.c_str());
      return 1;
    }
  }
  if (args.bad || (args.module != "ch" && args.module != "dijkstra") ||
      (args.role != "primary" && args.role != "replica") ||
      (is_replica && !primary)) {
    std::fprintf(stderr,
                 "usage: kspin_server [--port=P] [--workers=N] "
                 "[--queue=CAP] [--grid=WxH] [--pois=N] [--keywords=N] "
                 "[--seed=S] [--module=ch|dijkstra] [--snapshot-dir=DIR] "
                 "[--snapshot-period-ms=T] [--snapshot-keep=N] "
                 "[--oplog-dir=DIR] [--idempotency-cache-size=N] "
                 "[--role=primary|replica] [--primary=HOST:PORT] "
                 "[--replica-poll-ms=T] [--trace=FILE] "
                 "[--trace-max-bytes=N] [--trace-keep=N] "
                 "[--recorder-capacity=N] [--slow-query-ms=T]\n");
    return 1;
  }

  // A replica first pulls the primary's newest snapshot so the restore
  // below picks it up (byte-identical serving state from the start).
  if (is_replica && !args.snapshot_dir.empty()) {
    BootstrapFromPrimary(*primary, args.snapshot_dir);
  }

  // Restore-or-rebuild: prefer the newest valid snapshot on disk.
  std::optional<LoadedServiceSnapshot> loaded;
  if (!args.snapshot_dir.empty()) {
    std::vector<std::string> skipped;
    loaded = LoadNewestValidServiceSnapshot(args.snapshot_dir, nullptr,
                                            &skipped);
    for (const std::string& reason : skipped) {
      std::fprintf(stderr, "snapshot skipped: %s\n", reason.c_str());
    }
  }

  std::unique_ptr<Graph> owned_graph;
  if (loaded) {
    owned_graph = std::move(loaded->state.graph);
  } else {
    RoadNetworkOptions road;
    road.grid_width = args.grid_width;
    road.grid_height = args.grid_height;
    road.seed = args.seed;
    owned_graph = std::make_unique<Graph>(GenerateRoadNetwork(road));
  }
  const Graph& graph = *owned_graph;
  std::printf("network: |V|=%zu |E|=%zu\n", graph.NumVertices(),
              graph.NumEdges());

  std::unique_ptr<ContractionHierarchy> ch;
  std::optional<ChOracle> ch_oracle;
  std::optional<DijkstraOracle> dijkstra_oracle;
  DistanceOracle* oracle;
  if (args.module == "ch") {
    if (loaded && loaded->state.ch != nullptr) {
      ch = std::move(loaded->state.ch);  // Snapshot carried the CH.
    } else {
      ch = std::make_unique<ContractionHierarchy>(graph);
    }
    ch_oracle.emplace(*ch);
    oracle = &*ch_oracle;
  } else {
    dijkstra_oracle.emplace(graph);
    oracle = &*dijkstra_oracle;
  }

  std::optional<PoiService> service;
  if (loaded) {
    service.emplace(graph, *oracle,
                    std::move(loaded->state.catalog.vocabulary),
                    std::move(loaded->state.catalog.names),
                    std::move(loaded->state.store),
                    std::move(loaded->state.alt),
                    std::move(loaded->state.keyword_index));
    std::printf("restored snapshot %llu from %s (%zu pois)\n",
                static_cast<unsigned long long>(loaded->sequence),
                loaded->path.c_str(), service->NumLivePois());
  } else {
    service.emplace(graph, *oracle);
    SyntheticCatalogOptions catalog;
    catalog.num_pois = args.pois;
    catalog.num_keywords = args.keywords;
    catalog.seed = args.seed + 1;
    PopulateSyntheticCatalog(*service, graph, catalog);
    std::printf("catalogue: %zu pois, %u keywords (kw0..kw%u)\n",
                service->NumLivePois(), args.keywords, args.keywords - 1);
  }

  server::ServerOptions options;
  options.port = args.port;
  options.num_workers = args.workers;
  options.queue_capacity = args.queue;
  options.snapshot.dir = args.snapshot_dir;
  options.snapshot.period_ms = args.snapshot_period_ms;
  options.snapshot.keep = args.snapshot_keep;
  options.snapshot.ch = ch.get();
  // The op log lives next to the snapshots unless pointed elsewhere
  // (--oplog-dir= with an empty value disables it). Boot replays records
  // past the restored snapshot's applied position.
  options.oplog.dir =
      args.oplog_dir_set ? args.oplog_dir : args.snapshot_dir;
  if (loaded) {
    options.restored_mutation_sequence =
        loaded->state.applied_mutation_sequence;
  }
  options.idempotency_cache_size = args.idempotency_cache;
  options.trace_path = args.trace_path;
  options.trace_max_bytes = args.trace_max_bytes;
  options.trace_keep = args.trace_keep;
  options.flight_recorder_capacity = args.recorder_capacity;
  options.slow_query_threshold_ms = args.slow_query_ms;
  options.test_dequeue_delay_ms = args.service_floor_ms;
  options.overload = args.overload;
  if (is_replica) {
    options.replication.role = server::ServerRole::kReplica;
    options.replication.primary = *primary;
    options.replication.poll_interval_ms = args.replica_poll_ms;
  }
  server::Server server(*service, options);
  server.Start();
  std::printf("role: %s%s%s\n", args.role.c_str(),
              is_replica ? ", tracking " : "",
              is_replica ? primary->ToString().c_str() : "");
  std::printf("listening on port %u (module: %s)\n", server.Port(),
              oracle->Name().c_str());
  std::fflush(stdout);

  if (::pipe(g_signal_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  char byte;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("shutting down\n");
  server.Stop();
  const auto& m = server.Metrics();
  std::printf("served: %llu ok, %llu overloaded, %llu deadline-dropped\n",
              static_cast<unsigned long long>(m.requests_ok.load()),
              static_cast<unsigned long long>(m.requests_overloaded.load()),
              static_cast<unsigned long long>(
                  m.requests_deadline_dropped.load() +
                  m.requests_deadline_cancelled.load()));
  return 0;
}

}  // namespace
}  // namespace kspin::serverd

int main(int argc, char** argv) { return kspin::serverd::Main(argc, argv); }
