// Load harness for a running kspin_server (optionally behind
// chaos_proxy): drives alternating traffic phases against a live
// endpoint and reports tail latency from the server's own v2 STATS
// histograms, so the numbers include queueing the client never sees.
//
//   load_harness --port=P [--host=H] [--threads=N] [--seconds=S]
//                [--burst-qps=Q] [--burst-seconds=S] [--cycles=N]
//                [--keywords=N] [--vertices=N] [--zipf=S] [--seed=S]
//                [--k=K] [--deadline-ms=D] [--json]
//
// Each cycle is two phases:
//
//  - closed loop: `--threads` connections issue back-to-back searches
//    (offered load = service rate; the classic closed-loop probe of
//    sustainable throughput);
//  - open-loop burst: the same threads pace requests to an aggregate
//    `--burst-qps` regardless of completions (arrivals don't slow down
//    when the server does — the regime that actually overloads it).
//    --burst-qps=0 skips the burst phase.
//
// Queries sample keywords Zipf(--zipf): the synthetic catalogue names
// keywords kw0..kwN-1 in rank order (keyword popularity is Zipfian in
// the id, matching text/zipf_generator), so rank r maps to "kw<r-1>".
// Vertices are uniform over [0, --vertices). Defaults match the
// kspin_server synthetic world (40x40 grid = 1600 vertices, 40
// keywords).
//
// After every phase the harness prints the phase's offered/observed
// rates, the client-side reply mix (ok / overloaded / deadline /
// degraded), and the server-side query-latency p50/p99/p999 computed
// from the STATS histogram delta for that phase — log2 buckets, so each
// percentile is the upper bound of its bucket (at most 2x off).
//
// --json swaps the text rows for a single machine-readable JSON document
// (config, per-phase results, final server counters) — the format
// committed as BENCH_server.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/wire.h"

namespace kspin::tools {
namespace {

using Clock = std::chrono::steady_clock;

struct Args {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int threads = 4;
  double seconds = 2.0;        ///< Closed-loop phase length.
  double burst_qps = 0.0;      ///< Aggregate open-loop rate; 0 = skip.
  double burst_seconds = 2.0;  ///< Open-loop phase length.
  int cycles = 1;
  std::uint32_t keywords = 40;
  std::uint32_t vertices = 1600;
  double zipf = 0.8;
  std::uint64_t seed = 42;
  std::uint32_t k = 10;
  std::uint32_t deadline_ms = 0;
  bool json = false;  ///< Emit one JSON document instead of the text rows.
};

std::optional<Args> Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const std::string& name) ->
        std::optional<std::string> {
      const std::string prefix = "--" + name + "=";
      if (arg.rfind(prefix, 0) != 0) return std::nullopt;
      return arg.substr(prefix.size());
    };
    if (auto v = value("host")) {
      args.host = *v;
    } else if (auto v = value("port")) {
      args.port = static_cast<std::uint16_t>(std::stoul(*v));
    } else if (auto v = value("threads")) {
      args.threads = std::stoi(*v);
    } else if (auto v = value("seconds")) {
      args.seconds = std::stod(*v);
    } else if (auto v = value("burst-qps")) {
      args.burst_qps = std::stod(*v);
    } else if (auto v = value("burst-seconds")) {
      args.burst_seconds = std::stod(*v);
    } else if (auto v = value("cycles")) {
      args.cycles = std::stoi(*v);
    } else if (auto v = value("keywords")) {
      args.keywords = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("vertices")) {
      args.vertices = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("zipf")) {
      args.zipf = std::stod(*v);
    } else if (auto v = value("seed")) {
      args.seed = std::stoull(*v);
    } else if (auto v = value("k")) {
      args.k = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("deadline-ms")) {
      args.deadline_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (arg == "--json") {
      args.json = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  if (args.port == 0 || args.threads <= 0 || args.keywords == 0 ||
      args.vertices == 0) {
    return std::nullopt;
  }
  return args;
}

/// Zipf(s) sampler over ranks 1..n via the precomputed CDF: rank r has
/// weight 1/r^s. Rank r maps to the catalogue keyword "kw<r-1>".
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::uint32_t r = 1; r <= n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r), s);
      cdf_[r - 1] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::uint32_t Sample(std::mt19937_64& rng) const {
    const double u =
        std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint32_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// Per-phase client-side tallies, merged across threads.
struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t deadline = 0;
  std::uint64_t errors = 0;   ///< Transport failures.
  std::uint64_t degraded = 0; ///< OK replies flagged DEGRADED.

  void Add(const Tally& other) {
    sent += other.sent;
    ok += other.ok;
    overloaded += other.overloaded;
    deadline += other.deadline;
    errors += other.errors;
    degraded += other.degraded;
  }
};

/// Percentile (bucket upper bound) from a cumulative-count wire
/// histogram delta; 0 when the phase recorded nothing.
std::uint64_t WirePercentile(const server::WireHistogram& before,
                             const server::WireHistogram& after, double p,
                             std::uint64_t* count_out = nullptr) {
  const std::uint64_t count = after.count - before.count;
  if (count_out != nullptr) *count_out = count;
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  const std::size_t buckets =
      std::min(after.buckets.size(), before.buckets.size());
  for (std::size_t i = 0; i < buckets; ++i) {
    cumulative += after.buckets[i] - before.buckets[i];
    if (cumulative >= target) return std::uint64_t{1} << (i + 1);
  }
  return std::uint64_t{1} << buckets;
}

const server::WireHistogram* FindHistogram(
    const server::Client::StatsReply& stats, const std::string& name) {
  for (const auto& h : stats.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

/// One traffic phase. `qps` 0 = closed loop; otherwise the aggregate
/// open-loop rate is split evenly across threads, each pacing arrivals
/// on its own schedule (sends are not gated on replies having arrived,
/// beyond the blocking client's one-in-flight limit per connection).
Tally RunPhase(const Args& args, double seconds, double qps) {
  std::vector<Tally> tallies(static_cast<std::size_t>(args.threads));
  std::vector<std::thread> threads;
  const Clock::time_point phase_end =
      Clock::now() +
      std::chrono::microseconds(static_cast<std::int64_t>(seconds * 1e6));
  for (int t = 0; t < args.threads; ++t) {
    threads.emplace_back([&, t] {
      Tally& tally = tallies[static_cast<std::size_t>(t)];
      std::mt19937_64 rng(args.seed + static_cast<std::uint64_t>(t));
      const ZipfSampler zipf(args.keywords, args.zipf);
      std::uniform_int_distribution<std::uint32_t> vertex(
          0, args.vertices - 1);
      server::Client client;
      try {
        client.Connect(args.host, args.port);
      } catch (const server::ClientError&) {
        ++tally.errors;
        return;
      }
      const double thread_qps = qps / args.threads;
      const auto interval =
          qps > 0.0 ? std::chrono::microseconds(static_cast<std::int64_t>(
                          1e6 / thread_qps))
                    : std::chrono::microseconds(0);
      Clock::time_point next_send = Clock::now();
      while (Clock::now() < phase_end) {
        if (qps > 0.0) {
          // Open loop: send on schedule; never let a slow server slow
          // the arrival process (skip sleeping when behind schedule).
          const Clock::time_point now = Clock::now();
          if (now < next_send) std::this_thread::sleep_until(next_send);
          next_send += interval;
        }
        const std::uint32_t first = zipf.Sample(rng);
        std::uint32_t second = zipf.Sample(rng);
        std::string query = "kw" + std::to_string(first);
        if (second != first) {
          query += " or kw" + std::to_string(second);
        }
        ++tally.sent;
        try {
          const auto reply = client.Search(query, vertex(rng), args.k,
                                           /*ranked=*/false,
                                           args.deadline_ms);
          if (reply.ok()) {
            ++tally.ok;
            if (reply.degraded) ++tally.degraded;
          } else if (reply.status == server::StatusCode::kOverloaded) {
            ++tally.overloaded;
          } else if (reply.status ==
                     server::StatusCode::kDeadlineExceeded) {
            ++tally.deadline;
          } else {
            ++tally.errors;
          }
        } catch (const server::ClientError&) {
          ++tally.errors;
          try {
            client.Close();
            client.Connect(args.host, args.port);
          } catch (const server::ClientError&) {
            return;  // Endpoint gone; stop this thread.
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Tally total;
  for (const Tally& t : tallies) total.Add(t);
  return total;
}

int Main(int argc, char** argv) {
  const auto args = Parse(argc, argv);
  if (!args) {
    std::fprintf(
        stderr,
        "usage: load_harness --port=P [--host=H] [--threads=N] "
        "[--seconds=S] [--burst-qps=Q] [--burst-seconds=S] [--cycles=N] "
        "[--keywords=N] [--vertices=N] [--zipf=S] [--seed=S] [--k=K] "
        "[--deadline-ms=D] [--json]\n");
    return 2;
  }

  server::Client probe;
  try {
    probe.Connect(args->host, args->port);
  } catch (const server::ClientError& e) {
    std::fprintf(stderr, "connect %s:%u failed: %s\n", args->host.c_str(),
                 args->port, e.what());
    return 1;
  }

  if (!args->json) {
    std::printf(
        "# load_harness: %s:%u, %d threads, zipf(%.2f) over %u keywords\n",
        args->host.c_str(), args->port, args->threads, args->zipf,
        args->keywords);
    std::printf(
        "phase\toffered_qps\tdone_qps\tok\tovld\tdead\tdeg\terr\t"
        "p50_us\tp99_us\tp999_us\n");
  }

  // Per-phase results kept for the --json document (machine-readable
  // output committed as BENCH_server.json and diffed across PRs).
  struct PhaseResult {
    const char* name;
    int cycle;
    double offered_qps;
    double done_qps;
    Tally tally;
    std::uint64_t p50, p99, p999;
  };
  std::vector<PhaseResult> results;

  int failures = 0;
  for (int cycle = 0; cycle < args->cycles; ++cycle) {
    struct Phase {
      const char* name;
      double seconds;
      double qps;
    };
    std::vector<Phase> phases;
    phases.push_back({"closed", args->seconds, 0.0});
    if (args->burst_qps > 0.0) {
      phases.push_back({"burst", args->burst_seconds, args->burst_qps});
    }
    for (const Phase& phase : phases) {
      const auto before = probe.Stats();
      if (!before.ok()) {
        std::fprintf(stderr, "STATS failed: %s\n", before.error.c_str());
        return 1;
      }
      const Clock::time_point start = Clock::now();
      const Tally tally = RunPhase(*args, phase.seconds, phase.qps);
      const double elapsed =
          std::chrono::duration<double>(Clock::now() - start).count();
      const auto after = probe.Stats();
      if (!after.ok()) {
        std::fprintf(stderr, "STATS failed: %s\n", after.error.c_str());
        return 1;
      }

      // Server-side latency for just this phase: the v2 histogram delta.
      const auto* hb = FindHistogram(before, "query_latency_us");
      const auto* ha = FindHistogram(after, "query_latency_us");
      std::uint64_t p50 = 0, p99 = 0, p999 = 0;
      if (hb != nullptr && ha != nullptr) {
        p50 = WirePercentile(*hb, *ha, 0.50);
        p99 = WirePercentile(*hb, *ha, 0.99);
        p999 = WirePercentile(*hb, *ha, 0.999);
      } else {
        std::fprintf(stderr,
                     "warning: server sent no query_latency_us histogram "
                     "(protocol < 2?); tail latency unavailable\n");
      }
      if (tally.ok == 0) ++failures;
      const double done_qps =
          static_cast<double>(tally.sent) / std::max(elapsed, 1e-9);
      results.push_back(
          {phase.name, cycle, phase.qps, done_qps, tally, p50, p99, p999});
      if (!args->json) {
        std::printf(
            "%s\t%.0f\t%.0f\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t%llu\t"
            "%llu\n",
            phase.name, phase.qps, done_qps,
            static_cast<unsigned long long>(tally.ok),
            static_cast<unsigned long long>(tally.overloaded),
            static_cast<unsigned long long>(tally.deadline),
            static_cast<unsigned long long>(tally.degraded),
            static_cast<unsigned long long>(tally.errors),
            static_cast<unsigned long long>(p50),
            static_cast<unsigned long long>(p99),
            static_cast<unsigned long long>(p999));
      }
    }
  }

  // Final server-side counters an operator would look at after a drill.
  const auto stats = probe.Stats();
  if (args->json) {
    std::printf("{\n  \"config\": {\"host\": \"%s\", \"port\": %u, "
                "\"threads\": %d, \"cycles\": %d, \"zipf\": %.2f, "
                "\"keywords\": %u, \"vertices\": %u, \"k\": %u, "
                "\"burst_qps\": %.0f, \"deadline_ms\": %u},\n",
                args->host.c_str(), args->port, args->threads, args->cycles,
                args->zipf, args->keywords, args->vertices, args->k,
                args->burst_qps, args->deadline_ms);
    std::printf("  \"phases\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const PhaseResult& r = results[i];
      std::printf(
          "    {\"phase\": \"%s\", \"cycle\": %d, \"offered_qps\": %.0f, "
          "\"done_qps\": %.1f, \"ok\": %llu, \"overloaded\": %llu, "
          "\"deadline\": %llu, \"degraded\": %llu, \"errors\": %llu, "
          "\"p50_us\": %llu, \"p99_us\": %llu, \"p999_us\": %llu}%s\n",
          r.name, r.cycle, r.offered_qps, r.done_qps,
          static_cast<unsigned long long>(r.tally.ok),
          static_cast<unsigned long long>(r.tally.overloaded),
          static_cast<unsigned long long>(r.tally.deadline),
          static_cast<unsigned long long>(r.tally.degraded),
          static_cast<unsigned long long>(r.tally.errors),
          static_cast<unsigned long long>(r.p50),
          static_cast<unsigned long long>(r.p99),
          static_cast<unsigned long long>(r.p999),
          i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf(
        "  \"server\": {\"requests_ok\": %llu, \"requests_overloaded\": "
        "%llu, \"requests_rate_limited\": %llu, \"requests_codel_shed\": "
        "%llu, \"requests_degraded\": %llu, \"brownout_entries\": %llu, "
        "\"admission_limit\": %llu}\n}\n",
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("requests_ok") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("requests_overloaded") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("requests_rate_limited") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("requests_codel_shed") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("requests_degraded") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("brownout_entries") : 0),
        static_cast<unsigned long long>(
            stats.ok() ? stats.Value("admission_limit") : 0));
  } else if (stats.ok()) {
    std::printf(
        "# server: ok=%llu overloaded=%llu rate_limited=%llu "
        "codel_shed=%llu deadline_rejected=%llu degraded=%llu "
        "brownout_entries=%llu brownout_seconds=%llu overload_state=%llu "
        "admission_limit=%llu\n",
        static_cast<unsigned long long>(stats.Value("requests_ok")),
        static_cast<unsigned long long>(
            stats.Value("requests_overloaded")),
        static_cast<unsigned long long>(
            stats.Value("requests_rate_limited")),
        static_cast<unsigned long long>(
            stats.Value("requests_codel_shed")),
        static_cast<unsigned long long>(
            stats.Value("requests_deadline_rejected")),
        static_cast<unsigned long long>(stats.Value("requests_degraded")),
        static_cast<unsigned long long>(stats.Value("brownout_entries")),
        static_cast<unsigned long long>(stats.Value("brownout_seconds")),
        static_cast<unsigned long long>(stats.Value("overload_state")),
        static_cast<unsigned long long>(stats.Value("admission_limit")));
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace kspin::tools

int main(int argc, char** argv) { return kspin::tools::Main(argc, argv); }
