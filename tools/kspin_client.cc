// kspin_client: command-line client for kspin_server (docs/protocol.md).
//
//   kspin_client [--host=H] --port=P <command> [args...]
//   kspin_client --endpoints=H1:P1,H2:P2,... <command> [args...]
//
// Commands:
//   ping
//   stats
//   metrics                             Prometheus 0.0.4 text exposition
//   health                              role, snapshot sequence, uptime
//   search   <vertex> <k> <query...>    boolean kNN
//   ranked   <vertex> <k> <query...>    ranked top-k
//   add      <vertex> <name> <kw...>    add a POI, prints its id
//   close    <id>                       mark a POI closed
//   tag      <id> <keyword>             add a keyword to a POI
//   untag    <id> <keyword>             remove a keyword from a POI
//   insert   <vertex> <name> <kw...>    durable write-path add (v3):
//                                       idempotency-keyed, safe to retry;
//                                       prints "<id>\tseq=<sequence>"
//   delete   <id>                       durable write-path close (v3)
//   update   <id> <+kw|-kw>...          add (+) / remove (-) keyword tags
//                                       as one logged operation (v3)
//   snapshot                            write a snapshot now, print its path
//   reload                              restore the newest valid snapshot
//   promote  [min_applied_seq]          flip the addressed endpoint (the
//                                       FIRST of --endpoints) to primary,
//                                       bumping the primary epoch; refused
//                                       when its applied sequence is below
//                                       min_applied_seq
//
// Options:
//   --endpoints=LIST  comma-separated HOST:PORT list of a replicated
//                     deployment. Reads prefer a healthy replica and fail
//                     over on transport errors; writes follow NOT_PRIMARY
//                     redirects to the real primary. With a single
//                     endpoint this degenerates to plain retrying.
//   --deadline-ms=D   attach a deadline to search commands
//   --retries=N       total attempts on retryable failures (default 4;
//                     1 disables retrying). Connect failures, OVERLOADED
//                     rejections, and — for idempotent commands — torn
//                     responses are retried with jittered exponential
//                     backoff (docs/protocol.md, "Client retry guidance").
//   --retry-backoff-ms=B  initial backoff (default 50, doubling per try)
//   --retry-budget-ms=T   overall per-command time budget across attempts
//                     (0 = unlimited); also clamps search deadlines
//   --fence-epoch=N   stamp epoch N into keyed mutations (insert/delete/
//                     update): a primary whose epoch is older rejects the
//                     write with STALE_EPOCH and fences itself — use after
//                     a promotion to prove the old primary is fenced
//
// Exit status: 0 on kOk, 2 when the server rejects the request
// (OVERLOADED, DEADLINE_EXCEEDED, BAD_QUERY, NOT_PRIMARY, ...), 1 on
// usage or transport errors.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "server/failover.h"
#include "server/retry.h"

namespace kspin::clientd {
namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: kspin_client [--host=H] --port=P [--endpoints=H:P,...] "
      "[--deadline-ms=D] [--retries=N] [--retry-backoff-ms=B] "
      "[--retry-budget-ms=T] [--fence-epoch=N] <command> [args...]\n"
      "commands: ping | stats | metrics | health | "
      "search <vertex> <k> <query...> |\n"
      "          ranked <vertex> <k> <query...> | add <vertex> <name> "
      "<kw...> |\n"
      "          close <id> | tag <id> <kw> | untag <id> <kw> |\n"
      "          insert <vertex> <name> <kw...> | delete <id> |\n"
      "          update <id> <+kw|-kw>... | snapshot | reload |\n"
      "          promote [min_applied_seq]\n");
}

int ReportStatus(const server::Client::Reply& reply) {
  if (reply.ok()) return 0;
  std::fprintf(stderr, "error: %s: %s\n",
               std::string(server::StatusName(reply.status)).c_str(),
               reply.error.c_str());
  return 2;
}

int RunSearch(server::FailoverClient& client, bool ranked,
              const std::vector<std::string>& args,
              std::uint32_t deadline_ms) {
  if (args.size() < 3) {
    Usage();
    return 1;
  }
  const VertexId vertex = static_cast<VertexId>(std::stoul(args[0]));
  const std::uint32_t k =
      static_cast<std::uint32_t>(std::stoul(args[1]));
  std::string query;
  for (std::size_t i = 2; i < args.size(); ++i) {
    if (i > 2) query += ' ';
    query += args[i];
  }
  const auto reply = client.Search(query, vertex, k, ranked, deadline_ms);
  if (const int rc = ReportStatus(reply)) return rc;
  for (const auto& r : reply.results) {
    const auto time = static_cast<unsigned long long>(r.travel_time);
    if (ranked) {
      std::printf("%u\t%s\ttime=%llu\tscore=%.4f\n", r.object,
                  r.name.c_str(), time, r.score);
    } else {
      std::printf("%u\t%s\ttime=%llu\n", r.object, r.name.c_str(), time);
    }
  }
  return 0;
}

int ReportSnapshot(const server::Client::SnapshotReply& reply) {
  if (const int rc = ReportStatus(reply)) return rc;
  std::printf("%llu\t%s\n", static_cast<unsigned long long>(reply.sequence),
              reply.path.c_str());
  return 0;
}

int RunHealth(server::FailoverClient& client) {
  const auto reply = client.Health();
  if (const int rc = ReportStatus(reply)) return rc;
  const auto& h = reply.health;
  std::printf("role\t%s\n", h.role == 0 ? "primary" : "replica");
  std::printf("snapshot_sequence\t%llu\n",
              static_cast<unsigned long long>(h.snapshot_sequence));
  std::printf("uptime_ms\t%llu\n",
              static_cast<unsigned long long>(h.uptime_ms));
  std::printf("queue_depth\t%llu\n",
              static_cast<unsigned long long>(h.queue_depth));
  std::printf("applied_sequence\t%llu\n",
              static_cast<unsigned long long>(h.applied_sequence));
  std::printf("primary_epoch\t%llu\n",
              static_cast<unsigned long long>(h.primary_epoch));
  if (!h.primary_address.empty()) {
    std::printf("primary\t%s\n", h.primary_address.c_str());
  }
  return 0;
}

/// Promote goes straight at the addressed endpoint (first of the list):
/// routing it like a write would send it to the current primary, which is
/// exactly the server a failover wants to abandon.
int RunPromote(const server::Endpoint& endpoint,
               const std::vector<std::string>& args) {
  if (args.size() > 1) {
    Usage();
    return 1;
  }
  const std::uint64_t min_applied =
      args.empty() ? 0 : std::stoull(args[0]);
  server::Client client;
  client.Connect(endpoint.host, endpoint.port);
  const auto reply = client.Promote(min_applied);
  if (const int rc = ReportStatus(reply)) return rc;
  std::printf("epoch\t%llu\n", static_cast<unsigned long long>(reply.epoch));
  std::printf("applied_sequence\t%llu\n",
              static_cast<unsigned long long>(reply.applied_sequence));
  std::printf("role\t%s\n", reply.role == 0 ? "primary" : "replica");
  return 0;
}

/// "H1:P1,H2:P2" -> endpoints. Empty result means a parse error.
std::vector<server::Endpoint> ParseEndpoints(const std::string& list) {
  std::vector<server::Endpoint> endpoints;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const auto endpoint =
        server::ParseEndpoint(list.substr(start, comma - start));
    if (!endpoint) return {};
    endpoints.push_back(*endpoint);
    start = comma + 1;
  }
  return endpoints;
}

int Main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string endpoints_arg;
  std::uint32_t deadline_ms = 0;
  std::uint64_t fence_epoch = 0;
  server::RetryPolicy policy;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      port = static_cast<std::uint16_t>(std::stoul(arg.substr(7)));
    } else if (arg.rfind("--endpoints=", 0) == 0) {
      endpoints_arg = arg.substr(12);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = static_cast<std::uint32_t>(std::stoul(arg.substr(14)));
    } else if (arg.rfind("--fence-epoch=", 0) == 0) {
      fence_epoch = std::stoull(arg.substr(14));
    } else if (arg.rfind("--retries=", 0) == 0) {
      policy.max_attempts = static_cast<std::uint32_t>(
          std::max(1ul, std::stoul(arg.substr(10))));
    } else if (arg.rfind("--retry-backoff-ms=", 0) == 0) {
      policy.initial_backoff_ms =
          static_cast<std::uint32_t>(std::stoul(arg.substr(19)));
    } else if (arg.rfind("--retry-budget-ms=", 0) == 0) {
      policy.max_total_ms =
          static_cast<std::uint32_t>(std::stoul(arg.substr(18)));
    } else {
      rest.push_back(arg);
    }
  }

  std::vector<server::Endpoint> endpoints;
  if (!endpoints_arg.empty()) {
    endpoints = ParseEndpoints(endpoints_arg);
    if (endpoints.empty()) {
      std::fprintf(stderr, "bad --endpoints (want H:P[,H:P...]): %s\n",
                   endpoints_arg.c_str());
      return 1;
    }
  } else if (port != 0) {
    endpoints.push_back({host, port});
  }
  if (endpoints.empty() || rest.empty()) {
    Usage();
    return 1;
  }
  const std::string command = rest.front();
  const std::vector<std::string> args(rest.begin() + 1, rest.end());

  try {
    if (command == "promote") {
      return RunPromote(endpoints.front(), args);
    }

    server::FailoverClient client(endpoints, policy);
    if (fence_epoch != 0) client.SetFenceEpoch(fence_epoch);

    if (command == "ping") {
      return ReportStatus(client.Ping());
    }
    if (command == "stats") {
      const auto reply = client.Stats();
      if (const int rc = ReportStatus(reply)) return rc;
      for (const auto& [key, value] : reply.stats) {
        std::printf("%s\t%llu\n", key.c_str(),
                    static_cast<unsigned long long>(value));
      }
      return 0;
    }
    if (command == "metrics") {
      const auto reply = client.Metrics();
      if (const int rc = ReportStatus(reply)) return rc;
      std::fputs(reply.text.c_str(), stdout);
      return 0;
    }
    if (command == "health") {
      return RunHealth(client);
    }
    if (command == "search" || command == "ranked") {
      return RunSearch(client, command == "ranked", args, deadline_ms);
    }
    if (command == "add") {
      if (args.size() < 3) {
        Usage();
        return 1;
      }
      const VertexId vertex = static_cast<VertexId>(std::stoul(args[0]));
      const std::vector<std::string> keywords(args.begin() + 2,
                                              args.end());
      const auto reply = client.AddPoi(args[1], vertex, keywords);
      if (const int rc = ReportStatus(reply)) return rc;
      std::printf("%u\n", reply.id);
      return 0;
    }
    if (command == "close") {
      if (args.size() != 1) {
        Usage();
        return 1;
      }
      return ReportStatus(
          client.ClosePoi(static_cast<ObjectId>(std::stoul(args[0]))));
    }
    if (command == "tag" || command == "untag") {
      if (args.size() != 2) {
        Usage();
        return 1;
      }
      const ObjectId id = static_cast<ObjectId>(std::stoul(args[0]));
      return ReportStatus(command == "tag" ? client.TagPoi(id, args[1])
                                           : client.UntagPoi(id, args[1]));
    }
    if (command == "insert") {
      if (args.size() < 3) {
        Usage();
        return 1;
      }
      const VertexId vertex = static_cast<VertexId>(std::stoul(args[0]));
      const std::vector<std::string> keywords(args.begin() + 2,
                                              args.end());
      const auto reply = client.InsertDoc(vertex, args[1], keywords);
      if (const int rc = ReportStatus(reply)) return rc;
      std::printf("%u\tseq=%llu\n", reply.id,
                  static_cast<unsigned long long>(reply.sequence));
      return 0;
    }
    if (command == "delete") {
      if (args.size() != 1) {
        Usage();
        return 1;
      }
      const auto reply =
          client.DeleteDoc(static_cast<ObjectId>(std::stoul(args[0])));
      if (const int rc = ReportStatus(reply)) return rc;
      std::printf("%u\tseq=%llu\n", reply.id,
                  static_cast<unsigned long long>(reply.sequence));
      return 0;
    }
    if (command == "update") {
      if (args.size() < 2) {
        Usage();
        return 1;
      }
      const ObjectId id = static_cast<ObjectId>(std::stoul(args[0]));
      std::vector<std::string> adds;
      std::vector<std::string> removes;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i].size() < 2 ||
            (args[i][0] != '+' && args[i][0] != '-')) {
          Usage();
          return 1;
        }
        (args[i][0] == '+' ? adds : removes).push_back(args[i].substr(1));
      }
      const auto reply = client.UpdateDoc(id, adds, removes);
      if (const int rc = ReportStatus(reply)) return rc;
      std::printf("%u\tseq=%llu\n", reply.id,
                  static_cast<unsigned long long>(reply.sequence));
      return 0;
    }
    if (command == "snapshot") {
      return ReportSnapshot(client.Snapshot());
    }
    if (command == "reload") {
      return ReportSnapshot(client.Reload());
    }
    Usage();
    return 1;
  } catch (const server::ClientError& e) {
    std::fprintf(stderr, "transport error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace
}  // namespace kspin::clientd

int main(int argc, char** argv) { return kspin::clientd::Main(argc, argv); }
