#!/usr/bin/env python3
"""Lower-bound throughput regression gate.

Compares a bench_micro --json probe against the committed per-kernel
baselines in BENCH_lb.json. The gated metric is batch_speedup (batch
kernel vs. scalar per-pair on the same machine): a pure ratio, so it
transfers across CPU frequencies. Fails when the current speedup drops
more than --tolerance (default 10%) below the baseline recorded for
the same kernel.

Usage:
  check_bench_lb.py --baseline BENCH_lb.json --current probe.json
  check_bench_lb.py --update BENCH_lb.json probe1.json [probe2.json ...]
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def check(baseline_path, current_path, tolerance):
    baseline = load(baseline_path)
    current = load(current_path)
    kernel = current.get("kernel")
    speedup = current.get("batch_speedup")
    if kernel is None or speedup is None:
        print(f"error: {current_path} is not a bench_micro --json probe")
        return 2

    kernels = baseline.get("kernels", {})
    if kernel not in kernels:
        # Unknown hardware tier: no like-for-like baseline. Sanity-check
        # only — the batch path must never be slower than per-pair.
        print(f"warning: no baseline for kernel '{kernel}'; "
              f"sanity check only (speedup={speedup:.3f})")
        if speedup < 1.0:
            print("FAIL: batch path slower than scalar per-pair")
            return 1
        print("PASS")
        return 0

    recorded = kernels[kernel]["batch_speedup"]
    floor = recorded * (1.0 - tolerance)
    status = "PASS" if speedup >= floor else "FAIL"
    print(f"{status}: kernel={kernel} batch_speedup={speedup:.3f} "
          f"baseline={recorded:.3f} floor={floor:.3f} "
          f"(tolerance {tolerance:.0%})")
    return 0 if speedup >= floor else 1


def update(baseline_path, probe_paths):
    try:
        baseline = load(baseline_path)
    except FileNotFoundError:
        baseline = {"schema": 1, "kernels": {}}
    kernels = baseline.setdefault("kernels", {})
    for path in probe_paths:
        probe = load(path)
        kernel = probe["kernel"]
        kernels[kernel] = {
            "batch_speedup": probe["batch_speedup"],
            "scalar_evals_per_sec": probe["scalar_evals_per_sec"],
            "batch_evals_per_sec": probe["batch_evals_per_sec"],
            "dataset": probe.get("dataset"),
            "landmarks": probe.get("landmarks"),
            "block_size": probe.get("block_size"),
        }
        print(f"recorded {kernel}: speedup={probe['batch_speedup']:.3f}")
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=2, sort_keys=True)
        f.write("\n")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", help="committed baseline JSON")
    parser.add_argument("--current", help="fresh bench_micro --json probe")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional speedup drop (default 0.10)")
    parser.add_argument("--update", metavar="BASELINE",
                        help="rewrite BASELINE from the given probe files")
    parser.add_argument("probes", nargs="*", help="probe files for --update")
    args = parser.parse_args()

    if args.update:
        if not args.probes:
            parser.error("--update requires at least one probe file")
        return update(args.update, args.probes)
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required for checking")
    return check(args.baseline, args.current, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
