#!/usr/bin/env bash
# End-to-end smoke test: boots kspin_server on an ephemeral port, drives
# it with kspin_client (ping, searches, an update, stats), checks a clean
# SIGINT shutdown, then runs a crash/restore cycle: snapshot, kill -9,
# restart from --snapshot-dir, and verify byte-identical query results.
# Exercises the real binaries over real TCP — the piece unit tests cannot
# cover.
#
# Usage: tools/server_smoke_test.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/kspin_server"
CLIENT="$BUILD_DIR/tools/kspin_client"
LOG="$(mktemp)"
SNAPDIR="$(mktemp -d)"

for bin in "$SERVER" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "smoke: missing binary $bin" >&2
    exit 1
  fi
done

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG"
  rm -rf "$SNAPDIR"
}
trap cleanup EXIT

# Starts $SERVER with the given extra flags, waits for its port, and sets
# SERVER_PID + PORT. Truncates and reuses $LOG.
start_server() {
  : >"$LOG"
  "$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 "$@" >"$LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { echo "smoke: server never reported its port" >&2; cat "$LOG" >&2; exit 1; }
}

start_server
echo "smoke: server up on port $PORT"

"$CLIENT" --port="$PORT" ping
echo "smoke: ping ok"

RESULTS="$("$CLIENT" --port="$PORT" search 5 3 "kw0 or kw1")"
[[ -n "$RESULTS" ]] || { echo "smoke: empty search results" >&2; exit 1; }
echo "smoke: search returned $(wc -l <<<"$RESULTS") results"

"$CLIENT" --port="$PORT" ranked 5 3 kw0 kw2 >/dev/null
echo "smoke: ranked search ok"

POI_ID="$("$CLIENT" --port="$PORT" add 7 smoketestpoi smokekw)"
FOUND="$("$CLIENT" --port="$PORT" search 7 1 smokekw)"
grep -q "smoketestpoi" <<<"$FOUND" || { echo "smoke: added POI not found" >&2; exit 1; }
"$CLIENT" --port="$PORT" close "$POI_ID"
echo "smoke: update cycle ok (poi id $POI_ID)"

# Bad queries must be rejected without killing the server.
if "$CLIENT" --port="$PORT" search 5 3 "((kw1" 2>/dev/null; then
  echo "smoke: malformed query unexpectedly accepted" >&2
  exit 1
fi
"$CLIENT" --port="$PORT" ping
echo "smoke: bad query rejected, server alive"

STATS="$("$CLIENT" --port="$PORT" stats)"
grep -q "requests_ok" <<<"$STATS" || { echo "smoke: stats missing requests_ok" >&2; exit 1; }
OK_COUNT="$(awk -F'\t' '$1 == "requests_ok" { print $2 }' <<<"$STATS")"
[[ "$OK_COUNT" -ge 6 ]] || { echo "smoke: implausible requests_ok=$OK_COUNT" >&2; exit 1; }
echo "smoke: stats ok (requests_ok=$OK_COUNT)"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "smoke: server ignored SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "shutting down" "$LOG" || { echo "smoke: no graceful shutdown log" >&2; cat "$LOG" >&2; exit 1; }
echo "smoke: graceful shutdown ok"

# ---- crash / restore cycle ------------------------------------------
# Snapshot the serving state, kill -9 the server (no chance to flush
# anything), restart from the snapshot directory, and demand the exact
# same answers — including an update that only ever lived post-boot.

start_server --snapshot-dir="$SNAPDIR"
echo "smoke: snapshot server up on port $PORT"

CRASH_ID="$("$CLIENT" --port="$PORT" add 9 crashpoi crashkw)"
BASELINE_A="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
BASELINE_B="$("$CLIENT" --port="$PORT" search 9 3 crashkw)"
grep -q "crashpoi" <<<"$BASELINE_B" || { echo "smoke: crashpoi missing pre-crash" >&2; exit 1; }

SNAP_OUT="$("$CLIENT" --port="$PORT" snapshot)"
SNAP_PATH="$(cut -f2 <<<"$SNAP_OUT")"
[[ -f "$SNAP_PATH" ]] || { echo "smoke: snapshot file $SNAP_PATH missing" >&2; exit 1; }
echo "smoke: snapshot written ($SNAP_OUT)"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: server killed with SIGKILL"

start_server --snapshot-dir="$SNAPDIR"
grep -q "restored snapshot" "$LOG" || { echo "smoke: restart did not restore from snapshot" >&2; cat "$LOG" >&2; exit 1; }

AFTER_A="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
AFTER_B="$("$CLIENT" --port="$PORT" search 9 3 crashkw)"
[[ "$AFTER_A" == "$BASELINE_A" ]] || { echo "smoke: post-restore results differ (baseline A)" >&2; diff <(echo "$BASELINE_A") <(echo "$AFTER_A") >&2 || true; exit 1; }
[[ "$AFTER_B" == "$BASELINE_B" ]] || { echo "smoke: post-restore results differ (baseline B)" >&2; diff <(echo "$BASELINE_B") <(echo "$AFTER_B") >&2 || true; exit 1; }
grep -q "crashpoi" <<<"$AFTER_B" || { echo "smoke: crashpoi lost across crash" >&2; exit 1; }
echo "smoke: post-crash results byte-identical (poi id $CRASH_ID survived)"

# RELOAD over the wire converges on the same snapshot.
"$CLIENT" --port="$PORT" reload >/dev/null
AFTER_RELOAD="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
[[ "$AFTER_RELOAD" == "$BASELINE_A" ]] || { echo "smoke: RELOAD changed results" >&2; exit 1; }
echo "smoke: RELOAD opcode ok"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "smoke: snapshot server ignored SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: PASS"
