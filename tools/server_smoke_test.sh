#!/usr/bin/env bash
# End-to-end smoke test: boots kspin_server on an ephemeral port, drives
# it with kspin_client (ping, searches, an update, stats), checks a clean
# SIGINT shutdown, then runs a crash/restore cycle: snapshot, kill -9,
# restart from --snapshot-dir, and verify byte-identical query results.
# Then boots a primary + replica pair: writes through the primary,
# demands byte-identical replica reads after catch-up, kills the primary
# with SIGKILL, and checks that a --endpoints failover client keeps
# answering. Finally drives the durable write path: acked insert/update/
# delete land in the op log, survive a kill -9 of the primary via boot
# replay, ship to a replica by log tailing (no extra snapshot transfer),
# and remain readable through a failover client after the primary dies
# again. Closes with the epoch-fenced failover drill: a chaos proxy with
# a seeded fault plan partitions the primary, the replica is promoted
# behind the cut, the stale primary is fenced (STALE_EPOCH), a failover
# client re-routes on its own, and the ex-primary rejoins by
# quarantining its divergent op-log tail. The last drill is overload:
# a deliberately under-provisioned server is saturated by the load
# harness until it sheds with OVERLOADED and browns out, then must
# stand down (overload_state back to 0) on its own once the load stops.
# After both drills `kspin_cli diag` dumps the always-on flight
# recorder and must reconstruct the story — promotion, replication
# source switch, brownout entry/exit, shed bursts — from the ring
# alone, long after the fact. Exercises the real binaries over real
# TCP — the piece unit tests cannot cover.
#
# Usage: tools/server_smoke_test.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/kspin_server"
CLIENT="$BUILD_DIR/tools/kspin_client"
KCLI="$BUILD_DIR/tools/kspin_cli"
PROXY="$BUILD_DIR/tools/chaos_proxy"
LOADGEN="$BUILD_DIR/tools/load_harness"
LOG="$(mktemp)"
RLOG="$(mktemp)"
PXLOG="$(mktemp)"
PXERR="$(mktemp)"
SNAPDIR="$(mktemp -d)"
PSNAPDIR="$(mktemp -d)"
RSNAPDIR="$(mktemp -d)"
MPRIDIR="$(mktemp -d)"
MREPDIR="$(mktemp -d)"
FOPRI_SNAP="$(mktemp -d)"
FOPRI_OPLOG="$(mktemp -d)"
FOREP_SNAP="$(mktemp -d)"
FOREP_OPLOG="$(mktemp -d)"

for bin in "$SERVER" "$CLIENT" "$KCLI" "$PROXY" "$LOADGEN"; do
  if [[ ! -x "$bin" ]]; then
    echo "smoke: missing binary $bin" >&2
    exit 1
  fi
done

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  [[ -n "${REPLICA_PID:-}" ]] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  [[ -n "${PROXY_PID:-}" ]] && kill -9 "$PROXY_PID" 2>/dev/null || true
  rm -f "$LOG" "$RLOG" "$PXLOG" "$PXERR"
  rm -rf "$SNAPDIR" "$PSNAPDIR" "$RSNAPDIR" "$MPRIDIR" "$MREPDIR" \
    "$FOPRI_SNAP" "$FOPRI_OPLOG" "$FOREP_SNAP" "$FOREP_OPLOG"
}
trap cleanup EXIT

# Loud failure for the failover drill: dump every involved log so a CI
# timeout never hides which side wedged.
fo_die() {
  echo "smoke: $*" >&2
  echo "--- primary log ---" >&2; cat "$LOG" >&2 || true
  echo "--- replica log ---" >&2; cat "$RLOG" >&2 || true
  echo "--- proxy log ---" >&2; cat "$PXLOG" "$PXERR" >&2 || true
  exit 1
}

# Starts $SERVER with the given extra flags, waits for its port, and sets
# SERVER_PID + PORT. Truncates and reuses $LOG.
start_server() {
  : >"$LOG"
  "$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 "$@" >"$LOG" 2>&1 &
  SERVER_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")"
    [[ -n "$PORT" ]] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
    sleep 0.1
  done
  [[ -n "$PORT" ]] || { echo "smoke: server never reported its port" >&2; cat "$LOG" >&2; exit 1; }
}

start_server
echo "smoke: server up on port $PORT"

"$CLIENT" --port="$PORT" ping
echo "smoke: ping ok"

RESULTS="$("$CLIENT" --port="$PORT" search 5 3 "kw0 or kw1")"
[[ -n "$RESULTS" ]] || { echo "smoke: empty search results" >&2; exit 1; }
echo "smoke: search returned $(wc -l <<<"$RESULTS") results"

"$CLIENT" --port="$PORT" ranked 5 3 kw0 kw2 >/dev/null
echo "smoke: ranked search ok"

POI_ID="$("$CLIENT" --port="$PORT" add 7 smoketestpoi smokekw)"
FOUND="$("$CLIENT" --port="$PORT" search 7 1 smokekw)"
grep -q "smoketestpoi" <<<"$FOUND" || { echo "smoke: added POI not found" >&2; exit 1; }
"$CLIENT" --port="$PORT" close "$POI_ID"
echo "smoke: update cycle ok (poi id $POI_ID)"

# Bad queries must be rejected without killing the server.
if "$CLIENT" --port="$PORT" search 5 3 "((kw1" 2>/dev/null; then
  echo "smoke: malformed query unexpectedly accepted" >&2
  exit 1
fi
"$CLIENT" --port="$PORT" ping
echo "smoke: bad query rejected, server alive"

STATS="$("$CLIENT" --port="$PORT" stats)"
grep -q "requests_ok" <<<"$STATS" || { echo "smoke: stats missing requests_ok" >&2; exit 1; }
OK_COUNT="$(awk -F'\t' '$1 == "requests_ok" { print $2 }' <<<"$STATS")"
[[ "$OK_COUNT" -ge 6 ]] || { echo "smoke: implausible requests_ok=$OK_COUNT" >&2; exit 1; }
echo "smoke: stats ok (requests_ok=$OK_COUNT)"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "smoke: server ignored SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "shutting down" "$LOG" || { echo "smoke: no graceful shutdown log" >&2; cat "$LOG" >&2; exit 1; }
echo "smoke: graceful shutdown ok"

# ---- crash / restore cycle ------------------------------------------
# Snapshot the serving state, kill -9 the server (no chance to flush
# anything), restart from the snapshot directory, and demand the exact
# same answers — including an update that only ever lived post-boot.

start_server --snapshot-dir="$SNAPDIR"
echo "smoke: snapshot server up on port $PORT"

CRASH_ID="$("$CLIENT" --port="$PORT" add 9 crashpoi crashkw)"
BASELINE_A="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
BASELINE_B="$("$CLIENT" --port="$PORT" search 9 3 crashkw)"
grep -q "crashpoi" <<<"$BASELINE_B" || { echo "smoke: crashpoi missing pre-crash" >&2; exit 1; }

SNAP_OUT="$("$CLIENT" --port="$PORT" snapshot)"
SNAP_PATH="$(cut -f2 <<<"$SNAP_OUT")"
[[ -f "$SNAP_PATH" ]] || { echo "smoke: snapshot file $SNAP_PATH missing" >&2; exit 1; }
echo "smoke: snapshot written ($SNAP_OUT)"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: server killed with SIGKILL"

start_server --snapshot-dir="$SNAPDIR"
grep -q "restored snapshot" "$LOG" || { echo "smoke: restart did not restore from snapshot" >&2; cat "$LOG" >&2; exit 1; }

AFTER_A="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
AFTER_B="$("$CLIENT" --port="$PORT" search 9 3 crashkw)"
[[ "$AFTER_A" == "$BASELINE_A" ]] || { echo "smoke: post-restore results differ (baseline A)" >&2; diff <(echo "$BASELINE_A") <(echo "$AFTER_A") >&2 || true; exit 1; }
[[ "$AFTER_B" == "$BASELINE_B" ]] || { echo "smoke: post-restore results differ (baseline B)" >&2; diff <(echo "$BASELINE_B") <(echo "$AFTER_B") >&2 || true; exit 1; }
grep -q "crashpoi" <<<"$AFTER_B" || { echo "smoke: crashpoi lost across crash" >&2; exit 1; }
echo "smoke: post-crash results byte-identical (poi id $CRASH_ID survived)"

# RELOAD over the wire converges on the same snapshot.
"$CLIENT" --port="$PORT" reload >/dev/null
AFTER_RELOAD="$("$CLIENT" --port="$PORT" search 5 5 "kw0 or kw1")"
[[ "$AFTER_RELOAD" == "$BASELINE_A" ]] || { echo "smoke: RELOAD changed results" >&2; exit 1; }
echo "smoke: RELOAD opcode ok"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "smoke: snapshot server ignored SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

# ---- replication / failover -----------------------------------------
# Primary + replica pair: the replica bootstraps from the primary's
# snapshot, catches up on a poll, serves byte-identical reads, rejects
# writes (redirecting to the primary), and keeps answering a failover
# client after the primary dies by SIGKILL.

start_server --snapshot-dir="$PSNAPDIR"
PRIMARY_PORT="$PORT"
echo "smoke: primary up on port $PRIMARY_PORT"

REPL_ID="$("$CLIENT" --port="$PRIMARY_PORT" add 11 replpoi replkw)"
"$CLIENT" --port="$PRIMARY_PORT" snapshot >/dev/null
echo "smoke: primary snapshot written (poi id $REPL_ID)"

: >"$RLOG"
"$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 \
  --snapshot-dir="$RSNAPDIR" --role=replica \
  --primary=127.0.0.1:"$PRIMARY_PORT" --replica-poll-ms=100 >"$RLOG" 2>&1 &
REPLICA_PID=$!
REPLICA_PORT=""
for _ in $(seq 1 100); do
  REPLICA_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$RLOG")"
  [[ -n "$REPLICA_PORT" ]] && break
  kill -0 "$REPLICA_PID" 2>/dev/null || { cat "$RLOG" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$REPLICA_PORT" ]] || { echo "smoke: replica never reported its port" >&2; cat "$RLOG" >&2; exit 1; }
grep -q "restored snapshot" "$RLOG" || { echo "smoke: replica did not bootstrap from primary snapshot" >&2; cat "$RLOG" >&2; exit 1; }
echo "smoke: replica up on port $REPLICA_PORT (bootstrapped from primary)"

# Wait until the replica's health reports the primary's sequence.
SEQ=""
for _ in $(seq 1 100); do
  SEQ="$("$CLIENT" --port="$REPLICA_PORT" health | awk -F'\t' '$1 == "snapshot_sequence" { print $2 }')"
  [[ -n "$SEQ" && "$SEQ" -ge 1 ]] && break
  sleep 0.1
done
[[ -n "$SEQ" && "$SEQ" -ge 1 ]] || { echo "smoke: replica never caught up (sequence=$SEQ)" >&2; cat "$RLOG" >&2; exit 1; }
ROLE="$("$CLIENT" --port="$REPLICA_PORT" health | awk -F'\t' '$1 == "role" { print $2 }')"
[[ "$ROLE" == "replica" ]] || { echo "smoke: replica reports role=$ROLE" >&2; exit 1; }
echo "smoke: replica caught up (snapshot_sequence=$SEQ)"

# Byte-identical reads on both sides, including the replicated POI.
PRIMARY_READ="$("$CLIENT" --port="$PRIMARY_PORT" search 5 5 "kw0 or kw1")"
REPLICA_READ="$("$CLIENT" --port="$REPLICA_PORT" search 5 5 "kw0 or kw1")"
[[ "$PRIMARY_READ" == "$REPLICA_READ" ]] || { echo "smoke: replica reads differ from primary" >&2; diff <(echo "$PRIMARY_READ") <(echo "$REPLICA_READ") >&2 || true; exit 1; }
REPLICA_POI="$("$CLIENT" --port="$REPLICA_PORT" search 11 1 replkw)"
grep -q "replpoi" <<<"$REPLICA_POI" || { echo "smoke: replicated POI missing on replica" >&2; exit 1; }
echo "smoke: replica reads byte-identical to primary"

# A write sent to the replica endpoint follows the NOT_PRIMARY redirect
# to the live primary and succeeds there.
REDIR_ID="$("$CLIENT" --port="$REPLICA_PORT" add 13 redirpoi redirkw)"
FOUND_ON_PRIMARY="$("$CLIENT" --port="$PRIMARY_PORT" search 13 1 redirkw)"
grep -q "redirpoi" <<<"$FOUND_ON_PRIMARY" || { echo "smoke: redirected write missing on primary" >&2; exit 1; }
echo "smoke: replica write redirected to primary (poi id $REDIR_ID)"

# The redirected write reaches the replica by op-log tailing — the
# primary's log ships just that record, so no second snapshot install
# happens even after the primary writes snapshot 2.
"$CLIENT" --port="$PRIMARY_PORT" snapshot >/dev/null
FAILOVER_BASELINE=""
for _ in $(seq 1 100); do
  FAILOVER_BASELINE="$("$CLIENT" --port="$REPLICA_PORT" search 13 1 redirkw)"
  grep -q "redirpoi" <<<"$FAILOVER_BASELINE" && break
  sleep 0.1
done
grep -q "redirpoi" <<<"$FAILOVER_BASELINE" || { echo "smoke: redirected write never reached replica" >&2; cat "$RLOG" >&2; exit 1; }
RSTATS="$("$CLIENT" --port="$REPLICA_PORT" stats)"
RSOURCE="$(awk -F'\t' '$1 == "replication_source" { print $2 }' <<<"$RSTATS")"
RRECORDS="$(awk -F'\t' '$1 == "replication_oplog_records" { print $2 }' <<<"$RSTATS")"
RINSTALLS="$(awk -F'\t' '$1 == "replication_installs_ok" { print $2 }' <<<"$RSTATS")"
[[ "$RSOURCE" == "1" ]] || { echo "smoke: replica not tailing the op log (replication_source=$RSOURCE)" >&2; echo "$RSTATS" >&2; exit 1; }
[[ -n "$RRECORDS" && "$RRECORDS" -ge 1 ]] || { echo "smoke: no op-log records shipped (replication_oplog_records=$RRECORDS)" >&2; exit 1; }
# The boot-time bootstrap fetch is not a replicator install, so the
# install counter stays at zero while tailing does all the work.
[[ "$RINSTALLS" == "0" ]] || { echo "smoke: tailing replica took snapshot installs (replication_installs_ok=$RINSTALLS)" >&2; exit 1; }
echo "smoke: replica caught up by log tailing (records=$RRECORDS, snapshot installs=$RINSTALLS)"

# Kill the primary with no warning; the failover client (endpoint list
# includes the dead primary first) must keep answering from the replica.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: primary killed with SIGKILL"

FAILOVER_READ="$("$CLIENT" --endpoints=127.0.0.1:"$PRIMARY_PORT",127.0.0.1:"$REPLICA_PORT" search 13 1 redirkw)"
[[ "$FAILOVER_READ" == "$FAILOVER_BASELINE" ]] || { echo "smoke: failover read differs" >&2; diff <(echo "$FAILOVER_BASELINE") <(echo "$FAILOVER_READ") >&2 || true; exit 1; }
"$CLIENT" --endpoints=127.0.0.1:"$PRIMARY_PORT",127.0.0.1:"$REPLICA_PORT" ping
echo "smoke: failover client keeps answering after primary death"

# ---- observability ---------------------------------------------------
# Scrape Prometheus text from the surviving replica: the key series must
# be present, and engine counters must be monotone across scrapes that
# bracket more query traffic.
SCRAPE1="$("$CLIENT" --port="$REPLICA_PORT" metrics)"
for series in \
  "# TYPE kspin_requests_ok counter" \
  "kspin_engine_distance_computations" \
  "kspin_engine_false_positive_distances" \
  "kspin_query_latency_us_bucket{le=\"+Inf\"}" \
  "kspin_query_latency_us_count" \
  "# TYPE kspin_queue_depth gauge" \
  "kspin_replication_lag_ms"; do
  grep -qF "$series" <<<"$SCRAPE1" || { echo "smoke: metrics missing series: $series" >&2; echo "$SCRAPE1" >&2; exit 1; }
done
DIST1="$(awk '$1 == "kspin_engine_distance_computations" { print $2 }' <<<"$SCRAPE1")"
"$CLIENT" --port="$REPLICA_PORT" search 5 5 "kw0 or kw1" >/dev/null
SCRAPE2="$("$CLIENT" --port="$REPLICA_PORT" metrics)"
DIST2="$(awk '$1 == "kspin_engine_distance_computations" { print $2 }' <<<"$SCRAPE2")"
[[ "$DIST1" =~ ^[0-9]+$ && "$DIST2" =~ ^[0-9]+$ ]] || { echo "smoke: non-numeric engine counter ($DIST1 / $DIST2)" >&2; exit 1; }
[[ "$DIST2" -gt "$DIST1" ]] || { echo "smoke: engine counter not monotone ($DIST1 -> $DIST2)" >&2; exit 1; }
echo "smoke: metrics scrape ok (engine_distance_computations $DIST1 -> $DIST2)"

# With the primary gone, writes must fail rather than land on the replica.
if "$CLIENT" --port="$REPLICA_PORT" add 14 orphanpoi orphankw 2>/dev/null; then
  echo "smoke: write unexpectedly succeeded with primary dead" >&2
  exit 1
fi
"$CLIENT" --port="$REPLICA_PORT" ping
echo "smoke: writes fail cleanly without a primary, replica still serves"

kill -INT "$REPLICA_PID"
for _ in $(seq 1 100); do
  kill -0 "$REPLICA_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$REPLICA_PID" 2>/dev/null; then
  echo "smoke: replica ignored SIGINT" >&2
  exit 1
fi
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""

# ---- durable mutations: op log, kill -9 replay, tailing, failover ----
# The v3 write path: acked insert/update/delete land in the op log before
# the reply goes out, so they must survive a kill -9 with no snapshot
# covering them, ship to a replica as log records (not a snapshot
# transfer), and stay readable through a failover client.

start_server --snapshot-dir="$MPRIDIR"
MPRI_PORT="$PORT"
echo "smoke: oplog primary up on port $MPRI_PORT"

# Baseline snapshot BEFORE the writes: everything after it lives only in
# the op log until replay proves it durable.
"$CLIENT" --port="$MPRI_PORT" snapshot >/dev/null

INS_OUT="$("$CLIENT" --port="$MPRI_PORT" insert 7 durablepoi durkw)"
DUR_ID="${INS_OUT%%$'\t'*}"
grep -q "seq=" <<<"$INS_OUT" || { echo "smoke: insert reply missing sequence: $INS_OUT" >&2; exit 1; }
"$CLIENT" --port="$MPRI_PORT" update "$DUR_ID" +durkw2 >/dev/null
DISP_OUT="$("$CLIENT" --port="$MPRI_PORT" insert 9 disposablepoi durkw)"
DISP_ID="${DISP_OUT%%$'\t'*}"
"$CLIENT" --port="$MPRI_PORT" delete "$DISP_ID" >/dev/null
echo "smoke: durable writes acked (insert id $DUR_ID, $INS_OUT)"

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: oplog primary killed with SIGKILL"

start_server --snapshot-dir="$MPRIDIR"
MPRI_PORT="$PORT"
grep -q "restored snapshot" "$LOG" || { echo "smoke: oplog restart did not restore snapshot" >&2; cat "$LOG" >&2; exit 1; }
MSTATS="$("$CLIENT" --port="$MPRI_PORT" stats)"
REPLAYED="$(awk -F'\t' '$1 == "oplog_replay_records" { print $2 }' <<<"$MSTATS")"
[[ -n "$REPLAYED" && "$REPLAYED" -ge 4 ]] || { echo "smoke: expected >=4 replayed op-log records, got $REPLAYED" >&2; cat "$LOG" >&2; exit 1; }
REPLAY_READ="$("$CLIENT" --port="$MPRI_PORT" search 7 3 durkw2)"
grep -q "durablepoi" <<<"$REPLAY_READ" || { echo "smoke: acked insert+update lost across kill -9" >&2; exit 1; }
POST_DELETE="$("$CLIENT" --port="$MPRI_PORT" search 9 5 durkw)"
if grep -q "disposablepoi" <<<"$POST_DELETE"; then
  echo "smoke: deleted POI resurrected by replay" >&2
  exit 1
fi
echo "smoke: kill -9 replay ok (oplog_replay_records=$REPLAYED, durablepoi survived, delete held)"

# Replica bootstraps from the pre-write snapshot, then must receive the
# writes by tailing the op log — no further snapshot transfer.
: >"$RLOG"
"$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 \
  --snapshot-dir="$MREPDIR" --role=replica \
  --primary=127.0.0.1:"$MPRI_PORT" --replica-poll-ms=50 >"$RLOG" 2>&1 &
REPLICA_PID=$!
MREP_PORT=""
for _ in $(seq 1 100); do
  MREP_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$RLOG")"
  [[ -n "$MREP_PORT" ]] && break
  kill -0 "$REPLICA_PID" 2>/dev/null || { cat "$RLOG" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$MREP_PORT" ]] || { echo "smoke: oplog replica never reported its port" >&2; cat "$RLOG" >&2; exit 1; }

TAILED=""
for _ in $(seq 1 100); do
  TAILED="$("$CLIENT" --port="$MREP_PORT" search 7 3 durkw2 2>/dev/null || true)"
  grep -q "durablepoi" <<<"$TAILED" && break
  sleep 0.1
done
grep -q "durablepoi" <<<"$TAILED" || { echo "smoke: durable write never reached replica by tailing" >&2; cat "$RLOG" >&2; exit 1; }
MRSTATS="$("$CLIENT" --port="$MREP_PORT" stats)"
MRSOURCE="$(awk -F'\t' '$1 == "replication_source" { print $2 }' <<<"$MRSTATS")"
MRRECORDS="$(awk -F'\t' '$1 == "replication_oplog_records" { print $2 }' <<<"$MRSTATS")"
MRINSTALLS="$(awk -F'\t' '$1 == "replication_installs_ok" { print $2 }' <<<"$MRSTATS")"
MRAPPLIED="$(awk -F'\t' '$1 == "mutations_applied" { print $2 }' <<<"$MRSTATS")"
[[ "$MRSOURCE" == "1" ]] || { echo "smoke: oplog replica not tailing (replication_source=$MRSOURCE)" >&2; echo "$MRSTATS" >&2; exit 1; }
[[ "$MRINSTALLS" == "0" ]] || { echo "smoke: oplog replica took $MRINSTALLS snapshot installs; tailing should need none" >&2; exit 1; }
[[ -n "$MRRECORDS" && "$MRRECORDS" -ge 4 ]] || { echo "smoke: oplog replica shipped too few records ($MRRECORDS)" >&2; exit 1; }
[[ -n "$MRAPPLIED" && "$MRAPPLIED" -ge 4 ]] || { echo "smoke: oplog replica applied too few mutations ($MRAPPLIED)" >&2; exit 1; }
echo "smoke: replica received writes by tailing (records=$MRRECORDS, applied=$MRAPPLIED, installs=$MRINSTALLS)"

# Replication lag while tailing is bounded by the poll interval, not a
# snapshot cycle: with --replica-poll-ms=50 the gauge must stay small.
LAG="$("$CLIENT" --port="$MREP_PORT" metrics | awk '$1 == "kspin_replication_lag_ms" { print $2 }')"
[[ "$LAG" =~ ^[0-9]+$ && "$LAG" -lt 1000 ]] || { echo "smoke: implausible replication_lag_ms=$LAG while tailing" >&2; exit 1; }
echo "smoke: replication lag while tailing: ${LAG}ms"

# One more acked write, then kill the primary: a failover read against
# the dead-primary-first endpoint list must still see every write.
LIVE_OUT="$("$CLIENT" --port="$MPRI_PORT" insert 11 livepoi durkw2)"
LIVE_READ=""
for _ in $(seq 1 100); do
  LIVE_READ="$("$CLIENT" --port="$MREP_PORT" search 11 3 durkw2 2>/dev/null || true)"
  grep -q "livepoi" <<<"$LIVE_READ" && break
  sleep 0.1
done
grep -q "livepoi" <<<"$LIVE_READ" || { echo "smoke: final write never reached replica" >&2; cat "$RLOG" >&2; exit 1; }

kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
FAILOVER_MUT="$("$CLIENT" --endpoints=127.0.0.1:"$MPRI_PORT",127.0.0.1:"$MREP_PORT" search 7 3 durkw2)"
grep -q "durablepoi" <<<"$FAILOVER_MUT" || { echo "smoke: failover read lost the durable write" >&2; exit 1; }
echo "smoke: failover read sees durable writes after primary death ($LIVE_OUT acked)"

# With no live primary, keyed mutations must fail cleanly, not land on
# the replica.
if "$CLIENT" --port="$MREP_PORT" insert 13 orphanpoi durkw 2>/dev/null; then
  echo "smoke: insert unexpectedly succeeded with primary dead" >&2
  exit 1
fi
"$CLIENT" --port="$MREP_PORT" ping
echo "smoke: keyed writes fail cleanly without a primary"

kill -INT "$REPLICA_PID"
for _ in $(seq 1 100); do
  kill -0 "$REPLICA_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$REPLICA_PID" 2>/dev/null; then
  echo "smoke: oplog replica ignored SIGINT" >&2
  exit 1
fi
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""

# ---- epoch-fenced failover drill under the chaos proxy ---------------
# The failure-drill scenario from docs/persistence.md, driven end to end
# through tools/chaos_proxy with a deterministic seeded fault plan:
# writers reach the primary only through the proxy; the link is cut
# mid-reign, the replica is promoted behind the partition, the stale
# primary absorbs one divergent write and is then fenced (STALE_EPOCH);
# the failover client re-routes to the new primary; finally the
# ex-primary rejoins as a replica, quarantines its divergent tail, and
# converges on the new reign.

start_server --snapshot-dir="$FOPRI_SNAP" --oplog-dir="$FOPRI_OPLOG"
FOPRI_PORT="$PORT"
echo "smoke: failover primary up on port $FOPRI_PORT"

"$PROXY" --target=127.0.0.1:"$FOPRI_PORT" --seed=11 --delay-ms=2 \
  >"$PXLOG" 2>"$PXERR" &
PROXY_PID=$!
PXPORT=""
for _ in $(seq 1 100); do
  PXPORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$PXLOG")"
  [[ -n "$PXPORT" ]] && break
  kill -0 "$PROXY_PID" 2>/dev/null || fo_die "chaos proxy died at startup"
  sleep 0.1
done
[[ -n "$PXPORT" ]] || fo_die "chaos proxy never reported its port"
echo "smoke: chaos proxy on port $PXPORT (seed=11, delay-ms=2)"

# Shared history lands through the proxy, then a snapshot seeds the
# replica's bootstrap.
SHARED_OUT="$("$CLIENT" --port="$PXPORT" insert 5 sharedpoi fokw)" \
  || fo_die "shared insert through proxy failed"
"$CLIENT" --port="$FOPRI_PORT" snapshot >/dev/null
echo "smoke: shared write through proxy acked ($SHARED_OUT)"

: >"$RLOG"
"$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 \
  --snapshot-dir="$FOREP_SNAP" --oplog-dir="$FOREP_OPLOG" --role=replica \
  --primary=127.0.0.1:"$FOPRI_PORT" --replica-poll-ms=50 >"$RLOG" 2>&1 &
REPLICA_PID=$!
FOREP_PORT=""
for _ in $(seq 1 100); do
  FOREP_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$RLOG")"
  [[ -n "$FOREP_PORT" ]] && break
  kill -0 "$REPLICA_PID" 2>/dev/null || fo_die "failover replica died at startup"
  sleep 0.1
done
[[ -n "$FOREP_PORT" ]] || fo_die "failover replica never reported its port"
CAUGHT=""
for _ in $(seq 1 100); do
  CAUGHT="$("$CLIENT" --port="$FOREP_PORT" search 5 1 fokw 2>/dev/null || true)"
  grep -q "sharedpoi" <<<"$CAUGHT" && break
  sleep 0.1
done
grep -q "sharedpoi" <<<"$CAUGHT" || fo_die "replica never caught up on shared write"
echo "smoke: failover replica up on port $FOREP_PORT and caught up"

# Cut the link. Writes through the proxy must now fail fast, not hang.
kill -USR1 "$PROXY_PID"
for _ in $(seq 1 50); do
  grep -q "partition: on" "$PXERR" && break
  sleep 0.1
done
grep -q "partition: on" "$PXERR" || fo_die "proxy never acknowledged partition"
if "$CLIENT" --port="$PXPORT" --retries=1 insert 6 lostpoi fokw 2>/dev/null; then
  fo_die "write through a partitioned proxy unexpectedly succeeded"
fi
echo "smoke: partition on, writes through proxy fail fast"

# Promote the replica behind the partition: epoch 1, role primary.
PROMOTE_OUT="$("$CLIENT" --port="$FOREP_PORT" promote)" \
  || fo_die "promote failed"
NEW_EPOCH="$(awk -F'\t' '$1 == "epoch" { print $2 }' <<<"$PROMOTE_OUT")"
[[ "$NEW_EPOCH" == "1" ]] || fo_die "promote reported epoch=$NEW_EPOCH, expected 1"
PROMOTED_ROLE="$("$CLIENT" --port="$FOREP_PORT" health | awk -F'\t' '$1 == "role" { print $2 }')"
[[ "$PROMOTED_ROLE" == "primary" ]] || fo_die "promoted replica reports role=$PROMOTED_ROLE"
echo "smoke: replica promoted under partition (epoch=$NEW_EPOCH)"

# The fleet health view shows the split brain: both sides claim primary,
# but only one holds the newer epoch.
HEALTH_TABLE="$("$KCLI" health --endpoints=127.0.0.1:"$FOPRI_PORT",127.0.0.1:"$FOREP_PORT")" \
  || fo_die "kspin_cli health failed"
grep -q "epoch" <<<"$HEALTH_TABLE" || fo_die "kspin_cli health missing epoch column"
echo "smoke: fleet health table ok"
echo "$HEALTH_TABLE" | sed 's/^/smoke:   /'

# The stale primary still takes one divergent write from its side of the
# partition, then the first epoch-aware writer fences it: every write
# after that dies with STALE_EPOCH while reads keep working.
"$CLIENT" --port="$FOPRI_PORT" insert 7 doomedpoi doomkw >/dev/null \
  || fo_die "divergent write on stale primary failed"
if FENCE_OUT="$("$CLIENT" --port="$FOPRI_PORT" --fence-epoch=1 --retries=1 insert 7 fencedpoi fokw 2>&1)"; then
  fo_die "fenced write unexpectedly succeeded: $FENCE_OUT"
fi
grep -q "STALE_EPOCH" <<<"$FENCE_OUT" || fo_die "fencing did not report STALE_EPOCH: $FENCE_OUT"
if "$CLIENT" --port="$FOPRI_PORT" --retries=1 insert 8 latepoi fokw 2>/dev/null; then
  fo_die "stale primary accepted a write after being fenced"
fi
STALE_COUNT="$("$CLIENT" --port="$FOPRI_PORT" stats | awk -F'\t' '$1 == "requests_stale_epoch" { print $2 }')"
[[ -n "$STALE_COUNT" && "$STALE_COUNT" -ge 2 ]] || fo_die "requests_stale_epoch=$STALE_COUNT, expected >=2"
"$CLIENT" --port="$FOPRI_PORT" ping >/dev/null || fo_die "fenced primary stopped serving reads"
echo "smoke: stale primary fenced (requests_stale_epoch=$STALE_COUNT), reads still served"

# Heal the partition; a failover client listing the fenced ex-primary
# first must re-route the write to the new primary on its own.
kill -USR1 "$PROXY_PID"
for _ in $(seq 1 50); do
  grep -q "partition: off" "$PXERR" && break
  sleep 0.1
done
grep -q "partition: off" "$PXERR" || fo_die "proxy never healed the partition"
REROUTE_OUT="$("$CLIENT" --endpoints=127.0.0.1:"$PXPORT",127.0.0.1:"$FOREP_PORT" insert 9 reroutepoi fokw2)" \
  || fo_die "failover client write failed after heal"
REROUTED="$("$CLIENT" --port="$FOREP_PORT" search 9 1 fokw2)"
grep -q "reroutepoi" <<<"$REROUTED" || fo_die "re-routed write missing on new primary"
echo "smoke: failover client re-routed write to new primary ($REROUTE_OUT)"

# The ex-primary dies and rejoins as a replica of the new primary. Boot
# replay resurrects its divergent write; tailing detects the divergence,
# quarantines the tail on disk, resyncs via snapshot, and converges.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
"$CLIENT" --port="$FOREP_PORT" snapshot >/dev/null
: >"$LOG"
"$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 \
  --snapshot-dir="$FOPRI_SNAP" --oplog-dir="$FOPRI_OPLOG" --role=replica \
  --primary=127.0.0.1:"$FOREP_PORT" --replica-poll-ms=50 >"$LOG" 2>&1 &
SERVER_PID=$!
REJOIN_PORT=""
for _ in $(seq 1 100); do
  REJOIN_PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")"
  [[ -n "$REJOIN_PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fo_die "rejoining ex-primary died at startup"
  sleep 0.1
done
[[ -n "$REJOIN_PORT" ]] || fo_die "rejoining ex-primary never reported its port"

CONVERGED=""
for _ in $(seq 1 100); do
  CONVERGED="$("$CLIENT" --port="$REJOIN_PORT" search 9 1 fokw2 2>/dev/null || true)"
  grep -q "reroutepoi" <<<"$CONVERGED" && break
  sleep 0.1
done
grep -q "reroutepoi" <<<"$CONVERGED" || fo_die "rejoined ex-primary never converged on new reign"
DOOMED_READ="$("$CLIENT" --port="$REJOIN_PORT" search 7 5 doomkw)"
if grep -q "doomedpoi" <<<"$DOOMED_READ"; then
  fo_die "divergent write survived the rejoin repair"
fi
QUARANTINED="$("$CLIENT" --port="$REJOIN_PORT" stats | awk -F'\t' '$1 == "oplog_quarantined_records" { print $2 }')"
[[ -n "$QUARANTINED" && "$QUARANTINED" -ge 1 ]] || fo_die "oplog_quarantined_records=$QUARANTINED, expected >=1"
ls "$FOPRI_OPLOG"/quarantine/divergent-*.log >/dev/null 2>&1 \
  || fo_die "no quarantine file preserved in $FOPRI_OPLOG/quarantine"
REJOIN_EPOCH="$("$CLIENT" --port="$REJOIN_PORT" health | awk -F'\t' '$1 == "primary_epoch" { print $2 }')"
[[ "$REJOIN_EPOCH" == "1" ]] || fo_die "rejoined ex-primary reports epoch=$REJOIN_EPOCH, expected 1"
echo "smoke: ex-primary rejoined, quarantined $QUARANTINED divergent record(s), converged at epoch $REJOIN_EPOCH"

# ---- diag: the flight recorder reconstructs the drill ----------------
# With the dust settled and no traffic running, `kspin_cli diag` against
# each survivor must replay the control-plane story from the always-on
# flight recorder alone: the promotion (with its epoch) on the new
# primary, and the replication source switch on the rejoined ex-primary.
DIAG_NEWPRI="$("$KCLI" diag --endpoints=127.0.0.1:"$FOREP_PORT")" \
  || fo_die "kspin_cli diag against the new primary failed"
grep -q '"type":"PROMOTE","a":1' <<<"$DIAG_NEWPRI" \
  || fo_die "diag on new primary missing the epoch-1 PROMOTE event"
DIAG_REJOIN="$("$KCLI" diag --endpoints=127.0.0.1:"$REJOIN_PORT")" \
  || fo_die "kspin_cli diag against the rejoined ex-primary failed"
grep -q '"type":"REPLICATION_SOURCE_' <<<"$DIAG_REJOIN" \
  || fo_die "diag on rejoined ex-primary missing the replication source switch"
echo "smoke: diag reconstructs the promotion + source switch from the recorder"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && fo_die "rejoined ex-primary ignored SIGINT"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
kill -INT "$REPLICA_PID"
for _ in $(seq 1 100); do
  kill -0 "$REPLICA_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$REPLICA_PID" 2>/dev/null && fo_die "promoted primary ignored SIGINT"
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""
kill -TERM "$PROXY_PID" 2>/dev/null || true
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""
echo "smoke: failover drill complete"

# ---- overload / brownout drill --------------------------------------
# Saturate a deliberately tiny server: 2 workers with a 2 ms service
# floor cap capacity at ~1000 qps, and a full 32-slot queue means ~32 ms
# of sojourn — well past the 15 ms SLO. 48 closed-loop connections keep
# it pinned there, so the AIMD limiter must clamp, the excess must shed
# with OVERLOADED, and brownout must engage. Once the load stops, the
# controller has to stand down without intervention.

start_server --workers=2 --queue=32 --service-floor-ms=2 \
  --slo-ms=15 --overload-tick-ms=20 --codel-target-ms=5 \
  --brownout-enter-ticks=2 --brownout-exit-ticks=3 --retry-after-ms=120
echo "smoke: overload server up on port $PORT"

# The burst goes through chaos_proxy (transparent but for a 1 ms relay
# delay), so shed-fast replies prove themselves over a real extra hop;
# stats polling talks to the server directly, the way a dashboard would.
: >"$PXLOG"; : >"$PXERR"
"$PROXY" --target=127.0.0.1:"$PORT" --seed=13 --delay-ms=1 \
  >"$PXLOG" 2>"$PXERR" &
PROXY_PID=$!
PXPORT=""
for _ in $(seq 1 100); do
  PXPORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$PXLOG")"
  [[ -n "$PXPORT" ]] && break
  kill -0 "$PROXY_PID" 2>/dev/null || { echo "smoke: overload proxy died at startup" >&2; cat "$PXERR" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$PXPORT" ]] || { echo "smoke: overload proxy never reported its port" >&2; exit 1; }

"$LOADGEN" --port="$PXPORT" --threads=48 --seconds=2 --vertices=400 \
  --deadline-ms=500 \
  || { echo "smoke: load harness failed" >&2; cat "$LOG" >&2; exit 1; }

OSTATS="$("$CLIENT" --port="$PORT" stats)"
OVL_OK="$(awk -F'\t' '$1 == "requests_ok" { print $2 }' <<<"$OSTATS")"
# Any shed cause counts: hard queue-full, AIMD limit, CoDel sojourn, or
# rate limit — which one fires first depends on arrival timing.
OVL_SHED="$(awk -F'\t' '$1 == "requests_overloaded" || $1 == "requests_admission_limited" || $1 == "requests_codel_shed" || $1 == "requests_rate_limited" { total += $2 } END { print total + 0 }' <<<"$OSTATS")"
OVL_ENTRIES="$(awk -F'\t' '$1 == "brownout_entries" { print $2 }' <<<"$OSTATS")"
[[ -n "$OVL_OK" && "$OVL_OK" -ge 1 ]] \
  || { echo "smoke: nothing served under overload (requests_ok=$OVL_OK)" >&2; exit 1; }
[[ -n "$OVL_SHED" && "$OVL_SHED" -ge 1 ]] \
  || { echo "smoke: nothing shed under overload (requests_overloaded=$OVL_SHED)" >&2; cat "$LOG" >&2; exit 1; }
[[ -n "$OVL_ENTRIES" && "$OVL_ENTRIES" -ge 1 ]] \
  || { echo "smoke: brownout never engaged (brownout_entries=$OVL_ENTRIES)" >&2; cat "$LOG" >&2; exit 1; }
echo "smoke: overload served $OVL_OK, shed $OVL_SHED, brownout_entries=$OVL_ENTRIES"

# Recovery: with the load gone the limiter re-opens and brownout exits.
# Each stats poll wakes the I/O loop, so ticks keep firing while idle.
OVL_STATE=""
for _ in $(seq 1 100); do
  OVL_STATE="$("$CLIENT" --port="$PORT" stats | awk -F'\t' '$1 == "overload_state" { print $2 }')"
  [[ "$OVL_STATE" == "0" ]] && break
  sleep 0.1
done
[[ "$OVL_STATE" == "0" ]] \
  || { echo "smoke: overload_state=$OVL_STATE never recovered to 0" >&2; cat "$LOG" >&2; exit 1; }
"$CLIENT" --port="$PORT" search 5 3 "kw0 or kw1" >/dev/null
OVL_SECS="$("$CLIENT" --port="$PORT" stats | awk -F'\t' '$1 == "brownout_seconds" { print $2 }')"
echo "smoke: overload recovered (overload_state=0, brownout_seconds=${OVL_SECS:-0})"

# The whole brownout episode must be reconstructible from the recorder
# on the now-idle server: entry, exit, and at least one shed burst.
DIAG_OVL="$("$KCLI" diag --endpoints=127.0.0.1:"$PORT")" \
  || { echo "smoke: kspin_cli diag against overload server failed" >&2; exit 1; }
grep -q '"type":"BROWNOUT_ENTER"' <<<"$DIAG_OVL" \
  || { echo "smoke: diag missing BROWNOUT_ENTER" >&2; echo "$DIAG_OVL" >&2; exit 1; }
grep -q '"type":"BROWNOUT_EXIT"' <<<"$DIAG_OVL" \
  || { echo "smoke: diag missing BROWNOUT_EXIT" >&2; echo "$DIAG_OVL" >&2; exit 1; }
grep -q '"type":"SHED_BURST"' <<<"$DIAG_OVL" \
  || { echo "smoke: diag missing SHED_BURST" >&2; echo "$DIAG_OVL" >&2; exit 1; }
echo "smoke: diag reconstructs the brownout episode from the recorder"

kill -TERM "$PROXY_PID" 2>/dev/null || true
wait "$PROXY_PID" 2>/dev/null || true
PROXY_PID=""
kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
kill -0 "$SERVER_PID" 2>/dev/null && { echo "smoke: overload server ignored SIGINT" >&2; exit 1; }
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "smoke: overload drill complete"
echo "smoke: PASS"
