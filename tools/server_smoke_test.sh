#!/usr/bin/env bash
# End-to-end smoke test: boots kspin_server on an ephemeral port, drives
# it with kspin_client (ping, searches, an update, stats), and checks a
# clean SIGINT shutdown. Exercises the real binaries over real TCP — the
# piece unit tests cannot cover.
#
# Usage: tools/server_smoke_test.sh [build-dir]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
SERVER="$BUILD_DIR/tools/kspin_server"
CLIENT="$BUILD_DIR/tools/kspin_client"
LOG="$(mktemp)"

for bin in "$SERVER" "$CLIENT"; do
  if [[ ! -x "$bin" ]]; then
    echo "smoke: missing binary $bin" >&2
    exit 1
  fi
done

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill "$SERVER_PID" 2>/dev/null || true
  rm -f "$LOG"
}
trap cleanup EXIT

"$SERVER" --port=0 --grid=20x20 --pois=200 --seed=3 >"$LOG" 2>&1 &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on port \([0-9]*\).*/\1/p' "$LOG")"
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG" >&2; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "smoke: server never reported its port" >&2; cat "$LOG" >&2; exit 1; }
echo "smoke: server up on port $PORT"

"$CLIENT" --port="$PORT" ping
echo "smoke: ping ok"

RESULTS="$("$CLIENT" --port="$PORT" search 5 3 "kw0 or kw1")"
[[ -n "$RESULTS" ]] || { echo "smoke: empty search results" >&2; exit 1; }
echo "smoke: search returned $(wc -l <<<"$RESULTS") results"

"$CLIENT" --port="$PORT" ranked 5 3 kw0 kw2 >/dev/null
echo "smoke: ranked search ok"

POI_ID="$("$CLIENT" --port="$PORT" add 7 smoketestpoi smokekw)"
FOUND="$("$CLIENT" --port="$PORT" search 7 1 smokekw)"
grep -q "smoketestpoi" <<<"$FOUND" || { echo "smoke: added POI not found" >&2; exit 1; }
"$CLIENT" --port="$PORT" close "$POI_ID"
echo "smoke: update cycle ok (poi id $POI_ID)"

# Bad queries must be rejected without killing the server.
if "$CLIENT" --port="$PORT" search 5 3 "((kw1" 2>/dev/null; then
  echo "smoke: malformed query unexpectedly accepted" >&2
  exit 1
fi
"$CLIENT" --port="$PORT" ping
echo "smoke: bad query rejected, server alive"

STATS="$("$CLIENT" --port="$PORT" stats)"
grep -q "requests_ok" <<<"$STATS" || { echo "smoke: stats missing requests_ok" >&2; exit 1; }
OK_COUNT="$(awk -F'\t' '$1 == "requests_ok" { print $2 }' <<<"$STATS")"
[[ "$OK_COUNT" -ge 6 ]] || { echo "smoke: implausible requests_ok=$OK_COUNT" >&2; exit 1; }
echo "smoke: stats ok (requests_ok=$OK_COUNT)"

kill -INT "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "smoke: server ignored SIGINT" >&2
  exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q "shutting down" "$LOG" || { echo "smoke: no graceful shutdown log" >&2; cat "$LOG" >&2; exit 1; }
echo "smoke: graceful shutdown ok"
echo "smoke: PASS"
