// chaos_proxy: a deterministic fault-injecting TCP forwarder for failover
// drills (tools/server_smoke_test.sh) and manual chaos testing.
//
//   chaos_proxy --target=HOST:PORT [--listen=P] [--seed=S]
//               [--delay-ms=T] [--drop-after-bytes=N]
//               [--throttle-bytes-per-tick=N] [--partitioned]
//
// The proxy accepts connections on 127.0.0.1:P (P=0 picks an ephemeral
// port; "listening on port <P>" is printed once ready, same contract as
// kspin_server) and forwards bytes both ways to the target. Faults are
// deterministic — same flags + seed, same behaviour — so a failing drill
// reproduces:
//
//   --delay-ms=T        hold every forwarded chunk for T ms (+ seeded
//                       jitter of up to T/4) before relaying it.
//   --drop-after-bytes=N  after relaying N bytes across a connection
//                       (both directions combined), hard-close it —
//                       a mid-request cut, the torn-response case.
//   --throttle-bytes-per-tick=N  relay at most N bytes per direction per
//                       10 ms tick — a slow link; ordering is preserved
//                       (TCP semantics are never violated, only timing).
//   --partitioned       start with the link cut: accepted connections are
//                       closed immediately and nothing reaches the target.
//
// SIGUSR1 toggles the partition at runtime ("partition: on|off" on
// stderr), which is how the smoke test heals the network mid-drill.
//
// Single-threaded poll() loop; connections are independent, faults apply
// per connection. Exit: SIGINT/SIGTERM.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace kspin::chaos {
namespace {

struct Args {
  std::uint16_t listen_port = 0;
  std::string target_host = "127.0.0.1";
  std::uint16_t target_port = 0;
  std::uint64_t seed = 1;
  std::uint32_t delay_ms = 0;
  std::uint64_t drop_after_bytes = 0;  // 0 = never drop.
  std::uint32_t throttle_bytes = 0;    // Per direction per tick; 0 = off.
  bool partitioned = false;
  bool bad = false;
};

Args Parse(int argc, char** argv) {
  Args args;
  bool target_set = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* name) -> std::optional<std::string> {
      const std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("listen")) {
      args.listen_port = static_cast<std::uint16_t>(std::stoul(*v));
    } else if (auto v = value("target")) {
      const std::size_t colon = v->rfind(':');
      if (colon == std::string::npos) {
        args.bad = true;
      } else {
        args.target_host = v->substr(0, colon);
        args.target_port =
            static_cast<std::uint16_t>(std::stoul(v->substr(colon + 1)));
        target_set = true;
      }
    } else if (auto v = value("seed")) {
      args.seed = std::stoull(*v);
    } else if (auto v = value("delay-ms")) {
      args.delay_ms = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (auto v = value("drop-after-bytes")) {
      args.drop_after_bytes = std::stoull(*v);
    } else if (auto v = value("throttle-bytes-per-tick")) {
      args.throttle_bytes = static_cast<std::uint32_t>(std::stoul(*v));
    } else if (arg == "--partitioned") {
      args.partitioned = true;
    } else {
      args.bad = true;
    }
  }
  if (!target_set || args.target_port == 0) args.bad = true;
  return args;
}

using Clock = std::chrono::steady_clock;

/// One buffered direction of a connection. Bytes land in `pending` as
/// they arrive and drain to the other socket once their release time (set
/// by --delay-ms) has passed and the throttle allows.
struct Pipe {
  std::vector<std::uint8_t> pending;
  Clock::time_point release{};  ///< When the front of `pending` may move.
  bool saw_eof = false;
};

struct Connection {
  int client_fd = -1;
  int target_fd = -1;
  Pipe upstream;    // client -> target
  Pipe downstream;  // target -> client
  std::uint64_t relayed = 0;  ///< Total bytes relayed (both directions).
};

volatile std::sig_atomic_t g_toggle_partition = 0;
volatile std::sig_atomic_t g_stop = 0;

void OnUsr1(int) { g_toggle_partition = 1; }
void OnStop(int) { g_stop = 1; }

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void CloseConnection(Connection& conn) {
  if (conn.client_fd >= 0) ::close(conn.client_fd);
  if (conn.target_fd >= 0) ::close(conn.target_fd);
  conn.client_fd = conn.target_fd = -1;
}

int Main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.bad) {
    std::fprintf(
        stderr,
        "usage: chaos_proxy --target=HOST:PORT [--listen=P] [--seed=S] "
        "[--delay-ms=T] [--drop-after-bytes=N] "
        "[--throttle-bytes-per-tick=N] [--partitioned]\n");
    return 1;
  }

  // Seeded xorshift64* jitter stream — all timing noise derives from
  // --seed so runs are reproducible.
  std::uint64_t rng = args.seed ? args.seed : 1;
  const auto next_random = [&rng] {
    rng ^= rng >> 12;
    rng ^= rng << 25;
    rng ^= rng >> 27;
    return rng * 0x2545f4914f6cdd1dull;
  };
  const auto jitter_ms = [&](std::uint32_t base) -> std::uint32_t {
    if (base == 0) return 0;
    return base + static_cast<std::uint32_t>(next_random() % (base / 4 + 1));
  };

  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ::htonl(INADDR_LOOPBACK);
  addr.sin_port = ::htons(args.listen_port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    return 1;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  SetNonBlocking(listener);

  std::signal(SIGUSR1, OnUsr1);
  std::signal(SIGINT, OnStop);
  std::signal(SIGTERM, OnStop);
  std::signal(SIGPIPE, SIG_IGN);

  bool partitioned = args.partitioned;
  std::printf("target: %s:%u\n", args.target_host.c_str(),
              args.target_port);
  std::printf("listening on port %u\n", ::ntohs(addr.sin_port));
  std::fflush(stdout);
  std::fprintf(stderr, "partition: %s\n", partitioned ? "on" : "off");

  std::vector<Connection> connections;
  constexpr std::uint32_t kTickMs = 10;

  while (!g_stop) {
    if (g_toggle_partition) {
      g_toggle_partition = 0;
      partitioned = !partitioned;
      std::fprintf(stderr, "partition: %s\n", partitioned ? "on" : "off");
      if (partitioned) {
        // Cutting the link also cuts established flows, like a pulled
        // cable would.
        for (auto& conn : connections) CloseConnection(conn);
      }
    }

    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const auto& conn : connections) {
      short client_events = 0;
      short target_events = 0;
      if (!conn.upstream.saw_eof) client_events |= POLLIN;
      if (!conn.downstream.saw_eof) target_events |= POLLIN;
      if (!conn.downstream.pending.empty()) client_events |= POLLOUT;
      if (!conn.upstream.pending.empty()) target_events |= POLLOUT;
      fds.push_back({conn.client_fd, client_events, 0});
      fds.push_back({conn.target_fd, target_events, 0});
    }
    ::poll(fds.data(), fds.size(), static_cast<int>(kTickMs));

    // New connections. Under partition they are accepted then dropped on
    // the floor — the client sees an immediate RST/EOF, not a timeout,
    // which keeps drills fast and deterministic.
    if (fds[0].revents & POLLIN) {
      while (true) {
        const int client = ::accept(listener, nullptr, nullptr);
        if (client < 0) break;
        if (partitioned) {
          ::close(client);
          continue;
        }
        const int target = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in taddr{};
        taddr.sin_family = AF_INET;
        taddr.sin_port = ::htons(args.target_port);
        if (::inet_pton(AF_INET, args.target_host.c_str(),
                        &taddr.sin_addr) != 1 ||
            ::connect(target, reinterpret_cast<sockaddr*>(&taddr),
                      sizeof(taddr)) != 0) {
          std::fprintf(stderr, "connect to target failed: %s\n",
                       std::strerror(errno));
          ::close(client);
          ::close(target);
          continue;
        }
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        ::setsockopt(target, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        SetNonBlocking(client);
        SetNonBlocking(target);
        Connection conn;
        conn.client_fd = client;
        conn.target_fd = target;
        connections.push_back(conn);
      }
    }

    const auto now = Clock::now();
    std::size_t fd_index = 1;
    for (auto& conn : connections) {
      const pollfd& client_poll = fds[fd_index++];
      const pollfd& target_poll = fds[fd_index++];
      if (conn.client_fd < 0) continue;

      // Ingest available bytes into the buffered pipes; a fresh chunk on
      // an empty pipe (re)arms the delay timer.
      const auto ingest = [&](int fd, const pollfd& pfd, Pipe& pipe) {
        if (!(pfd.revents & (POLLIN | POLLHUP | POLLERR))) return true;
        std::uint8_t buf[16384];
        while (true) {
          const ssize_t n = ::read(fd, buf, sizeof(buf));
          if (n > 0) {
            if (pipe.pending.empty()) {
              pipe.release =
                  now + std::chrono::milliseconds(jitter_ms(args.delay_ms));
            }
            pipe.pending.insert(pipe.pending.end(), buf, buf + n);
            continue;
          }
          if (n == 0) {
            pipe.saw_eof = true;
            return true;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
          return false;  // Hard error: tear the connection down.
        }
      };
      // Drain a pipe into its destination socket, honouring delay,
      // throttle, and the drop-after budget.
      const auto drain = [&](Pipe& pipe, int dest) {
        if (pipe.pending.empty() || now < pipe.release) return true;
        std::size_t budget = pipe.pending.size();
        if (args.throttle_bytes > 0) {
          budget = std::min<std::size_t>(budget, args.throttle_bytes);
        }
        if (args.drop_after_bytes > 0) {
          if (conn.relayed >= args.drop_after_bytes) return false;
          budget = std::min<std::size_t>(
              budget,
              static_cast<std::size_t>(args.drop_after_bytes -
                                       conn.relayed));
        }
        const ssize_t n = ::write(dest, pipe.pending.data(), budget);
        if (n < 0) {
          return errno == EAGAIN || errno == EWOULDBLOCK;
        }
        pipe.pending.erase(pipe.pending.begin(), pipe.pending.begin() + n);
        conn.relayed += static_cast<std::uint64_t>(n);
        if (args.drop_after_bytes > 0 &&
            conn.relayed >= args.drop_after_bytes) {
          std::fprintf(stderr, "drop-after-bytes budget spent; cutting\n");
          return false;
        }
        return true;
      };

      bool alive = ingest(conn.client_fd, client_poll, conn.upstream) &&
                   ingest(conn.target_fd, target_poll, conn.downstream);
      if (alive) {
        alive = drain(conn.upstream, conn.target_fd) &&
                drain(conn.downstream, conn.client_fd);
      }
      // Natural end: both sides hit EOF and everything buffered drained.
      if (alive && conn.upstream.saw_eof && conn.downstream.saw_eof &&
          conn.upstream.pending.empty() &&
          conn.downstream.pending.empty()) {
        alive = false;
      }
      if (!alive) CloseConnection(conn);
    }
    std::erase_if(connections,
                  [](const Connection& c) { return c.client_fd < 0; });
  }

  for (auto& conn : connections) CloseConnection(conn);
  ::close(listener);
  return 0;
}

}  // namespace
}  // namespace kspin::chaos

int main(int argc, char** argv) { return kspin::chaos::Main(argc, argv); }
