#include "service/poi_service.h"

#include <algorithm>
#include <cctype>

namespace kspin {
namespace {

std::string Lowercase(std::string_view term) {
  std::string out;
  out.reserve(term.size());
  for (char c : term) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

}  // namespace

PoiService::PoiService(const Graph& graph, DistanceOracle& oracle,
                       KSpinOptions options)
    : graph_(&graph), oracle_(&oracle) {
  engine_ = std::make_unique<KSpin>(graph, DocumentStore{}, oracle, options);
}

PoiService::PoiService(const Graph& graph, DistanceOracle& oracle,
                       Vocabulary vocabulary, std::vector<std::string> names,
                       DocumentStore store, std::unique_ptr<AltIndex> alt,
                       std::unique_ptr<KeywordIndex> keyword_index,
                       KSpinOptions options)
    : graph_(&graph),
      oracle_(&oracle),
      vocabulary_(std::move(vocabulary)),
      names_(std::move(names)) {
  engine_ = std::make_unique<KSpin>(graph, std::move(store), oracle,
                                    std::move(alt), std::move(keyword_index),
                                    options, /*initial_generation=*/0);
}

void PoiService::RestoreCatalog(Vocabulary vocabulary,
                                std::vector<std::string> names,
                                DocumentStore store,
                                std::unique_ptr<AltIndex> alt,
                                std::unique_ptr<KeywordIndex> keyword_index,
                                KSpinOptions options) {
  const std::uint64_t next_generation = engine_->StructureGeneration() + 1;
  auto engine = std::make_unique<KSpin>(
      *graph_, std::move(store), *oracle_, std::move(alt),
      std::move(keyword_index), options, next_generation);
  // Only swap once the new engine is fully built: an exception above
  // leaves the service serving the old state.
  vocabulary_ = std::move(vocabulary);
  names_ = std::move(names);
  engine_ = std::move(engine);
  executor_.reset();  // Held references into the old engine.
}

ObjectId PoiService::AddPoi(std::string_view name, VertexId vertex,
                            std::span<const std::string> keywords) {
  std::vector<DocEntry> document;
  document.reserve(keywords.size());
  for (const std::string& keyword : keywords) {
    document.push_back({vocabulary_.AddOrGet(Lowercase(keyword)), 1});
  }
  const ObjectId id = engine_->InsertObject(vertex, std::move(document));
  if (names_.size() <= id) names_.resize(id + 1);
  names_[id] = std::string(name);
  return id;
}

void PoiService::ClosePoi(ObjectId id) { engine_->DeleteObject(id); }

void PoiService::TagPoi(ObjectId id, std::string_view keyword) {
  engine_->AddKeywordToObject(id, vocabulary_.AddOrGet(Lowercase(keyword)));
}

void PoiService::UntagPoi(ObjectId id, std::string_view keyword) {
  const KeywordId t = vocabulary_.IdOf(Lowercase(keyword));
  if (t == kInvalidKeyword) {
    throw std::invalid_argument("UntagPoi: unknown keyword");
  }
  engine_->RemoveKeywordFromObject(id, t);
}

bool PoiService::HasTag(ObjectId id, std::string_view keyword) const {
  if (!engine_->Store().IsLive(id)) return false;
  const KeywordId t = vocabulary_.IdOf(Lowercase(keyword));
  if (t == kInvalidKeyword) return false;
  return engine_->Store().Contains(id, t);
}

std::string PoiService::CanonicalKeyword(std::string_view term) {
  return Lowercase(term);
}

std::vector<PoiResult> PoiService::Search(std::string_view query,
                                          VertexId from, std::uint32_t k,
                                          const QueryControl* control) {
  ParseOptions options;
  options.allow_unknown_keywords = true;  // Unknown term: no matches.
  const ParsedQuery parsed = ParseBooleanQuery(query, vocabulary_, options);
  std::vector<PoiResult> results;
  for (const BkNNResult& r :
       engine_->BooleanKnnCnf(from, k, parsed.clauses, nullptr, control)) {
    results.push_back({r.object, names_[r.object], r.distance, 0.0});
  }
  return results;
}

std::vector<PoiResult> PoiService::SearchRanked(std::string_view query,
                                                VertexId from,
                                                std::uint32_t k,
                                                const QueryControl* control) {
  ParseOptions options;
  options.allow_unknown_keywords = true;
  const ParsedQuery parsed = ParseBooleanQuery(query, vocabulary_, options);
  const std::vector<KeywordId> keywords = parsed.AllKeywords();
  std::vector<PoiResult> results;
  for (const TopKResult& r :
       engine_->TopK(from, k, keywords, nullptr, control)) {
    results.push_back({r.object, names_[r.object], r.distance, r.score});
  }
  return results;
}

std::vector<PoiResult> PoiService::SearchOn(
    QueryProcessor& processor, std::string_view query, VertexId from,
    std::uint32_t k, const QueryControl* control, QueryStats* stats) const {
  ParseOptions options;
  options.allow_unknown_keywords = true;
  const ParsedQuery parsed = ParseBooleanQuery(query, vocabulary_, options);
  std::vector<PoiResult> results;
  for (const BkNNResult& r :
       processor.BooleanKnnCnf(from, k, parsed.clauses, stats, control)) {
    results.push_back({r.object, names_[r.object], r.distance, 0.0});
  }
  return results;
}

std::vector<PoiResult> PoiService::SearchRankedOn(
    QueryProcessor& processor, std::string_view query, VertexId from,
    std::uint32_t k, const QueryControl* control, QueryStats* stats) const {
  ParseOptions options;
  options.allow_unknown_keywords = true;
  const ParsedQuery parsed = ParseBooleanQuery(query, vocabulary_, options);
  const std::vector<KeywordId> keywords = parsed.AllKeywords();
  std::vector<PoiResult> results;
  for (const TopKResult& r :
       processor.TopK(from, k, keywords, stats, control)) {
    results.push_back({r.object, names_[r.object], r.distance, r.score});
  }
  return results;
}

ParallelQueryExecutor& PoiService::Executor(unsigned num_threads) {
  if (executor_ == nullptr ||
      (num_threads != 0 && executor_->NumThreads() != num_threads)) {
    executor_ =
        std::make_unique<ParallelQueryExecutor>(*engine_, num_threads);
  }
  return *executor_;
}

std::vector<std::vector<PoiResult>> PoiService::SearchBatch(
    std::span<const BatchQuery> queries, unsigned num_threads) {
  // Parse serially so syntax errors surface deterministically up front.
  std::vector<ParallelQueryExecutor::CnfQuery> batch(queries.size());
  ParseOptions options;
  options.allow_unknown_keywords = true;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch[i].vertex = queries[i].from;
    batch[i].k = queries[i].k;
    batch[i].clauses =
        ParseBooleanQuery(queries[i].query, vocabulary_, options).clauses;
  }
  std::vector<std::vector<PoiResult>> results(queries.size());
  const auto raw = Executor(num_threads).BooleanKnnCnfBatch(batch);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (const BkNNResult& r : raw[i]) {
      results[i].push_back({r.object, names_[r.object], r.distance, 0.0});
    }
  }
  return results;
}

std::vector<std::vector<PoiResult>> PoiService::SearchRankedBatch(
    std::span<const BatchQuery> queries, unsigned num_threads) {
  std::vector<ParallelQueryExecutor::TopKQuery> batch(queries.size());
  ParseOptions options;
  options.allow_unknown_keywords = true;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    batch[i].vertex = queries[i].from;
    batch[i].k = queries[i].k;
    batch[i].keywords =
        ParseBooleanQuery(queries[i].query, vocabulary_, options)
            .AllKeywords();
  }
  std::vector<std::vector<PoiResult>> results(queries.size());
  const auto raw = Executor(num_threads).TopKBatch(batch);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    for (const TopKResult& r : raw[i]) {
      results[i].push_back({r.object, names_[r.object], r.distance,
                            r.score});
    }
  }
  return results;
}

}  // namespace kspin
