#include "service/query_parser.h"

#include <algorithm>
#include <cctype>
#include <memory>

namespace kspin {
namespace {

struct Token {
  enum class Kind { kKeyword, kAnd, kOr, kLParen, kRParen, kEnd };
  Kind kind;
  std::string text;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view input) : input_(input) {}

  Token Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= input_.size()) return {Token::Kind::kEnd, ""};
    const char c = input_[pos_];
    if (c == '(') {
      ++pos_;
      return {Token::Kind::kLParen, "("};
    }
    if (c == ')') {
      ++pos_;
      return {Token::Kind::kRParen, ")"};
    }
    if (c == '&') {
      pos_ += input_.substr(pos_).starts_with("&&") ? 2 : 1;
      return {Token::Kind::kAnd, "&"};
    }
    if (c == '|') {
      pos_ += input_.substr(pos_).starts_with("||") ? 2 : 1;
      return {Token::Kind::kOr, "|"};
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
        c == '-' || c == '\'') {
      std::string word;
      while (pos_ < input_.size()) {
        const char w = input_[pos_];
        if (!std::isalnum(static_cast<unsigned char>(w)) && w != '_' &&
            w != '-' && w != '\'') {
          break;
        }
        word.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(w))));
        ++pos_;
      }
      if (word == "and") return {Token::Kind::kAnd, word};
      if (word == "or") return {Token::Kind::kOr, word};
      return {Token::Kind::kKeyword, word};
    }
    throw QueryParseError(std::string("unexpected character '") + c +
                          "' at position " + std::to_string(pos_));
  }

 private:
  std::string_view input_;
  std::size_t pos_ = 0;
};

// CNF = conjunction (outer vector) of disjunctive clauses (inner, sorted).
using Cnf = std::vector<std::vector<KeywordId>>;

void Canonicalize(std::vector<KeywordId>& clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
}

Cnf AndCnf(Cnf a, Cnf b, std::size_t max_clauses) {
  a.insert(a.end(), std::make_move_iterator(b.begin()),
           std::make_move_iterator(b.end()));
  if (a.size() > max_clauses) {
    throw QueryParseError("query too complex: clause limit exceeded");
  }
  return a;
}

Cnf OrCnf(const Cnf& a, const Cnf& b, std::size_t max_clauses) {
  // (A1 & A2 & ...) | (B1 & B2 & ...) distributes into the cross product
  // of clauses.
  Cnf result;
  if (a.size() * b.size() > max_clauses) {
    throw QueryParseError("query too complex: clause limit exceeded");
  }
  for (const auto& ca : a) {
    for (const auto& cb : b) {
      std::vector<KeywordId> merged = ca;
      merged.insert(merged.end(), cb.begin(), cb.end());
      Canonicalize(merged);
      result.push_back(std::move(merged));
    }
  }
  return result;
}

class Parser {
 public:
  Parser(std::string_view input, const Vocabulary& vocabulary,
         const ParseOptions& options)
      : tokenizer_(input), vocabulary_(vocabulary), options_(options) {
    Advance();
  }

  Cnf ParseExpression() {
    Cnf left = ParseTerm();
    while (current_.kind == Token::Kind::kOr) {
      Advance();
      left = OrCnf(left, ParseTerm(), options_.max_clauses);
    }
    return left;
  }

  void ExpectEnd() const {
    if (current_.kind != Token::Kind::kEnd) {
      throw QueryParseError("trailing input after query: '" +
                            current_.text + "'");
    }
  }

 private:
  void Advance() { current_ = tokenizer_.Next(); }

  Cnf ParseTerm() {
    Cnf left = ParseFactor();
    // Explicit AND or juxtaposition ("thai restaurant").
    while (current_.kind == Token::Kind::kAnd ||
           current_.kind == Token::Kind::kKeyword ||
           current_.kind == Token::Kind::kLParen) {
      if (current_.kind == Token::Kind::kAnd) Advance();
      left = AndCnf(std::move(left), ParseFactor(), options_.max_clauses);
    }
    return left;
  }

  Cnf ParseFactor() {
    if (current_.kind == Token::Kind::kLParen) {
      Advance();
      Cnf inner = ParseExpression();
      if (current_.kind != Token::Kind::kRParen) {
        throw QueryParseError("missing ')'");
      }
      Advance();
      return inner;
    }
    if (current_.kind == Token::Kind::kKeyword) {
      const KeywordId id = vocabulary_.IdOf(current_.text);
      const std::string word = current_.text;
      Advance();
      if (id == kInvalidKeyword) {
        if (!options_.allow_unknown_keywords) {
          throw QueryParseError("unknown keyword: '" + word + "'");
        }
        return {{}};  // Always-false atom: an empty disjunction.
      }
      return {{id}};
    }
    throw QueryParseError("expected keyword or '(', got '" +
                          current_.text + "'");
  }

  Tokenizer tokenizer_;
  const Vocabulary& vocabulary_;
  const ParseOptions& options_;
  Token current_;
};

}  // namespace

std::vector<KeywordId> ParsedQuery::AllKeywords() const {
  std::vector<KeywordId> all;
  for (const auto& clause : clauses) {
    all.insert(all.end(), clause.begin(), clause.end());
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

ParsedQuery ParseBooleanQuery(std::string_view text,
                              const Vocabulary& vocabulary,
                              ParseOptions options) {
  Parser parser(text, vocabulary, options);
  ParsedQuery query;
  query.clauses = parser.ParseExpression();
  parser.ExpectEnd();
  // Deduplicate identical clauses; an empty clause makes the query
  // unsatisfiable, so collapse to just it.
  std::sort(query.clauses.begin(), query.clauses.end());
  query.clauses.erase(
      std::unique(query.clauses.begin(), query.clauses.end()),
      query.clauses.end());
  for (const auto& clause : query.clauses) {
    if (clause.empty()) {
      query.clauses = {{}};
      break;
    }
  }
  return query;
}

}  // namespace kspin
