#include "service/synthetic_catalog.h"

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/random.h"

namespace kspin {

void PopulateSyntheticCatalog(PoiService& service, const Graph& graph,
                              const SyntheticCatalogOptions& options) {
  if (options.num_keywords == 0 || options.min_tags == 0 ||
      options.min_tags > options.max_tags) {
    throw std::invalid_argument("PopulateSyntheticCatalog: bad options");
  }
  Rng rng(options.seed);

  // Zipf CDF over keyword ranks: keyword r has mass ~ 1 / (r+1)^skew.
  std::vector<double> cdf(options.num_keywords);
  double total = 0.0;
  for (std::uint32_t r = 0; r < options.num_keywords; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), options.zipf_skew);
    cdf[r] = total;
  }
  auto draw_keyword = [&]() -> std::uint32_t {
    const double u = rng.UniformDouble() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    return static_cast<std::uint32_t>(it - cdf.begin());
  };

  for (std::size_t i = 0; i < options.num_pois; ++i) {
    const VertexId vertex = static_cast<VertexId>(
        rng.UniformInt(0, graph.NumVertices() - 1));
    const std::uint32_t tags = static_cast<std::uint32_t>(
        rng.UniformInt(options.min_tags, options.max_tags));
    std::vector<std::string> keywords;
    keywords.reserve(tags);
    for (std::uint32_t t = 0; t < tags; ++t) {
      keywords.push_back("kw" + std::to_string(draw_keyword()));
    }
    service.AddPoi("poi" + std::to_string(i), vertex, keywords);
  }
}

}  // namespace kspin
