// Fixed-thread-pool batch executor over per-thread QueryProcessors.
//
// The K-SPIN module stack is immutable during query serving (see
// docs/architecture.md, "Concurrency model"), so independent queries
// parallelize trivially: each pool slot owns one QueryProcessor (and,
// through it, one oracle workspace and one query workspace), queries are
// distributed by an atomic work-stealing index, and result slots are
// pre-sized so no two threads touch the same element. Results are
// identical to serial execution query-by-query — parallelism never
// changes what a query returns, only when it runs.
//
// The calling thread participates as slot 0, so `num_threads == 1` means
// "no extra threads" and degenerates to a plain serial loop.
#ifndef KSPIN_SERVICE_PARALLEL_EXECUTOR_H_
#define KSPIN_SERVICE_PARALLEL_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/types.h"
#include "kspin/kspin.h"
#include "kspin/query_processor.h"

namespace kspin {

/// Parallel batch execution of independent queries. Not itself
/// thread-safe: one thread drives the executor, the pool fans out.
class ParallelQueryExecutor {
 public:
  /// Builds one QueryProcessor per pool slot (lazily, on the slot's
  /// thread). Must be safe to call concurrently from multiple threads —
  /// KSpin::MakeProcessor and the EngineSet factories qualify.
  using ProcessorFactory = std::function<std::unique_ptr<QueryProcessor>()>;

  /// One Boolean kNN query of a batch.
  struct BooleanKnnQuery {
    VertexId vertex = kInvalidVertex;
    std::uint32_t k = 0;
    std::vector<KeywordId> keywords;
    BooleanOp op = BooleanOp::kDisjunctive;
  };

  /// One CNF Boolean kNN query of a batch.
  struct CnfQuery {
    VertexId vertex = kInvalidVertex;
    std::uint32_t k = 0;
    std::vector<std::vector<KeywordId>> clauses;
  };

  /// One top-k query of a batch.
  struct TopKQuery {
    VertexId vertex = kInvalidVertex;
    std::uint32_t k = 0;
    std::vector<KeywordId> keywords;
  };

  /// `num_threads` pool slots (0 = hardware concurrency). Spawns
  /// `num_threads - 1` workers; the driving thread is slot 0.
  explicit ParallelQueryExecutor(ProcessorFactory factory,
                                 unsigned num_threads = 0);

  /// Convenience over a KSpin engine: processors come from
  /// engine.MakeProcessor() and are transparently re-created whenever
  /// engine.StructureGeneration() changes between batches. The engine
  /// must not be updated while a batch is in flight.
  explicit ParallelQueryExecutor(KSpin& engine, unsigned num_threads = 0);

  ~ParallelQueryExecutor();

  ParallelQueryExecutor(const ParallelQueryExecutor&) = delete;
  ParallelQueryExecutor& operator=(const ParallelQueryExecutor&) = delete;

  unsigned NumThreads() const { return num_threads_; }

  // ----- Batch queries (result i answers query i) ------------------------

  std::vector<std::vector<BkNNResult>> BooleanKnnBatch(
      std::span<const BooleanKnnQuery> queries);

  std::vector<std::vector<BkNNResult>> BooleanKnnCnfBatch(
      std::span<const CnfQuery> queries);

  std::vector<std::vector<TopKResult>> TopKBatch(
      std::span<const TopKQuery> queries);

  /// Generic parallel loop: fn(processor, i) runs once for every
  /// i in [0, count), each call on some pool slot's processor. fn must
  /// only write state owned by index i.
  void ForEach(std::size_t count,
               const std::function<void(QueryProcessor&, std::size_t)>& fn);

 private:
  void WorkerLoop(std::size_t slot);
  void RunJob(std::size_t slot);
  QueryProcessor& ProcessorFor(std::size_t slot);
  void RefreshIfStale();

  ProcessorFactory factory_;
  KSpin* engine_ = nullptr;  // Only set by the KSpin convenience ctor.
  std::uint64_t engine_generation_ = 0;
  unsigned num_threads_;
  std::vector<std::unique_ptr<QueryProcessor>> processors_;
  std::vector<std::thread> workers_;

  // Job hand-off. `job_` and `job_count_` are published under `mutex_`
  // before the epoch bump; workers observe the bump under the same mutex,
  // which establishes the happens-before for the lock-free claiming loop.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t job_epoch_ = 0;
  bool shutting_down_ = false;
  const std::function<void(QueryProcessor&, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::atomic<std::size_t> next_index_{0};
  std::size_t workers_running_ = 0;
};

}  // namespace kspin

#endif  // KSPIN_SERVICE_PARALLEL_EXECUTOR_H_
