// Populates a PoiService with a synthetic, string-level POI catalogue —
// the serving-layer counterpart of text/zipf_generator. Names are
// "poi<N>", keywords "kw<K>" with Zipf-distributed popularity, so tools
// and benchmarks can issue meaningful queries ("kw0 or kw3") against a
// generated road network without a real dataset.
#ifndef KSPIN_SERVICE_SYNTHETIC_CATALOG_H_
#define KSPIN_SERVICE_SYNTHETIC_CATALOG_H_

#include <cstdint>

#include "service/poi_service.h"

namespace kspin {

struct SyntheticCatalogOptions {
  std::size_t num_pois = 500;
  std::uint32_t num_keywords = 40;   ///< Corpus size ("kw0".."kwN-1").
  std::uint32_t min_tags = 1;        ///< Keywords per POI, inclusive.
  std::uint32_t max_tags = 4;
  double zipf_skew = 0.8;            ///< Keyword popularity skew.
  std::uint64_t seed = 42;
};

/// Adds `options.num_pois` POIs on uniform-random vertices of `graph`.
/// Deterministic for a fixed seed and graph.
void PopulateSyntheticCatalog(PoiService& service, const Graph& graph,
                              const SyntheticCatalogOptions& options = {});

}  // namespace kspin

#endif  // KSPIN_SERVICE_SYNTHETIC_CATALOG_H_
