#include "service/parallel_executor.h"

#include <algorithm>

namespace kspin {
namespace {

unsigned ResolveThreads(unsigned num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1u, hw);
}

}  // namespace

ParallelQueryExecutor::ParallelQueryExecutor(ProcessorFactory factory,
                                             unsigned num_threads)
    : factory_(std::move(factory)),
      num_threads_(ResolveThreads(num_threads)),
      processors_(num_threads_) {
  workers_.reserve(num_threads_ - 1);
  for (std::size_t slot = 1; slot < num_threads_; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ParallelQueryExecutor::ParallelQueryExecutor(KSpin& engine,
                                             unsigned num_threads)
    : ParallelQueryExecutor(
          [&engine] { return engine.MakeProcessor(); }, num_threads) {
  engine_ = &engine;
  engine_generation_ = engine.StructureGeneration();
}

ParallelQueryExecutor::~ParallelQueryExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

QueryProcessor& ParallelQueryExecutor::ProcessorFor(std::size_t slot) {
  // Lazily built on the slot's own thread; distinct slots never race.
  if (processors_[slot] == nullptr) processors_[slot] = factory_();
  return *processors_[slot];
}

void ParallelQueryExecutor::RefreshIfStale() {
  if (engine_ == nullptr) return;
  const std::uint64_t current = engine_->StructureGeneration();
  if (current == engine_generation_) return;
  // An update rebuilt components the processors reference: drop them all
  // (no batch is in flight here, so the slots are quiescent).
  for (auto& processor : processors_) processor.reset();
  engine_generation_ = current;
}

void ParallelQueryExecutor::RunJob(std::size_t slot) {
  QueryProcessor& processor = ProcessorFor(slot);
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) break;
    (*job_)(processor, i);
  }
}

void ParallelQueryExecutor::WorkerLoop(std::size_t slot) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen_epoch] {
        return shutting_down_ || job_epoch_ != seen_epoch;
      });
      if (shutting_down_) return;
      seen_epoch = job_epoch_;
    }
    RunJob(slot);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --workers_running_;
      if (workers_running_ == 0) done_cv_.notify_one();
    }
  }
}

void ParallelQueryExecutor::ForEach(
    std::size_t count,
    const std::function<void(QueryProcessor&, std::size_t)>& fn) {
  RefreshIfStale();
  if (count == 0) return;
  if (workers_.empty()) {  // Single-threaded pool: plain loop, no hand-off.
    QueryProcessor& processor = ProcessorFor(0);
    for (std::size_t i = 0; i < count; ++i) fn(processor, i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_index_.store(0, std::memory_order_relaxed);
    workers_running_ = workers_.size();
    ++job_epoch_;
  }
  work_cv_.notify_all();
  RunJob(0);  // The driving thread participates as slot 0.
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return workers_running_ == 0; });
  job_ = nullptr;
  job_count_ = 0;
}

std::vector<std::vector<BkNNResult>> ParallelQueryExecutor::BooleanKnnBatch(
    std::span<const BooleanKnnQuery> queries) {
  std::vector<std::vector<BkNNResult>> results(queries.size());
  ForEach(queries.size(), [&queries, &results](QueryProcessor& processor,
                                               std::size_t i) {
    const BooleanKnnQuery& q = queries[i];
    results[i] = processor.BooleanKnn(q.vertex, q.k, q.keywords, q.op);
  });
  return results;
}

std::vector<std::vector<BkNNResult>>
ParallelQueryExecutor::BooleanKnnCnfBatch(std::span<const CnfQuery> queries) {
  std::vector<std::vector<BkNNResult>> results(queries.size());
  ForEach(queries.size(), [&queries, &results](QueryProcessor& processor,
                                               std::size_t i) {
    const CnfQuery& q = queries[i];
    results[i] = processor.BooleanKnnCnf(q.vertex, q.k, q.clauses);
  });
  return results;
}

std::vector<std::vector<TopKResult>> ParallelQueryExecutor::TopKBatch(
    std::span<const TopKQuery> queries) {
  std::vector<std::vector<TopKResult>> results(queries.size());
  ForEach(queries.size(), [&queries, &results](QueryProcessor& processor,
                                               std::size_t i) {
    const TopKQuery& q = queries[i];
    results[i] = processor.TopK(q.vertex, q.k, q.keywords);
  });
  return results;
}

}  // namespace kspin
