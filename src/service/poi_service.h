// PoiService: the batteries-included, string-level facade over the K-SPIN
// engine — named POIs, free-text boolean queries ("thai and (takeaway or
// restaurant)"), ranked search, and live updates. This is the layer a map
// application would link against; everything below it works in dense
// integer ids.
#ifndef KSPIN_SERVICE_POI_SERVICE_H_
#define KSPIN_SERVICE_POI_SERVICE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/kspin.h"
#include "service/parallel_executor.h"
#include "service/query_parser.h"
#include "text/vocabulary.h"

namespace kspin {

/// One search hit, resolved back to human-level identifiers.
struct PoiResult {
  ObjectId id = kInvalidObject;
  std::string name;
  Distance travel_time = kInfDistance;
  double score = 0.0;  ///< Spatio-textual score (ranked search only).
};

/// String-level spatial keyword search service.
class PoiService {
 public:
  /// Starts with an empty POI catalogue. `oracle` (the Network Distance
  /// Module) must outlive the service.
  PoiService(const Graph& graph, DistanceOracle& oracle,
             KSpinOptions options = {});

  /// Restore constructor: adopts a snapshot-loaded catalogue (vocabulary +
  /// names), document store, and prebuilt engine artifacts instead of
  /// starting empty (see service/service_snapshot.h for the load side).
  PoiService(const Graph& graph, DistanceOracle& oracle,
             Vocabulary vocabulary, std::vector<std::string> names,
             DocumentStore store, std::unique_ptr<AltIndex> alt,
             std::unique_ptr<KeywordIndex> keyword_index,
             KSpinOptions options = {});

  /// Replaces the catalogue and engine with snapshot-loaded state (the
  /// RELOAD opcode). The serving graph and oracle are unchanged. The new
  /// engine's StructureGeneration() strictly exceeds the old one's, so
  /// query processors cached against the previous engine are invalidated,
  /// never aliased. Callers must exclude concurrent queries (the server
  /// holds its exclusive update lock).
  void RestoreCatalog(Vocabulary vocabulary, std::vector<std::string> names,
                      DocumentStore store, std::unique_ptr<AltIndex> alt,
                      std::unique_ptr<KeywordIndex> keyword_index,
                      KSpinOptions options = {});

  /// Registers a POI at `vertex` with keyword tags (interned, lowercase
  /// recommended). Returns its id.
  ObjectId AddPoi(std::string_view name, VertexId vertex,
                  std::span<const std::string> keywords);

  /// Removes a POI from search (the catalogue entry stays for result
  /// resolution of historical ids).
  void ClosePoi(ObjectId id);

  /// Adds / removes one keyword tag on an existing POI.
  void TagPoi(ObjectId id, std::string_view keyword);
  void UntagPoi(ObjectId id, std::string_view keyword);

  /// True when `id` is live and currently carries `keyword`
  /// (case-insensitive, like TagPoi / UntagPoi). Never throws — this is
  /// the validation-side counterpart of UntagPoi.
  bool HasTag(ObjectId id, std::string_view keyword) const;

  /// The canonical (lowercased) form a keyword is interned under.
  static std::string CanonicalKeyword(std::string_view term);

  /// Boolean search with full and/or syntax, nearest-first:
  ///   Search("thai and (takeaway or restaurant)", here, 5).
  /// Unknown keywords make the query unsatisfiable (empty result) rather
  /// than erroring. Throws QueryParseError on bad syntax. A non-null
  /// `control` imposes a deadline / cancellation point on the search;
  /// expiry throws QueryCancelledError.
  std::vector<PoiResult> Search(std::string_view query, VertexId from,
                                std::uint32_t k,
                                const QueryControl* control = nullptr);

  /// Relevance-ranked search: all keywords in `query` contribute to the
  /// weighted-distance score (operators are ignored beyond extracting
  /// keywords).
  std::vector<PoiResult> SearchRanked(std::string_view query, VertexId from,
                                      std::uint32_t k,
                                      const QueryControl* control = nullptr);

  /// Search / SearchRanked semantics on a caller-owned QueryProcessor
  /// (from Engine().MakeProcessor()) instead of the engine's internal one.
  /// This is the concurrent-serving entry point: many threads may call
  /// SearchOn simultaneously, each with its own processor, while no update
  /// runs (see docs/architecture.md, "Concurrency model").
  /// A non-null `stats` accumulates the engine's QueryStats counters for
  /// this query (the server folds them into its metrics).
  std::vector<PoiResult> SearchOn(QueryProcessor& processor,
                                  std::string_view query, VertexId from,
                                  std::uint32_t k,
                                  const QueryControl* control = nullptr,
                                  QueryStats* stats = nullptr) const;
  std::vector<PoiResult> SearchRankedOn(
      QueryProcessor& processor, std::string_view query, VertexId from,
      std::uint32_t k, const QueryControl* control = nullptr,
      QueryStats* stats = nullptr) const;

  /// One query of a batch (Search / SearchRanked semantics per element).
  struct BatchQuery {
    std::string query;
    VertexId from = kInvalidVertex;
    std::uint32_t k = 0;
  };

  /// Batch boolean search across a fixed thread pool (0 = hardware
  /// concurrency). Result i is exactly Search(queries[i]...) — parallelism
  /// never changes results. Queries are parsed up front on the calling
  /// thread, so a QueryParseError surfaces before any work is scheduled.
  /// The pool persists across calls; passing a different `num_threads`
  /// re-creates it.
  std::vector<std::vector<PoiResult>> SearchBatch(
      std::span<const BatchQuery> queries, unsigned num_threads = 0);

  /// Batch ranked search; result i is exactly SearchRanked(queries[i]...).
  std::vector<std::vector<PoiResult>> SearchRankedBatch(
      std::span<const BatchQuery> queries, unsigned num_threads = 0);

  /// Periodic maintenance (rebuilds saturated keyword indexes).
  std::size_t Maintain() { return engine_->MaintainIndexes(); }

  const std::string& NameOf(ObjectId id) const { return names_.at(id); }
  const std::vector<std::string>& Names() const { return names_; }
  const Vocabulary& Keywords() const { return vocabulary_; }
  KSpin& Engine() { return *engine_; }
  const KSpin& Engine() const { return *engine_; }
  std::size_t NumLivePois() const {
    return engine_->Store().NumLiveObjects();
  }

 private:
  ParallelQueryExecutor& Executor(unsigned num_threads);

  const Graph* graph_ = nullptr;      // For RestoreCatalog.
  DistanceOracle* oracle_ = nullptr;  // For RestoreCatalog.
  Vocabulary vocabulary_;
  std::vector<std::string> names_;  // Indexed by ObjectId.
  std::unique_ptr<KSpin> engine_;
  std::unique_ptr<ParallelQueryExecutor> executor_;  // Lazy; batch only.
};

}  // namespace kspin

#endif  // KSPIN_SERVICE_POI_SERVICE_H_
