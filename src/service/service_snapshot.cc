#include "service/service_snapshot.h"

#include <fstream>
#include <sstream>

#include "io/binary_format.h"
#include "io/snapshot.h"

namespace kspin {

void WriteServiceSnapshot(const PoiService& service, std::ostream& out,
                          const ServiceSnapshotArtifacts& extra) {
  const KSpin& engine = service.Engine();
  io::SnapshotWriter writer;
  writer.AddSection(io::SnapshotSection::kGraph, [&](std::ostream& s) {
    SaveGraph(engine.NetworkGraph(), s);
  });
  writer.AddSection(io::SnapshotSection::kDocumentStore,
                    [&](std::ostream& s) { SaveDocumentStore(engine.Store(), s); });
  writer.AddSection(io::SnapshotSection::kPoiCatalog, [&](std::ostream& s) {
    SavePoiCatalog({service.Keywords(), service.Names()}, s);
  });
  writer.AddSection(io::SnapshotSection::kAltIndex,
                    [&](std::ostream& s) { SaveAltIndex(engine.Alt(), s); });
  writer.AddSection(io::SnapshotSection::kKeywordIndex, [&](std::ostream& s) {
    SaveKeywordIndex(engine.Keywords(), s);
  });
  if (extra.ch != nullptr) {
    writer.AddSection(io::SnapshotSection::kContractionHierarchy,
                      [&](std::ostream& s) {
                        SaveContractionHierarchy(*extra.ch, s);
                      });
  }
  if (extra.hl != nullptr) {
    writer.AddSection(io::SnapshotSection::kHubLabeling, [&](std::ostream& s) {
      SaveHubLabeling(*extra.hl, s);
    });
  }
  writer.AddSection(io::SnapshotSection::kOplogPosition, [&](std::ostream& s) {
    io::WritePod(s, extra.applied_mutation_sequence);
  });
  writer.Finish(out);
}

RestoredServiceState ReadServiceSnapshot(std::istream& in,
                                         const Graph* serving_graph) {
  io::SnapshotReader reader(in);
  RestoredServiceState state;

  const std::string_view graph_bytes =
      reader.Section(io::SnapshotSection::kGraph);
  const Graph* bind_graph = nullptr;
  if (serving_graph != nullptr) {
    // RELOAD: the indexes in this snapshot only make sense over the graph
    // the server is serving. Byte-compare the serialized forms.
    std::ostringstream serving(std::ios::binary);
    SaveGraph(*serving_graph, serving);
    if (std::move(serving).str() != graph_bytes) {
      throw io::SerializationError(
          "snapshot graph differs from the serving graph");
    }
    bind_graph = serving_graph;
  } else {
    io::ViewIStream graph_in(graph_bytes);
    state.graph = std::make_unique<Graph>(LoadGraph(graph_in));
    bind_graph = state.graph.get();
  }

  {
    io::ViewIStream s(reader.Section(io::SnapshotSection::kDocumentStore));
    state.store = LoadDocumentStore(s);
  }
  {
    io::ViewIStream s(reader.Section(io::SnapshotSection::kPoiCatalog));
    state.catalog = LoadPoiCatalog(s);
  }
  {
    io::ViewIStream s(reader.Section(io::SnapshotSection::kAltIndex));
    state.alt = std::make_unique<AltIndex>(LoadAltIndex(s));
  }
  {
    io::ViewIStream s(reader.Section(io::SnapshotSection::kKeywordIndex));
    state.keyword_index =
        std::make_unique<KeywordIndex>(LoadKeywordIndex(*bind_graph, s));
  }
  if (reader.Has(io::SnapshotSection::kContractionHierarchy)) {
    io::ViewIStream s(
        reader.Section(io::SnapshotSection::kContractionHierarchy));
    state.ch =
        std::make_unique<ContractionHierarchy>(LoadContractionHierarchy(s));
  }
  if (reader.Has(io::SnapshotSection::kHubLabeling)) {
    io::ViewIStream s(reader.Section(io::SnapshotSection::kHubLabeling));
    state.hl = std::make_unique<HubLabeling>(LoadHubLabeling(s));
  }
  if (reader.Has(io::SnapshotSection::kOplogPosition)) {
    // Snapshots from before the op log simply lack this section; they
    // restore with sequence 0 (replay everything the log still holds).
    io::ViewIStream s(reader.Section(io::SnapshotSection::kOplogPosition));
    state.applied_mutation_sequence = io::ReadPod<std::uint64_t>(s);
  }

  // Cross-section sanity: every object vertex must exist in the graph.
  const std::size_t num_vertices = bind_graph->NumVertices();
  for (ObjectId o = 0; o < state.store.NumSlots(); ++o) {
    if (state.store.IsLive(o) && state.store.ObjectVertex(o) >= num_vertices) {
      throw io::SerializationError("snapshot object vertex out of range");
    }
  }
  if (state.catalog.names.size() < state.store.NumSlots()) {
    // Every object id must resolve to a name; the store can't have slots
    // the catalogue never saw.
    throw io::SerializationError("snapshot catalog misses object names");
  }
  return state;
}

RestoredServiceState ReadServiceSnapshotBytes(std::string_view bytes,
                                              const Graph* serving_graph) {
  io::ViewIStream in(bytes);
  return ReadServiceSnapshot(in, serving_graph);
}

bool WriteServiceSnapshotFile(const std::string& path,
                              const PoiService& service,
                              const ServiceSnapshotArtifacts& extra,
                              const io::AtomicWriteHooks* hooks) {
  return io::WriteFileAtomically(
      path,
      [&](std::ostream& out) { WriteServiceSnapshot(service, out, extra); },
      hooks);
}

std::optional<LoadedServiceSnapshot> LoadNewestValidServiceSnapshot(
    const std::string& dir, const Graph* serving_graph,
    std::vector<std::string>* errors) {
  for (const auto& [sequence, path] : io::FindSnapshots(dir)) {
    try {
      std::ifstream file(path, std::ios::binary);
      if (!file) {
        throw io::SerializationError("cannot open " + path);
      }
      LoadedServiceSnapshot loaded;
      loaded.state = ReadServiceSnapshot(file, serving_graph);
      loaded.sequence = sequence;
      loaded.path = path;
      return loaded;
    } catch (const io::SerializationError& e) {
      if (errors != nullptr) {
        errors->push_back(path + ": " + e.what());
      }
      // Fall through to the next-newest snapshot.
    }
  }
  return std::nullopt;
}

}  // namespace kspin
