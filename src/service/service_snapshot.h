// Whole-service snapshot assembly: glues the per-artifact serializers
// (io/serialization.h) into the checksummed snapshot container
// (io/snapshot.h) so the *entire* serving state — graph, document store,
// POI catalogue, keyword index, ALT, and optionally the CH / hub-label
// distance artifacts — round-trips through one crash-safe file.
//
// Two restore modes share one reader:
//  - cold boot: the snapshot's own graph is materialized and every index
//    is bound to it (RestoredServiceState::graph owns it);
//  - RELOAD into a running server: the caller passes its serving graph,
//    the snapshot's graph section must be byte-identical to it, and the
//    loaded indexes are bound to the serving graph instead.
#ifndef KSPIN_SERVICE_SERVICE_SNAPSHOT_H_
#define KSPIN_SERVICE_SERVICE_SNAPSHOT_H_

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "io/fault_injection.h"
#include "io/serialization.h"
#include "routing/contraction_hierarchy.h"
#include "routing/hub_labeling.h"
#include "service/poi_service.h"

namespace kspin {

/// Distance-oracle artifacts snapshotted alongside the service state (the
/// service borrows its oracle, so the caller supplies what it owns).
struct ServiceSnapshotArtifacts {
  const ContractionHierarchy* ch = nullptr;
  const HubLabeling* hl = nullptr;
  /// Mutation sequence this snapshot covers: every op-log record at or
  /// below it is reflected in the snapshotted state, so boot replays only
  /// records after it (docs/persistence.md, "The operation log").
  std::uint64_t applied_mutation_sequence = 0;
};

/// Serializes the full serving state of `service` as a snapshot container.
/// Throws io::SerializationError on write failure.
void WriteServiceSnapshot(const PoiService& service, std::ostream& out,
                          const ServiceSnapshotArtifacts& extra = {});

/// Everything a snapshot restores. Pointers are null for sections the
/// snapshot did not carry (ch/hl) or that the restore mode does not
/// materialize (graph, in RELOAD mode).
struct RestoredServiceState {
  std::unique_ptr<Graph> graph;  ///< Cold boot only; indexes point into it.
  PoiCatalog catalog;
  DocumentStore store;
  std::unique_ptr<AltIndex> alt;
  std::unique_ptr<KeywordIndex> keyword_index;
  std::unique_ptr<ContractionHierarchy> ch;
  std::unique_ptr<HubLabeling> hl;
  /// Mutation sequence the snapshot covers (0 for pre-oplog snapshots,
  /// which carry no kOplogPosition section).
  std::uint64_t applied_mutation_sequence = 0;
};

/// Parses + validates a snapshot and loads every section. When
/// `serving_graph` is non-null (RELOAD), the snapshot's graph section must
/// be byte-identical to it and the keyword index binds to the serving
/// graph. Throws io::SerializationError on any corruption or mismatch.
RestoredServiceState ReadServiceSnapshot(std::istream& in,
                                         const Graph* serving_graph = nullptr);

/// ReadServiceSnapshot over an in-memory snapshot image — the replica
/// install path, where the image arrived over the wire rather than from
/// disk. The bytes must outlive the call.
RestoredServiceState ReadServiceSnapshotBytes(
    std::string_view bytes, const Graph* serving_graph = nullptr);

/// WriteServiceSnapshot through io::WriteFileAtomically. Returns false
/// only when `hooks` simulated a crash; throws on real failure.
bool WriteServiceSnapshotFile(const std::string& path,
                              const PoiService& service,
                              const ServiceSnapshotArtifacts& extra = {},
                              const io::AtomicWriteHooks* hooks = nullptr);

/// A successfully restored snapshot plus where it came from.
struct LoadedServiceSnapshot {
  RestoredServiceState state;
  std::uint64_t sequence = 0;
  std::string path;
};

/// Walks `dir` newest-snapshot-first and returns the first one that
/// validates and loads; corrupt or unreadable snapshots are skipped (their
/// errors appended to `errors` when non-null). nullopt when no snapshot
/// in the directory is usable.
std::optional<LoadedServiceSnapshot> LoadNewestValidServiceSnapshot(
    const std::string& dir, const Graph* serving_graph = nullptr,
    std::vector<std::string>* errors = nullptr);

}  // namespace kspin

#endif  // KSPIN_SERVICE_SERVICE_SNAPSHOT_H_
