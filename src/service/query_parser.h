// Boolean keyword-query parser for the service layer.
//
// Grammar (case-insensitive operators, '&'/'|' accepted as synonyms):
//   expr   := term (OR term)*
//   term   := factor (AND factor)*        -- juxtaposition implies AND
//   factor := KEYWORD | '(' expr ')'
//
// The parse tree is normalized into CNF — a conjunction of disjunctive
// clauses — which is exactly the shape K-SPIN's mixed-operator
// BooleanKnnCnf consumes (paper Section 2: "a combination of AND and OR
// operators, e.g., Thai and (takeaway or restaurant)"). Distribution can
// blow up exponentially for adversarial inputs, so normalization is
// capped; see ParseOptions.
#ifndef KSPIN_SERVICE_QUERY_PARSER_H_
#define KSPIN_SERVICE_QUERY_PARSER_H_

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "text/vocabulary.h"

namespace kspin {

/// Thrown on syntax errors, unknown keywords, or clause-count blowup.
class QueryParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parser limits.
struct ParseOptions {
  /// Maximum CNF clauses produced by distribution before aborting.
  std::size_t max_clauses = 64;
  /// Unknown keywords: if true they parse to an always-false atom (an
  /// empty clause contribution); if false the parser throws.
  bool allow_unknown_keywords = false;
};

/// A parsed query: conjunction of disjunctive keyword clauses.
/// {{thai}, {takeaway, restaurant}} = thai AND (takeaway OR restaurant).
struct ParsedQuery {
  std::vector<std::vector<KeywordId>> clauses;

  /// All distinct keywords, e.g. for top-k relevance scoring.
  std::vector<KeywordId> AllKeywords() const;
};

/// Parses `text` against `vocabulary`. Throws QueryParseError on invalid
/// syntax, unknown keywords (unless allowed), or clause blowup.
ParsedQuery ParseBooleanQuery(std::string_view text,
                              const Vocabulary& vocabulary,
                              ParseOptions options = {});

}  // namespace kspin

#endif  // KSPIN_SERVICE_QUERY_PARSER_H_
