#include "graph/graph_builder.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <string>

namespace kspin {

GraphBuilder::GraphBuilder(std::size_t num_vertices)
    : num_vertices_(num_vertices) {}

void GraphBuilder::AddEdge(VertexId u, VertexId v, Weight w) {
  if (u >= num_vertices_ || v >= num_vertices_) {
    throw std::invalid_argument("GraphBuilder::AddEdge: vertex " +
                                std::to_string(u >= num_vertices_ ? u : v) +
                                " out of range");
  }
  if (u == v) {
    throw std::invalid_argument("GraphBuilder::AddEdge: self-loop at vertex " +
                                std::to_string(u));
  }
  if (w == 0) {
    throw std::invalid_argument(
        "GraphBuilder::AddEdge: zero weight not allowed");
  }
  edges_.push_back({u, v, w});
}

void GraphBuilder::SetCoordinates(std::vector<Coordinate> coordinates) {
  if (!coordinates.empty() && coordinates.size() != num_vertices_) {
    throw std::invalid_argument(
        "GraphBuilder::SetCoordinates: size mismatch (" +
        std::to_string(coordinates.size()) + " vs " +
        std::to_string(num_vertices_) + " vertices)");
  }
  coordinates_ = std::move(coordinates);
}

Graph GraphBuilder::Build() {
  // Normalize to directed arcs, dedup keeping minimum weight.
  struct DirArc {
    VertexId tail, head;
    Weight w;
  };
  std::vector<DirArc> arcs;
  arcs.reserve(edges_.size() * 2);
  for (const Edge& e : edges_) {
    arcs.push_back({e.u, e.v, e.w});
    arcs.push_back({e.v, e.u, e.w});
  }
  std::sort(arcs.begin(), arcs.end(), [](const DirArc& a, const DirArc& b) {
    if (a.tail != b.tail) return a.tail < b.tail;
    if (a.head != b.head) return a.head < b.head;
    return a.w < b.w;
  });
  // Keep first (minimum-weight) arc per (tail, head).
  std::size_t out = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (i == 0 || arcs[i].tail != arcs[out - 1].tail ||
        arcs[i].head != arcs[out - 1].head) {
      arcs[out++] = arcs[i];
    }
  }
  arcs.resize(out);

  Graph graph;
  graph.offsets_.assign(num_vertices_ + 1, 0);
  for (const DirArc& a : arcs) ++graph.offsets_[a.tail + 1];
  for (std::size_t v = 0; v < num_vertices_; ++v) {
    graph.offsets_[v + 1] += graph.offsets_[v];
  }
  graph.arcs_.resize(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    graph.arcs_[i] = Arc{arcs[i].head, arcs[i].w};
  }
  graph.coordinates_ = std::move(coordinates_);

  edges_.clear();
  coordinates_.clear();
  return graph;
}

bool IsConnected(const Graph& graph) {
  std::size_t num_components = 0;
  ConnectedComponents(graph, &num_components);
  return num_components <= 1;
}

std::vector<std::uint32_t> ConnectedComponents(const Graph& graph,
                                               std::size_t* num_components) {
  const std::size_t n = graph.NumVertices();
  std::vector<std::uint32_t> component(n, UINT32_MAX);
  std::uint32_t next_component = 0;
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (component[start] != UINT32_MAX) continue;
    component[start] = next_component;
    stack.push_back(start);
    while (!stack.empty()) {
      VertexId v = stack.back();
      stack.pop_back();
      for (const Arc& arc : graph.Neighbors(v)) {
        if (component[arc.head] == UINT32_MAX) {
          component[arc.head] = next_component;
          stack.push_back(arc.head);
        }
      }
    }
    ++next_component;
  }
  if (num_components != nullptr) *num_components = next_component;
  return component;
}

Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<VertexId>* old_to_new) {
  std::size_t num_components = 0;
  std::vector<std::uint32_t> component =
      ConnectedComponents(graph, &num_components);
  const std::size_t n = graph.NumVertices();

  std::vector<std::size_t> sizes(num_components, 0);
  for (std::size_t v = 0; v < n; ++v) ++sizes[component[v]];
  std::uint32_t best =
      static_cast<std::uint32_t>(std::distance(
          sizes.begin(), std::max_element(sizes.begin(), sizes.end())));

  std::vector<VertexId> mapping(n, kInvalidVertex);
  VertexId next_id = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (component[v] == best) mapping[v] = next_id++;
  }

  GraphBuilder builder(next_id);
  for (VertexId u = 0; u < n; ++u) {
    if (mapping[u] == kInvalidVertex) continue;
    for (const Arc& arc : graph.Neighbors(u)) {
      if (u < arc.head && mapping[arc.head] != kInvalidVertex) {
        builder.AddEdge(mapping[u], mapping[arc.head], arc.weight);
      }
    }
  }
  if (graph.HasCoordinates()) {
    std::vector<Coordinate> coords(next_id);
    for (VertexId u = 0; u < n; ++u) {
      if (mapping[u] != kInvalidVertex) {
        coords[mapping[u]] = graph.VertexCoordinate(u);
      }
    }
    builder.SetCoordinates(std::move(coords));
  }
  if (old_to_new != nullptr) *old_to_new = std::move(mapping);
  return builder.Build();
}

}  // namespace kspin
