#include "graph/road_network_generator.h"

#include <cmath>
#include <stdexcept>

#include "common/random.h"
#include "graph/graph_builder.h"

namespace kspin {
namespace {

void ValidateOptions(const RoadNetworkOptions& options) {
  if (options.grid_width < 2 || options.grid_height < 2) {
    throw std::invalid_argument("GenerateRoadNetwork: grid must be >= 2x2");
  }
  if (options.edge_keep_probability < 0.0 ||
      options.edge_keep_probability > 1.0) {
    throw std::invalid_argument(
        "GenerateRoadNetwork: edge_keep_probability outside [0,1]");
  }
  if (options.diagonal_fraction < 0.0 || options.diagonal_fraction > 1.0) {
    throw std::invalid_argument(
        "GenerateRoadNetwork: diagonal_fraction outside [0,1]");
  }
  if (options.min_speed_factor <= 0.0 ||
      options.max_speed_factor < options.min_speed_factor) {
    throw std::invalid_argument("GenerateRoadNetwork: bad speed factors");
  }
  if (options.cell_size == 0) {
    throw std::invalid_argument("GenerateRoadNetwork: cell_size must be > 0");
  }
}

Weight TravelTime(const Coordinate& a, const Coordinate& b, double speed) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  const double length = std::sqrt(dx * dx + dy * dy);
  const double w = std::max(1.0, std::round(length * speed));
  return static_cast<Weight>(w);
}

}  // namespace

Graph GenerateRoadNetwork(const RoadNetworkOptions& options) {
  ValidateOptions(options);
  Rng rng(options.seed);

  const std::uint32_t w = options.grid_width;
  const std::uint32_t h = options.grid_height;
  const std::size_t n = static_cast<std::size_t>(w) * h;
  auto vertex_of = [w](std::uint32_t col, std::uint32_t row) -> VertexId {
    return static_cast<VertexId>(row) * w + col;
  };

  std::vector<Coordinate> coords(n);
  for (std::uint32_t row = 0; row < h; ++row) {
    for (std::uint32_t col = 0; col < w; ++col) {
      const std::int32_t jitter_x =
          options.coordinate_jitter == 0
              ? 0
              : static_cast<std::int32_t>(rng.UniformInt(
                    0, 2 * options.coordinate_jitter)) -
                    static_cast<std::int32_t>(options.coordinate_jitter);
      const std::int32_t jitter_y =
          options.coordinate_jitter == 0
              ? 0
              : static_cast<std::int32_t>(rng.UniformInt(
                    0, 2 * options.coordinate_jitter)) -
                    static_cast<std::int32_t>(options.coordinate_jitter);
      coords[vertex_of(col, row)] = Coordinate{
          static_cast<std::int32_t>(col * options.cell_size) + jitter_x,
          static_cast<std::int32_t>(row * options.cell_size) + jitter_y};
    }
  }

  GraphBuilder builder(n);
  // Road-class multiplier of the lane along a fixed row (for horizontal
  // edges) or column (for vertical edges): highways beat arterials beat
  // local streets.
  auto lane_multiplier = [&options](std::uint32_t index) {
    if (options.highway_spacing != 0 &&
        index % options.highway_spacing == 0) {
      return options.highway_speed_multiplier;
    }
    if (options.arterial_spacing != 0 &&
        index % options.arterial_spacing == 0) {
      return options.arterial_speed_multiplier;
    }
    return 1.0;
  };
  auto speed = [&rng, &options](double multiplier) {
    const double base =
        options.min_speed_factor +
        rng.UniformDouble() *
            (options.max_speed_factor - options.min_speed_factor);
    return base * multiplier;
  };
  for (std::uint32_t row = 0; row < h; ++row) {
    for (std::uint32_t col = 0; col < w; ++col) {
      const VertexId v = vertex_of(col, row);
      // Hierarchy roads are never deleted: arterials and highways are
      // continuous in real networks.
      const bool on_row_artery = lane_multiplier(row) < 1.0;
      const bool on_col_artery = lane_multiplier(col) < 1.0;
      if (col + 1 < w &&
          (on_row_artery || rng.Bernoulli(options.edge_keep_probability))) {
        const VertexId u = vertex_of(col + 1, row);
        builder.AddEdge(
            v, u,
            TravelTime(coords[v], coords[u], speed(lane_multiplier(row))));
      }
      if (row + 1 < h &&
          (on_col_artery || rng.Bernoulli(options.edge_keep_probability))) {
        const VertexId u = vertex_of(col, row + 1);
        builder.AddEdge(
            v, u,
            TravelTime(coords[v], coords[u], speed(lane_multiplier(col))));
      }
      if (col + 1 < w && row + 1 < h &&
          rng.Bernoulli(options.diagonal_fraction)) {
        const VertexId u = vertex_of(col + 1, row + 1);
        builder.AddEdge(v, u,
                        TravelTime(coords[v], coords[u], speed(1.0)));
      }
    }
  }
  builder.SetCoordinates(std::move(coords));
  Graph full = builder.Build();
  return LargestConnectedComponent(full, nullptr);
}

std::vector<DatasetSpec> BenchmarkDatasetLadder() {
  // Vertex counts scale ~3x per step like the paper's DE (49k) -> ME (187k)
  // -> FL (1.07M) -> E (3.6M) -> US (24M), compressed to sizes that build
  // and query in reasonable time on a single core in this environment.
  // Keyword vocabulary sizes scale sub-linearly like Table 2
  // (|W| ~ |V|^0.6).
  return {
      {"DE", 60, 60, 101, 0.05, 450},
      {"ME", 100, 100, 102, 0.042, 900},
      {"FL", 170, 170, 103, 0.045, 1900},
      {"E", 280, 280, 104, 0.031, 3300},
      {"US", 400, 400, 105, 0.029, 5200},
  };
}

DatasetSpec DatasetSpecByName(const std::string& name) {
  for (const DatasetSpec& spec : BenchmarkDatasetLadder()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace kspin
