#include "graph/graph.h"

namespace kspin {

Distance Graph::EdgeWeight(VertexId u, VertexId v) const {
  for (const Arc& arc : Neighbors(u)) {
    if (arc.head == v) return arc.weight;
  }
  return kInfDistance;
}

std::size_t Graph::MemoryBytes() const {
  return offsets_.size() * sizeof(std::size_t) + arcs_.size() * sizeof(Arc) +
         coordinates_.size() * sizeof(Coordinate);
}

}  // namespace kspin
