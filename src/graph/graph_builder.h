// Mutable edge-list builder that validates input and produces an immutable
// CSR Graph.
#ifndef KSPIN_GRAPH_GRAPH_BUILDER_H_
#define KSPIN_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kspin {

/// Collects undirected edges, then Build() sorts them into CSR form.
///
/// Duplicate edges between the same vertex pair are collapsed to the minimum
/// weight (road datasets commonly contain parallel road segments; only the
/// fastest matters for shortest paths). Self-loops are rejected.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with `num_vertices` vertices.
  explicit GraphBuilder(std::size_t num_vertices);

  /// Adds the undirected edge {u, v} with positive weight w.
  /// Throws std::invalid_argument on out-of-range vertices, u == v, or w == 0.
  void AddEdge(VertexId u, VertexId v, Weight w);

  /// Assigns planar coordinates (one per vertex). Optional; pass an empty
  /// vector to omit. Throws if the size mismatches num_vertices.
  void SetCoordinates(std::vector<Coordinate> coordinates);

  /// Number of undirected edges added so far (before dedup).
  std::size_t NumPendingEdges() const { return edges_.size(); }

  /// Finalizes into an immutable Graph. The builder is left empty.
  Graph Build();

 private:
  struct Edge {
    VertexId u, v;
    Weight w;
  };

  std::size_t num_vertices_;
  std::vector<Edge> edges_;
  std::vector<Coordinate> coordinates_;
};

/// Returns true if `graph` is connected (BFS from vertex 0 reaches all).
/// An empty graph is considered connected.
bool IsConnected(const Graph& graph);

/// Returns, for each vertex, the id of its connected component (components
/// numbered by discovery order), plus the number of components via
/// *num_components if non-null.
std::vector<std::uint32_t> ConnectedComponents(const Graph& graph,
                                               std::size_t* num_components);

/// Extracts the largest connected component as a standalone graph.
/// `old_to_new` (optional) receives the vertex mapping, with kInvalidVertex
/// for dropped vertices.
Graph LargestConnectedComponent(const Graph& graph,
                                std::vector<VertexId>* old_to_new);

}  // namespace kspin

#endif  // KSPIN_GRAPH_GRAPH_BUILDER_H_
