// Synthetic road-network generator.
//
// The paper evaluates on the 9th DIMACS Challenge datasets (DE, ME, FL, E,
// US), which are not available offline. This generator produces connected,
// road-like networks with matching structural statistics: average vertex
// degree ~2.4 (|E|/|V| ~ 1.2 per direction on DIMACS graphs is actually
// ~2.4 arcs/vertex), long-ish chains, local planarity, and travel-time
// weights proportional to geometric edge length with per-road speed jitter.
//
// Construction: a w x h grid of intersections with jittered coordinates;
// each grid edge survives with probability `edge_keep_probability`; a small
// fraction of diagonal shortcuts model highways; the largest connected
// component is returned. Degree-2 chain contraction is intentionally *not*
// applied: DIMACS road graphs keep shape points, and so do we.
#ifndef KSPIN_GRAPH_ROAD_NETWORK_GENERATOR_H_
#define KSPIN_GRAPH_ROAD_NETWORK_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace kspin {

/// Parameters for the synthetic road-network generator.
struct RoadNetworkOptions {
  std::uint32_t grid_width = 100;   ///< Grid columns (>= 2).
  std::uint32_t grid_height = 100;  ///< Grid rows (>= 2).
  /// Probability that each grid edge is kept. Values near 0.8 yield average
  /// degree ~2.4 like DIMACS road networks after the largest component is
  /// extracted.
  double edge_keep_probability = 0.82;
  /// Fraction of vertices receiving one diagonal "highway" shortcut.
  double diagonal_fraction = 0.02;
  /// Coordinate spacing between adjacent grid points.
  std::uint32_t cell_size = 1000;
  /// Max +/- jitter applied to each coordinate (models curved roads).
  std::uint32_t coordinate_jitter = 300;
  /// Edge weight = round(euclidean_length * speed_factor), speed_factor
  /// drawn uniformly from [min_speed_factor, max_speed_factor]. Models
  /// travel time differences between local road classes.
  double min_speed_factor = 0.6;
  double max_speed_factor = 1.4;
  /// Road-class hierarchy: every `arterial_spacing`-th grid row/column is
  /// an arterial (travel time scaled by `arterial_speed_multiplier`), and
  /// every `highway_spacing`-th is a highway (`highway_speed_multiplier`).
  /// This is what gives real road networks their low highway dimension —
  /// hierarchical techniques (CH, hub labels) depend on it. Set spacings
  /// to 0 to disable a tier.
  std::uint32_t arterial_spacing = 8;
  double arterial_speed_multiplier = 0.30;
  std::uint32_t highway_spacing = 48;
  double highway_speed_multiplier = 0.10;
  std::uint64_t seed = 1;
};

/// Generates a connected synthetic road network. Throws on degenerate
/// options (grid smaller than 2x2, probabilities outside [0,1], ...).
Graph GenerateRoadNetwork(const RoadNetworkOptions& options);

/// A named dataset in the benchmark ladder mirroring the paper's Table 2
/// (scaled to laptop-class sizes; see DESIGN.md section 3).
struct DatasetSpec {
  std::string name;             ///< "DE", "ME", "FL", "E", "US".
  std::uint32_t grid_width;     ///< Generator grid width.
  std::uint32_t grid_height;    ///< Generator grid height.
  std::uint64_t seed;           ///< Generator seed.
  double object_fraction;       ///< |O| / |V| (Table 2: ~0.03..0.05).
  std::uint32_t num_keywords;   ///< |W| scaled like Table 2.
};

/// The five-dataset ladder used by the benchmark harnesses. Vertex counts
/// grow roughly 4x per step like DE -> ME -> FL -> E -> US in the paper.
std::vector<DatasetSpec> BenchmarkDatasetLadder();

/// Looks up a ladder entry by name; throws std::invalid_argument if unknown.
DatasetSpec DatasetSpecByName(const std::string& name);

}  // namespace kspin

#endif  // KSPIN_GRAPH_ROAD_NETWORK_GENERATOR_H_
