// Reader/writer for the 9th DIMACS Implementation Challenge road-network
// formats: ".gr" distance graphs and ".co" coordinate files. The paper's
// datasets (DE, ME, FL, E, US) ship in this format; our synthetic networks
// can be exported the same way for interoperability.
#ifndef KSPIN_GRAPH_DIMACS_IO_H_
#define KSPIN_GRAPH_DIMACS_IO_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace kspin {

/// Parses a DIMACS ".gr" stream (directed arc list; we fold arcs into
/// undirected edges keeping the minimum weight) and an optional ".co"
/// coordinate stream. Throws std::runtime_error with line context on
/// malformed input.
Graph ReadDimacsGraph(std::istream& gr_stream, std::istream* co_stream);

/// Convenience overload reading from file paths. `co_path` may be empty.
Graph ReadDimacsGraphFromFiles(const std::string& gr_path,
                               const std::string& co_path);

/// Writes `graph` in DIMACS ".gr" form (each undirected edge emitted as two
/// arcs, matching the challenge files).
void WriteDimacsGraph(const Graph& graph, std::ostream& gr_stream);

/// Writes coordinates in DIMACS ".co" form. Requires HasCoordinates().
void WriteDimacsCoordinates(const Graph& graph, std::ostream& co_stream);

}  // namespace kspin

#endif  // KSPIN_GRAPH_DIMACS_IO_H_
