// Immutable road-network graph in compressed-sparse-row (CSR) form.
//
// Following the paper's preliminaries (Section 2) the graph is a connected,
// undirected, positively weighted graph G = (V, E); queries and objects occur
// on vertices. Undirected edges are stored in both directions so all search
// algorithms traverse a single forward adjacency structure.
#ifndef KSPIN_GRAPH_GRAPH_H_
#define KSPIN_GRAPH_GRAPH_H_

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/types.h"

namespace kspin {

/// One directed arc in the CSR arrays.
struct Arc {
  VertexId head = kInvalidVertex;  ///< Target vertex of the arc.
  Weight weight = 0;               ///< Positive edge weight.
};

/// Immutable CSR graph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  /// Number of vertices |V|.
  std::size_t NumVertices() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }

  /// Number of *undirected* edges |E| (each stored as two arcs).
  std::size_t NumEdges() const { return arcs_.size() / 2; }

  /// Number of directed arcs (2|E|).
  std::size_t NumArcs() const { return arcs_.size(); }

  /// Outgoing arcs of vertex v.
  std::span<const Arc> Neighbors(VertexId v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  /// Degree of vertex v.
  std::size_t Degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Planar coordinate of vertex v (for quadtrees / R-trees / generators).
  const Coordinate& VertexCoordinate(VertexId v) const {
    return coordinates_[v];
  }

  /// All coordinates, indexed by vertex id.
  const std::vector<Coordinate>& Coordinates() const { return coordinates_; }

  /// True if coordinates were provided at build time.
  bool HasCoordinates() const { return !coordinates_.empty(); }

  /// Returns the weight of edge (u, v) or kInfDistance if absent. Linear in
  /// Degree(u); intended for tests and small-scale checks.
  Distance EdgeWeight(VertexId u, VertexId v) const;

  /// Approximate resident memory of the CSR arrays in bytes.
  std::size_t MemoryBytes() const;

 private:
  friend class GraphBuilder;
  friend void SaveGraph(const Graph&, std::ostream&);
  friend Graph LoadGraph(std::istream&);

  std::vector<std::size_t> offsets_;  // |V|+1 entries.
  std::vector<Arc> arcs_;             // 2|E| entries.
  std::vector<Coordinate> coordinates_;
};

void SaveGraph(const Graph& graph, std::ostream& out);
Graph LoadGraph(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_GRAPH_GRAPH_H_
