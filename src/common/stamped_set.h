// A version-stamped flat membership set over dense 32-bit ids.
//
// Replaces per-query std::unordered_set dedup sets on the hot query paths:
// Clear() is O(1) (bump the version), Insert/Contains are a single array
// access, and the backing array is reused across queries, so steady-state
// query execution performs no allocation.
#ifndef KSPIN_COMMON_STAMPED_SET_H_
#define KSPIN_COMMON_STAMPED_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kspin {

/// Set of uint32 ids with O(1) amortized insert/contains/clear. Grows on
/// demand to the largest inserted id; memory is proportional to that id,
/// which is fine for the dense ObjectId/VertexId universes used here.
class StampedIdSet {
 public:
  /// Empties the set. O(1) except on version wrap-around (every 2^32
  /// clears), where the stamp array is zeroed.
  void Clear() {
    ++version_;
    if (version_ == 0) {  // Wrap-around: hard reset.
      std::fill(stamp_.begin(), stamp_.end(), 0);
      version_ = 1;
    }
  }

  /// Inserts `id`; returns true when it was not yet a member.
  bool Insert(std::uint32_t id) {
    if (id >= stamp_.size()) {
      stamp_.resize(
          std::max<std::size_t>(static_cast<std::size_t>(id) + 1,
                                stamp_.size() * 2),
          0);
    }
    if (stamp_[id] == version_) return false;
    stamp_[id] = version_;
    return true;
  }

  bool Contains(std::uint32_t id) const {
    return id < stamp_.size() && stamp_[id] == version_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t version_ = 1;  // 0 is the never-inserted stamp.
};

}  // namespace kspin

#endif  // KSPIN_COMMON_STAMPED_SET_H_
