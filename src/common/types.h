// Core scalar types shared by every module in the K-SPIN reproduction.
#ifndef KSPIN_COMMON_TYPES_H_
#define KSPIN_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace kspin {

/// Identifier of a road-network vertex. Vertices are dense 0..|V|-1.
using VertexId = std::uint32_t;

/// Identifier of an object (point of interest). Objects are dense 0..|O|-1
/// within a DocumentStore; each object sits on exactly one vertex.
using ObjectId = std::uint32_t;

/// Identifier of a keyword (term) in a Vocabulary. Dense 0..|W|-1.
using KeywordId = std::uint32_t;

/// Weight of a single edge (e.g. travel time in deciseconds). Strictly
/// positive for all valid edges.
using Weight = std::uint32_t;

/// A network (shortest-path) distance: a sum of edge weights. 64-bit so that
/// paths over billions of weight units cannot overflow.
using Distance = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// Sentinel for "no object".
inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();

/// Sentinel for "no keyword".
inline constexpr KeywordId kInvalidKeyword =
    std::numeric_limits<KeywordId>::max();

/// Sentinel for "unreachable" / "unknown" distance.
inline constexpr Distance kInfDistance = std::numeric_limits<Distance>::max();

/// Planar coordinate of a vertex. Synthetic generators emit non-negative
/// integer coordinates; DIMACS .co files use (longitude, latitude) * 1e6.
struct Coordinate {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend bool operator==(const Coordinate&, const Coordinate&) = default;
};

}  // namespace kspin

#endif  // KSPIN_COMMON_TYPES_H_
