// Lightweight wall-clock timer used by index builders and benchmark
// harnesses.
#ifndef KSPIN_COMMON_TIMER_H_
#define KSPIN_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace kspin {

/// Monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to "now".
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple Start/Stop intervals; used to
/// report per-phase costs (e.g. heap maintenance vs. distance computation).
class AccumulatingTimer {
 public:
  void Start() { timer_.Restart(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  void Reset() { total_seconds_ = 0.0; }
  double TotalSeconds() const { return total_seconds_; }
  double TotalMillis() const { return total_seconds_ * 1e3; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace kspin

#endif  // KSPIN_COMMON_TIMER_H_
