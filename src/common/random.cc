#include "common/random.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace kspin {

std::uint64_t Rng::UniformInt(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::UniformInt: lo > hi");
  return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double Rng::UniformDouble() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::Bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

std::vector<std::uint32_t> Rng::SampleWithoutReplacement(std::uint32_t n,
                                                         std::uint32_t count) {
  if (count > n) {
    throw std::invalid_argument(
        "Rng::SampleWithoutReplacement: count exceeds population");
  }
  // For dense samples a shuffle is cheaper; for sparse ones rejection
  // sampling avoids materializing the population.
  if (count * 3 >= n) {
    std::vector<std::uint32_t> population(n);
    for (std::uint32_t i = 0; i < n; ++i) population[i] = i;
    std::shuffle(population.begin(), population.end(), engine_);
    population.resize(count);
    return population;
  }
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(count * 2);
  std::vector<std::uint32_t> result;
  result.reserve(count);
  while (result.size() < count) {
    auto v = static_cast<std::uint32_t>(UniformInt(0, n - 1));
    if (chosen.insert(v).second) result.push_back(v);
  }
  return result;
}

}  // namespace kspin
