// Cache-conscious flat storage primitives (ROADMAP item 3, "Simpler is
// More"): a cache-line-aligned allocator so hot arrays start on a 64-byte
// boundary, and a CSR-style pod arena that packs many small lists into one
// contiguous pool so traversals stop chasing per-list heap pointers.
//
// Used by the lower-bound hot path (AltIndex landmark rows, inverted-heap
// entries) and the APX-NVD structures (site adjacency lists, quadtree
// leaves) — see docs/performance.md.
#ifndef KSPIN_COMMON_ARENA_H_
#define KSPIN_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace kspin {

/// One x86 cache line (and a safe over-alignment on everything else).
inline constexpr std::size_t kCacheLineBytes = 64;

/// std::allocator drop-in returning 64-byte-aligned blocks. Guarantees the
/// *base* of a vector is cache-line aligned; combined with a row stride
/// that is a multiple of the line size, every row starts on its own line.
template <typename T>
class CacheAlignedAllocator {
 public:
  static_assert(std::is_trivially_copyable_v<T>,
                "arena storage is for pod types");
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{kCacheLineBytes}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
};

/// A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, CacheAlignedAllocator<T>>;

/// Rounds `n` up to a multiple of `multiple` (a power of two).
constexpr std::size_t RoundUpPow2(std::size_t n, std::size_t multiple) {
  return (n + multiple - 1) & ~(multiple - 1);
}

/// Many small immutable lists packed into one contiguous pod pool with a
/// CSR offset table — the arena replacement for vector<vector<T>>. Lists
/// are appended once (construction / deserialization) and then read-only;
/// neighbouring lists share cache lines instead of living in separate
/// heap blocks.
template <typename T>
class FlatLists {
 public:
  static_assert(std::is_trivially_copyable_v<T>);

  FlatLists() { offsets_.push_back(0); }

  /// Builds from the nested form in one pass.
  static FlatLists FromLists(const std::vector<std::vector<T>>& lists) {
    FlatLists flat;
    std::size_t total = 0;
    for (const auto& list : lists) total += list.size();
    flat.pool_.reserve(total);
    flat.offsets_.reserve(lists.size() + 1);
    for (const auto& list : lists) flat.Append(list);
    return flat;
  }

  /// Appends one list (only valid before any reads rely on stability).
  void Append(std::span<const T> list) {
    pool_.insert(pool_.end(), list.begin(), list.end());
    offsets_.push_back(static_cast<std::uint32_t>(pool_.size()));
  }

  std::span<const T> operator[](std::size_t i) const {
    return {pool_.data() + offsets_[i],
            static_cast<std::size_t>(offsets_[i + 1] - offsets_[i])};
  }

  std::size_t NumLists() const { return offsets_.size() - 1; }
  std::size_t TotalItems() const { return pool_.size(); }
  bool Empty() const { return NumLists() == 0; }

  void Clear() {
    pool_.clear();
    offsets_.assign(1, 0);
  }

  std::size_t MemoryBytes() const {
    return pool_.capacity() * sizeof(T) +
           offsets_.capacity() * sizeof(std::uint32_t);
  }

  /// The flat pool (for serialization and tests).
  const AlignedVector<T>& Pool() const { return pool_; }

 private:
  AlignedVector<T> pool_;
  std::vector<std::uint32_t> offsets_;  // offsets_[i]..offsets_[i+1].
};

}  // namespace kspin

#endif  // KSPIN_COMMON_ARENA_H_
