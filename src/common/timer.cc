#include "common/timer.h"

// Header-only in practice; this translation unit pins the vtable-free types
// into the library so IWYU-style consumers can link against kspin alone.
