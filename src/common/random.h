// Deterministic pseudo-random utilities. All generators in this repository
// take explicit seeds so experiments are reproducible run-to-run.
#ifndef KSPIN_COMMON_RANDOM_H_
#define KSPIN_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

namespace kspin {

/// Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t UniformInt(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Samples `count` distinct values from [0, n). Requires count <= n.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t n,
                                                      std::uint32_t count);

  /// Access to the underlying engine for std::shuffle etc.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kspin

#endif  // KSPIN_COMMON_RANDOM_H_
