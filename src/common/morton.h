// Morton (Z-order) encoding for 2-D coordinates. The rho-Approximate NVD
// quadtree is serialized as a Morton-ordered list of leaf cells (Samet,
// "Foundations of Multidimensional and Metric Data Structures"), which gives
// better locality of reference than a pointer-based tree.
#ifndef KSPIN_COMMON_MORTON_H_
#define KSPIN_COMMON_MORTON_H_

#include <cstdint>

namespace kspin {

/// Interleaves the low 32 bits of x (even positions) and y (odd positions)
/// into a 64-bit Morton code.
std::uint64_t MortonEncode(std::uint32_t x, std::uint32_t y);

/// Inverse of MortonEncode.
void MortonDecode(std::uint64_t code, std::uint32_t* x, std::uint32_t* y);

}  // namespace kspin

#endif  // KSPIN_COMMON_MORTON_H_
