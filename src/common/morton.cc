#include "common/morton.h"

namespace kspin {
namespace {

// Spreads the low 32 bits of v so bit i lands at position 2i.
std::uint64_t Part1By1(std::uint64_t v) {
  v &= 0x00000000FFFFFFFFull;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFull;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFull;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

// Inverse of Part1By1: collects bits at even positions.
std::uint32_t Compact1By1(std::uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0Full;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFull;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFull;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFull;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t MortonEncode(std::uint32_t x, std::uint32_t y) {
  return Part1By1(x) | (Part1By1(y) << 1);
}

void MortonDecode(std::uint64_t code, std::uint32_t* x, std::uint32_t* y) {
  *x = Compact1By1(code);
  *y = Compact1By1(code >> 1);
}

}  // namespace kspin
