// R-tree storage alternative for the rho-Approximate NVD (paper Section
// 6.1, "Space Complexity Theory vs. Practice", Figure 6c).
//
// One minimum bounding rectangle per Voronoi node set, bulk-loaded with
// Sort-Tile-Recursive (STR). Space is O(#sites) by construction — the
// worst-case guarantee the paper contrasts with quadtrees — but a point
// stabbing query may return more than rho colours (overlapping MBRs), so
// the rho candidate guarantee is lost.
#ifndef KSPIN_NVD_RTREE_H_
#define KSPIN_NVD_RTREE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/types.h"

namespace kspin {

/// STR-packed R-tree over per-colour MBRs.
class VoronoiRTree {
 public:
  /// `points[i]` (colour `colors[i]`) contribute to colour MBRs. Spans must
  /// be equal-sized and non-empty. `node_capacity` is the R-tree fanout.
  VoronoiRTree(std::span<const Coordinate> points,
               std::span<const std::uint32_t> colors,
               std::uint32_t node_capacity = 8);

  /// Appends every colour whose MBR contains `p` to `out` (cleared first).
  void Locate(const Coordinate& p, std::vector<std::uint32_t>* out) const;

  std::size_t NumColors() const { return num_colors_; }

  /// Approximate memory in bytes.
  std::size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) +
           children_.size() * sizeof(std::uint32_t);
  }

 private:
  friend void SaveVoronoiRTree(const VoronoiRTree&, std::ostream&);
  friend VoronoiRTree LoadVoronoiRTree(std::istream&);
  VoronoiRTree() = default;  // For deserialization only.

  struct Rect {
    std::int32_t min_x, min_y, max_x, max_y;
    bool Contains(const Coordinate& p) const {
      return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
    }
  };
  struct Node {
    Rect rect;
    std::uint32_t payload;      // Colour (leaf entries only).
    std::uint32_t child_begin;  // Offset into children_ (internal only).
    std::uint32_t num_children;  // 0 marks a leaf entry.
  };

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> children_;
  std::uint32_t root_ = 0;
  std::size_t num_colors_ = 0;
};

void SaveVoronoiRTree(const VoronoiRTree& tree, std::ostream& out);
VoronoiRTree LoadVoronoiRTree(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_NVD_RTREE_H_
