#include "nvd/rtree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace kspin {

VoronoiRTree::VoronoiRTree(std::span<const Coordinate> points,
                           std::span<const std::uint32_t> colors,
                           std::uint32_t node_capacity) {
  if (points.empty() || points.size() != colors.size()) {
    throw std::invalid_argument("VoronoiRTree: bad input sizes");
  }
  if (node_capacity < 2) {
    throw std::invalid_argument("VoronoiRTree: node_capacity must be >= 2");
  }

  // One MBR per colour.
  std::unordered_map<std::uint32_t, Rect> mbrs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto [it, inserted] = mbrs.try_emplace(
        colors[i],
        Rect{points[i].x, points[i].y, points[i].x, points[i].y});
    if (!inserted) {
      Rect& r = it->second;
      r.min_x = std::min(r.min_x, points[i].x);
      r.min_y = std::min(r.min_y, points[i].y);
      r.max_x = std::max(r.max_x, points[i].x);
      r.max_y = std::max(r.max_y, points[i].y);
    }
  }
  num_colors_ = mbrs.size();

  // Leaf entries.
  std::vector<std::uint32_t> level;
  level.reserve(mbrs.size());
  for (const auto& [color, rect] : mbrs) {
    nodes_.push_back({rect, color, 0, 0});
    level.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
  }

  auto centre_x = [this](std::uint32_t id) {
    return nodes_[id].rect.min_x + nodes_[id].rect.max_x;
  };
  auto centre_y = [this](std::uint32_t id) {
    return nodes_[id].rect.min_y + nodes_[id].rect.max_y;
  };

  // STR bulk load: sort by centre x, slice into sqrt(groups) strips, sort
  // each strip by centre y, pack runs of `node_capacity`; repeat upward.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return centre_x(a) < centre_x(b);
              });
    const std::size_t num_groups =
        (level.size() + node_capacity - 1) / node_capacity;
    const std::size_t num_strips = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_groups))));
    const std::size_t strip_size =
        (level.size() + num_strips - 1) / num_strips;
    std::vector<std::uint32_t> next_level;
    for (std::size_t s = 0; s < num_strips; ++s) {
      const std::size_t begin = s * strip_size;
      if (begin >= level.size()) break;
      const std::size_t end = std::min(level.size(), begin + strip_size);
      std::sort(level.begin() + begin, level.begin() + end,
                [&](std::uint32_t a, std::uint32_t b) {
                  return centre_y(a) < centre_y(b);
                });
      for (std::size_t g = begin; g < end; g += node_capacity) {
        const std::size_t gend = std::min(end, g + node_capacity);
        const std::uint32_t child_begin =
            static_cast<std::uint32_t>(children_.size());
        Rect bounds = nodes_[level[g]].rect;
        for (std::size_t i = g; i < gend; ++i) {
          children_.push_back(level[i]);
          const Rect& r = nodes_[level[i]].rect;
          bounds.min_x = std::min(bounds.min_x, r.min_x);
          bounds.min_y = std::min(bounds.min_y, r.min_y);
          bounds.max_x = std::max(bounds.max_x, r.max_x);
          bounds.max_y = std::max(bounds.max_y, r.max_y);
        }
        nodes_.push_back({bounds, 0, child_begin,
                          static_cast<std::uint32_t>(gend - g)});
        next_level.push_back(static_cast<std::uint32_t>(nodes_.size() - 1));
      }
    }
    level = std::move(next_level);
  }
  root_ = level.front();
}

void VoronoiRTree::Locate(const Coordinate& p,
                          std::vector<std::uint32_t>* out) const {
  out->clear();
  std::vector<std::uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.rect.Contains(p)) continue;
    if (node.num_children == 0) {
      out->push_back(node.payload);
      continue;
    }
    for (std::uint32_t c = 0; c < node.num_children; ++c) {
      stack.push_back(children_[node.child_begin + c]);
    }
  }
}

}  // namespace kspin
