#include "nvd/nvd.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_set>

namespace kspin {

NetworkVoronoiDiagram BuildNvd(const Graph& graph,
                               std::span<const VertexId> sites) {
  if (sites.empty()) {
    throw std::invalid_argument("BuildNvd: no sites");
  }
  {
    std::unordered_set<VertexId> unique(sites.begin(), sites.end());
    if (unique.size() != sites.size()) {
      throw std::invalid_argument("BuildNvd: duplicate site vertices");
    }
  }

  const std::size_t n = graph.NumVertices();
  NetworkVoronoiDiagram nvd;
  nvd.owner.assign(n, NetworkVoronoiDiagram::kInvalidSite);
  nvd.owner_distance.assign(n, kInfDistance);
  nvd.adjacency.assign(sites.size(), {});
  nvd.max_radius.assign(sites.size(), 0);

  // Multi-source Dijkstra; ties broken towards the lower site index so the
  // partition is deterministic.
  struct Entry {
    Distance dist;
    std::uint32_t site;
    VertexId vertex;
    bool operator>(const Entry& o) const {
      if (dist != o.dist) return dist > o.dist;
      return site > o.site;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (std::uint32_t s = 0; s < sites.size(); ++s) {
    const VertexId v = sites[s];
    if (v >= n) throw std::invalid_argument("BuildNvd: site out of range");
    nvd.owner[v] = s;
    nvd.owner_distance[v] = 0;
    queue.push({0, s, v});
  }
  std::vector<std::uint8_t> settled(n, 0);
  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (settled[top.vertex]) continue;
    settled[top.vertex] = 1;
    nvd.owner[top.vertex] = top.site;
    nvd.owner_distance[top.vertex] = top.dist;
    nvd.max_radius[top.site] = std::max(nvd.max_radius[top.site], top.dist);
    for (const Arc& arc : graph.Neighbors(top.vertex)) {
      if (settled[arc.head]) continue;
      const Distance nd = top.dist + arc.weight;
      if (nd < nvd.owner_distance[arc.head] ||
          (nd == nvd.owner_distance[arc.head] &&
           top.site < nvd.owner[arc.head])) {
        nvd.owner_distance[arc.head] = nd;
        nvd.owner[arc.head] = top.site;
        queue.push({nd, top.site, arc.head});
      }
    }
  }

  // Adjacency: any edge joining two different Voronoi node sets.
  for (VertexId u = 0; u < n; ++u) {
    const std::uint32_t a = nvd.owner[u];
    if (a == NetworkVoronoiDiagram::kInvalidSite) continue;
    for (const Arc& arc : graph.Neighbors(u)) {
      if (u >= arc.head) continue;
      const std::uint32_t b = nvd.owner[arc.head];
      if (b == NetworkVoronoiDiagram::kInvalidSite || a == b) continue;
      nvd.adjacency[a].push_back(b);
      nvd.adjacency[b].push_back(a);
    }
  }
  for (auto& list : nvd.adjacency) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nvd;
}

}  // namespace kspin
