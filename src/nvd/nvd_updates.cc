// Lazy update handling for the rho-Approximate NVD (paper Section 6.2):
// tombstone deletions, Theorem-2 affected sets for insertions, and
// threshold-driven rebuilds.
#include <algorithm>
#include <queue>
#include <stdexcept>

#include "nvd/apx_nvd.h"

namespace kspin {

void ApxNvd::Insert(ObjectId o, VertexId vertex, DistanceOracle& oracle) {
  if (site_index_.contains(o) || attached_nodes_.contains(o)) {
    // Re-inserting a tombstoned object (e.g. a keyword removed from an
    // object and later re-added) just revives it; its vertex is immutable.
    if (deleted_.erase(o) > 0) return;
    throw std::invalid_argument("ApxNvd::Insert: object already present");
  }

  if (!HasVoronoi()) {
    // Flat mode: the inverted list is the index; just append.
    site_index_.emplace(o, static_cast<std::uint32_t>(sites_.size()));
    sites_.push_back({o, vertex});
    attachments_.emplace_back();
    ++lazy_inserts_;
    last_affected_size_ = 0;
    return;
  }

  // Step 1: find the (stale-NVD) 1NN site p of the new object. The
  // Voronoi storage yields <= rho candidate colours containing the true
  // nearest site; the Network Distance Module disambiguates.
  std::vector<SiteObject> candidates;
  InitialCandidates(vertex, &candidates);
  oracle.BeginSourceBatch(vertex);
  std::uint32_t nearest = UINT32_MAX;
  Distance nearest_dist = kInfDistance;
  for (const SiteObject& c : candidates) {
    auto it = site_index_.find(c.object);
    if (it == site_index_.end()) continue;  // Skip earlier lazy inserts.
    const Distance d = oracle.NetworkDistance(vertex, c.vertex);
    if (d < nearest_dist) {
      nearest_dist = d;
      nearest = it->second;
    }
  }
  if (nearest == UINT32_MAX) {
    throw std::logic_error("ApxNvd::Insert: no nearest site found");
  }

  // Step 2: affected set via pruned BFS on the adjacency graph. A node e
  // is attached only when Theorem 2 cannot rule it out, i.e.
  // d(o, e) < 2 * MaxRadius(e). Pruning the *traversal* with the same
  // bound is unsafe, however: an affected large region can hide behind an
  // unaffected small one. Any region e crossed by the path from o to a
  // vertex it steals from region r satisfies
  //   d(o, e) <= MaxRadius(r) + MaxRadius(e) <= R* + MaxRadius(e)
  // (R* = the largest MaxRadius), so expanding under that weaker bound is
  // guaranteed to reach every affected region. MaxRadius values are from
  // construction time; lazy inserts only shrink true radii, so the stale
  // values are conservative.
  Distance max_radius_star = 0;
  for (Distance r : max_radius_) {
    max_radius_star = std::max(max_radius_star, r);
  }
  std::vector<std::uint32_t> affected;
  std::vector<std::uint8_t> visited(sites_.size(), 0);
  std::queue<std::uint32_t> bfs;
  bfs.push(nearest);
  visited[nearest] = 1;
  affected.push_back(nearest);
  while (!bfs.empty()) {
    const std::uint32_t node = bfs.front();
    bfs.pop();
    for (std::uint32_t adj : adjacency_[node]) {
      if (visited[adj]) continue;
      visited[adj] = 1;
      const Distance d = oracle.NetworkDistance(vertex, sites_[adj].vertex);
      if (d < 2 * max_radius_[adj]) {
        affected.push_back(adj);  // Theorem 2 cannot exclude it.
      }
      // Non-strict: the derivation bounds crossed regions by
      // d(o,e) <= MaxRadius(r) + MaxRadius(e), and equality is achievable
      // with integer weights.
      if (d <= max_radius_star + max_radius_[adj]) {
        bfs.push(adj);  // Affected regions may lie beyond: keep walking.
      }
    }
  }
  last_affected_size_ = affected.size();

  // Step 3: attach the new object to every affected node.
  for (std::uint32_t node : affected) {
    attachments_[node].push_back({o, vertex});
  }
  attached_nodes_.emplace(o, std::move(affected));
  ++lazy_inserts_;
}

void ApxNvd::Delete(ObjectId o) {
  if (!site_index_.contains(o) && !attached_nodes_.contains(o)) {
    throw std::invalid_argument("ApxNvd::Delete: unknown object");
  }
  if (!deleted_.insert(o).second) {
    throw std::invalid_argument("ApxNvd::Delete: already deleted");
  }
}

bool ApxNvd::NeedsRebuild() const {
  const std::size_t live = NumLiveObjects();
  if (HasVoronoi()) {
    // Too many lazy inserts, or shrunk under the rho cutoff (flatten).
    return lazy_inserts_ > options_.lazy_insert_threshold ||
           live <= options_.rho;
  }
  // Flat index: outgrew the cutoff plus the lazy slack.
  return live > options_.rho + options_.lazy_insert_threshold;
}

void ApxNvd::Rebuild() {
  std::vector<SiteObject> live = LiveObjects();
  std::sort(live.begin(), live.end(),
            [](const SiteObject& a, const SiteObject& b) {
              return a.object < b.object;
            });
  Build(std::move(live));
}

}  // namespace kspin
