#include "nvd/quadtree.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "common/morton.h"

namespace kspin {
namespace {

struct ZPoint {
  std::uint64_t z;
  std::uint32_t color;
};

}  // namespace

ColorQuadtree::ColorQuadtree(std::span<const Coordinate> points,
                             std::span<const std::uint32_t> colors,
                             std::uint32_t max_colors,
                             std::uint32_t max_depth) {
  if (points.empty() || points.size() != colors.size()) {
    throw std::invalid_argument("ColorQuadtree: bad input sizes");
  }
  if (max_colors == 0) {
    throw std::invalid_argument("ColorQuadtree: max_colors must be >= 1");
  }
  max_depth = std::min<std::uint32_t>(max_depth, 16);
  grid_bits_ = max_depth;

  // Quantize coordinates onto a 2^max_depth grid covering the bounding box.
  std::int64_t min_x = points[0].x, max_x = points[0].x;
  std::int64_t min_y = points[0].y, max_y = points[0].y;
  for (const Coordinate& p : points) {
    min_x = std::min<std::int64_t>(min_x, p.x);
    max_x = std::max<std::int64_t>(max_x, p.x);
    min_y = std::min<std::int64_t>(min_y, p.y);
    max_y = std::max<std::int64_t>(max_y, p.y);
  }
  origin_x_ = static_cast<double>(min_x);
  origin_y_ = static_cast<double>(min_y);
  const double span = static_cast<double>(
      std::max<std::int64_t>({max_x - min_x, max_y - min_y, 1}));
  const double cells = static_cast<double>(1u << grid_bits_);
  scale_ = (cells - 1.0) / span;

  std::vector<ZPoint> zpoints(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    zpoints[i] = {QuantizedZ(points[i]), colors[i]};
  }
  std::sort(zpoints.begin(), zpoints.end(),
            [](const ZPoint& a, const ZPoint& b) { return a.z < b.z; });

  // Recursive subdivision over the Morton-sorted array. A cell at `depth`
  // spans 2*(grid_bits_ - depth) trailing bits of the Z code.
  struct Frame {
    std::size_t begin, end;
    std::uint64_t z_begin;
    std::uint32_t depth;
  };
  std::vector<Frame> stack;
  stack.push_back({0, zpoints.size(), 0, 0});
  std::unordered_set<std::uint32_t> distinct;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.begin >= frame.end) continue;
    const std::uint32_t shift = 2 * (grid_bits_ - frame.depth);
    const std::uint64_t cell_span = shift >= 64 ? ~0ull : (1ull << shift);

    // Count distinct colours with early exit past max_colors.
    bool small_enough = true;
    if (frame.depth < max_depth) {
      distinct.clear();
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        distinct.insert(zpoints[i].color);
        if (distinct.size() > max_colors) {
          small_enough = false;
          break;
        }
      }
    }
    if (small_enough || frame.depth >= max_depth) {
      distinct.clear();
      Leaf leaf;
      leaf.z_begin = frame.z_begin;
      leaf.z_end = frame.z_begin + cell_span;
      leaf.color_offset = static_cast<std::uint32_t>(color_pool_.size());
      for (std::size_t i = frame.begin; i < frame.end; ++i) {
        if (distinct.insert(zpoints[i].color).second) {
          color_pool_.push_back(zpoints[i].color);
        }
      }
      leaf.color_count =
          static_cast<std::uint32_t>(color_pool_.size()) - leaf.color_offset;
      leaves_.push_back(leaf);
      max_leaf_depth_ = std::max(max_leaf_depth_, frame.depth);
      continue;
    }
    // Split into 4 quadrants: find sub-range boundaries by Z prefix.
    const std::uint64_t quarter = cell_span >> 2;
    std::size_t sub_begin = frame.begin;
    for (std::uint32_t quad = 0; quad < 4; ++quad) {
      const std::uint64_t quad_z = frame.z_begin + quad * quarter;
      const std::uint64_t quad_end_z = quad_z + quarter;
      std::size_t sub_end = sub_begin;
      while (sub_end < frame.end && zpoints[sub_end].z < quad_end_z) {
        ++sub_end;
      }
      stack.push_back({sub_begin, sub_end, quad_z, frame.depth + 1});
      sub_begin = sub_end;
    }
  }
  std::sort(leaves_.begin(), leaves_.end(),
            [](const Leaf& a, const Leaf& b) { return a.z_begin < b.z_begin; });
}

std::uint64_t ColorQuadtree::QuantizedZ(const Coordinate& p) const {
  double fx = (static_cast<double>(p.x) - origin_x_) * scale_;
  double fy = (static_cast<double>(p.y) - origin_y_) * scale_;
  const double max_cell = static_cast<double>((1u << grid_bits_) - 1);
  fx = std::clamp(fx, 0.0, max_cell);
  fy = std::clamp(fy, 0.0, max_cell);
  return MortonEncode(static_cast<std::uint32_t>(fx),
                      static_cast<std::uint32_t>(fy));
}

std::span<const std::uint32_t> ColorQuadtree::Locate(
    const Coordinate& p) const {
  const std::uint64_t z = QuantizedZ(p);
  // Last leaf with z_begin <= z.
  auto it = std::upper_bound(leaves_.begin(), leaves_.end(), z,
                             [](std::uint64_t value, const Leaf& leaf) {
                               return value < leaf.z_begin;
                             });
  if (it == leaves_.begin()) return {};
  --it;
  if (z >= it->z_end) return {};  // Dead space between leaves.
  return {color_pool_.data() + it->color_offset, it->color_count};
}

}  // namespace kspin
