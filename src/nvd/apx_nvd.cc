#include "nvd/apx_nvd.h"

#include <algorithm>
#include <stdexcept>

#include "nvd/nvd.h"

namespace kspin {

ApxNvd::ApxNvd(const Graph& graph, std::vector<SiteObject> sites,
               ApxNvdOptions options)
    : graph_(graph), options_(options) {
  if (options_.rho == 0) {
    throw std::invalid_argument("ApxNvd: rho must be >= 1");
  }
  Build(std::move(sites));
}

void ApxNvd::Build(std::vector<SiteObject> sites) {
  site_index_.clear();
  adjacency_.Clear();
  max_radius_.clear();
  quadtree_.reset();
  rtree_.reset();
  attached_nodes_.clear();
  deleted_.clear();
  lazy_inserts_ = 0;

  // Objects sharing a vertex collapse onto one Voronoi site: the first
  // becomes the site, the rest ride along as attachments of that node (so
  // they surface whenever the node does; their distances are identical).
  std::unordered_map<VertexId, std::uint32_t> vertex_site;
  sites_.clear();
  std::vector<std::pair<ObjectId, std::uint32_t>> colocated;
  for (const SiteObject& s : sites) {
    if (site_index_.contains(s.object)) {
      throw std::invalid_argument("ApxNvd: duplicate object id");
    }
    auto [it, inserted] = vertex_site.try_emplace(
        s.vertex, static_cast<std::uint32_t>(sites_.size()));
    if (inserted) {
      site_index_.emplace(s.object, it->second);
      sites_.push_back(s);
    } else {
      site_index_.emplace(s.object, UINT32_MAX);  // Not a site itself.
      colocated.emplace_back(s.object, it->second);
    }
  }
  attachments_.assign(sites_.size(), {});
  for (const auto& [object, node] : colocated) {
    site_index_.erase(object);
    attachments_[node].push_back({object, sites_[node].vertex});
    attached_nodes_.emplace(
        object, std::vector<std::uint32_t>{node});
  }

  // Observation 1: tiny inverted lists need no Voronoi machinery at all —
  // the "index" is the flat list itself.
  if (sites_.size() <= options_.rho) return;

  if (!graph_.HasCoordinates()) {
    throw std::invalid_argument(
        "ApxNvd: graph coordinates required for Voronoi storage");
  }

  std::vector<VertexId> site_vertices(sites_.size());
  for (std::uint32_t i = 0; i < sites_.size(); ++i) {
    site_vertices[i] = sites_[i].vertex;
  }
  NetworkVoronoiDiagram nvd = BuildNvd(graph_, site_vertices);
  adjacency_ = FlatLists<std::uint32_t>::FromLists(nvd.adjacency);
  max_radius_ = std::move(nvd.max_radius);

  // Voronoi storage over every vertex's owner colour; the O(|V|) owner
  // array itself is discarded (Observation 2a).
  if (options_.storage == ApxNvdStorage::kQuadtree) {
    quadtree_ = std::make_unique<ColorQuadtree>(
        graph_.Coordinates(), nvd.owner, options_.rho,
        options_.quadtree_max_depth);
  } else {
    rtree_ = std::make_unique<VoronoiRTree>(graph_.Coordinates(), nvd.owner);
  }
}

void ApxNvd::InitialCandidates(VertexId q,
                               std::vector<SiteObject>* out) const {
  if (!HasVoronoi()) {
    out->insert(out->end(), sites_.begin(), sites_.end());
    for (const auto& list : attachments_) {
      out->insert(out->end(), list.begin(), list.end());
    }
    return;
  }
  const Coordinate& coord = graph_.VertexCoordinate(q);
  auto emit_node = [this, out](std::uint32_t node) {
    out->push_back(sites_[node]);
    out->insert(out->end(), attachments_[node].begin(),
                attachments_[node].end());
  };
  if (quadtree_ != nullptr) {
    for (std::uint32_t color : quadtree_->Locate(coord)) emit_node(color);
  } else {
    // Thread-local so concurrent readers of one ApxNvd don't share scratch.
    thread_local std::vector<std::uint32_t> locate_scratch;
    rtree_->Locate(coord, &locate_scratch);
    for (std::uint32_t color : locate_scratch) emit_node(color);
  }
}

void ApxNvd::ExpandCandidates(ObjectId o,
                              std::vector<SiteObject>* out) const {
  if (!HasVoronoi()) return;  // Flat lists are fully emitted at init.
  auto emit_node = [this, out](std::uint32_t node) {
    out->push_back(sites_[node]);
    out->insert(out->end(), attachments_[node].begin(),
                attachments_[node].end());
  };
  auto expand_node = [this, &emit_node](std::uint32_t node) {
    emit_node(node);  // Covers co-attachments of the node itself.
    for (std::uint32_t adj : adjacency_[node]) emit_node(adj);
  };
  auto site_it = site_index_.find(o);
  if (site_it != site_index_.end()) {
    expand_node(site_it->second);
    return;
  }
  auto attached_it = attached_nodes_.find(o);
  if (attached_it != attached_nodes_.end()) {
    for (std::uint32_t node : attached_it->second) expand_node(node);
  }
}

std::size_t ApxNvd::NumLiveObjects() const {
  std::size_t live = sites_.size() - 0;
  for (const SiteObject& s : sites_) {
    if (deleted_.contains(s.object)) --live;
  }
  for (const auto& [o, nodes] : attached_nodes_) {
    if (!deleted_.contains(o)) ++live;
  }
  return live;
}

std::vector<SiteObject> ApxNvd::LiveObjects() const {
  std::vector<SiteObject> live;
  live.reserve(sites_.size());
  for (const SiteObject& s : sites_) {
    if (!deleted_.contains(s.object)) live.push_back(s);
  }
  for (const auto& [o, nodes] : attached_nodes_) {
    if (deleted_.contains(o) || nodes.empty()) continue;
    // Attached objects record their vertex via the first attachment's
    // stored copy in attachments_.
    for (const SiteObject& a : attachments_[nodes.front()]) {
      if (a.object == o) {
        live.push_back(a);
        break;
      }
    }
  }
  return live;
}

std::size_t ApxNvd::MemoryBytes() const {
  std::size_t total = sites_.size() * sizeof(SiteObject) +
                      max_radius_.size() * sizeof(Distance) +
                      adjacency_.MemoryBytes();
  for (const auto& list : attachments_) {
    total += list.size() * sizeof(SiteObject) + sizeof(list);
  }
  if (quadtree_ != nullptr) total += quadtree_->MemoryBytes();
  if (rtree_ != nullptr) total += rtree_->MemoryBytes();
  return total;
}

}  // namespace kspin
