// Exact Network Voronoi Diagram (paper Section 5; Erwig & Hagen's graph
// Voronoi diagram): a disjoint partitioning of road vertices by nearest
// site, computed with one multi-source Dijkstra in O(|V| log |V|).
//
// Alongside the per-vertex owner assignment the construction collects the
// two artifacts K-SPIN actually retains (Observation 2a):
//   - the site adjacency graph (sites whose Voronoi node sets touch), and
//   - MaxRadius per site (Section 6.2, used by Theorem 2 affected sets).
#ifndef KSPIN_NVD_NVD_H_
#define KSPIN_NVD_NVD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kspin {

/// Result of an exact NVD computation. Site indices are positions in the
/// `sites` span passed to BuildNvd.
struct NetworkVoronoiDiagram {
  /// For each vertex, the index of its nearest site (ties broken towards
  /// the lower site index). kInvalidSite for unreachable vertices.
  std::vector<std::uint32_t> owner;
  /// Distance from each vertex to its owner.
  std::vector<Distance> owner_distance;
  /// Adjacency lists over site indices: sites i and j are adjacent iff an
  /// edge connects their Voronoi node sets. Sorted, no duplicates.
  std::vector<std::vector<std::uint32_t>> adjacency;
  /// MaxRadius per site: the maximum distance from the site to a vertex of
  /// its Voronoi node set.
  std::vector<Distance> max_radius;

  static constexpr std::uint32_t kInvalidSite = UINT32_MAX;
};

/// Builds the exact NVD for `sites` (vertex locations, duplicates not
/// allowed). Throws on an empty site list or duplicate site vertices.
NetworkVoronoiDiagram BuildNvd(const Graph& graph,
                               std::span<const VertexId> sites);

}  // namespace kspin

#endif  // KSPIN_NVD_NVD_H_
