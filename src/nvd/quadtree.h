// Colour quadtree: the storage scheme of the rho-Approximate NVD (paper
// Section 6.1, Figure 5a).
//
// Each vertex carries a "colour" (the index of its nearest site). The
// space is recursively quadrisected until every cell contains at most rho
// distinct colours. Leaves are serialized as a Morton-ordered list
// (Samet): point location is a binary search over Z-order intervals, with
// good locality of reference and no pointer overhead.
#ifndef KSPIN_NVD_QUADTREE_H_
#define KSPIN_NVD_QUADTREE_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/types.h"

namespace kspin {

/// Morton-list quadtree over coloured points.
class ColorQuadtree {
 public:
  /// Builds the quadtree. `points[i]` has colour `colors[i]`; both spans
  /// must be equal-sized and non-empty. `max_colors` is rho; `max_depth`
  /// caps subdivision (cells at max depth may exceed rho colours when
  /// distinct-coloured points share a quantized position — queries remain
  /// correct, only the rho guarantee loosens there).
  ColorQuadtree(std::span<const Coordinate> points,
                std::span<const std::uint32_t> colors,
                std::uint32_t max_colors, std::uint32_t max_depth = 16);

  /// Colours of the leaf cell containing `p` (empty span if `p` falls in
  /// dead space no input point occupied).
  std::span<const std::uint32_t> Locate(const Coordinate& p) const;

  std::size_t NumLeaves() const { return leaves_.size(); }

  /// Depth of the deepest leaf.
  std::uint32_t MaxLeafDepth() const { return max_leaf_depth_; }

  /// Approximate memory in bytes (the paper's index-size metric for
  /// Figures 6a and 6c).
  std::size_t MemoryBytes() const {
    return leaves_.size() * sizeof(Leaf) +
           color_pool_.size() * sizeof(std::uint32_t);
  }

 private:
  friend void SaveColorQuadtree(const ColorQuadtree&, std::ostream&);
  friend ColorQuadtree LoadColorQuadtree(std::istream&);
  ColorQuadtree() = default;  // For deserialization only.

  struct Leaf {
    std::uint64_t z_begin;  // Inclusive.
    std::uint64_t z_end;    // Exclusive.
    std::uint32_t color_offset;
    std::uint32_t color_count;
  };

  std::uint64_t QuantizedZ(const Coordinate& p) const;

  double origin_x_ = 0, origin_y_ = 0, scale_ = 1;
  std::uint32_t grid_bits_ = 16;
  // Pod arenas, cache-line aligned: Locate's binary search walks leaves_
  // and its result is one contiguous color_pool_ slice.
  AlignedVector<Leaf> leaves_;                // Sorted by z_begin.
  AlignedVector<std::uint32_t> color_pool_;   // Leaf colour sets, concatenated.
  std::uint32_t max_leaf_depth_ = 0;
};

void SaveColorQuadtree(const ColorQuadtree& tree, std::ostream& out);
ColorQuadtree LoadColorQuadtree(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_NVD_QUADTREE_H_
