// rho-Approximate Network Voronoi Diagram (paper Section 6.1, Definition 1):
// the per-keyword index of the Keyword Separated Index.
//
// For every vertex v it can retrieve up to rho candidate objects, one of
// which is guaranteed to be the 1NN of v — enough to initialize an
// on-demand inverted heap (Theorem 1) — plus the site adjacency graph and
// MaxRadius values needed to maintain the heap (Algorithm 4) and to handle
// updates (Section 6.2, Theorem 2).
//
// Space savings relative to an exact NVD come from three observations:
//  - keywords with |inv(t)| <= rho skip Voronoi construction entirely and
//    degenerate to the flat inverted list (Observation 1);
//  - only the O(|inv(t)|) adjacency graph is retained, not the O(|V|)
//    vertex assignment (Observation 2a);
//  - the vertex assignment is replaced by a quadtree subdivided only until
//    cells have <= rho distinct nearest sites (Observation 2b), or by an
//    R-tree of per-site MBRs for a worst-case space bound.
//
// Updates are lazy: deletions tombstone; insertions compute a Theorem-2
// affected set and attach the new object to those adjacency-graph nodes,
// deferring reconstruction. Queries remain exact throughout.
#ifndef KSPIN_NVD_APX_NVD_H_
#define KSPIN_NVD_APX_NVD_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "graph/graph.h"
#include "nvd/quadtree.h"
#include "nvd/rtree.h"
#include "routing/distance_oracle.h"

namespace kspin {

/// Storage backend for the approximate Voronoi assignment.
enum class ApxNvdStorage {
  kQuadtree,  ///< Morton-list colour quadtree (rho candidate guarantee).
  kRTree,     ///< Per-site MBR R-tree (O(sites) space guarantee).
};

/// Construction / update tuning.
struct ApxNvdOptions {
  std::uint32_t rho = 5;  ///< Candidate bound (and Observation-1 cutoff).
  ApxNvdStorage storage = ApxNvdStorage::kQuadtree;
  std::uint32_t quadtree_max_depth = 16;
  /// Lazy inserts tolerated before NeedsRebuild() reports true.
  std::uint32_t lazy_insert_threshold = 64;
};

/// An object anchored at a vertex — one entry of a keyword's inverted list.
struct SiteObject {
  ObjectId object;
  VertexId vertex;
};

/// Per-keyword approximate NVD with lazy update support.
class ApxNvd {
 public:
  /// Builds the index for one keyword's object set. Requires graph
  /// coordinates when Voronoi structures are needed (|sites| > rho).
  /// Throws on duplicate site vertices or missing coordinates.
  ApxNvd(const Graph& graph, std::vector<SiteObject> sites,
         ApxNvdOptions options = {});

  // ----- Candidate generation (consumed by the Heap Generator) ---------

  /// Appends the initial heap candidates for query vertex q: at most rho
  /// Voronoi colours (one of which owns q) with their lazily attached
  /// objects — or every object when no Voronoi structure exists. Deleted
  /// objects are included (the heap suppresses them on extraction).
  void InitialCandidates(VertexId q, std::vector<SiteObject>* out) const;

  /// Appends the objects to inject when `o` is extracted from a heap
  /// (Algorithm 4's adjacent-object supply): the sites adjacent to every
  /// node associated with o, plus all lazily attached objects of those
  /// nodes.
  void ExpandCandidates(ObjectId o, std::vector<SiteObject>* out) const;

  /// True once Delete(o) tombstoned the object.
  bool IsDeleted(ObjectId o) const { return deleted_.contains(o); }

  // ----- Updates (Section 6.2; implementation in nvd_updates.cc) -------

  /// Lazily inserts a new object: computes the Theorem-2 affected set via
  /// a pruned BFS on the adjacency graph (distances from `oracle`) and
  /// attaches the object there. Throws if the object id already exists.
  void Insert(ObjectId o, VertexId vertex, DistanceOracle& oracle);

  /// Tombstones object o. Throws if unknown or already deleted.
  void Delete(ObjectId o);

  /// True when enough lazy updates accumulated that a Rebuild() would pay
  /// off (threshold crossed, or the index should flatten/unflatten around
  /// the rho cutoff).
  bool NeedsRebuild() const;

  /// Reconstructs the index from the live object set, absorbing all lazy
  /// updates.
  void Rebuild();

  // ----- Introspection ---------------------------------------------------

  /// True if Voronoi structures exist (|live sites| was > rho at build).
  bool HasVoronoi() const { return quadtree_ != nullptr || rtree_ != nullptr; }

  std::size_t NumLiveObjects() const;
  std::size_t NumLazyInserts() const { return lazy_inserts_; }
  std::uint32_t Rho() const { return options_.rho; }

  /// Size of the affected set computed by the most recent Insert (0 when
  /// the index is flat). Exposed for tests and the Figure 8 harness.
  std::size_t LastAffectedSetSize() const { return last_affected_size_; }

  /// Approximate memory in bytes: Voronoi storage + adjacency + radii.
  std::size_t MemoryBytes() const;

 private:
  friend class ApxNvdTestPeer;
  friend void SaveApxNvd(const ApxNvd&, std::ostream&);
  friend std::unique_ptr<ApxNvd> LoadApxNvd(const Graph&, std::istream&);
  /// Shell for deserialization; LoadApxNvd fills every field.
  explicit ApxNvd(const Graph& graph) : graph_(graph) {}

  void Build(std::vector<SiteObject> sites);
  std::vector<SiteObject> LiveObjects() const;

  const Graph& graph_;
  ApxNvdOptions options_;

  // Objects the Voronoi structures were built over; index == colour.
  std::vector<SiteObject> sites_;
  std::unordered_map<ObjectId, std::uint32_t> site_index_;
  // Site adjacency graph, arena-packed (CSR): the LazyReheap hot path
  // walks a node's neighbour list as one contiguous span.
  FlatLists<std::uint32_t> adjacency_;
  std::vector<Distance> max_radius_;
  std::unique_ptr<ColorQuadtree> quadtree_;
  std::unique_ptr<VoronoiRTree> rtree_;

  // Lazy state.
  std::vector<std::vector<SiteObject>> attachments_;  // Per site node.
  std::unordered_map<ObjectId, std::vector<std::uint32_t>> attached_nodes_;
  std::unordered_set<ObjectId> deleted_;
  std::size_t lazy_inserts_ = 0;
  std::size_t last_affected_size_ = 0;
};

void SaveApxNvd(const ApxNvd& nvd, std::ostream& out);
std::unique_ptr<ApxNvd> LoadApxNvd(const Graph& graph, std::istream& in);

}  // namespace kspin

#endif  // KSPIN_NVD_APX_NVD_H_
