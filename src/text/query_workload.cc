#include "text/query_workload.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/random.h"

namespace kspin {

QueryWorkload::QueryWorkload(const Graph& graph, const DocumentStore& store,
                             const InvertedIndex& index,
                             WorkloadOptions options)
    : graph_(graph), store_(store), index_(index), seed_(options.seed) {
  if (index.NumKeywords() == 0 || store.NumLiveObjects() == 0) {
    throw std::invalid_argument("QueryWorkload: empty keyword dataset");
  }
  Rng rng(options.seed);
  lengths_ = options.vector_lengths;
  std::sort(lengths_.begin(), lengths_.end());
  lengths_.erase(std::unique(lengths_.begin(), lengths_.end()),
                 lengths_.end());

  // Rank keywords by descending inverted-list size; choose seed terms from
  // the requested rank window.
  std::vector<KeywordId> by_rank(index.NumKeywords());
  std::iota(by_rank.begin(), by_rank.end(), 0);
  std::stable_sort(by_rank.begin(), by_rank.end(),
                   [&index](KeywordId a, KeywordId b) {
                     return index.ListSize(a) > index.ListSize(b);
                   });
  std::vector<KeywordId> seed_terms;
  for (std::uint32_t r = options.seed_term_min_rank;
       r < by_rank.size() && seed_terms.size() < options.num_seed_terms;
       ++r) {
    if (index.ListSize(by_rank[r]) > 0) seed_terms.push_back(by_rank[r]);
  }
  if (seed_terms.empty()) {
    throw std::invalid_argument("QueryWorkload: no non-empty keywords");
  }

  // Build one keyword vector per (seed term, sampled object, length):
  // the vector starts with the seed term and is extended with other
  // keywords from the object's document (correlated keywords), falling
  // back to random keywords if the document is too short.
  queries_by_length_.resize(lengths_.size());
  for (KeywordId term : seed_terms) {
    const std::span<const ObjectId> inv = index_.Objects(term);
    for (std::uint32_t i = 0; i < options.objects_per_term; ++i) {
      const ObjectId o = inv[rng.UniformInt(0, inv.size() - 1)];
      std::vector<KeywordId> co_occurring;
      for (const DocEntry& e : store_.Document(o)) {
        if (e.keyword != term) co_occurring.push_back(e.keyword);
      }
      std::shuffle(co_occurring.begin(), co_occurring.end(), rng.engine());

      for (std::size_t li = 0; li < lengths_.size(); ++li) {
        const std::uint32_t length = lengths_[li];
        std::vector<KeywordId> vec = {term};
        for (std::size_t j = 0; vec.size() < length && j < co_occurring.size();
             ++j) {
          vec.push_back(co_occurring[j]);
        }
        while (vec.size() < length) {
          const KeywordId extra = static_cast<KeywordId>(
              rng.UniformInt(0, index_.NumKeywords() - 1));
          if (std::find(vec.begin(), vec.end(), extra) == vec.end() &&
              index_.ListSize(extra) > 0) {
            vec.push_back(extra);
          }
        }
        for (std::uint32_t v = 0; v < options.vertices_per_vector; ++v) {
          SpatialKeywordQuery query;
          query.vertex = static_cast<VertexId>(
              rng.UniformInt(0, graph_.NumVertices() - 1));
          query.keywords = vec;
          queries_by_length_[li].push_back(std::move(query));
        }
      }
    }
  }
}

std::span<const SpatialKeywordQuery> QueryWorkload::QueriesForLength(
    std::uint32_t length) const {
  const auto it = std::find(lengths_.begin(), lengths_.end(), length);
  if (it == lengths_.end()) {
    throw std::invalid_argument("QueryWorkload: length " +
                                std::to_string(length) + " not generated");
  }
  return queries_by_length_[it - lengths_.begin()];
}

std::vector<SpatialKeywordQuery> QueryWorkload::SingleKeywordDensityBucket(
    double lo, double hi, std::uint32_t max_keywords,
    std::uint32_t count) const {
  Rng rng(seed_ ^ 0x5eedbeef);
  const double num_vertices = static_cast<double>(graph_.NumVertices());
  std::vector<KeywordId> bucket;
  for (KeywordId t = 0; t < index_.NumKeywords(); ++t) {
    const double density = index_.ListSize(t) / num_vertices;
    if (density >= lo && density < hi && index_.ListSize(t) > 0) {
      bucket.push_back(t);
    }
  }
  std::shuffle(bucket.begin(), bucket.end(), rng.engine());
  if (bucket.size() > max_keywords) bucket.resize(max_keywords);

  std::vector<SpatialKeywordQuery> queries;
  for (KeywordId t : bucket) {
    for (std::uint32_t i = 0; i < count; ++i) {
      SpatialKeywordQuery query;
      query.vertex = static_cast<VertexId>(
          rng.UniformInt(0, graph_.NumVertices() - 1));
      query.keywords = {t};
      queries.push_back(std::move(query));
    }
  }
  return queries;
}

}  // namespace kspin
