// Keyword corpus W: a bidirectional mapping between keyword strings and
// dense KeywordIds.
#ifndef KSPIN_TEXT_VOCABULARY_H_
#define KSPIN_TEXT_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace kspin {

/// Dense keyword dictionary.
class Vocabulary {
 public:
  /// Returns the id of `term`, interning it if new.
  KeywordId AddOrGet(std::string_view term);

  /// Returns the id of `term` or kInvalidKeyword if absent.
  KeywordId IdOf(std::string_view term) const;

  /// The term of a keyword id. Throws std::out_of_range on bad ids.
  const std::string& TermOf(KeywordId id) const;

  /// Corpus size |W|.
  std::size_t Size() const { return terms_.size(); }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, KeywordId> index_;
};

}  // namespace kspin

#endif  // KSPIN_TEXT_VOCABULARY_H_
