#include "text/inverted_index.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace kspin {

InvertedIndex::InvertedIndex(const DocumentStore& store,
                             std::size_t num_keywords)
    : lists_(num_keywords) {
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    for (const DocEntry& entry : store.Document(o)) {
      if (entry.keyword >= num_keywords) {
        throw std::invalid_argument(
            "InvertedIndex: keyword id " + std::to_string(entry.keyword) +
            " outside universe of size " + std::to_string(num_keywords));
      }
      lists_[entry.keyword].push_back(o);
    }
  }
  // Documents are visited in ascending object id, so lists are sorted.
}

void InvertedIndex::Add(KeywordId t, ObjectId o) {
  if (t >= lists_.size()) {
    throw std::out_of_range("InvertedIndex::Add: keyword out of universe");
  }
  auto& list = lists_[t];
  auto it = std::lower_bound(list.begin(), list.end(), o);
  if (it != list.end() && *it == o) return;  // Already present.
  list.insert(it, o);
}

void InvertedIndex::Remove(KeywordId t, ObjectId o) {
  if (t >= lists_.size()) {
    throw std::out_of_range("InvertedIndex::Remove: keyword out of universe");
  }
  auto& list = lists_[t];
  auto it = std::lower_bound(list.begin(), list.end(), o);
  if (it == list.end() || *it != o) {
    throw std::invalid_argument(
        "InvertedIndex::Remove: object not in inverted list");
  }
  list.erase(it);
}

std::size_t InvertedIndex::MemoryBytes() const {
  std::size_t total = lists_.size() * sizeof(std::vector<ObjectId>);
  for (const auto& list : lists_) total += list.size() * sizeof(ObjectId);
  return total;
}

}  // namespace kspin
