// Query workload generator reproducing the paper's methodology (Section
// 7.1, "Query Parameters"): pick several popular seed terms; for each, pick
// objects containing the term and extend with keywords co-occurring in the
// same object's document (so multi-keyword queries are correlated, as in
// real searches); pair every keyword vector with uniformly chosen query
// vertices.
#ifndef KSPIN_TEXT_QUERY_WORKLOAD_H_
#define KSPIN_TEXT_QUERY_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "text/document_store.h"
#include "text/inverted_index.h"

namespace kspin {

/// One spatial keyword query instance.
struct SpatialKeywordQuery {
  VertexId vertex = kInvalidVertex;
  std::vector<KeywordId> keywords;
};

/// Workload shape parameters.
struct WorkloadOptions {
  std::vector<std::uint32_t> vector_lengths = {1, 2, 3, 4, 5, 6};
  std::uint32_t num_seed_terms = 5;      ///< "hotel", "restaurant", ...
  std::uint32_t objects_per_term = 10;   ///< Keyword vectors per term.
  std::uint32_t vertices_per_vector = 20;  ///< Query locations per vector.
  /// Seed terms are taken from this frequency-rank window (rank by
  /// descending |inv(t)|); skipping the very top avoids stop-word-like
  /// terms.
  std::uint32_t seed_term_min_rank = 1;
  std::uint64_t seed = 99;
};

/// Pre-generated query sets, grouped by keyword vector length.
class QueryWorkload {
 public:
  /// Builds the workload. Throws if the dataset has no keywords/objects.
  QueryWorkload(const Graph& graph, const DocumentStore& store,
                const InvertedIndex& index, WorkloadOptions options = {});

  /// All queries with `length` keywords. Throws std::invalid_argument when
  /// `length` was not in vector_lengths.
  std::span<const SpatialKeywordQuery> QueriesForLength(
      std::uint32_t length) const;

  /// Lengths available.
  const std::vector<std::uint32_t>& Lengths() const { return lengths_; }

  /// Queries whose single keyword falls in an inverted-list-density bucket
  /// (Figure 13): keywords t with lo <= |inv(t)|/|V| < hi, paired with
  /// `count` random vertices each (up to `max_keywords` distinct keywords).
  std::vector<SpatialKeywordQuery> SingleKeywordDensityBucket(
      double lo, double hi, std::uint32_t max_keywords,
      std::uint32_t count) const;

 private:
  const Graph& graph_;
  const DocumentStore& store_;
  const InvertedIndex& index_;
  std::uint64_t seed_;
  std::vector<std::uint32_t> lengths_;
  std::vector<std::vector<SpatialKeywordQuery>> queries_by_length_;
};

}  // namespace kspin

#endif  // KSPIN_TEXT_QUERY_WORKLOAD_H_
