#include "text/category_generator.h"

#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace kspin {

std::uint32_t CategoryKeywordUniverse(
    const CategoryDatasetOptions& options) {
  return options.num_categories +
         options.num_categories * options.attributes_per_category +
         options.num_global_keywords;
}

KeywordId AttributeKeyword(const CategoryDatasetOptions& options,
                           std::uint32_t c, std::uint32_t a) {
  return options.num_categories + c * options.attributes_per_category + a;
}

DocumentStore GenerateCategoryDataset(
    const Graph& graph, const CategoryDatasetOptions& options) {
  if (options.num_categories == 0 ||
      options.attributes_per_category == 0) {
    throw std::invalid_argument(
        "GenerateCategoryDataset: need categories with attributes");
  }
  if (options.object_fraction <= 0.0 || options.object_fraction > 1.0) {
    throw std::invalid_argument(
        "GenerateCategoryDataset: object_fraction outside (0,1]");
  }
  if (options.min_attributes > options.max_attributes ||
      options.max_attributes > options.attributes_per_category) {
    throw std::invalid_argument(
        "GenerateCategoryDataset: bad attribute bounds");
  }
  if (graph.NumVertices() == 0) {
    throw std::invalid_argument("GenerateCategoryDataset: empty graph");
  }

  Rng rng(options.seed);
  const std::size_t num_objects = std::max<std::size_t>(
      1, static_cast<std::size_t>(graph.NumVertices() *
                                  options.object_fraction));
  if (num_objects > graph.NumVertices()) {
    throw std::invalid_argument(
        "GenerateCategoryDataset: more objects than vertices");
  }

  // Distinct object vertices (uniform; spatial clustering of the plain
  // Zipf generator applies to where POIs sit, not what they say — reuse
  // uniform placement here and let the options knob stay for parity).
  std::unordered_set<VertexId> chosen;
  while (chosen.size() < num_objects) {
    chosen.insert(static_cast<VertexId>(
        rng.UniformInt(0, graph.NumVertices() - 1)));
  }

  // Zipf over categories.
  std::vector<double> cumulative(options.num_categories);
  double total = 0.0;
  for (std::uint32_t c = 0; c < options.num_categories; ++c) {
    total += 1.0 / std::pow(static_cast<double>(c + 1),
                            options.category_zipf_alpha);
    cumulative[c] = total;
  }
  auto draw_category = [&]() -> std::uint32_t {
    const double u = rng.UniformDouble() * cumulative.back();
    for (std::uint32_t c = 0; c < options.num_categories; ++c) {
      if (u <= cumulative[c]) return c;
    }
    return options.num_categories - 1;
  };

  DocumentStore store;
  for (VertexId vertex : chosen) {
    const std::uint32_t category = draw_category();
    std::vector<DocEntry> document;
    document.push_back({CategoryKeyword(category), 1});
    // Distinct attributes from the category's pool.
    const std::uint32_t num_attributes =
        static_cast<std::uint32_t>(rng.UniformInt(
            options.min_attributes, options.max_attributes));
    std::vector<std::uint32_t> pool = rng.SampleWithoutReplacement(
        options.attributes_per_category, num_attributes);
    for (std::uint32_t a : pool) {
      document.push_back({AttributeKeyword(options, category, a), 1});
    }
    // Global tail keywords (Zipf-ish by using a squared uniform draw).
    if (options.num_global_keywords > 0) {
      const std::uint32_t num_global =
          static_cast<std::uint32_t>(rng.UniformInt(0, options.max_global));
      for (std::uint32_t g = 0; g < num_global; ++g) {
        const double u = rng.UniformDouble();
        const std::uint32_t pick = static_cast<std::uint32_t>(
            u * u * options.num_global_keywords);
        document.push_back(
            {options.num_categories +
                 options.num_categories * options.attributes_per_category +
                 std::min(pick, options.num_global_keywords - 1),
             1});
      }
    }
    store.AddObject(vertex, std::move(document));
  }
  return store;
}

}  // namespace kspin
