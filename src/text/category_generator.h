// Category-bundle keyword dataset generator.
//
// The plain Zipf generator draws document keywords independently, which
// understates keyword co-occurrence: real POIs have a *category* keyword
// ("restaurant") plus correlated attributes ("thai", "takeaway") — it is
// exactly this correlation that makes conjunctive and mixed-operator
// queries meaningful (the paper's query vectors are built from co-occurring
// keywords for the same reason). This generator produces:
//   - category keywords: one per category, frequency Zipf over categories;
//   - attribute keywords: each category owns a disjoint pool, documents
//     sample a few of them;
//   - global long-tail keywords shared across categories.
//
// Keyword id layout (dense, deterministic):
//   [0, num_categories)                          category keywords
//   [num_categories, +num_categories*pool)       attribute pools
//   [.., +num_global_keywords)                   global tail
#ifndef KSPIN_TEXT_CATEGORY_GENERATOR_H_
#define KSPIN_TEXT_CATEGORY_GENERATOR_H_

#include <cstdint>

#include "graph/graph.h"
#include "text/document_store.h"

namespace kspin {

/// Parameters of the category-bundle generator.
struct CategoryDatasetOptions {
  std::uint32_t num_categories = 12;
  std::uint32_t attributes_per_category = 8;  ///< Pool size per category.
  std::uint32_t num_global_keywords = 200;    ///< Shared Zipfian tail.
  double object_fraction = 0.04;              ///< |O| / |V|.
  std::uint32_t min_attributes = 1;  ///< Attributes drawn per document.
  std::uint32_t max_attributes = 4;
  std::uint32_t max_global = 2;      ///< Global keywords per document.
  double category_zipf_alpha = 1.0;  ///< Category popularity skew.
  double clustered_fraction = 0.7;   ///< Spatial clustering (as Zipf gen).
  std::uint64_t seed = 52;
};

/// Total keyword universe size implied by the options.
std::uint32_t CategoryKeywordUniverse(const CategoryDatasetOptions& options);

/// The category keyword id of category c.
inline KeywordId CategoryKeyword(std::uint32_t c) { return c; }

/// The a-th attribute keyword of category c.
KeywordId AttributeKeyword(const CategoryDatasetOptions& options,
                           std::uint32_t c, std::uint32_t a);

/// Generates the store. Throws std::invalid_argument on degenerate options.
DocumentStore GenerateCategoryDataset(const Graph& graph,
                                      const CategoryDatasetOptions& options);

}  // namespace kspin

#endif  // KSPIN_TEXT_CATEGORY_GENERATOR_H_
