// Zipfian keyword dataset generator.
//
// Stand-in for the paper's OpenStreetMap POI extraction (see DESIGN.md §3):
// object documents are drawn from a Zipf(alpha) keyword distribution —
// the very property (Observation 1) K-SPIN's pre-processing exploits — and
// objects are placed on road vertices with spatial clustering (POIs bunch
// up in towns and commercial strips).
//
// Keyword id r is the r-th most frequent keyword (rank order = id order),
// which keeps tests and density bucketing simple.
#ifndef KSPIN_TEXT_ZIPF_GENERATOR_H_
#define KSPIN_TEXT_ZIPF_GENERATOR_H_

#include <cstdint>

#include "graph/graph.h"
#include "text/document_store.h"

namespace kspin {

/// Parameters of the synthetic keyword dataset.
struct KeywordDatasetOptions {
  std::uint32_t num_keywords = 1000;  ///< |W|.
  double object_fraction = 0.04;      ///< |O| / |V| (Table 2: 0.03-0.05).
  double zipf_alpha = 1.0;            ///< Zipf exponent (~1 in real data).
  std::uint32_t min_doc_keywords = 2;
  std::uint32_t max_doc_keywords = 8;  ///< Mean |doc| ~ 5 like Table 2.
  /// Probability that a keyword occurrence repeats (geometric tail for
  /// f_{t,o} > 1).
  double repeat_probability = 0.25;
  /// Fraction of objects placed in spatial clusters; the rest uniform.
  double clustered_fraction = 0.7;
  /// Mean objects per cluster.
  std::uint32_t cluster_size = 40;
  std::uint64_t seed = 42;
};

/// Generates a document store over `graph`'s vertices. Each object occupies
/// a distinct vertex. Throws on invalid options (fractions outside [0,1],
/// min > max, zero keywords, or more objects requested than vertices).
DocumentStore GenerateKeywordDataset(const Graph& graph,
                                     const KeywordDatasetOptions& options);

}  // namespace kspin

#endif  // KSPIN_TEXT_ZIPF_GENERATOR_H_
