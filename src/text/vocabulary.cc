#include "text/vocabulary.h"

#include <stdexcept>

namespace kspin {

KeywordId Vocabulary::AddOrGet(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const KeywordId id = static_cast<KeywordId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

KeywordId Vocabulary::IdOf(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidKeyword : it->second;
}

const std::string& Vocabulary::TermOf(KeywordId id) const {
  if (id >= terms_.size()) {
    throw std::out_of_range("Vocabulary::TermOf: bad keyword id " +
                            std::to_string(id));
  }
  return terms_[id];
}

}  // namespace kspin
