// Object (point of interest) store: each object sits on a road-network
// vertex and carries a document doc(o) of (keyword, frequency) pairs
// (paper Section 2, "Objects and Textual Information").
//
// The store is mutable to support the update workloads of Section 6.2:
// objects can be inserted, deleted (tombstoned), and have keywords added or
// removed. ObjectIds are stable across mutations.
#ifndef KSPIN_TEXT_DOCUMENT_STORE_H_
#define KSPIN_TEXT_DOCUMENT_STORE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace kspin {

/// One keyword occurrence in a document.
struct DocEntry {
  KeywordId keyword;
  std::uint32_t frequency;  ///< f_{t,o} >= 1.
};

/// Mutable object/document store.
class DocumentStore {
 public:
  /// Adds an object at `vertex` with the given document; returns its id.
  /// Entries with duplicate keywords are merged (frequencies summed);
  /// zero-frequency entries are rejected.
  ObjectId AddObject(VertexId vertex, std::vector<DocEntry> document);

  /// Tombstones the object (its document is released). Throws on bad ids
  /// or double deletion.
  void DeleteObject(ObjectId o);

  /// Adds `frequency` occurrences of `keyword` to doc(o).
  void AddKeyword(ObjectId o, KeywordId keyword, std::uint32_t frequency = 1);

  /// Removes `keyword` from doc(o) entirely. Throws if absent.
  void RemoveKeyword(ObjectId o, KeywordId keyword);

  /// True if the object exists and is not deleted.
  bool IsLive(ObjectId o) const {
    return o < objects_.size() && !objects_[o].deleted;
  }

  /// The vertex object o sits on.
  VertexId ObjectVertex(ObjectId o) const { return objects_[o].vertex; }

  /// The document of object o, sorted by keyword id.
  std::span<const DocEntry> Document(ObjectId o) const {
    return objects_[o].document;
  }

  /// True if keyword t occurs in doc(o).
  bool Contains(ObjectId o, KeywordId t) const;

  /// Frequency f_{t,o} (0 if absent).
  std::uint32_t Frequency(ObjectId o, KeywordId t) const;

  /// Total slots ever allocated (including tombstones); valid ids are
  /// [0, NumSlots()).
  std::size_t NumSlots() const { return objects_.size(); }

  /// Number of live objects |O|.
  std::size_t NumLiveObjects() const { return num_live_; }

  /// Total keyword occurrences over live objects: sum of |doc(o)| terms
  /// (the paper's |doc(V)| statistic counts distinct keyword slots).
  std::size_t TotalKeywordSlots() const { return total_slots_; }

 private:
  struct ObjectRecord {
    VertexId vertex = kInvalidVertex;
    std::vector<DocEntry> document;  // Sorted by keyword id.
    bool deleted = false;
  };

  void CheckLive(ObjectId o, const char* op) const;

  std::vector<ObjectRecord> objects_;
  std::size_t num_live_ = 0;
  std::size_t total_slots_ = 0;
};

}  // namespace kspin

#endif  // KSPIN_TEXT_DOCUMENT_STORE_H_
