// Inverted lists inv(t): for each keyword, the set of live objects whose
// document contains it. Kept in sync with DocumentStore mutations by the
// caller (the K-SPIN framework routes every update through both).
#ifndef KSPIN_TEXT_INVERTED_INDEX_H_
#define KSPIN_TEXT_INVERTED_INDEX_H_

#include <span>
#include <vector>

#include "common/types.h"
#include "text/document_store.h"

namespace kspin {

/// Keyword -> object inverted index.
class InvertedIndex {
 public:
  /// Builds inv(t) for every keyword occurring in `store` (live objects
  /// only). `num_keywords` sizes the keyword universe; keyword ids in
  /// documents must be < num_keywords.
  InvertedIndex(const DocumentStore& store, std::size_t num_keywords);

  /// inv(t): object ids containing keyword t, ascending. Empty span for
  /// out-of-universe keywords.
  std::span<const ObjectId> Objects(KeywordId t) const {
    if (t >= lists_.size()) return {};
    return lists_[t];
  }

  /// |inv(t)|.
  std::size_t ListSize(KeywordId t) const {
    return t >= lists_.size() ? 0 : lists_[t].size();
  }

  /// Number of keywords in the universe.
  std::size_t NumKeywords() const { return lists_.size(); }

  /// Registers a (new or updated) object under keyword t.
  void Add(KeywordId t, ObjectId o);

  /// Removes object o from inv(t). Throws if absent.
  void Remove(KeywordId t, ObjectId o);

  /// Approximate memory in bytes.
  std::size_t MemoryBytes() const;

 private:
  std::vector<std::vector<ObjectId>> lists_;
};

}  // namespace kspin

#endif  // KSPIN_TEXT_INVERTED_INDEX_H_
