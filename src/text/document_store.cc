#include "text/document_store.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace kspin {

void DocumentStore::CheckLive(ObjectId o, const char* op) const {
  if (o >= objects_.size()) {
    throw std::out_of_range(std::string(op) + ": bad object id " +
                            std::to_string(o));
  }
  if (objects_[o].deleted) {
    throw std::invalid_argument(std::string(op) + ": object " +
                                std::to_string(o) + " is deleted");
  }
}

ObjectId DocumentStore::AddObject(VertexId vertex,
                                  std::vector<DocEntry> document) {
  for (const DocEntry& e : document) {
    if (e.frequency == 0) {
      throw std::invalid_argument(
          "DocumentStore::AddObject: zero-frequency entry");
    }
  }
  std::sort(document.begin(), document.end(),
            [](const DocEntry& a, const DocEntry& b) {
              return a.keyword < b.keyword;
            });
  // Merge duplicates.
  std::size_t out = 0;
  for (std::size_t i = 0; i < document.size(); ++i) {
    if (out > 0 && document[out - 1].keyword == document[i].keyword) {
      document[out - 1].frequency += document[i].frequency;
    } else {
      document[out++] = document[i];
    }
  }
  document.resize(out);

  const ObjectId id = static_cast<ObjectId>(objects_.size());
  total_slots_ += document.size();
  objects_.push_back({vertex, std::move(document), false});
  ++num_live_;
  return id;
}

void DocumentStore::DeleteObject(ObjectId o) {
  CheckLive(o, "DocumentStore::DeleteObject");
  total_slots_ -= objects_[o].document.size();
  objects_[o].document.clear();
  objects_[o].document.shrink_to_fit();
  objects_[o].deleted = true;
  --num_live_;
}

void DocumentStore::AddKeyword(ObjectId o, KeywordId keyword,
                               std::uint32_t frequency) {
  CheckLive(o, "DocumentStore::AddKeyword");
  if (frequency == 0) {
    throw std::invalid_argument("DocumentStore::AddKeyword: zero frequency");
  }
  auto& doc = objects_[o].document;
  auto it = std::lower_bound(doc.begin(), doc.end(), keyword,
                             [](const DocEntry& e, KeywordId t) {
                               return e.keyword < t;
                             });
  if (it != doc.end() && it->keyword == keyword) {
    it->frequency += frequency;
  } else {
    doc.insert(it, DocEntry{keyword, frequency});
    ++total_slots_;
  }
}

void DocumentStore::RemoveKeyword(ObjectId o, KeywordId keyword) {
  CheckLive(o, "DocumentStore::RemoveKeyword");
  auto& doc = objects_[o].document;
  auto it = std::lower_bound(doc.begin(), doc.end(), keyword,
                             [](const DocEntry& e, KeywordId t) {
                               return e.keyword < t;
                             });
  if (it == doc.end() || it->keyword != keyword) {
    throw std::invalid_argument(
        "DocumentStore::RemoveKeyword: keyword not in document");
  }
  doc.erase(it);
  --total_slots_;
}

bool DocumentStore::Contains(ObjectId o, KeywordId t) const {
  return Frequency(o, t) > 0;
}

std::uint32_t DocumentStore::Frequency(ObjectId o, KeywordId t) const {
  if (o >= objects_.size() || objects_[o].deleted) return 0;
  const auto& doc = objects_[o].document;
  auto it = std::lower_bound(doc.begin(), doc.end(), t,
                             [](const DocEntry& e, KeywordId kw) {
                               return e.keyword < kw;
                             });
  return (it != doc.end() && it->keyword == t) ? it->frequency : 0;
}

}  // namespace kspin
