#include "text/relevance.h"

#include <algorithm>
#include <cmath>

namespace kspin {
namespace {

double TermWeight(std::uint32_t frequency) {
  // w_{t,o} = 1 + ln(f_{t,o}).
  return 1.0 + std::log(static_cast<double>(frequency));
}

}  // namespace

RelevanceModel::RelevanceModel(const DocumentStore& store,
                               const InvertedIndex& index)
    : store_(store), index_(index) {
  norms_.assign(store.NumSlots(), 0.0);
  max_impact_.assign(index.NumKeywords(), 0.0);
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    double sum_sq = 0.0;
    for (const DocEntry& entry : store.Document(o)) {
      const double w = TermWeight(entry.frequency);
      sum_sq += w * w;
    }
    norms_[o] = std::sqrt(sum_sq);
    if (norms_[o] <= 0.0) continue;
    for (const DocEntry& entry : store.Document(o)) {
      const double impact = TermWeight(entry.frequency) / norms_[o];
      if (impact > max_impact_[entry.keyword]) {
        max_impact_[entry.keyword] = impact;
      }
    }
  }
}

double RelevanceModel::ObjectImpact(ObjectId o, KeywordId t) const {
  const std::uint32_t f = store_.Frequency(o, t);
  if (f == 0) return 0.0;
  const double norm = Norm(o);
  return norm > 0.0 ? TermWeight(f) / norm : 0.0;
}

PreparedQuery RelevanceModel::PrepareQuery(
    std::span<const KeywordId> keywords) const {
  PreparedQuery query;
  // psi is a keyword *set* (paper Section 2): duplicates must not double
  // their impact contribution.
  query.keywords.assign(keywords.begin(), keywords.end());
  std::sort(query.keywords.begin(), query.keywords.end());
  query.keywords.erase(
      std::unique(query.keywords.begin(), query.keywords.end()),
      query.keywords.end());
  const double num_objects = static_cast<double>(store_.NumLiveObjects());
  // w_{t,psi} = ln(1 + |O| / |inv(t)|); keywords with empty lists keep a
  // harmless weight (they can never contribute to TR anyway).
  std::vector<double> weights;
  weights.reserve(query.keywords.size());
  double sum_sq = 0.0;
  for (KeywordId t : query.keywords) {
    const double list = static_cast<double>(index_.ListSize(t));
    const double w = list > 0.0 ? std::log(1.0 + num_objects / list) : 0.0;
    weights.push_back(w);
    sum_sq += w * w;
  }
  const double norm = std::sqrt(sum_sq);
  query.impacts.reserve(query.keywords.size());
  for (double w : weights) {
    query.impacts.push_back(norm > 0.0 ? w / norm : 0.0);
  }
  return query;
}

double RelevanceModel::TextualRelevance(const PreparedQuery& query,
                                        ObjectId o) const {
  double tr = 0.0;
  for (std::size_t i = 0; i < query.keywords.size(); ++i) {
    tr += query.impacts[i] * ObjectImpact(o, query.keywords[i]);
  }
  return tr;
}

void RelevanceModel::RefreshObject(ObjectId o) {
  if (o >= norms_.size()) norms_.resize(o + 1, 0.0);
  if (!store_.IsLive(o)) {
    norms_[o] = 0.0;
    return;
  }
  double sum_sq = 0.0;
  for (const DocEntry& entry : store_.Document(o)) {
    const double w = TermWeight(entry.frequency);
    sum_sq += w * w;
  }
  norms_[o] = std::sqrt(sum_sq);
  if (norms_[o] <= 0.0) return;
  for (const DocEntry& entry : store_.Document(o)) {
    if (entry.keyword >= max_impact_.size()) {
      max_impact_.resize(entry.keyword + 1, 0.0);
    }
    const double impact = TermWeight(entry.frequency) / norms_[o];
    if (impact > max_impact_[entry.keyword]) {
      max_impact_[entry.keyword] = impact;
    }
  }
}

}  // namespace kspin
