#include "text/zipf_generator.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "common/random.h"

namespace kspin {
namespace {

void ValidateOptions(const Graph& graph,
                     const KeywordDatasetOptions& options) {
  if (options.num_keywords == 0) {
    throw std::invalid_argument("GenerateKeywordDataset: no keywords");
  }
  if (options.object_fraction <= 0.0 || options.object_fraction > 1.0) {
    throw std::invalid_argument(
        "GenerateKeywordDataset: object_fraction outside (0,1]");
  }
  if (options.min_doc_keywords == 0 ||
      options.min_doc_keywords > options.max_doc_keywords) {
    throw std::invalid_argument(
        "GenerateKeywordDataset: bad document length bounds");
  }
  if (options.clustered_fraction < 0.0 || options.clustered_fraction > 1.0) {
    throw std::invalid_argument(
        "GenerateKeywordDataset: clustered_fraction outside [0,1]");
  }
  if (graph.NumVertices() == 0) {
    throw std::invalid_argument("GenerateKeywordDataset: empty graph");
  }
}

// Zipf sampler over ranks [0, n): P(r) proportional to 1/(r+1)^alpha.
class ZipfSampler {
 public:
  ZipfSampler(std::uint32_t n, double alpha) : cumulative_(n) {
    double total = 0.0;
    for (std::uint32_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), alpha);
      cumulative_[r] = total;
    }
  }

  std::uint32_t Draw(Rng& rng) const {
    const double u = rng.UniformDouble() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return static_cast<std::uint32_t>(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

// Picks object vertices: `clustered` of them around BFS neighbourhoods of
// random cluster centres, the rest uniform; all distinct.
std::vector<VertexId> PlaceObjects(const Graph& graph, std::size_t count,
                                   const KeywordDatasetOptions& options,
                                   Rng& rng) {
  const std::size_t n = graph.NumVertices();
  std::unordered_set<VertexId> chosen;
  chosen.reserve(count * 2);

  const std::size_t clustered =
      static_cast<std::size_t>(count * options.clustered_fraction);
  const std::size_t num_clusters = std::max<std::size_t>(
      1, clustered / std::max<std::uint32_t>(1, options.cluster_size));

  std::vector<std::uint8_t> visited(n, 0);
  for (std::size_t c = 0; c < num_clusters && chosen.size() < clustered;
       ++c) {
    const VertexId centre =
        static_cast<VertexId>(rng.UniformInt(0, n - 1));
    // BFS neighbourhood roughly twice the cluster size; sample from it.
    std::vector<VertexId> pool;
    std::queue<VertexId> queue;
    std::vector<VertexId> touched;
    queue.push(centre);
    visited[centre] = 1;
    touched.push_back(centre);
    while (!queue.empty() && pool.size() < options.cluster_size * 2) {
      const VertexId v = queue.front();
      queue.pop();
      pool.push_back(v);
      for (const Arc& arc : graph.Neighbors(v)) {
        if (!visited[arc.head]) {
          visited[arc.head] = 1;
          touched.push_back(arc.head);
          queue.push(arc.head);
        }
      }
    }
    for (VertexId v : touched) visited[v] = 0;
    std::shuffle(pool.begin(), pool.end(), rng.engine());
    for (VertexId v : pool) {
      if (chosen.size() >= clustered) break;
      if (chosen.size() - 0 >= count) break;
      chosen.insert(v);
    }
  }
  while (chosen.size() < count) {
    chosen.insert(static_cast<VertexId>(rng.UniformInt(0, n - 1)));
  }
  std::vector<VertexId> result(chosen.begin(), chosen.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace

DocumentStore GenerateKeywordDataset(const Graph& graph,
                                     const KeywordDatasetOptions& options) {
  ValidateOptions(graph, options);
  Rng rng(options.seed);

  const std::size_t num_objects = std::max<std::size_t>(
      1, static_cast<std::size_t>(graph.NumVertices() *
                                  options.object_fraction));
  if (num_objects > graph.NumVertices()) {
    throw std::invalid_argument(
        "GenerateKeywordDataset: more objects than vertices");
  }

  const std::vector<VertexId> vertices =
      PlaceObjects(graph, num_objects, options, rng);
  const ZipfSampler sampler(options.num_keywords, options.zipf_alpha);

  DocumentStore store;
  std::unordered_set<KeywordId> doc_keywords;
  for (VertexId vertex : vertices) {
    const std::uint32_t doc_len = static_cast<std::uint32_t>(rng.UniformInt(
        options.min_doc_keywords, options.max_doc_keywords));
    doc_keywords.clear();
    std::vector<DocEntry> document;
    // Rejection-sample distinct keywords; cap attempts so tiny vocabularies
    // cannot loop forever.
    std::uint32_t attempts = 0;
    while (doc_keywords.size() < doc_len &&
           attempts < doc_len * 20 + 100) {
      ++attempts;
      const KeywordId t = sampler.Draw(rng);
      if (!doc_keywords.insert(t).second) continue;
      std::uint32_t frequency = 1;
      while (rng.Bernoulli(options.repeat_probability) && frequency < 5) {
        ++frequency;
      }
      document.push_back({t, frequency});
    }
    store.AddObject(vertex, std::move(document));
  }
  return store;
}

}  // namespace kspin
