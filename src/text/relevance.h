// Textual relevance scoring (paper Section 2, Equations 1-3).
//
// Cosine similarity in impact form: TR(psi, o) = sum_t lambda_{t,psi} *
// lambda_{t,o}, where object impacts lambda_{t,o} are query-independent and
// precomputed offline, and the spatio-textual score is the weighted
// distance ST(q, o) = d(q, o) / TR(psi, o) (smaller is better).
#ifndef KSPIN_TEXT_RELEVANCE_H_
#define KSPIN_TEXT_RELEVANCE_H_

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "common/types.h"
#include "text/document_store.h"
#include "text/inverted_index.h"

namespace kspin {

/// A query's keyword ids with their precomputed impacts lambda_{t,psi}.
struct PreparedQuery {
  std::vector<KeywordId> keywords;
  std::vector<double> impacts;  ///< Aligned with `keywords`.
};

/// Spatio-textual scoring function (smaller is better). The paper uses
/// *weighted distance* (Equation 1) as its running example and notes the
/// framework is orthogonal to the combination method; *weighted sum* is
/// the common alternative (Chen et al., PVLDB'13).
struct ScoringFunction {
  enum class Kind {
    kWeightedDistance,  ///< d(q,o) / TR(psi,o) — Equation 1.
    kWeightedSum,       ///< alpha*d/d_max + (1-alpha)*(1-TR).
  };
  Kind kind = Kind::kWeightedDistance;
  double alpha = 0.5;         ///< Distance weight (weighted sum only).
  double max_distance = 1.0;  ///< Distance normalizer (> 0, weighted sum).

  /// The score of an object at network distance d with relevance tr.
  /// +infinity for textually irrelevant objects (tr <= 0) — an object must
  /// contain at least one query keyword to qualify.
  double Score(Distance d, double tr) const {
    if (tr <= 0.0) return std::numeric_limits<double>::infinity();
    if (kind == Kind::kWeightedDistance) {
      return static_cast<double>(d) / tr;
    }
    return alpha * (static_cast<double>(d) / max_distance) +
           (1.0 - alpha) * (1.0 - std::min(tr, 1.0));
  }

  /// A valid lower bound on Score(d, tr) for any d >= d_lb and
  /// tr <= tr_ub (Score is monotone increasing in d, decreasing in tr).
  double LowerBoundScore(Distance d_lb, double tr_ub) const {
    return Score(d_lb, tr_ub);
  }
};

/// Precomputed impact machinery over a document snapshot.
class RelevanceModel {
 public:
  /// Precomputes per-object norms and per-keyword maximum impacts
  /// lambda_{t,max} (used by the pseudo lower bound, Algorithm 2).
  RelevanceModel(const DocumentStore& store, const InvertedIndex& index);

  /// Object impact lambda_{t,o} = w_{t,o} / ||w_o||; 0 when t not in doc(o).
  double ObjectImpact(ObjectId o, KeywordId t) const;

  /// Maximum impact of keyword t over any live object.
  double MaxImpact(KeywordId t) const {
    return t < max_impact_.size() ? max_impact_[t] : 0.0;
  }

  /// Computes query impacts lambda_{t,psi} (IDF-weighted, normalized).
  PreparedQuery PrepareQuery(std::span<const KeywordId> keywords) const;

  /// TR(psi, o) per Equation 3. 0 when no query keyword occurs in doc(o).
  double TextualRelevance(const PreparedQuery& query, ObjectId o) const;

  /// Spatio-textual score per Equation 1 (weighted distance). Returns
  /// +infinity for tr <= 0 (textually irrelevant objects never rank).
  static double Score(Distance d, double tr) {
    if (tr <= 0.0) return std::numeric_limits<double>::infinity();
    return static_cast<double>(d) / tr;
  }

  /// Recomputes the cached norm of object o and folds its impacts into the
  /// per-keyword maxima (call after a document mutation; maxima only grow
  /// under this refresh — a full rebuild tightens them after deletions).
  void RefreshObject(ObjectId o);

 private:
  double Norm(ObjectId o) const {
    return o < norms_.size() ? norms_[o] : 0.0;
  }

  const DocumentStore& store_;
  const InvertedIndex& index_;
  std::vector<double> norms_;       ///< ||w_o|| per object slot.
  std::vector<double> max_impact_;  ///< lambda_{t,max} per keyword.
};

}  // namespace kspin

#endif  // KSPIN_TEXT_RELEVANCE_H_
