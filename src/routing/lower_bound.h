// The Lower Bounding Module interface (paper Section 3, module 1).
//
// "Multiple heuristics can be considered to allow the module to return the
// tightest lower-bound network distance overall. Depending on the
// application and indexes available, the module may use more or fewer
// lower-bound heuristics." — this header provides the abstraction, an
// index-free Euclidean heuristic, and a tightest-of composite; the ALT
// landmark index (alt.h) is the primary implementation.
//
// The module exposes two granularities: the classic per-pair LowerBound
// and LowerBoundBatch over a block of targets. Batching is the hot-path
// contract (docs/performance.md): the inverted heaps bound whole candidate
// frontiers per call, letting ALT amortize its row load and run its SIMD
// kernel instead of paying one virtual call per candidate.
#ifndef KSPIN_ROUTING_LOWER_BOUND_H_
#define KSPIN_ROUTING_LOWER_BOUND_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kspin {

class AltIndex;

/// Admissible lower-bound estimator: LowerBound(s, t) <= d(s, t) always.
class LowerBoundModule {
 public:
  virtual ~LowerBoundModule() = default;

  /// A lower bound on the network distance d(s, t).
  virtual Distance LowerBound(VertexId s, VertexId t) const = 0;

  /// Lower bounds for a block of targets: out[i] = LowerBound(s,
  /// targets[i]). `out` must have targets.size() slots. Every override
  /// must be value-identical to this default per-pair loop — callers
  /// may mix granularities freely (and tests assert bit-equality).
  virtual void LowerBoundBatch(VertexId s,
                               std::span<const VertexId> targets,
                               std::span<Distance> out) const {
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out[i] = LowerBound(s, targets[i]);
    }
  }

  /// Short human-readable name.
  virtual std::string Name() const = 0;

  /// Approximate index memory in bytes.
  virtual std::size_t MemoryBytes() const { return 0; }
};

/// Index-free geometric heuristic: d(s, t) >= r * euclid(s, t) where r is
/// the smallest per-unit-length edge cost in the graph (every path of
/// geometric length L costs at least r * L, and any s-t path is at least
/// euclid(s, t) long). Weaker than ALT but free; useful composed with it.
class EuclideanLowerBound : public LowerBoundModule {
 public:
  /// Derives the cost ratio from the graph. Requires coordinates; throws
  /// std::invalid_argument otherwise. The coordinate array pointer is
  /// captured here, so per-call evaluation is two loads off one base —
  /// the graph's coordinate storage must stay put while this exists
  /// (graphs are immutable once built).
  explicit EuclideanLowerBound(const Graph& graph);

  Distance LowerBound(VertexId s, VertexId t) const override;
  std::string Name() const override { return "euclidean"; }

  /// The derived minimum cost per unit of geometric length.
  double CostRatio() const { return ratio_; }

 private:
  const Coordinate* coords_ = nullptr;  // Hoisted from the graph.
  double ratio_ = 0.0;
};

/// Returns the maximum (tightest) of several lower bounds. Does not own
/// its children; they must outlive the composite.
///
/// The common deployments are devirtualized at construction: a lone child
/// skips the composite loop entirely, and a lone AltIndex child is called
/// through its concrete type (no virtual dispatch on the hot path).
class MaxLowerBound : public LowerBoundModule {
 public:
  explicit MaxLowerBound(std::vector<const LowerBoundModule*> children);

  Distance LowerBound(VertexId s, VertexId t) const override;
  void LowerBoundBatch(VertexId s, std::span<const VertexId> targets,
                       std::span<Distance> out) const override;

  std::string Name() const override;
  std::size_t MemoryBytes() const override {
    std::size_t total = 0;
    for (const LowerBoundModule* child : children_) {
      total += child->MemoryBytes();
    }
    return total;
  }

 private:
  std::vector<const LowerBoundModule*> children_;
  const LowerBoundModule* single_ = nullptr;  // Set when exactly one child.
  const AltIndex* alt_only_ = nullptr;  // Set when that child is an ALT.
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_LOWER_BOUND_H_
