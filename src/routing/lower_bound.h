// The Lower Bounding Module interface (paper Section 3, module 1).
//
// "Multiple heuristics can be considered to allow the module to return the
// tightest lower-bound network distance overall. Depending on the
// application and indexes available, the module may use more or fewer
// lower-bound heuristics." — this header provides the abstraction, an
// index-free Euclidean heuristic, and a tightest-of composite; the ALT
// landmark index (alt.h) is the primary implementation.
#ifndef KSPIN_ROUTING_LOWER_BOUND_H_
#define KSPIN_ROUTING_LOWER_BOUND_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kspin {

/// Admissible lower-bound estimator: LowerBound(s, t) <= d(s, t) always.
class LowerBoundModule {
 public:
  virtual ~LowerBoundModule() = default;

  /// A lower bound on the network distance d(s, t).
  virtual Distance LowerBound(VertexId s, VertexId t) const = 0;

  /// Short human-readable name.
  virtual std::string Name() const = 0;

  /// Approximate index memory in bytes.
  virtual std::size_t MemoryBytes() const { return 0; }
};

/// Index-free geometric heuristic: d(s, t) >= r * euclid(s, t) where r is
/// the smallest per-unit-length edge cost in the graph (every path of
/// geometric length L costs at least r * L, and any s-t path is at least
/// euclid(s, t) long). Weaker than ALT but free; useful composed with it.
class EuclideanLowerBound : public LowerBoundModule {
 public:
  /// Derives the cost ratio from the graph. Requires coordinates; throws
  /// std::invalid_argument otherwise.
  explicit EuclideanLowerBound(const Graph& graph);

  Distance LowerBound(VertexId s, VertexId t) const override;
  std::string Name() const override { return "euclidean"; }

  /// The derived minimum cost per unit of geometric length.
  double CostRatio() const { return ratio_; }

 private:
  const Graph& graph_;
  double ratio_ = 0.0;
};

/// Returns the maximum (tightest) of several lower bounds. Does not own
/// its children; they must outlive the composite.
class MaxLowerBound : public LowerBoundModule {
 public:
  explicit MaxLowerBound(std::vector<const LowerBoundModule*> children);

  Distance LowerBound(VertexId s, VertexId t) const override {
    Distance best = 0;
    for (const LowerBoundModule* child : children_) {
      const Distance lb = child->LowerBound(s, t);
      if (lb > best) best = lb;
    }
    return best;
  }
  std::string Name() const override;
  std::size_t MemoryBytes() const override {
    std::size_t total = 0;
    for (const LowerBoundModule* child : children_) {
      total += child->MemoryBytes();
    }
    return total;
  }

 private:
  std::vector<const LowerBoundModule*> children_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_LOWER_BOUND_H_
