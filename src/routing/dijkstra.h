// Dijkstra's algorithm on CSR graphs: the correctness oracle for every other
// distance technique in the repository, the workhorse of NVD construction,
// and the index-free Network Distance Module.
#ifndef KSPIN_ROUTING_DIJKSTRA_H_
#define KSPIN_ROUTING_DIJKSTRA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "routing/distance_oracle.h"

namespace kspin {

/// Reusable Dijkstra state. Distance/parent arrays are version-stamped so
/// repeated searches on the same graph avoid O(|V|) clearing.
class DijkstraWorkspace {
 public:
  explicit DijkstraWorkspace(std::size_t num_vertices);

  /// Single-source shortest-path distances to every vertex. O(|E| log |V|).
  /// The returned reference is invalidated by the next search on this
  /// workspace.
  const std::vector<Distance>& SingleSource(const Graph& graph,
                                            VertexId source);

  /// Point-to-point distance with early termination once `target` settles.
  Distance PointToPoint(const Graph& graph, VertexId source, VertexId target);

  /// Runs Dijkstra from `source`, invoking `on_settled(v, dist)` for each
  /// settled vertex in ascending distance order; stops when the callback
  /// returns false or the frontier exceeds `bound` (pass kInfDistance for
  /// unbounded).
  void Search(const Graph& graph, VertexId source, Distance bound,
              const std::function<bool(VertexId, Distance)>& on_settled);

  /// Distance label of v from the most recent search (kInfDistance when v
  /// was not reached).
  Distance DistanceTo(VertexId v) const {
    return stamp_[v] == version_ ? dist_[v] : kInfDistance;
  }

  /// Parent of v in the shortest-path tree of the most recent search
  /// (kInvalidVertex for the source or unreached vertices).
  VertexId ParentOf(VertexId v) const {
    return stamp_[v] == version_ ? parent_[v] : kInvalidVertex;
  }

  /// Reconstructs the path source -> target from the most recent search.
  /// Empty when the target was not reached; {target} when it is the
  /// source.
  std::vector<VertexId> PathTo(VertexId target) const;

  /// Number of vertices settled by the most recent search.
  std::size_t LastSettledCount() const { return last_settled_; }

 private:
  struct QueueEntry {
    Distance dist;
    VertexId vertex;
    bool operator>(const QueueEntry& o) const { return dist > o.dist; }
  };

  void Reset();

  std::vector<Distance> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t version_ = 0;
  std::size_t last_settled_ = 0;
  std::vector<Distance> result_;  // Dense copy for SingleSource.
};

/// Convenience wrappers constructing a transient workspace.
std::vector<Distance> DijkstraSingleSource(const Graph& graph,
                                           VertexId source);
Distance DijkstraPointToPoint(const Graph& graph, VertexId source,
                              VertexId target);

/// Shortest path source -> target as a vertex sequence (empty when
/// disconnected; {source} when source == target).
std::vector<VertexId> DijkstraShortestPath(const Graph& graph,
                                           VertexId source, VertexId target);

/// Index-free Network Distance Module backed by bidirectional-free plain
/// Dijkstra. Used as the reference implementation and in tests. The graph
/// is the whole shared index; each workspace is one DijkstraWorkspace.
class DijkstraOracle : public DistanceOracle {
 public:
  explicit DijkstraOracle(const Graph& graph);

  using DistanceOracle::NetworkDistance;
  using DistanceOracle::BeginSourceBatch;

  std::unique_ptr<OracleWorkspace> MakeWorkspace() const override;
  Distance NetworkDistance(OracleWorkspace& workspace, VertexId s,
                           VertexId t) const override;
  std::string Name() const override { return "dijkstra"; }

 private:
  struct Workspace;
  const Graph& graph_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_DIJKSTRA_H_
