#include "routing/alt.h"

#include <algorithm>
#include <stdexcept>

#include "common/random.h"
#include "routing/dijkstra.h"

namespace kspin {

AltIndex::AltIndex(const Graph& graph, std::uint32_t num_landmarks,
                   LandmarkStrategy strategy, std::uint64_t seed) {
  const std::size_t num_vertices = graph.NumVertices();
  if (num_vertices == 0) {
    throw std::invalid_argument("AltIndex: empty graph");
  }
  if (num_landmarks == 0) {
    throw std::invalid_argument("AltIndex: need at least one landmark");
  }
  num_landmarks = static_cast<std::uint32_t>(
      std::min<std::size_t>(num_landmarks, num_vertices));
  InitLayout(num_vertices, num_landmarks);

  Rng rng(seed);
  DijkstraWorkspace workspace(num_vertices);
  const auto scatter_column = [this](std::size_t l,
                                     const std::vector<Distance>& d) {
    for (VertexId v = 0; v < d.size(); ++v) {
      MutableRowData(v)[l] = d[v];
    }
  };

  if (strategy == LandmarkStrategy::kRandom) {
    std::vector<std::uint32_t> sample = rng.SampleWithoutReplacement(
        static_cast<std::uint32_t>(num_vertices), num_landmarks);
    for (std::uint32_t v : sample) landmarks_.push_back(v);
    for (std::size_t l = 0; l < landmarks_.size(); ++l) {
      scatter_column(l, workspace.SingleSource(graph, landmarks_[l]));
    }
    return;
  }

  // Farthest-point traversal: start from a random vertex, repeatedly pick
  // the vertex maximizing the minimum distance to chosen landmarks.
  std::vector<Distance> min_dist(num_vertices, kInfDistance);
  VertexId next = static_cast<VertexId>(rng.UniformInt(0, num_vertices - 1));
  for (std::uint32_t i = 0; i < num_landmarks; ++i) {
    landmarks_.push_back(next);
    const std::vector<Distance>& d = workspace.SingleSource(graph, next);
    scatter_column(i, d);
    Distance best = 0;
    VertexId best_vertex = next;
    for (VertexId v = 0; v < num_vertices; ++v) {
      min_dist[v] = std::min(min_dist[v], d[v]);
      if (min_dist[v] != kInfDistance && min_dist[v] > best) {
        best = min_dist[v];
        best_vertex = v;
      }
    }
    next = best_vertex;
  }
}

}  // namespace kspin
