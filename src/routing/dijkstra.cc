#include "routing/dijkstra.h"

#include <queue>

namespace kspin {

DijkstraWorkspace::DijkstraWorkspace(std::size_t num_vertices)
    : dist_(num_vertices, kInfDistance),
      parent_(num_vertices, kInvalidVertex),
      stamp_(num_vertices, 0) {}

void DijkstraWorkspace::Reset() {
  ++version_;
  if (version_ == 0) {  // Stamp wrap-around: hard reset.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    version_ = 1;
  }
  last_settled_ = 0;
}

void DijkstraWorkspace::Search(
    const Graph& graph, VertexId source, Distance bound,
    const std::function<bool(VertexId, Distance)>& on_settled) {
  Reset();
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue;
  dist_[source] = 0;
  parent_[source] = kInvalidVertex;
  stamp_[source] = version_;
  queue.push({0, source});
  while (!queue.empty()) {
    const QueueEntry top = queue.top();
    queue.pop();
    if (stamp_[top.vertex] == version_ && top.dist > dist_[top.vertex]) {
      continue;  // Stale entry.
    }
    if (top.dist > bound) break;
    ++last_settled_;
    if (!on_settled(top.vertex, top.dist)) return;
    for (const Arc& arc : graph.Neighbors(top.vertex)) {
      const Distance candidate = top.dist + arc.weight;
      if (stamp_[arc.head] != version_ || candidate < dist_[arc.head]) {
        dist_[arc.head] = candidate;
        parent_[arc.head] = top.vertex;
        stamp_[arc.head] = version_;
        queue.push({candidate, arc.head});
      }
    }
  }
}

const std::vector<Distance>& DijkstraWorkspace::SingleSource(
    const Graph& graph, VertexId source) {
  Search(graph, source, kInfDistance,
         [](VertexId, Distance) { return true; });
  result_.assign(graph.NumVertices(), kInfDistance);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    result_[v] = DistanceTo(v);
  }
  return result_;
}

Distance DijkstraWorkspace::PointToPoint(const Graph& graph, VertexId source,
                                         VertexId target) {
  Distance answer = kInfDistance;
  Search(graph, source, kInfDistance,
         [target, &answer](VertexId v, Distance d) {
           if (v == target) {
             answer = d;
             return false;
           }
           return true;
         });
  return answer;
}

std::vector<VertexId> DijkstraWorkspace::PathTo(VertexId target) const {
  if (stamp_[target] != version_ || dist_[target] == kInfDistance) {
    return {};
  }
  std::vector<VertexId> path;
  for (VertexId v = target; v != kInvalidVertex; v = ParentOf(v)) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<Distance> DijkstraSingleSource(const Graph& graph,
                                           VertexId source) {
  DijkstraWorkspace workspace(graph.NumVertices());
  return workspace.SingleSource(graph, source);
}

Distance DijkstraPointToPoint(const Graph& graph, VertexId source,
                              VertexId target) {
  DijkstraWorkspace workspace(graph.NumVertices());
  return workspace.PointToPoint(graph, source, target);
}

std::vector<VertexId> DijkstraShortestPath(const Graph& graph,
                                           VertexId source,
                                           VertexId target) {
  DijkstraWorkspace workspace(graph.NumVertices());
  workspace.PointToPoint(graph, source, target);
  return workspace.PathTo(target);
}

struct DijkstraOracle::Workspace final : OracleWorkspace {
  explicit Workspace(std::size_t num_vertices) : dijkstra(num_vertices) {}
  DijkstraWorkspace dijkstra;
};

DijkstraOracle::DijkstraOracle(const Graph& graph) : graph_(graph) {}

std::unique_ptr<OracleWorkspace> DijkstraOracle::MakeWorkspace() const {
  return std::make_unique<Workspace>(graph_.NumVertices());
}

Distance DijkstraOracle::NetworkDistance(OracleWorkspace& workspace,
                                         VertexId s, VertexId t) const {
  if (s == t) return 0;
  return static_cast<Workspace&>(workspace).dijkstra.PointToPoint(graph_, s,
                                                                  t);
}

}  // namespace kspin
