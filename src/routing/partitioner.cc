#include "routing/partitioner.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace kspin {
namespace {

// Recursive alternating-axis median split until the requested number of
// parts is reached. num_parts need not be a power of two: each split
// allocates children proportionally.
void KdSplit(const Graph& graph, std::vector<VertexId>& vertices,
             std::size_t begin, std::size_t end, std::uint32_t num_parts,
             bool split_x, std::vector<std::vector<VertexId>>* out) {
  if (num_parts <= 1 || end - begin <= 1) {
    out->emplace_back(vertices.begin() + begin, vertices.begin() + end);
    return;
  }
  const std::uint32_t left_parts = num_parts / 2;
  const std::uint32_t right_parts = num_parts - left_parts;
  const std::size_t mid =
      begin + (end - begin) * left_parts / num_parts;
  std::nth_element(vertices.begin() + begin, vertices.begin() + mid,
                   vertices.begin() + end,
                   [&graph, split_x](VertexId a, VertexId b) {
                     const Coordinate& ca = graph.VertexCoordinate(a);
                     const Coordinate& cb = graph.VertexCoordinate(b);
                     return split_x ? ca.x < cb.x : ca.y < cb.y;
                   });
  KdSplit(graph, vertices, begin, mid, left_parts, !split_x, out);
  KdSplit(graph, vertices, mid, end, right_parts, !split_x, out);
}

std::vector<std::vector<VertexId>> BfsGrowth(
    const Graph& graph, const std::vector<VertexId>& vertices,
    std::uint32_t num_parts, std::uint64_t seed) {
  // Membership test restricted to the subset.
  std::unordered_map<VertexId, std::uint32_t> assignment;
  assignment.reserve(vertices.size() * 2);
  for (VertexId v : vertices) assignment[v] = UINT32_MAX;

  Rng rng(seed);
  // Seeds: first random, then greedily far (in hops) from chosen seeds.
  std::vector<VertexId> seeds;
  std::unordered_map<VertexId, std::uint32_t> hop_dist;
  hop_dist.reserve(vertices.size() * 2);
  VertexId first = vertices[rng.UniformInt(0, vertices.size() - 1)];
  seeds.push_back(first);
  for (std::uint32_t s = 1; s < num_parts; ++s) {
    // Multi-source BFS from all seeds within the subset.
    std::queue<VertexId> queue;
    hop_dist.clear();
    for (VertexId sd : seeds) {
      hop_dist[sd] = 0;
      queue.push(sd);
    }
    VertexId farthest = seeds[0];
    std::uint32_t far_dist = 0;
    while (!queue.empty()) {
      VertexId v = queue.front();
      queue.pop();
      const std::uint32_t d = hop_dist[v];
      if (d > far_dist) {
        far_dist = d;
        farthest = v;
      }
      for (const Arc& arc : graph.Neighbors(v)) {
        if (assignment.find(arc.head) == assignment.end()) continue;
        if (hop_dist.find(arc.head) != hop_dist.end()) continue;
        hop_dist[arc.head] = d + 1;
        queue.push(arc.head);
      }
    }
    seeds.push_back(farthest);
  }

  // Balanced growth: round-robin BFS, each part claims one frontier vertex
  // per turn, so parts stay near-equal even with awkward topologies.
  std::vector<std::queue<VertexId>> frontiers(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    if (assignment[seeds[p]] == UINT32_MAX) {
      assignment[seeds[p]] = p;
      frontiers[p].push(seeds[p]);
    }
  }
  std::size_t assigned = 0;
  for (auto& [v, part] : assignment) {
    if (part != UINT32_MAX) ++assigned;
  }
  bool progress = true;
  while (assigned < vertices.size() && progress) {
    progress = false;
    for (std::uint32_t p = 0; p < num_parts; ++p) {
      bool claimed = false;
      while (!frontiers[p].empty() && !claimed) {
        VertexId v = frontiers[p].front();
        for (const Arc& arc : graph.Neighbors(v)) {
          auto it = assignment.find(arc.head);
          if (it == assignment.end() || it->second != UINT32_MAX) continue;
          it->second = p;
          frontiers[p].push(arc.head);
          ++assigned;
          claimed = true;
          progress = true;
          break;
        }
        if (!claimed) frontiers[p].pop();
      }
    }
  }
  // Disconnected leftovers (subset may not induce a connected subgraph):
  // assign to the smallest part.
  std::vector<std::size_t> sizes(num_parts, 0);
  for (auto& [v, part] : assignment) {
    if (part != UINT32_MAX) ++sizes[part];
  }
  for (auto& [v, part] : assignment) {
    if (part == UINT32_MAX) {
      const std::uint32_t smallest = static_cast<std::uint32_t>(
          std::distance(sizes.begin(),
                        std::min_element(sizes.begin(), sizes.end())));
      part = smallest;
      ++sizes[smallest];
    }
  }

  std::vector<std::vector<VertexId>> parts(num_parts);
  for (VertexId v : vertices) parts[assignment[v]].push_back(v);
  parts.erase(std::remove_if(parts.begin(), parts.end(),
                             [](const std::vector<VertexId>& p) {
                               return p.empty();
                             }),
              parts.end());
  return parts;
}

}  // namespace

std::vector<std::vector<VertexId>> PartitionVertices(
    const Graph& graph, const std::vector<VertexId>& vertices,
    std::uint32_t num_parts, PartitionStrategy strategy, std::uint64_t seed) {
  if (num_parts == 0) {
    throw std::invalid_argument("PartitionVertices: num_parts == 0");
  }
  if (vertices.empty()) {
    throw std::invalid_argument("PartitionVertices: empty vertex set");
  }
  num_parts = static_cast<std::uint32_t>(
      std::min<std::size_t>(num_parts, vertices.size()));
  if (num_parts == 1) return {vertices};

  if (strategy == PartitionStrategy::kKdTree) {
    if (!graph.HasCoordinates()) {
      throw std::invalid_argument(
          "PartitionVertices: kKdTree requires coordinates");
    }
    std::vector<VertexId> work = vertices;
    std::vector<std::vector<VertexId>> out;
    KdSplit(graph, work, 0, work.size(), num_parts, /*split_x=*/true, &out);
    return out;
  }
  return BfsGrowth(graph, vertices, num_parts, seed);
}

}  // namespace kspin
