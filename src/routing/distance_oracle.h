// Abstract interface of the K-SPIN *Network Distance Module* (paper
// Section 3, module 2). Any exact point-to-point distance technique can be
// plugged into the framework behind this interface: the repository provides
// Dijkstra, Contraction Hierarchies, hub labeling (PHL stand-in) and G-tree
// implementations.
//
// Concurrency model: every oracle is split into an immutable shared index
// (the oracle object itself — safe to share across threads after
// construction) and a per-thread OracleWorkspace holding all mutable query
// state (version-stamped distance arrays, per-source caches). The
// workspace-taking entry points are const against the index, so any number
// of threads may query one oracle concurrently through distinct
// workspaces. The classic two-argument API remains as a thin wrapper over
// one lazily created default workspace and is NOT thread-safe.
#ifndef KSPIN_ROUTING_DISTANCE_ORACLE_H_
#define KSPIN_ROUTING_DISTANCE_ORACLE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/types.h"

namespace kspin {

/// Opaque per-thread mutable query state of a DistanceOracle. Obtained
/// from DistanceOracle::MakeWorkspace and only valid with the oracle that
/// created it. Stateless oracles (hub labels) use this base directly.
class OracleWorkspace {
 public:
  OracleWorkspace() = default;
  virtual ~OracleWorkspace() = default;

  OracleWorkspace(const OracleWorkspace&) = delete;
  OracleWorkspace& operator=(const OracleWorkspace&) = delete;
};

/// Exact network-distance oracle. Implementations must return the true
/// shortest-path distance (kInfDistance if disconnected, which cannot
/// happen on the connected graphs used in this repository).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  // ----- Thread-safe API (const against the shared index) ---------------

  /// Creates a fresh per-thread workspace for this oracle. Workspaces are
  /// independent: one per concurrent caller.
  virtual std::unique_ptr<OracleWorkspace> MakeWorkspace() const = 0;

  /// Exact network distance between s and t, using `workspace` for all
  /// mutable state. `workspace` must come from this oracle's
  /// MakeWorkspace and must not be used by another thread concurrently.
  virtual Distance NetworkDistance(OracleWorkspace& workspace, VertexId s,
                                   VertexId t) const = 0;

  /// Hints that a batch of queries with the same source vertex follows.
  /// Implementations may warm per-source caches in the workspace (e.g.
  /// G-tree materializes the source-to-border vectors once). Default:
  /// no-op.
  virtual void BeginSourceBatch(OracleWorkspace& /*workspace*/,
                                VertexId /*source*/) const {}

  // ----- Single-threaded convenience API ---------------------------------

  /// Exact network distance between s and t through the oracle's own
  /// default workspace (created on first use). Not thread-safe; use the
  /// workspace overload for concurrent querying.
  Distance NetworkDistance(VertexId s, VertexId t) {
    return NetworkDistance(DefaultWorkspace(), s, t);
  }

  /// Same-source batch hint on the default workspace. Not thread-safe.
  void BeginSourceBatch(VertexId source) {
    BeginSourceBatch(DefaultWorkspace(), source);
  }

  /// Short human-readable name ("dijkstra", "ch", "hl", "gtree").
  virtual std::string Name() const = 0;

  /// Approximate index memory in bytes (0 for index-free techniques).
  virtual std::size_t MemoryBytes() const { return 0; }

 private:
  OracleWorkspace& DefaultWorkspace() {
    if (default_workspace_ == nullptr) default_workspace_ = MakeWorkspace();
    return *default_workspace_;
  }

  std::unique_ptr<OracleWorkspace> default_workspace_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_DISTANCE_ORACLE_H_
