// Abstract interface of the K-SPIN *Network Distance Module* (paper
// Section 3, module 2). Any exact point-to-point distance technique can be
// plugged into the framework behind this interface: the repository provides
// Dijkstra, Contraction Hierarchies, hub labeling (PHL stand-in) and G-tree
// implementations.
#ifndef KSPIN_ROUTING_DISTANCE_ORACLE_H_
#define KSPIN_ROUTING_DISTANCE_ORACLE_H_

#include <cstddef>
#include <string>

#include "common/types.h"

namespace kspin {

/// Exact network-distance oracle. Implementations must return the true
/// shortest-path distance (kInfDistance if disconnected, which cannot happen
/// on the connected graphs used in this repository).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// Exact network distance between s and t.
  virtual Distance NetworkDistance(VertexId s, VertexId t) = 0;

  /// Hints that a batch of queries with the same source vertex follows.
  /// Implementations may warm per-source caches (e.g. G-tree materializes
  /// the source-to-border vectors once). Default: no-op.
  virtual void BeginSourceBatch(VertexId /*source*/) {}

  /// Short human-readable name ("dijkstra", "ch", "hl", "gtree").
  virtual std::string Name() const = 0;

  /// Approximate index memory in bytes (0 for index-free techniques).
  virtual std::size_t MemoryBytes() const { return 0; }
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_DISTANCE_ORACLE_H_
