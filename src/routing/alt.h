// ALT landmark index (Goldberg & Harrelson, SODA'05) used as the K-SPIN
// *Lower Bounding Module* (paper Section 3, module 1).
//
// Pre-computes network distances from m landmark vertices to every vertex;
// the triangle inequality then yields a lower bound on d(s, t) in O(m):
//   d(s, t) >= |d(l, s) - d(l, t)| for every landmark l.
//
// Storage is vertex-major: distances_[v * row_stride_ + l] holds d(l, v),
// so one lower-bound evaluation touches exactly two contiguous, 64-byte-
// aligned rows (the landmark-major transpose would scatter m cache lines
// per call). Rows are zero-padded to a multiple of 8 landmarks so the
// SIMD batch kernels (alt_kernels.h) never need a tail loop — padding
// lanes contribute |0 - 0| = 0 to the max and cannot change the bound.
#ifndef KSPIN_ROUTING_ALT_H_
#define KSPIN_ROUTING_ALT_H_

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/types.h"
#include "graph/graph.h"
#include "routing/alt_kernels.h"
#include "routing/lower_bound.h"

namespace kspin {

/// Landmark selection strategy.
enum class LandmarkStrategy {
  kRandom,    ///< Uniform random vertices.
  kFarthest,  ///< Greedy farthest-point traversal (default; best bounds on
              ///< road networks per Abeywickrama & Cheema, DASFAA'17).
};

/// Landmark-based lower-bound index (the primary LowerBoundModule).
class AltIndex : public LowerBoundModule {
 public:
  /// Builds an index with `num_landmarks` landmarks (clamped to |V|).
  /// Costs one Dijkstra per landmark. Throws on num_landmarks == 0 or an
  /// empty graph.
  AltIndex(const Graph& graph, std::uint32_t num_landmarks,
           LandmarkStrategy strategy = LandmarkStrategy::kFarthest,
           std::uint64_t seed = 7);

  /// Lower bound on the network distance d(s, t). Guaranteed
  /// LowerBound(s, t) <= d(s, t), with equality when s or t is a landmark.
  Distance LowerBound(VertexId s, VertexId t) const override {
    const Distance* a = RowData(s);
    const Distance* b = RowData(t);
    Distance best = 0;
    for (std::size_t l = 0; l < landmarks_.size(); ++l) {
      const Distance ds = a[l];
      const Distance dt = b[l];
      const Distance diff = ds > dt ? ds - dt : dt - ds;
      if (diff > best) best = diff;
    }
    return best;
  }

  /// Batch lower bounds via the runtime-selected SIMD kernel: the source
  /// row is loaded once and held in registers across the whole block, and
  /// upcoming target rows are software-prefetched. Bit-identical to the
  /// per-pair LowerBound loop.
  void LowerBoundBatch(VertexId s, std::span<const VertexId> targets,
                       std::span<Distance> out) const override {
    detail::AltBatchKernel()(RowData(s), distances_.data(), row_stride_,
                             targets.data(), targets.size(), out.data());
  }

  /// The chosen landmark vertices.
  const std::vector<VertexId>& Landmarks() const { return landmarks_; }

  /// Distance from landmark index l to vertex v.
  Distance LandmarkDistance(std::size_t l, VertexId v) const {
    return distances_[static_cast<std::size_t>(v) * row_stride_ + l];
  }

  /// Vertex v's landmark row including zero padding (row_stride_ wide,
  /// 64-byte aligned). Exposed for the kernels, benches and tests.
  std::span<const Distance> LandmarkRow(VertexId v) const {
    return {RowData(v), row_stride_};
  }

  /// Distances per row (landmark count rounded up to a multiple of 8).
  std::size_t RowStride() const { return row_stride_; }

  std::string Name() const override { return "alt"; }

  /// Approximate index memory in bytes (padding included — it is resident).
  std::size_t MemoryBytes() const override {
    return distances_.size() * sizeof(Distance) +
           landmarks_.size() * sizeof(VertexId);
  }

 private:
  friend void SaveAltIndex(const AltIndex&, std::ostream&);
  friend AltIndex LoadAltIndex(std::istream&);
  AltIndex() = default;  // For deserialization only.

  /// Sizes the vertex-major matrix for `num_landmarks` (zero-filled).
  void InitLayout(std::size_t num_vertices, std::size_t num_landmarks) {
    num_vertices_ = num_vertices;
    row_stride_ = RoundUpPow2(num_landmarks, 8);
    distances_.assign(num_vertices * row_stride_, 0);
  }

  const Distance* RowData(VertexId v) const {
    return distances_.data() + static_cast<std::size_t>(v) * row_stride_;
  }
  Distance* MutableRowData(VertexId v) {
    return distances_.data() + static_cast<std::size_t>(v) * row_stride_;
  }

  std::size_t num_vertices_ = 0;
  std::size_t row_stride_ = 0;
  std::vector<VertexId> landmarks_;
  AlignedVector<Distance> distances_;  // Vertex-major: vertex x landmark.
};

void SaveAltIndex(const AltIndex& alt, std::ostream& out);
AltIndex LoadAltIndex(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_ROUTING_ALT_H_
