// ALT landmark index (Goldberg & Harrelson, SODA'05) used as the K-SPIN
// *Lower Bounding Module* (paper Section 3, module 1).
//
// Pre-computes network distances from m landmark vertices to every vertex;
// the triangle inequality then yields a lower bound on d(s, t) in O(m):
//   d(s, t) >= |d(l, s) - d(l, t)| for every landmark l.
#ifndef KSPIN_ROUTING_ALT_H_
#define KSPIN_ROUTING_ALT_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "routing/lower_bound.h"

namespace kspin {

/// Landmark selection strategy.
enum class LandmarkStrategy {
  kRandom,    ///< Uniform random vertices.
  kFarthest,  ///< Greedy farthest-point traversal (default; best bounds on
              ///< road networks per Abeywickrama & Cheema, DASFAA'17).
};

/// Landmark-based lower-bound index (the primary LowerBoundModule).
class AltIndex : public LowerBoundModule {
 public:
  /// Builds an index with `num_landmarks` landmarks (clamped to |V|).
  /// Costs one Dijkstra per landmark. Throws on num_landmarks == 0 or an
  /// empty graph.
  AltIndex(const Graph& graph, std::uint32_t num_landmarks,
           LandmarkStrategy strategy = LandmarkStrategy::kFarthest,
           std::uint64_t seed = 7);

  /// Lower bound on the network distance d(s, t). Guaranteed
  /// LowerBound(s, t) <= d(s, t), with equality when s or t is a landmark.
  Distance LowerBound(VertexId s, VertexId t) const override {
    Distance best = 0;
    const std::size_t n = num_vertices_;
    for (std::size_t l = 0; l < landmarks_.size(); ++l) {
      const Distance ds = distances_[l * n + s];
      const Distance dt = distances_[l * n + t];
      const Distance diff = ds > dt ? ds - dt : dt - ds;
      if (diff > best) best = diff;
    }
    return best;
  }

  /// The chosen landmark vertices.
  const std::vector<VertexId>& Landmarks() const { return landmarks_; }

  /// Distance from landmark index l to vertex v.
  Distance LandmarkDistance(std::size_t l, VertexId v) const {
    return distances_[l * num_vertices_ + v];
  }

  std::string Name() const override { return "alt"; }

  /// Approximate index memory in bytes.
  std::size_t MemoryBytes() const override {
    return distances_.size() * sizeof(Distance) +
           landmarks_.size() * sizeof(VertexId);
  }

 private:
  friend void SaveAltIndex(const AltIndex&, std::ostream&);
  friend AltIndex LoadAltIndex(std::istream&);
  AltIndex() = default;  // For deserialization only.

  std::size_t num_vertices_ = 0;
  std::vector<VertexId> landmarks_;
  std::vector<Distance> distances_;  // Row-major: landmark x vertex.
};

void SaveAltIndex(const AltIndex& alt, std::ostream& out);
AltIndex LoadAltIndex(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_ROUTING_ALT_H_
