#include "routing/contraction_hierarchy.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <unordered_map>

namespace kspin {
namespace {

struct DynArc {
  VertexId head;
  Weight weight;
  // Contracted vertex this (shortcut) arc goes through; kInvalidVertex for
  // original edges. Drives path unpacking.
  VertexId mid = kInvalidVertex;
};

// Mutable overlay graph used during contraction. Arcs to already-contracted
// vertices are skipped rather than erased.
class Overlay {
 public:
  explicit Overlay(const Graph& graph)
      : adjacency_(graph.NumVertices()), contracted_(graph.NumVertices(), 0) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (const Arc& arc : graph.Neighbors(v)) {
        adjacency_[v].push_back({arc.head, arc.weight, kInvalidVertex});
      }
    }
  }

  bool IsContracted(VertexId v) const { return contracted_[v] != 0; }
  void MarkContracted(VertexId v) { contracted_[v] = 1; }

  // Live neighbours of v (excluding contracted ones), compacting the stored
  // list as a side effect.
  std::vector<DynArc>& Compact(VertexId v) {
    auto& arcs = adjacency_[v];
    arcs.erase(std::remove_if(arcs.begin(), arcs.end(),
                              [this](const DynArc& a) {
                                return contracted_[a.head] != 0;
                              }),
               arcs.end());
    return arcs;
  }

  // Adds or relaxes the undirected edge {u, v} (a shortcut via `mid`).
  // Returns true if a brand-new edge was created.
  bool AddOrImproveEdge(VertexId u, VertexId v, Weight w, VertexId mid) {
    bool created = !ImproveDirected(u, v, w, mid);
    if (created) adjacency_[u].push_back({v, w, mid});
    bool created2 = !ImproveDirected(v, u, w, mid);
    if (created2) adjacency_[v].push_back({u, w, mid});
    return created || created2;
  }

 private:
  bool ImproveDirected(VertexId u, VertexId v, Weight w, VertexId mid) {
    for (DynArc& a : adjacency_[u]) {
      if (a.head == v) {
        if (w < a.weight) {
          a.weight = w;
          a.mid = mid;  // Provenance follows the better weight.
        }
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<DynArc>> adjacency_;
  std::vector<std::uint8_t> contracted_;
};

// Budget-limited local Dijkstra from `source` in the overlay, excluding
// `excluded`, bounded by `bound`. Returns per-target distances via the dist
// map (only vertices reached within budget appear).
class WitnessSearch {
 public:
  void Run(Overlay& overlay, VertexId source, VertexId excluded,
           Distance bound, std::uint32_t settle_limit) {
    dist_.clear();
    using Entry = std::pair<Distance, VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
    dist_[source] = 0;
    queue.push({0, source});
    std::uint32_t settled = 0;
    while (!queue.empty() && settled < settle_limit) {
      auto [d, v] = queue.top();
      queue.pop();
      auto it = dist_.find(v);
      if (it != dist_.end() && d > it->second) continue;
      if (d > bound) break;
      ++settled;
      for (const DynArc& arc : overlay.Compact(v)) {
        if (arc.head == excluded) continue;
        const Distance nd = d + arc.weight;
        auto [slot, inserted] = dist_.try_emplace(arc.head, nd);
        if (inserted || nd < slot->second) {
          slot->second = nd;
          queue.push({nd, arc.head});
        }
      }
    }
  }

  Distance DistanceTo(VertexId v) const {
    auto it = dist_.find(v);
    return it == dist_.end() ? kInfDistance : it->second;
  }

 private:
  std::unordered_map<VertexId, Distance> dist_;
};

}  // namespace

ContractionHierarchy::ContractionHierarchy(
    const Graph& graph, ContractionHierarchyOptions options) {
  const std::size_t n = graph.NumVertices();
  rank_.assign(n, 0);

  Overlay overlay(graph);
  WitnessSearch witness;
  std::vector<std::int32_t> contracted_neighbors(n, 0);

  // Simulates contracting v: counts the shortcuts required and (optionally)
  // materializes them. Returns the number of shortcuts.
  auto contract = [&](VertexId v, bool simulate) -> std::int32_t {
    std::vector<DynArc> neighbors = overlay.Compact(v);  // Copy: overlay
                                                         // mutates below.
    std::int32_t shortcuts = 0;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const VertexId u = neighbors[i].head;
      // Witness bound: longest potential shortcut via v from u.
      Distance max_target = 0;
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        max_target = std::max<Distance>(
            max_target, static_cast<Distance>(neighbors[i].weight) +
                            neighbors[j].weight);
      }
      if (max_target == 0) continue;
      witness.Run(overlay, u, v, max_target, options.witness_settle_limit);
      for (std::size_t j = i + 1; j < neighbors.size(); ++j) {
        const VertexId w = neighbors[j].head;
        if (w == u) continue;
        const Distance via_v = static_cast<Distance>(neighbors[i].weight) +
                               neighbors[j].weight;
        if (witness.DistanceTo(w) <= via_v) continue;  // Witness found.
        ++shortcuts;
        if (!simulate) {
          overlay.AddOrImproveEdge(u, w, static_cast<Weight>(via_v), v);
        }
      }
    }
    return shortcuts;
  };

  auto priority = [&](VertexId v) -> std::int64_t {
    const std::int32_t degree =
        static_cast<std::int32_t>(overlay.Compact(v).size());
    const std::int32_t shortcuts = contract(v, /*simulate=*/true);
    const std::int32_t edge_difference = shortcuts - degree;
    return static_cast<std::int64_t>(options.edge_difference_factor) *
               edge_difference +
           static_cast<std::int64_t>(options.contracted_neighbors_factor) *
               contracted_neighbors[v];
  };

  using PQEntry = std::pair<std::int64_t, VertexId>;
  std::priority_queue<PQEntry, std::vector<PQEntry>, std::greater<PQEntry>>
      queue;
  for (VertexId v = 0; v < n; ++v) queue.push({priority(v), v});

  struct CapturedArc {
    VertexId head;
    Weight weight;
    VertexId mid;
  };
  std::vector<std::vector<CapturedArc>> upward(n);
  std::uint32_t next_rank = 0;
  while (!queue.empty()) {
    auto [prio, v] = queue.top();
    queue.pop();
    if (overlay.IsContracted(v)) continue;
    // Lazy update: recompute; requeue if no longer the minimum.
    const std::int64_t current = priority(v);
    if (!queue.empty() && current > queue.top().first) {
      queue.push({current, v});
      continue;
    }
    num_shortcuts_ += static_cast<std::size_t>(contract(v, false));
    rank_[v] = next_rank++;
    // All live neighbours are still uncontracted, i.e. higher-ranked:
    // capture them as v's upward arcs (originals plus shortcuts, with any
    // weight improvements applied so far).
    for (const DynArc& arc : overlay.Compact(v)) {
      ++contracted_neighbors[arc.head];
      upward[v].push_back({arc.head, arc.weight, arc.mid});
    }
    overlay.MarkContracted(v);
  }

  up_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    // Keep only the minimal-weight arc per head.
    auto& arcs = upward[v];
    std::sort(arcs.begin(), arcs.end(),
              [](const CapturedArc& a, const CapturedArc& b) {
                return a.head != b.head ? a.head < b.head
                                        : a.weight < b.weight;
              });
    arcs.erase(std::unique(arcs.begin(), arcs.end(),
                           [](const CapturedArc& a, const CapturedArc& b) {
                             return a.head == b.head;
                           }),
               arcs.end());
    up_offsets_[v + 1] = up_offsets_[v] + arcs.size();
  }
  up_arcs_.resize(up_offsets_[n]);
  up_mids_.resize(up_offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    for (std::size_t i = 0; i < upward[v].size(); ++i) {
      up_arcs_[up_offsets_[v] + i] =
          Arc{upward[v][i].head, upward[v][i].weight};
      up_mids_[up_offsets_[v] + i] = upward[v][i].mid;
    }
  }

}

void ContractionHierarchy::SearchSpace::EnsureSize(std::size_t num_vertices) {
  if (fwd_dist_.size() >= num_vertices) return;
  fwd_dist_.assign(num_vertices, kInfDistance);
  bwd_dist_.assign(num_vertices, kInfDistance);
  fwd_parent_.assign(num_vertices, kInvalidVertex);
  bwd_parent_.assign(num_vertices, kInvalidVertex);
  fwd_stamp_.assign(num_vertices, 0);
  bwd_stamp_.assign(num_vertices, 0);
  version_ = 0;
}

std::vector<VertexId> ContractionHierarchy::VerticesByDescendingRank() const {
  std::vector<VertexId> order(rank_.size());
  for (VertexId v = 0; v < rank_.size(); ++v) {
    order[rank_.size() - 1 - rank_[v]] = v;
  }
  return order;
}

Distance ContractionHierarchy::RunBidirectional(SearchSpace& space,
                                                VertexId s, VertexId t,
                                                VertexId* meeting) const {
  *meeting = kInvalidVertex;
  if (s == t) {
    *meeting = s;
    return 0;
  }
  space.EnsureSize(NumVertices());
  ++space.version_;
  if (space.version_ == 0) {
    std::fill(space.fwd_stamp_.begin(), space.fwd_stamp_.end(), 0);
    std::fill(space.bwd_stamp_.begin(), space.bwd_stamp_.end(), 0);
    space.version_ = 1;
  }
  const std::uint32_t version = space.version_;

  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> fwd,
      bwd;
  space.fwd_dist_[s] = 0;
  space.fwd_parent_[s] = kInvalidVertex;
  space.fwd_stamp_[s] = version;
  fwd.push({0, s});
  space.bwd_dist_[t] = 0;
  space.bwd_parent_[t] = kInvalidVertex;
  space.bwd_stamp_[t] = version;
  bwd.push({0, t});

  Distance best = kInfDistance;
  auto relax = [this, version, meeting](
                   auto& queue, std::vector<Distance>& dist,
                   std::vector<VertexId>& parent,
                   std::vector<std::uint32_t>& stamp,
                   const std::vector<Distance>& other_dist,
                   const std::vector<std::uint32_t>& other_stamp,
                   Distance& best_out) {
    auto [d, v] = queue.top();
    queue.pop();
    if (stamp[v] == version && d > dist[v]) return;
    if (other_stamp[v] == version && other_dist[v] != kInfDistance &&
        d + other_dist[v] < best_out) {
      best_out = d + other_dist[v];
      *meeting = v;
    }
    for (const Arc& arc : UpwardArcs(v)) {
      const Distance nd = d + arc.weight;
      if (stamp[arc.head] != version || nd < dist[arc.head]) {
        dist[arc.head] = nd;
        parent[arc.head] = v;
        stamp[arc.head] = version;
        queue.push({nd, arc.head});
      }
    }
  };

  while (!fwd.empty() || !bwd.empty()) {
    const Distance fwd_top = fwd.empty() ? kInfDistance : fwd.top().first;
    const Distance bwd_top = bwd.empty() ? kInfDistance : bwd.top().first;
    if (std::min(fwd_top, bwd_top) >= best) break;
    if (fwd_top <= bwd_top) {
      relax(fwd, space.fwd_dist_, space.fwd_parent_, space.fwd_stamp_,
            space.bwd_dist_, space.bwd_stamp_, best);
    } else {
      relax(bwd, space.bwd_dist_, space.bwd_parent_, space.bwd_stamp_,
            space.fwd_dist_, space.fwd_stamp_, best);
    }
  }
  return best;
}

Distance ContractionHierarchy::Query(SearchSpace& space, VertexId s,
                                     VertexId t) const {
  VertexId meeting;
  return RunBidirectional(space, s, t, &meeting);
}

Distance ContractionHierarchy::Query(VertexId s, VertexId t) const {
  return Query(scratch_, s, t);
}

std::vector<VertexId> ContractionHierarchy::PathQuery(VertexId s,
                                                      VertexId t) const {
  VertexId meeting;
  const Distance d = RunBidirectional(scratch_, s, t, &meeting);
  if (d == kInfDistance) return {};
  if (s == t) return {s};

  // Upward parent chains: s -> ... -> meeting and t -> ... -> meeting.
  std::vector<VertexId> up_chain;  // s side, from s to meeting.
  for (VertexId v = meeting; v != kInvalidVertex;
       v = scratch_.fwd_parent_[v]) {
    up_chain.push_back(v);
  }
  std::reverse(up_chain.begin(), up_chain.end());
  std::vector<VertexId> down_chain;  // t side, from meeting to t.
  for (VertexId v = meeting; v != kInvalidVertex;
       v = scratch_.bwd_parent_[v]) {
    down_chain.push_back(v);
  }

  // Expand every (upward) arc of both chains into original edges. Each
  // chain step (prev -> cur) is an upward arc of `prev` on the s side and
  // of the *later* vertex on the t side — both are arcs of the
  // lower-ranked endpoint, which is exactly how they are stored.
  std::vector<VertexId> path = {s};
  // Recursive expansion of arc (low, high) in travel direction low->high
  // or high->low; emits every vertex after the first.
  const std::function<void(VertexId, VertexId, bool)> expand =
      [&](VertexId low, VertexId high, bool forward) {
        const auto arcs = UpwardArcs(low);
        for (std::size_t i = 0; i < arcs.size(); ++i) {
          if (arcs[i].head != high) continue;
          const VertexId mid = UpwardMid(low, i);
          if (mid == kInvalidVertex) {
            path.push_back(forward ? high : low);
          } else if (forward) {  // low -> mid? No: low -> high via mid,
                                 // mid has lower rank than both.
            expand(mid, low, false);   // low -> mid (reverse of mid->low).
            expand(mid, high, true);   // mid -> high.
          } else {                     // high -> low via mid.
            expand(mid, high, false);  // high -> mid.
            expand(mid, low, true);    // mid -> low.
          }
          return;
        }
      };
  for (std::size_t i = 1; i < up_chain.size(); ++i) {
    // Travel direction up_chain[i-1] -> up_chain[i]; the arc is stored at
    // the lower-ranked tail up_chain[i-1].
    expand(up_chain[i - 1], up_chain[i], true);
  }
  for (std::size_t i = 1; i < down_chain.size(); ++i) {
    // Travel direction down_chain[i-1] -> down_chain[i]; stored at the
    // lower-ranked down_chain[i].
    expand(down_chain[i], down_chain[i - 1], false);
  }
  return path;
}

}  // namespace kspin
