// G-tree (Zhong et al., TKDE'15): hierarchical road-network index used both
// as a Network Distance Module variant (KS-GT) and as the substrate of the
// keyword-aggregated spatial keyword baseline (Section 7.4).
//
// The graph is recursively partitioned into a tree of subgraphs (fanout f,
// leaf capacity tau). Each leaf stores a border-to-vertex distance matrix;
// each internal node stores an all-pairs matrix over the union of its
// children's borders. Matrices are computed in two phases:
//   1. bottom-up assembly (distances constrained to each node's subgraph),
//   2. top-down refinement against the parent's exact matrix (adding a
//      "detour" clique over the node's own borders), after which every
//      matrix entry is an exact global network distance.
// Queries assemble distances through the border hierarchy with pure matrix
// lookup+add steps ("matrix operations", the machine-independent cost metric
// of the paper's Figure 16), which this implementation counts.
#ifndef KSPIN_ROUTING_GTREE_H_
#define KSPIN_ROUTING_GTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "routing/distance_oracle.h"
#include "routing/partitioner.h"

namespace kspin {

/// G-tree construction parameters.
struct GTreeOptions {
  std::uint32_t fanout = 4;      ///< Children per internal node.
  std::uint32_t leaf_size = 64;  ///< Max vertices per leaf.
  PartitionStrategy strategy = PartitionStrategy::kKdTree;
  std::uint64_t seed = 13;
  unsigned num_threads = 0;  ///< 0 = hardware concurrency.
};

/// Hierarchical distance index with exact border matrices.
class GTree {
 public:
  using NodeId = std::uint32_t;
  static constexpr NodeId kInvalidNode = UINT32_MAX;

  GTree(const Graph& graph, GTreeOptions options = {});

  // ----- Distance queries ---------------------------------------------

  /// Per-source materialization cache: the distance vectors from one query
  /// vertex to the borders of visited tree nodes, reused across targets
  /// (the "materialization" technique of Zhong et al.).
  class SourceCache {
   public:
    VertexId source() const { return source_; }

   private:
    friend class GTree;
    VertexId source_ = kInvalidVertex;
    std::unordered_map<NodeId, std::vector<Distance>> border_distances_;
  };

  /// Creates a cache for query source s.
  SourceCache MakeSourceCache(VertexId s) const;

  /// Exact network distance using (and filling) the source cache.
  Distance Query(SourceCache& cache, VertexId t) const;

  /// One-shot exact distance (builds a throwaway cache).
  Distance Query(VertexId s, VertexId t) const;

  /// Exact distances from the cached source to the borders of `node`,
  /// aligned with Borders(node). Computes ancestors' vectors on demand.
  const std::vector<Distance>& BorderDistances(SourceCache& cache,
                                               NodeId node) const;

  /// min over Borders(node) of BorderDistances (kInfDistance for the root,
  /// which has no borders). Lower-bounds the distance from the cached
  /// source to every vertex in `node` the source is outside of.
  Distance MinBorderDistance(SourceCache& cache, NodeId node) const;

  // ----- Tree structure (used by the spatial-keyword baselines) --------

  NodeId RootNode() const { return 0; }
  bool IsLeaf(NodeId n) const { return nodes_[n].children.empty(); }
  NodeId Parent(NodeId n) const { return nodes_[n].parent; }
  const std::vector<NodeId>& Children(NodeId n) const {
    return nodes_[n].children;
  }
  std::size_t NumNodes() const { return nodes_.size(); }
  NodeId LeafOf(VertexId v) const { return leaf_of_[v]; }
  /// Vertices of a leaf node. Only leaves retain vertex lists.
  const std::vector<VertexId>& LeafVertices(NodeId n) const;
  const std::vector<VertexId>& Borders(NodeId n) const {
    return nodes_[n].borders;
  }
  /// True if `node` is `ancestor` or a descendant of it.
  bool IsInSubtree(NodeId node, NodeId ancestor) const;

  /// Exact distance between a leaf border and a vertex of the same leaf
  /// (counted as one matrix operation).
  Distance LeafBorderToVertex(NodeId leaf, VertexId border,
                              VertexId v) const;

  /// Exact distance between Borders(n)[i] and Borders(n)[j] for a non-root
  /// node, read from the parent's refined matrix (one matrix operation).
  /// Used by the ROAD-style overlay as its shortcut source.
  Distance BorderPairDistance(NodeId n, std::size_t i, std::size_t j) const;

  // ----- Accounting -----------------------------------------------------

  /// Matrix operations (one lookup + add) since the last reset. The counter
  /// is a relaxed atomic so concurrent queries stay race-free; it is an
  /// accounting metric, not a synchronization point.
  std::uint64_t MatrixOps() const {
    return matrix_ops_.load(std::memory_order_relaxed);
  }
  void ResetMatrixOps() { matrix_ops_.store(0, std::memory_order_relaxed); }

  /// Approximate index memory in bytes (matrices + structure).
  std::size_t MemoryBytes() const;

 private:
  // Distances inside matrices are 32-bit; kUnreachable marks disconnected
  // pairs during the constrained bottom-up phase.
  using MatrixDist = std::uint32_t;
  static constexpr MatrixDist kUnreachable = UINT32_MAX;

  struct Node {
    NodeId parent = kInvalidNode;
    std::uint32_t depth = 0;
    std::vector<NodeId> children;
    std::vector<VertexId> borders;
    // Matrix column universe. Leaf: all leaf vertices. Internal: the union
    // of children borders (disjoint across children).
    std::vector<VertexId> universe;
    std::unordered_map<VertexId, std::uint32_t> universe_index;
    // Row set: leaf -> borders; internal -> universe.
    std::vector<MatrixDist> matrix;

    std::size_t Rows(bool is_leaf) const {
      return is_leaf ? borders.size() : universe.size();
    }
    std::size_t Cols() const { return universe.size(); }
  };

  void BuildTree(const Graph& graph, const GTreeOptions& options);
  void ComputeBorders(const Graph& graph);
  void ComputeMatricesBottomUp(const Graph& graph, unsigned num_threads);
  void RefineMatricesTopDown(const Graph& graph, unsigned num_threads);
  void ComputeNodeMatrix(const Graph& graph, NodeId n, bool refined);

  // Border-to-border distance of child c as seen by its own matrix.
  Distance ChildBorderDistance(NodeId c, VertexId a, VertexId b) const;

  // Dijkstra constrained to one leaf's vertex set.
  Distance SameLeafDistance(NodeId leaf, VertexId s, VertexId t) const;

  bool ContainsVertex(NodeId n, VertexId v) const;
  // The child of `node` whose subtree contains vertex v. Requires
  // ContainsVertex(node, v) and node internal.
  NodeId LeafToChild(NodeId node, VertexId v) const;

  const Graph* graph_ = nullptr;
  std::vector<Node> nodes_;
  std::vector<NodeId> leaf_of_;
  std::vector<std::vector<NodeId>> levels_;  // Node ids grouped by depth.
  mutable std::atomic<std::uint64_t> matrix_ops_{0};
};

/// DistanceOracle adapter with per-source materialization. The G-tree is
/// the immutable shared index; each workspace owns one SourceCache that is
/// rebuilt whenever the query source changes.
class GTreeOracle : public DistanceOracle {
 public:
  explicit GTreeOracle(const GTree& gtree) : gtree_(gtree) {}

  using DistanceOracle::NetworkDistance;
  using DistanceOracle::BeginSourceBatch;

  std::unique_ptr<OracleWorkspace> MakeWorkspace() const override {
    return std::make_unique<Workspace>();
  }
  Distance NetworkDistance(OracleWorkspace& workspace, VertexId s,
                           VertexId t) const override {
    auto& w = static_cast<Workspace&>(workspace);
    if (w.cache.source() != s) w.cache = gtree_.MakeSourceCache(s);
    return gtree_.Query(w.cache, t);
  }
  void BeginSourceBatch(OracleWorkspace& workspace,
                        VertexId source) const override {
    static_cast<Workspace&>(workspace).cache =
        gtree_.MakeSourceCache(source);
  }
  std::string Name() const override { return "gtree"; }
  std::size_t MemoryBytes() const override { return gtree_.MemoryBytes(); }

 private:
  struct Workspace final : OracleWorkspace {
    GTree::SourceCache cache;
  };
  const GTree& gtree_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_GTREE_H_
