#include "routing/gtree.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <queue>
#include <stdexcept>
#include <thread>

namespace kspin {
namespace {

using LocalId = std::uint32_t;

struct LocalArc {
  LocalId head;
  std::uint32_t weight;
};

// Dijkstra over a small local adjacency structure.
void LocalDijkstra(const std::vector<std::vector<LocalArc>>& adjacency,
                   LocalId source, std::vector<std::uint64_t>* dist) {
  const std::uint64_t inf = UINT64_MAX;
  dist->assign(adjacency.size(), inf);
  using Entry = std::pair<std::uint64_t, LocalId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  (*dist)[source] = 0;
  queue.push({0, source});
  while (!queue.empty()) {
    auto [d, v] = queue.top();
    queue.pop();
    if (d > (*dist)[v]) continue;
    for (const LocalArc& arc : adjacency[v]) {
      const std::uint64_t nd = d + arc.weight;
      if (nd < (*dist)[arc.head]) {
        (*dist)[arc.head] = nd;
        queue.push({nd, arc.head});
      }
    }
  }
}

void ParallelForNodes(const std::vector<std::uint32_t>& node_ids,
                      unsigned num_threads,
                      const std::function<void(std::uint32_t)>& body) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  num_threads = std::min<unsigned>(
      num_threads, static_cast<unsigned>(std::max<std::size_t>(
                       1, node_ids.size())));
  if (num_threads == 1) {
    for (std::uint32_t id : node_ids) body(id);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= node_ids.size()) break;
        body(node_ids[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
}

}  // namespace

GTree::GTree(const Graph& graph, GTreeOptions options) : graph_(&graph) {
  if (graph.NumVertices() == 0) {
    throw std::invalid_argument("GTree: empty graph");
  }
  if (options.fanout < 2) {
    throw std::invalid_argument("GTree: fanout must be >= 2");
  }
  if (options.leaf_size < 1) {
    throw std::invalid_argument("GTree: leaf_size must be >= 1");
  }
  // Matrices store 32-bit distances. The total edge weight bounds every
  // shortest path, so reject graphs that could overflow instead of
  // silently corrupting entries.
  std::uint64_t total_weight = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    for (const Arc& arc : graph.Neighbors(v)) total_weight += arc.weight;
  }
  if (total_weight / 2 >= kUnreachable) {
    throw std::invalid_argument(
        "GTree: total edge weight exceeds the 32-bit matrix distance "
        "range");
  }
  BuildTree(graph, options);
  ComputeBorders(graph);
  ComputeMatricesBottomUp(graph, options.num_threads);
  RefineMatricesTopDown(graph, options.num_threads);
}

void GTree::BuildTree(const Graph& graph, const GTreeOptions& options) {
  leaf_of_.assign(graph.NumVertices(), kInvalidNode);

  struct Pending {
    NodeId node;
    std::vector<VertexId> vertices;
  };
  std::vector<Pending> stack;
  nodes_.emplace_back();  // Root.
  {
    std::vector<VertexId> all(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) all[v] = v;
    stack.push_back({0, std::move(all)});
  }

  while (!stack.empty()) {
    Pending item = std::move(stack.back());
    stack.pop_back();
    Node& node = nodes_[item.node];
    if (item.vertices.size() <= options.leaf_size) {
      node.universe = std::move(item.vertices);
      std::sort(node.universe.begin(), node.universe.end());
      for (std::uint32_t i = 0; i < node.universe.size(); ++i) {
        node.universe_index.emplace(node.universe[i], i);
        leaf_of_[node.universe[i]] = item.node;
      }
      continue;
    }
    std::vector<std::vector<VertexId>> parts = PartitionVertices(
        graph, item.vertices, options.fanout, options.strategy,
        options.seed + item.node);
    if (parts.size() < 2) {
      // Degenerate split (should not happen for |vertices| > leaf_size with
      // fanout >= 2); force a leaf to guarantee termination.
      node.universe = std::move(item.vertices);
      std::sort(node.universe.begin(), node.universe.end());
      for (std::uint32_t i = 0; i < node.universe.size(); ++i) {
        node.universe_index.emplace(node.universe[i], i);
        leaf_of_[node.universe[i]] = item.node;
      }
      continue;
    }
    for (auto& part : parts) {
      const NodeId child = static_cast<NodeId>(nodes_.size());
      nodes_.emplace_back();
      nodes_[child].parent = item.node;
      nodes_[child].depth = nodes_[item.node].depth + 1;
      nodes_[item.node].children.push_back(child);
      stack.push_back({child, std::move(part)});
    }
  }

  std::uint32_t max_depth = 0;
  for (const Node& node : nodes_) max_depth = std::max(max_depth, node.depth);
  levels_.assign(max_depth + 1, {});
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    levels_[nodes_[n].depth].push_back(n);
  }
}

void GTree::ComputeBorders(const Graph& graph) {
  std::vector<std::vector<VertexId>> borders(nodes_.size());
  auto mark_up_to_lca = [this, &borders](VertexId u, NodeId lca) {
    NodeId n = leaf_of_[u];
    while (n != lca) {
      borders[n].push_back(u);
      n = nodes_[n].parent;
    }
  };
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& arc : graph.Neighbors(u)) {
      if (u >= arc.head) continue;
      NodeId a = leaf_of_[u];
      NodeId b = leaf_of_[arc.head];
      if (a == b) continue;
      // Find the LCA by depth alignment.
      while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
      while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
      while (a != b) {
        a = nodes_[a].parent;
        b = nodes_[b].parent;
      }
      mark_up_to_lca(u, a);
      mark_up_to_lca(arc.head, a);
    }
  }
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    auto& list = borders[n];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    nodes_[n].borders = std::move(list);
  }
  // Internal universes: concatenation of children borders (disjoint since
  // children partition the vertex set).
  for (NodeId n = 0; n < nodes_.size(); ++n) {
    Node& node = nodes_[n];
    if (node.children.empty()) continue;  // Leaf universes set in BuildTree.
    for (NodeId c : node.children) {
      for (VertexId b : nodes_[c].borders) {
        node.universe_index.emplace(b, node.universe.size());
        node.universe.push_back(b);
      }
    }
  }
}

Distance GTree::ChildBorderDistance(NodeId c, VertexId a, VertexId b) const {
  const Node& child = nodes_[c];
  if (IsLeaf(c)) {
    const auto row = std::lower_bound(child.borders.begin(),
                                      child.borders.end(), a) -
                     child.borders.begin();
    const std::uint32_t col = child.universe_index.at(b);
    const MatrixDist d = child.matrix[row * child.Cols() + col];
    return d == kUnreachable ? kInfDistance : d;
  }
  const std::uint32_t row = child.universe_index.at(a);
  const std::uint32_t col = child.universe_index.at(b);
  const MatrixDist d = child.matrix[row * child.Cols() + col];
  return d == kUnreachable ? kInfDistance : d;
}

void GTree::ComputeNodeMatrix(const Graph& graph, NodeId n, bool refined) {
  Node& node = nodes_[n];
  const bool leaf = IsLeaf(n);
  const std::size_t cols = node.Cols();
  std::vector<std::vector<LocalArc>> adjacency(cols);

  if (leaf) {
    // Original arcs restricted to the leaf's vertex set.
    for (std::uint32_t i = 0; i < node.universe.size(); ++i) {
      const VertexId u = node.universe[i];
      for (const Arc& arc : graph.Neighbors(u)) {
        auto it = node.universe_index.find(arc.head);
        if (it != node.universe_index.end()) {
          adjacency[i].push_back({it->second, arc.weight});
        }
      }
    }
  } else {
    // Per-child border cliques from the children's current matrices.
    for (NodeId c : node.children) {
      const auto& child_borders = nodes_[c].borders;
      for (std::size_t i = 0; i < child_borders.size(); ++i) {
        for (std::size_t j = i + 1; j < child_borders.size(); ++j) {
          const Distance d =
              ChildBorderDistance(c, child_borders[i], child_borders[j]);
          if (d == kInfDistance) continue;
          const LocalId a = node.universe_index.at(child_borders[i]);
          const LocalId b = node.universe_index.at(child_borders[j]);
          adjacency[a].push_back({b, static_cast<std::uint32_t>(d)});
          adjacency[b].push_back({a, static_cast<std::uint32_t>(d)});
        }
      }
    }
    // Inter-child original edges. Both endpoints of an edge crossing two
    // children are borders of their children, hence in the universe.
    for (std::uint32_t i = 0; i < node.universe.size(); ++i) {
      const VertexId u = node.universe[i];
      for (const Arc& arc : graph.Neighbors(u)) {
        auto it = node.universe_index.find(arc.head);
        if (it == node.universe_index.end()) continue;
        if (LeafToChild(n, u) != LeafToChild(n, arc.head)) {
          adjacency[i].push_back({it->second, arc.weight});
        }
      }
    }
  }

  if (refined && node.parent != kInvalidNode) {
    // Detour clique: the node's own borders at their exact global
    // distances, read from the (already refined) parent matrix. This lets
    // shortest paths leave and re-enter the node's subgraph.
    const Node& parent = nodes_[node.parent];
    for (std::size_t i = 0; i < node.borders.size(); ++i) {
      for (std::size_t j = i + 1; j < node.borders.size(); ++j) {
        const std::uint32_t pi = parent.universe_index.at(node.borders[i]);
        const std::uint32_t pj = parent.universe_index.at(node.borders[j]);
        const MatrixDist d = parent.matrix[pi * parent.Cols() + pj];
        if (d == kUnreachable) continue;
        const LocalId a = node.universe_index.at(node.borders[i]);
        const LocalId b = node.universe_index.at(node.borders[j]);
        adjacency[a].push_back({b, d});
        adjacency[b].push_back({a, d});
      }
    }
  }

  const std::size_t rows = node.Rows(leaf);
  node.matrix.assign(rows * cols, kUnreachable);
  std::vector<std::uint64_t> dist;
  for (std::size_t row = 0; row < rows; ++row) {
    const LocalId source =
        leaf ? node.universe_index.at(node.borders[row])
             : static_cast<LocalId>(row);
    LocalDijkstra(adjacency, source, &dist);
    for (std::size_t col = 0; col < cols; ++col) {
      node.matrix[row * cols + col] =
          dist[col] >= kUnreachable
              ? kUnreachable
              : static_cast<MatrixDist>(dist[col]);
    }
  }
}

void GTree::ComputeMatricesBottomUp(const Graph& graph,
                                    unsigned num_threads) {
  for (auto level = levels_.rbegin(); level != levels_.rend(); ++level) {
    ParallelForNodes(*level, num_threads, [this, &graph](NodeId n) {
      ComputeNodeMatrix(graph, n, /*refined=*/false);
    });
  }
}

void GTree::RefineMatricesTopDown(const Graph& graph, unsigned num_threads) {
  // Root is already exact (its subgraph is the whole graph); refine the
  // rest level by level so each node sees an exact parent.
  for (std::size_t depth = 1; depth < levels_.size(); ++depth) {
    ParallelForNodes(levels_[depth], num_threads, [this, &graph](NodeId n) {
      ComputeNodeMatrix(graph, n, /*refined=*/true);
    });
  }
}

GTree::NodeId GTree::LeafToChild(NodeId node, VertexId v) const {
  NodeId n = leaf_of_[v];
  while (nodes_[n].parent != node) n = nodes_[n].parent;
  return n;
}

bool GTree::ContainsVertex(NodeId n, VertexId v) const {
  NodeId walk = leaf_of_[v];
  while (walk != kInvalidNode) {
    if (walk == n) return true;
    walk = nodes_[walk].parent;
  }
  return false;
}

bool GTree::IsInSubtree(NodeId node, NodeId ancestor) const {
  NodeId walk = node;
  while (walk != kInvalidNode) {
    if (walk == ancestor) return true;
    walk = nodes_[walk].parent;
  }
  return false;
}

const std::vector<VertexId>& GTree::LeafVertices(NodeId n) const {
  if (!IsLeaf(n)) {
    throw std::invalid_argument("GTree::LeafVertices: not a leaf");
  }
  return nodes_[n].universe;
}

GTree::SourceCache GTree::MakeSourceCache(VertexId s) const {
  SourceCache cache;
  cache.source_ = s;
  return cache;
}

const std::vector<Distance>& GTree::BorderDistances(SourceCache& cache,
                                                    NodeId n) const {
  auto it = cache.border_distances_.find(n);
  if (it != cache.border_distances_.end()) return it->second;

  const Node& node = nodes_[n];
  const VertexId q = cache.source_;
  std::vector<Distance> result(node.borders.size(), kInfDistance);

  if (IsLeaf(n) && n == leaf_of_[q]) {
    // Base case: exact border-to-vertex entries of the query leaf.
    const std::uint32_t col = node.universe_index.at(q);
    for (std::size_t i = 0; i < node.borders.size(); ++i) {
      const MatrixDist d = node.matrix[i * node.Cols() + col];
      result[i] = d == kUnreachable ? kInfDistance : d;
      matrix_ops_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (ContainsVertex(n, q)) {
    // Ascend: combine the child-containing-q vector with this node's
    // matrix over (borders(child) x borders(n)).
    const NodeId c = LeafToChild(n, q);
    const std::vector<Distance>& child_vec = BorderDistances(cache, c);
    const auto& child_borders = nodes_[c].borders;
    for (std::size_t i = 0; i < node.borders.size(); ++i) {
      const std::uint32_t bi = node.universe_index.at(node.borders[i]);
      Distance best = kInfDistance;
      for (std::size_t j = 0; j < child_borders.size(); ++j) {
        if (child_vec[j] == kInfDistance) continue;
        const std::uint32_t bj = node.universe_index.at(child_borders[j]);
        const MatrixDist d = node.matrix[bj * node.Cols() + bi];
        matrix_ops_.fetch_add(1, std::memory_order_relaxed);
        if (d == kUnreachable) continue;
        best = std::min(best, child_vec[j] + d);
      }
      result[i] = best;
    }
  } else {
    // Descend: q lies outside n. Walk through the parent: either the
    // parent contains q (combine against the sibling subtree containing q)
    // or recurse on the parent's own border vector.
    const NodeId p = node.parent;
    const Node& parent = nodes_[p];
    const std::vector<VertexId>* through_borders;
    const std::vector<Distance>* through_vec;
    if (ContainsVertex(p, q)) {
      const NodeId cq = LeafToChild(p, q);
      through_borders = &nodes_[cq].borders;
      through_vec = &BorderDistances(cache, cq);
    } else {
      through_borders = &parent.borders;
      through_vec = &BorderDistances(cache, p);
    }
    for (std::size_t i = 0; i < node.borders.size(); ++i) {
      const std::uint32_t bi = parent.universe_index.at(node.borders[i]);
      Distance best = kInfDistance;
      for (std::size_t j = 0; j < through_borders->size(); ++j) {
        if ((*through_vec)[j] == kInfDistance) continue;
        const std::uint32_t bj =
            parent.universe_index.at((*through_borders)[j]);
        const MatrixDist d = parent.matrix[bj * parent.Cols() + bi];
        matrix_ops_.fetch_add(1, std::memory_order_relaxed);
        if (d == kUnreachable) continue;
        best = std::min(best, (*through_vec)[j] + d);
      }
      result[i] = best;
    }
  }

  auto [slot, inserted] =
      cache.border_distances_.emplace(n, std::move(result));
  return slot->second;
}

Distance GTree::MinBorderDistance(SourceCache& cache, NodeId node) const {
  const std::vector<Distance>& vec = BorderDistances(cache, node);
  Distance best = kInfDistance;
  for (Distance d : vec) best = std::min(best, d);
  return best;
}

Distance GTree::LeafBorderToVertex(NodeId leaf, VertexId border,
                                   VertexId v) const {
  const Node& node = nodes_[leaf];
  const auto row = std::lower_bound(node.borders.begin(), node.borders.end(),
                                    border) -
                   node.borders.begin();
  const std::uint32_t col = node.universe_index.at(v);
  matrix_ops_.fetch_add(1, std::memory_order_relaxed);
  const MatrixDist d = node.matrix[row * node.Cols() + col];
  return d == kUnreachable ? kInfDistance : d;
}

Distance GTree::BorderPairDistance(NodeId n, std::size_t i,
                                   std::size_t j) const {
  const Node& node = nodes_[n];
  if (node.parent == kInvalidNode) {
    throw std::invalid_argument("GTree::BorderPairDistance: root node");
  }
  const Node& parent = nodes_[node.parent];
  const std::uint32_t pi = parent.universe_index.at(node.borders[i]);
  const std::uint32_t pj = parent.universe_index.at(node.borders[j]);
  matrix_ops_.fetch_add(1, std::memory_order_relaxed);
  const MatrixDist d = parent.matrix[pi * parent.Cols() + pj];
  return d == kUnreachable ? kInfDistance : d;
}

Distance GTree::SameLeafDistance(NodeId leaf, VertexId s, VertexId t) const {
  if (s == t) return 0;
  const Node& node = nodes_[leaf];
  // Paths staying inside the leaf: a small constrained Dijkstra.
  std::vector<std::uint64_t> dist;
  std::vector<std::vector<LocalArc>> adjacency(node.universe.size());
  for (std::uint32_t i = 0; i < node.universe.size(); ++i) {
    for (const Arc& arc : graph_->Neighbors(node.universe[i])) {
      auto it = node.universe_index.find(arc.head);
      if (it != node.universe_index.end()) {
        adjacency[i].push_back({it->second, arc.weight});
      }
    }
  }
  LocalDijkstra(adjacency, node.universe_index.at(s), &dist);
  Distance best = dist[node.universe_index.at(t)] == UINT64_MAX
                      ? kInfDistance
                      : dist[node.universe_index.at(t)];
  // Paths leaving the leaf pass through a border b on the shortest path:
  // exact matrix entries give d(b, s) + d(b, t).
  const std::uint32_t col_s = node.universe_index.at(s);
  const std::uint32_t col_t = node.universe_index.at(t);
  for (std::size_t i = 0; i < node.borders.size(); ++i) {
    const MatrixDist ds = node.matrix[i * node.Cols() + col_s];
    const MatrixDist dt = node.matrix[i * node.Cols() + col_t];
    matrix_ops_.fetch_add(2, std::memory_order_relaxed);
    if (ds == kUnreachable || dt == kUnreachable) continue;
    best = std::min(best, static_cast<Distance>(ds) + dt);
  }
  return best;
}

Distance GTree::Query(SourceCache& cache, VertexId t) const {
  const VertexId s = cache.source_;
  if (s == t) return 0;
  const NodeId leaf_t = leaf_of_[t];
  if (leaf_t == leaf_of_[s]) return SameLeafDistance(leaf_t, s, t);
  const std::vector<Distance>& vec = BorderDistances(cache, leaf_t);
  const Node& node = nodes_[leaf_t];
  const std::uint32_t col = node.universe_index.at(t);
  Distance best = kInfDistance;
  for (std::size_t i = 0; i < node.borders.size(); ++i) {
    if (vec[i] == kInfDistance) continue;
    const MatrixDist d = node.matrix[i * node.Cols() + col];
    matrix_ops_.fetch_add(1, std::memory_order_relaxed);
    if (d == kUnreachable) continue;
    best = std::min(best, vec[i] + d);
  }
  return best;
}

Distance GTree::Query(VertexId s, VertexId t) const {
  SourceCache cache = MakeSourceCache(s);
  return Query(cache, t);
}

std::size_t GTree::MemoryBytes() const {
  std::size_t total = 0;
  for (const Node& node : nodes_) {
    total += node.matrix.size() * sizeof(MatrixDist);
    total += node.universe.size() * (sizeof(VertexId) + 8);
    total += node.borders.size() * sizeof(VertexId);
    total += node.children.size() * sizeof(NodeId);
    total += sizeof(Node);
  }
  total += leaf_of_.size() * sizeof(NodeId);
  return total;
}

}  // namespace kspin
