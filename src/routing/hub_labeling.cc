#include "routing/hub_labeling.h"

#include <algorithm>
#include <atomic>
#include <queue>
#include <thread>

namespace kspin {
namespace {

// Reusable upward-search state: version-stamped distance array avoids both
// per-search clearing and per-relaxation hashing.
class UpwardSearcher {
 public:
  explicit UpwardSearcher(std::size_t n)
      : dist_(n, kInfDistance), stamp_(n, 0) {}

  // Settled CH search space of `source`, sorted by hub id.
  std::vector<LabelEntry> Run(const ContractionHierarchy& ch,
                              VertexId source) {
    if (++version_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      version_ = 1;
    }
    std::vector<LabelEntry> settled;
    queue_ = {};
    dist_[source] = 0;
    stamp_[source] = version_;
    queue_.push({0, source});
    while (!queue_.empty()) {
      auto [d, v] = queue_.top();
      queue_.pop();
      if (stamp_[v] == version_ && d > dist_[v]) continue;
      settled.push_back({v, d});
      for (const Arc& arc : ch.UpwardArcs(v)) {
        const Distance nd = d + arc.weight;
        if (stamp_[arc.head] != version_ || nd < dist_[arc.head]) {
          dist_[arc.head] = nd;
          stamp_[arc.head] = version_;
          queue_.push({nd, arc.head});
        }
      }
    }
    std::sort(settled.begin(), settled.end(),
              [](const LabelEntry& a, const LabelEntry& b) {
                return a.hub < b.hub;
              });
    return settled;
  }

 private:
  using Entry = std::pair<Distance, VertexId>;
  std::vector<Distance> dist_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t version_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
      queue_;
};

Distance MergeJoin(std::span<const LabelEntry> a,
                   std::span<const LabelEntry> b) {
  Distance best = kInfDistance;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].hub == b[j].hub) {
      const Distance d = a[i].distance + b[j].distance;
      if (d < best) best = d;
      ++i;
      ++j;
    } else if (a[i].hub < b[j].hub) {
      ++i;
    } else {
      ++j;
    }
  }
  return best;
}

}  // namespace

HubLabeling::HubLabeling(const Graph& graph, const ContractionHierarchy& ch,
                         unsigned num_threads) {
  const std::size_t n = graph.NumVertices();
  std::vector<std::vector<LabelEntry>> raw(n);

  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  num_threads = std::min<unsigned>(num_threads, 64);

  // Phase 1: raw labels = upward CH search spaces (embarrassingly
  // parallel, one stamped workspace per thread).
  auto phase1 = [&raw, &ch, n](std::size_t begin_stride,
                               std::size_t stride) {
    UpwardSearcher searcher(n);
    for (std::size_t v = begin_stride; v < n; v += stride) {
      raw[v] = searcher.Run(ch, static_cast<VertexId>(v));
    }
  };
  if (num_threads == 1) {
    phase1(0, 1);
  } else {
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < num_threads; ++t) {
      workers.emplace_back(phase1, t, num_threads);
    }
    for (auto& w : workers) w.join();
  }

  // Phase 2: bootstrapped pruning. An entry (h, d) of L(v) is redundant if
  // the raw labels realize a distance to h strictly below d — then h is
  // never the minimizing hub of any query through v. Raw-label queries are
  // already exact (the CH guarantees the maximum-rank vertex of a shortest
  // path appears in both search spaces with exact distances), so pruning
  // against raw labels is sound.
  std::vector<std::vector<LabelEntry>> pruned(n);
  auto phase2 = [&raw, &pruned, n](std::size_t begin_stride,
                                   std::size_t stride) {
    for (std::size_t v = begin_stride; v < n; v += stride) {
      pruned[v].reserve(raw[v].size());
      for (const LabelEntry& e : raw[v]) {
        if (MergeJoin(raw[v], raw[e.hub]) >= e.distance) {
          pruned[v].push_back(e);
        }
      }
    }
  };
  if (num_threads == 1) {
    phase2(0, 1);
  } else {
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < num_threads; ++t) {
      workers.emplace_back(phase2, t, num_threads);
    }
    for (auto& w : workers) w.join();
  }
  raw.clear();
  raw.shrink_to_fit();

  offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + pruned[v].size();
  }
  entries_.resize(offsets_[n]);
  for (std::size_t v = 0; v < n; ++v) {
    std::copy(pruned[v].begin(), pruned[v].end(),
              entries_.begin() + offsets_[v]);
  }
}

Distance HubLabeling::Query(VertexId s, VertexId t) const {
  if (s == t) return 0;
  return MergeJoin(Label(s), Label(t));
}

}  // namespace kspin
