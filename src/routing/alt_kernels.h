// Batch kernels for ALT triangle-inequality lower bounds over the
// vertex-major landmark layout (docs/performance.md).
//
// A kernel evaluates, for one source vertex s and a block of targets,
//   out[i] = max over landmarks l of |d(l, s) - d(l, targets[i])|
// reading one contiguous, 64-byte-aligned row per vertex. The AVX-512
// variant uses native 64-bit unsigned max/min (|a-b| = max - min); AVX2
// and SSE2 vectorize the reduction with the sign-flip trick for unsigned
// compares. All variants are bit-identical to the scalar per-pair loop,
// so query results never depend on the host CPU.
//
// Dispatch happens once, at first use: AltBatchKernel() probes the CPU
// (and the KSPIN_ALT_KERNEL env override: "scalar", "sse2", "avx2" or
// "avx512") and caches the selected function pointer.
#ifndef KSPIN_ROUTING_ALT_KERNELS_H_
#define KSPIN_ROUTING_ALT_KERNELS_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace kspin::detail {

/// Batch lower-bound kernel signature. `src_row` is the source vertex's
/// landmark row; `rows` is the base of the whole vertex-major matrix with
/// `stride` Distances per row (a multiple of 8, zero-padded past the real
/// landmark count so padding lanes contribute |0-0| = 0 to the max).
using AltBatchKernelFn = void (*)(const Distance* src_row,
                                  const Distance* rows, std::size_t stride,
                                  const VertexId* targets, std::size_t count,
                                  Distance* out);

/// Portable reference kernel (also the padding-lane semantics oracle).
void AltBatchScalar(const Distance* src_row, const Distance* rows,
                    std::size_t stride, const VertexId* targets,
                    std::size_t count, Distance* out);

/// The kernel selected for this process: best supported of AVX-512 >
/// AVX2 > scalar (SSE2 measures slower than the scalar loop, so it is
/// override-only), overridable via KSPIN_ALT_KERNEL. Probed once, then
/// cached.
AltBatchKernelFn AltBatchKernel();

/// Name of the kernel AltBatchKernel() selected ("avx512", "avx2",
/// "sse2", "scalar") — surfaced in bench output and startup logs.
const char* AltBatchKernelName();

/// Every kernel this binary can run on this CPU (scalar always included).
/// Tests iterate this to assert SIMD/scalar bit-equality.
struct AltKernelInfo {
  const char* name;
  AltBatchKernelFn fn;
};
std::vector<AltKernelInfo> AvailableAltKernels();

}  // namespace kspin::detail

#endif  // KSPIN_ROUTING_ALT_KERNELS_H_
