// Graph partitioning substrate for the hierarchical indexes (G-tree and the
// ROAD-style overlay baseline).
//
// Two strategies:
//  - kKdTree: alternating-axis median splits over vertex coordinates. Fast,
//    deterministic, and low-boundary on road networks (which are near
//    planar). Requires coordinates.
//  - kBfsGrowth: seeded balanced BFS region growing; works on any graph.
#ifndef KSPIN_ROUTING_PARTITIONER_H_
#define KSPIN_ROUTING_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"

namespace kspin {

/// Partitioning strategy.
enum class PartitionStrategy {
  kKdTree,
  kBfsGrowth,
};

/// Splits `vertices` (a subset of graph vertices) into up to `num_parts`
/// non-empty groups of roughly equal size. Returns one vertex list per part;
/// fewer than `num_parts` lists are returned when |vertices| < num_parts.
/// Throws std::invalid_argument for num_parts == 0, empty input, or kKdTree
/// without coordinates.
std::vector<std::vector<VertexId>> PartitionVertices(
    const Graph& graph, const std::vector<VertexId>& vertices,
    std::uint32_t num_parts, PartitionStrategy strategy,
    std::uint64_t seed = 13);

}  // namespace kspin

#endif  // KSPIN_ROUTING_PARTITIONER_H_
