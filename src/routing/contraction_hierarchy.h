// Contraction Hierarchies (Geisberger et al., WEA'08): the small-footprint
// Network Distance Module option in K-SPIN (variant KS-CH in the paper).
//
// Vertices are contracted in ascending importance order; each contraction
// preserves shortest paths among remaining vertices by inserting shortcut
// edges when a local witness search fails to find a path at most as short.
// Point-to-point queries run a bidirectional Dijkstra restricted to upward
// (rank-increasing) edges.
//
// The witness search is budget-limited: when inconclusive it conservatively
// inserts the shortcut, which can only enlarge the hierarchy, never make a
// query incorrect.
#ifndef KSPIN_ROUTING_CONTRACTION_HIERARCHY_H_
#define KSPIN_ROUTING_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "routing/distance_oracle.h"

namespace kspin {

/// Tuning knobs for CH construction.
struct ContractionHierarchyOptions {
  /// Max vertices settled by one witness search before giving up (and
  /// conservatively adding the shortcut).
  std::uint32_t witness_settle_limit = 64;
  /// Weight of the edge-difference term in the contraction priority.
  std::int32_t edge_difference_factor = 4;
  /// Weight of the contracted-neighbours ("deleted neighbours") term.
  std::int32_t contracted_neighbors_factor = 1;
};

/// An immutable contraction hierarchy over a graph.
class ContractionHierarchy {
 public:
  /// Reusable bidirectional-search scratch (version-stamped distance /
  /// parent arrays). All mutable query state lives here, so one hierarchy
  /// can serve any number of threads through distinct search spaces.
  /// Sized lazily on first use.
  class SearchSpace {
   public:
    SearchSpace() = default;

   private:
    friend class ContractionHierarchy;
    void EnsureSize(std::size_t num_vertices);

    std::vector<Distance> fwd_dist_, bwd_dist_;
    std::vector<VertexId> fwd_parent_, bwd_parent_;
    std::vector<std::uint32_t> fwd_stamp_, bwd_stamp_;
    std::uint32_t version_ = 0;
  };

  /// Builds the hierarchy. O(|V| log |V|) witness searches in practice.
  explicit ContractionHierarchy(const Graph& graph,
                                ContractionHierarchyOptions options = {});

  /// Exact network distance via bidirectional upward search, using only
  /// `space` for mutable state. Thread-safe across distinct spaces.
  Distance Query(SearchSpace& space, VertexId s, VertexId t) const;

  /// Exact network distance through the hierarchy's own scratch space.
  /// Not thread-safe; use the SearchSpace overload when sharing the
  /// hierarchy across threads.
  Distance Query(VertexId s, VertexId t) const;

  /// Exact shortest path s -> t as a vertex sequence in the original
  /// graph, obtained by recursively unpacking shortcut arcs. Empty when
  /// disconnected; {s} when s == t.
  std::vector<VertexId> PathQuery(VertexId s, VertexId t) const;

  /// Contraction rank of vertex v (0 = contracted first / least important).
  std::uint32_t Rank(VertexId v) const { return rank_[v]; }

  /// Vertices in descending rank order (most important first).
  std::vector<VertexId> VerticesByDescendingRank() const;

  /// Upward arcs (to strictly higher-ranked vertices) of v, including
  /// shortcuts.
  std::span<const Arc> UpwardArcs(VertexId v) const {
    return {up_arcs_.data() + up_offsets_[v],
            up_arcs_.data() + up_offsets_[v + 1]};
  }

  /// The contracted "via" vertex of v's i-th upward arc, or kInvalidVertex
  /// for an original edge. Drives shortcut unpacking.
  VertexId UpwardMid(VertexId v, std::size_t i) const {
    return up_mids_[up_offsets_[v] + i];
  }

  std::size_t NumVertices() const { return rank_.size(); }

  /// Total number of upward arcs (original edges + shortcuts).
  std::size_t NumUpwardArcs() const { return up_arcs_.size(); }

  /// Number of shortcut edges added during construction.
  std::size_t NumShortcuts() const { return num_shortcuts_; }

  /// Approximate index memory in bytes.
  std::size_t MemoryBytes() const {
    return up_offsets_.size() * sizeof(std::size_t) +
           up_arcs_.size() * sizeof(Arc) +
           up_mids_.size() * sizeof(VertexId) +
           rank_.size() * sizeof(uint32_t);
  }

 private:
  friend void SaveContractionHierarchy(const ContractionHierarchy&,
                                       std::ostream&);
  friend ContractionHierarchy LoadContractionHierarchy(std::istream&);
  ContractionHierarchy() = default;  // For deserialization only.

  // Bidirectional upward search shared by Query and PathQuery; returns
  // the best meeting vertex via *meeting (kInvalidVertex if disconnected).
  Distance RunBidirectional(SearchSpace& space, VertexId s, VertexId t,
                            VertexId* meeting) const;
  std::vector<std::uint32_t> rank_;
  std::vector<std::size_t> up_offsets_;
  std::vector<Arc> up_arcs_;
  std::vector<VertexId> up_mids_;  // Aligned with up_arcs_.
  std::size_t num_shortcuts_ = 0;

  // Scratch for the single-threaded Query/PathQuery convenience overloads
  // (mutable so they stay const against the index).
  mutable SearchSpace scratch_;
};

void SaveContractionHierarchy(const ContractionHierarchy& ch,
                              std::ostream& out);
ContractionHierarchy LoadContractionHierarchy(std::istream& in);

/// DistanceOracle adapter over a ContractionHierarchy. The hierarchy is
/// the immutable shared index; each workspace wraps one SearchSpace.
class ChOracle : public DistanceOracle {
 public:
  explicit ChOracle(const ContractionHierarchy& ch) : ch_(ch) {}

  using DistanceOracle::NetworkDistance;
  using DistanceOracle::BeginSourceBatch;

  std::unique_ptr<OracleWorkspace> MakeWorkspace() const override {
    return std::make_unique<Workspace>();
  }
  Distance NetworkDistance(OracleWorkspace& workspace, VertexId s,
                           VertexId t) const override {
    return ch_.Query(static_cast<Workspace&>(workspace).space, s, t);
  }
  std::string Name() const override { return "ch"; }
  std::size_t MemoryBytes() const override { return ch_.MemoryBytes(); }

 private:
  struct Workspace final : OracleWorkspace {
    ContractionHierarchy::SearchSpace space;
  };
  const ContractionHierarchy& ch_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_CONTRACTION_HIERARCHY_H_
