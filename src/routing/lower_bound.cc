#include "routing/lower_bound.h"

#include <cmath>
#include <stdexcept>

namespace kspin {
namespace {

double EuclideanLength(const Coordinate& a, const Coordinate& b) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

EuclideanLowerBound::EuclideanLowerBound(const Graph& graph)
    : graph_(graph) {
  if (!graph.HasCoordinates()) {
    throw std::invalid_argument(
        "EuclideanLowerBound: graph coordinates required");
  }
  // r = min over edges of weight / geometric length. Any edge of zero
  // geometric length (coincident endpoints) forces r = 0, i.e. a vacuous
  // but still admissible bound.
  double ratio = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& arc : graph.Neighbors(u)) {
      const double length = EuclideanLength(graph.VertexCoordinate(u),
                                            graph.VertexCoordinate(arc.head));
      if (length <= 0.0) {
        ratio = 0.0;
        break;
      }
      ratio = std::min(ratio, static_cast<double>(arc.weight) / length);
    }
  }
  ratio_ = std::isinf(ratio) ? 0.0 : ratio;
}

Distance EuclideanLowerBound::LowerBound(VertexId s, VertexId t) const {
  if (s == t) return 0;
  const double bound = ratio_ * EuclideanLength(graph_.VertexCoordinate(s),
                                                graph_.VertexCoordinate(t));
  return static_cast<Distance>(std::floor(bound));
}

MaxLowerBound::MaxLowerBound(std::vector<const LowerBoundModule*> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    throw std::invalid_argument("MaxLowerBound: no children");
  }
}

std::string MaxLowerBound::Name() const {
  std::string name = "max(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) name += ",";
    name += children_[i]->Name();
  }
  return name + ")";
}

}  // namespace kspin
