#include "routing/lower_bound.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "routing/alt.h"

namespace kspin {
namespace {

double EuclideanLength(const Coordinate& a, const Coordinate& b) {
  const double dx = static_cast<double>(a.x) - b.x;
  const double dy = static_cast<double>(a.y) - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

EuclideanLowerBound::EuclideanLowerBound(const Graph& graph)
    : coords_(graph.Coordinates().data()) {
  if (!graph.HasCoordinates()) {
    throw std::invalid_argument(
        "EuclideanLowerBound: graph coordinates required");
  }
  // r = min over edges of weight / geometric length. Any edge of zero
  // geometric length (coincident endpoints) forces r = 0, i.e. a vacuous
  // but still admissible bound.
  double ratio = std::numeric_limits<double>::infinity();
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const Arc& arc : graph.Neighbors(u)) {
      const double length =
          EuclideanLength(coords_[u], coords_[arc.head]);
      if (length <= 0.0) {
        ratio = 0.0;
        break;
      }
      ratio = std::min(ratio, static_cast<double>(arc.weight) / length);
    }
  }
  ratio_ = std::isinf(ratio) ? 0.0 : ratio;
}

Distance EuclideanLowerBound::LowerBound(VertexId s, VertexId t) const {
  if (s == t) return 0;
  const double bound = ratio_ * EuclideanLength(coords_[s], coords_[t]);
  return static_cast<Distance>(std::floor(bound));
}

MaxLowerBound::MaxLowerBound(std::vector<const LowerBoundModule*> children)
    : children_(std::move(children)) {
  if (children_.empty()) {
    throw std::invalid_argument("MaxLowerBound: no children");
  }
  if (children_.size() == 1) {
    single_ = children_.front();
    // The overwhelmingly common single child is the ALT index; resolving
    // it to its concrete type here turns every hot-path call into a
    // direct (devirtualized) call.
    alt_only_ = dynamic_cast<const AltIndex*>(single_);
  }
}

Distance MaxLowerBound::LowerBound(VertexId s, VertexId t) const {
  if (alt_only_ != nullptr) return alt_only_->AltIndex::LowerBound(s, t);
  if (single_ != nullptr) return single_->LowerBound(s, t);
  Distance best = 0;
  for (const LowerBoundModule* child : children_) {
    const Distance lb = child->LowerBound(s, t);
    if (lb > best) best = lb;
  }
  return best;
}

void MaxLowerBound::LowerBoundBatch(VertexId s,
                                    std::span<const VertexId> targets,
                                    std::span<Distance> out) const {
  if (alt_only_ != nullptr) {
    alt_only_->AltIndex::LowerBoundBatch(s, targets, out);
    return;
  }
  children_.front()->LowerBoundBatch(s, targets, out);
  if (children_.size() == 1) return;
  // Composites are shared across serving threads, so the per-child
  // scratch must not live in the (const) object.
  thread_local std::vector<Distance> child_out;
  child_out.resize(targets.size());
  for (std::size_t c = 1; c < children_.size(); ++c) {
    children_[c]->LowerBoundBatch(s, targets, child_out);
    for (std::size_t i = 0; i < targets.size(); ++i) {
      out[i] = std::max(out[i], child_out[i]);
    }
  }
}

std::string MaxLowerBound::Name() const {
  std::string name = "max(";
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) name += ",";
    name += children_[i]->Name();
  }
  return name + ")";
}

}  // namespace kspin
