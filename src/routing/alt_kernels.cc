#include "routing/alt_kernels.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define KSPIN_ALT_X86 1
#include <immintrin.h>
#else
#define KSPIN_ALT_X86 0
#endif

namespace kspin::detail {
namespace {

// Rows of the next targets to prefetch while the current one computes.
// One block ahead covers the ~10-cycle L2 latency at 2-cache-line rows.
constexpr std::size_t kPrefetchAhead = 4;

inline void PrefetchRow(const Distance* rows, std::size_t stride,
                        const VertexId* targets, std::size_t count,
                        std::size_t i) {
  if (i + kPrefetchAhead < count) {
    const Distance* row =
        rows + static_cast<std::size_t>(targets[i + kPrefetchAhead]) * stride;
    __builtin_prefetch(row, 0, 1);
    __builtin_prefetch(row + 8, 0, 1);  // Second line of a 16-landmark row.
  }
}

}  // namespace

void AltBatchScalar(const Distance* src_row, const Distance* rows,
                    std::size_t stride, const VertexId* targets,
                    std::size_t count, Distance* out) {
  for (std::size_t i = 0; i < count; ++i) {
    PrefetchRow(rows, stride, targets, count, i);
    const Distance* t_row =
        rows + static_cast<std::size_t>(targets[i]) * stride;
    Distance best = 0;
    for (std::size_t l = 0; l < stride; ++l) {
      const Distance ds = src_row[l];
      const Distance dt = t_row[l];
      const Distance diff = ds > dt ? ds - dt : dt - ds;
      if (diff > best) best = diff;
    }
    out[i] = best;
  }
}

#if KSPIN_ALT_X86

namespace {

// ----- SSE2 (x86-64 baseline) ---------------------------------------------
//
// SSE2 has no 64-bit compare, so a > b (unsigned, 2x64) is synthesized
// from 32-bit halves: hi_gt | (hi_eq & lo_gt), with the unsigned 32-bit
// compares done as signed compares of sign-flipped operands.

inline __m128i CmpGtEpu64Sse2(__m128i a, __m128i b) {
  const __m128i sign32 = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i gt32 =
      _mm_cmpgt_epi32(_mm_xor_si128(a, sign32), _mm_xor_si128(b, sign32));
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  const __m128i hi_gt = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128i lo_gt = _mm_shuffle_epi32(gt32, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i hi_eq = _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 1, 1));
  return _mm_or_si128(hi_gt, _mm_and_si128(hi_eq, lo_gt));
}

inline __m128i SelectSse2(__m128i mask, __m128i a, __m128i b) {
  return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
}

void AltBatchSse2(const Distance* src_row, const Distance* rows,
                  std::size_t stride, const VertexId* targets,
                  std::size_t count, Distance* out) {
  for (std::size_t i = 0; i < count; ++i) {
    PrefetchRow(rows, stride, targets, count, i);
    const Distance* t_row =
        rows + static_cast<std::size_t>(targets[i]) * stride;
    __m128i best = _mm_setzero_si128();
    for (std::size_t l = 0; l < stride; l += 2) {
      const __m128i a = _mm_load_si128(
          reinterpret_cast<const __m128i*>(src_row + l));
      const __m128i b = _mm_load_si128(
          reinterpret_cast<const __m128i*>(t_row + l));
      const __m128i gt = CmpGtEpu64Sse2(a, b);
      const __m128i diff =
          SelectSse2(gt, _mm_sub_epi64(a, b), _mm_sub_epi64(b, a));
      best = SelectSse2(CmpGtEpu64Sse2(diff, best), diff, best);
    }
    alignas(16) Distance lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
    out[i] = lanes[0] > lanes[1] ? lanes[0] : lanes[1];
  }
}

// ----- AVX2 ----------------------------------------------------------------

#if defined(__GNUC__) || defined(__clang__)

__attribute__((target("avx2"))) inline __m256i CmpGtEpu64Avx2(__m256i a,
                                                              __m256i b) {
  const __m256i sign =
      _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ull));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                            _mm256_xor_si256(b, sign));
}

__attribute__((target("avx2"))) void AltBatchAvx2(
    const Distance* src_row, const Distance* rows, std::size_t stride,
    const VertexId* targets, std::size_t count, Distance* out) {
  for (std::size_t i = 0; i < count; ++i) {
    PrefetchRow(rows, stride, targets, count, i);
    const Distance* t_row =
        rows + static_cast<std::size_t>(targets[i]) * stride;
    __m256i best = _mm256_setzero_si256();
    for (std::size_t l = 0; l < stride; l += 4) {
      const __m256i a = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(src_row + l));
      const __m256i b = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(t_row + l));
      const __m256i diff = _mm256_blendv_epi8(
          _mm256_sub_epi64(b, a), _mm256_sub_epi64(a, b),
          CmpGtEpu64Avx2(a, b));
      best = _mm256_blendv_epi8(best, diff, CmpGtEpu64Avx2(diff, best));
    }
    alignas(32) Distance lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    Distance m = lanes[0];
    if (lanes[1] > m) m = lanes[1];
    if (lanes[2] > m) m = lanes[2];
    if (lanes[3] > m) m = lanes[3];
    out[i] = m;
  }
}

#define KSPIN_ALT_HAVE_AVX2 1

// ----- AVX-512F ------------------------------------------------------------
//
// AVX-512F has native 64-bit unsigned max/min, so |a - b| is just
// max(a, b) - min(a, b): no sign-flip compares, no blends, and a full
// 16-landmark row is two loads.

__attribute__((target("avx512f"))) void AltBatchAvx512(
    const Distance* src_row, const Distance* rows, std::size_t stride,
    const VertexId* targets, std::size_t count, Distance* out) {
  for (std::size_t i = 0; i < count; ++i) {
    PrefetchRow(rows, stride, targets, count, i);
    const Distance* t_row =
        rows + static_cast<std::size_t>(targets[i]) * stride;
    __m512i best = _mm512_setzero_si512();
    for (std::size_t l = 0; l < stride; l += 8) {
      const __m512i a = _mm512_load_si512(src_row + l);
      const __m512i b = _mm512_load_si512(t_row + l);
      const __m512i diff =
          _mm512_sub_epi64(_mm512_max_epu64(a, b), _mm512_min_epu64(a, b));
      best = _mm512_max_epu64(best, diff);
    }
    out[i] = _mm512_reduce_max_epu64(best);
  }
}

#define KSPIN_ALT_HAVE_AVX512 1
#else
#define KSPIN_ALT_HAVE_AVX2 0
#define KSPIN_ALT_HAVE_AVX512 0
#endif  // __GNUC__ || __clang__

inline bool CpuHasAvx2() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

inline bool CpuHasAvx512() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx512f");
#else
  return false;
#endif
}

}  // namespace
#endif  // KSPIN_ALT_X86

namespace {

struct SelectedKernel {
  const char* name;
  AltBatchKernelFn fn;
};

SelectedKernel Select() {
  const char* force = std::getenv("KSPIN_ALT_KERNEL");
#if KSPIN_ALT_X86
  if (force != nullptr) {
    if (std::strcmp(force, "scalar") == 0) return {"scalar", AltBatchScalar};
    if (std::strcmp(force, "sse2") == 0) return {"sse2", AltBatchSse2};
#if KSPIN_ALT_HAVE_AVX2
    if (std::strcmp(force, "avx2") == 0 && CpuHasAvx2()) {
      return {"avx2", AltBatchAvx2};
    }
#endif
#if KSPIN_ALT_HAVE_AVX512
    if (std::strcmp(force, "avx512") == 0 && CpuHasAvx512()) {
      return {"avx512", AltBatchAvx512};
    }
#endif
    // Unknown or unsupported override: fall through to auto-detection.
  }
#if KSPIN_ALT_HAVE_AVX512
  if (CpuHasAvx512()) return {"avx512", AltBatchAvx512};
#endif
#if KSPIN_ALT_HAVE_AVX2
  if (CpuHasAvx2()) return {"avx2", AltBatchAvx2};
#endif
  // Without AVX2 the scalar loop wins: SSE2's synthesized 64-bit
  // unsigned compare costs more than its 2-wide lanes save
  // (BENCH_lb.json). The sse2 kernel stays selectable via the env
  // override and equality-tested.
  return {"scalar", AltBatchScalar};
#else
  (void)force;
  return {"scalar", AltBatchScalar};
#endif
}

const SelectedKernel& Cached() {
  static const SelectedKernel kernel = Select();
  return kernel;
}

}  // namespace

AltBatchKernelFn AltBatchKernel() { return Cached().fn; }

const char* AltBatchKernelName() { return Cached().name; }

std::vector<AltKernelInfo> AvailableAltKernels() {
  std::vector<AltKernelInfo> kernels = {{"scalar", AltBatchScalar}};
#if KSPIN_ALT_X86
  kernels.push_back({"sse2", AltBatchSse2});
#if KSPIN_ALT_HAVE_AVX2
  if (CpuHasAvx2()) kernels.push_back({"avx2", AltBatchAvx2});
#endif
#if KSPIN_ALT_HAVE_AVX512
  if (CpuHasAvx512()) kernels.push_back({"avx512", AltBatchAvx512});
#endif
#endif
  return kernels;
}

}  // namespace kspin::detail
