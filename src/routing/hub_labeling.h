// Hub labeling: the fast, memory-hungry Network Distance Module option
// (variant KS-PHL in the paper — see DESIGN.md §3: we substitute Pruned
// Highway Labeling with a 2-hop hub labeling of the same index family).
//
// Labels are the upward Contraction Hierarchy search spaces, shrunk by a
// bootstrapped pruning pass that removes every entry whose distance is not
// the true shortest distance realized through that hub. A point-to-point
// query is a merge join of two sorted label arrays — no graph traversal.
#ifndef KSPIN_ROUTING_HUB_LABELING_H_
#define KSPIN_ROUTING_HUB_LABELING_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "routing/contraction_hierarchy.h"
#include "routing/distance_oracle.h"

namespace kspin {

/// One (hub, distance) label entry.
struct LabelEntry {
  VertexId hub;
  Distance distance;
};

/// 2-hop labeling built from a Contraction Hierarchy.
class HubLabeling {
 public:
  /// Builds labels from the CH (parallel over vertices when
  /// `num_threads` > 1; 0 means hardware concurrency).
  HubLabeling(const Graph& graph, const ContractionHierarchy& ch,
              unsigned num_threads = 0);

  /// Exact network distance via label merge join.
  Distance Query(VertexId s, VertexId t) const;

  /// The sorted-by-hub label of vertex v.
  std::span<const LabelEntry> Label(VertexId v) const {
    return {entries_.data() + offsets_[v],
            entries_.data() + offsets_[v + 1]};
  }

  std::size_t NumVertices() const { return offsets_.size() - 1; }

  /// Mean label size (entries per vertex); the key size statistic.
  double AverageLabelSize() const {
    return offsets_.empty() || offsets_.size() == 1
               ? 0.0
               : static_cast<double>(entries_.size()) /
                     (offsets_.size() - 1);
  }

  /// Approximate index memory in bytes.
  std::size_t MemoryBytes() const {
    return entries_.size() * sizeof(LabelEntry) +
           offsets_.size() * sizeof(std::size_t);
  }

 private:
  friend void SaveHubLabeling(const HubLabeling&, std::ostream&);
  friend HubLabeling LoadHubLabeling(std::istream&);
  HubLabeling() = default;  // For deserialization only.

  std::vector<std::size_t> offsets_;
  std::vector<LabelEntry> entries_;
};

void SaveHubLabeling(const HubLabeling& labels, std::ostream& out);
HubLabeling LoadHubLabeling(std::istream& in);

/// DistanceOracle adapter over a HubLabeling. Label queries are pure merge
/// joins with no mutable state, so the workspace is the empty base class.
class HubLabelOracle : public DistanceOracle {
 public:
  explicit HubLabelOracle(const HubLabeling& labels) : labels_(labels) {}

  using DistanceOracle::NetworkDistance;
  using DistanceOracle::BeginSourceBatch;

  std::unique_ptr<OracleWorkspace> MakeWorkspace() const override {
    return std::make_unique<OracleWorkspace>();
  }
  Distance NetworkDistance(OracleWorkspace& /*workspace*/, VertexId s,
                           VertexId t) const override {
    return labels_.Query(s, t);
  }
  std::string Name() const override { return "hl"; }
  std::size_t MemoryBytes() const override { return labels_.MemoryBytes(); }

 private:
  const HubLabeling& labels_;
};

}  // namespace kspin

#endif  // KSPIN_ROUTING_HUB_LABELING_H_
