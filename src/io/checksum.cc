#include "io/checksum.h"

#include <array>

namespace kspin::io {
namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace kspin::io
