#include "io/fault_injection.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace kspin::io {

bool FaultInjectingStreambuf::Put(char byte) {
  const std::uint64_t at = offset_;
  if (at >= plan_.fail_after) return false;
  ++offset_;
  if (at >= plan_.silently_drop_after) return true;  // Torn write.
  if (at == plan_.flip_byte_at) {
    byte = static_cast<char>(static_cast<unsigned char>(byte) ^
                             plan_.flip_mask);
  }
  return sink_->sputc(traits_type::to_char_type(byte)) != traits_type::eof();
}

FaultInjectingStreambuf::int_type FaultInjectingStreambuf::overflow(
    int_type ch) {
  if (traits_type::eq_int_type(ch, traits_type::eof())) return ch;
  return Put(traits_type::to_char_type(ch)) ? ch : traits_type::eof();
}

std::streamsize FaultInjectingStreambuf::xsputn(const char* data,
                                                std::streamsize count) {
  std::streamsize written = 0;
  while (written < count) {
    if (!Put(data[written])) break;
    ++written;
  }
  return written;
}

void FlipByteInFile(const std::string& path, std::uint64_t offset,
                    std::uint8_t mask) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!file) throw std::runtime_error("FlipByteInFile: cannot open " + path);
  file.seekg(static_cast<std::streamoff>(offset));
  const int byte = file.get();
  if (byte == EOF) {
    throw std::runtime_error("FlipByteInFile: offset past end of " + path);
  }
  file.seekp(static_cast<std::streamoff>(offset));
  file.put(static_cast<char>(byte ^ mask));
  if (!file) throw std::runtime_error("FlipByteInFile: write failed");
}

void TruncateFileTo(const std::string& path, std::uint64_t size) {
  std::error_code ec;
  if (std::filesystem::file_size(path, ec) < size || ec) {
    throw std::runtime_error("TruncateFileTo: bad size for " + path);
  }
  std::filesystem::resize_file(path, size, ec);
  if (ec) throw std::runtime_error("TruncateFileTo: " + ec.message());
}

std::uint64_t FileSize(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) throw std::runtime_error("FileSize: " + path + ": " + ec.message());
  return size;
}

}  // namespace kspin::io
