// CRC32C (Castagnoli polynomial, as used by iSCSI/ext4/leveldb): the
// integrity check of the snapshot format. Software table-driven
// implementation — fast enough to checksum multi-megabyte artifacts at
// load time without dominating restore cost, and portable.
#ifndef KSPIN_IO_CHECKSUM_H_
#define KSPIN_IO_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace kspin::io {

/// CRC32C of `size` bytes at `data`. `seed` chains partial checksums:
/// Crc32c(b, Crc32c(a)) == Crc32c(a+b).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

inline std::uint32_t Crc32c(std::string_view bytes, std::uint32_t seed = 0) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

}  // namespace kspin::io

#endif  // KSPIN_IO_CHECKSUM_H_
