#include "io/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/binary_format.h"
#include "io/checksum.h"

namespace kspin::io {
namespace {

constexpr char kSnapshotMagic[8] = {'K', 'S', 'N', 'A', 'P', 'S', 'H', 'T'};
constexpr char kFooterMagic[8] = {'K', 'S', 'N', 'A', 'P', 'E', 'N', 'D'};
constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".snap";
constexpr char kTempSuffix[] = ".tmp";

// Fixed byte sizes of the container framing (the structs are never memcpy'd
// to disk; fields are written individually via WritePod).
constexpr std::size_t kHeaderBytes = 8 + 4 + 4;
constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8 + 4;
constexpr std::size_t kFooterBytes = 8 + 4 + 4;

void FsyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    throw SerializationError("fsync failed for " + what + ": " +
                             std::strerror(errno));
  }
}

// fsync a directory so a completed rename survives power loss.
void FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw SerializationError("open for fsync failed: " + path + ": " +
                             std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    throw SerializationError("fsync failed for " + path + ": " +
                             std::strerror(saved));
  }
}

}  // namespace

void SnapshotWriter::AddSection(
    SnapshotSection type, const std::function<void(std::ostream&)>& save) {
  const auto raw = static_cast<std::uint32_t>(type);
  for (const auto& [existing, payload] : sections_) {
    if (existing == raw) {
      throw SerializationError("duplicate snapshot section type " +
                               std::to_string(raw));
    }
  }
  std::ostringstream payload(std::ios::binary);
  save(payload);
  CheckWrite(payload);
  sections_.emplace_back(raw, std::move(payload).str());
}

void SnapshotWriter::Finish(std::ostream& out) const {
  // Build the whole image in memory first: the footer CRC covers every
  // preceding byte, and buffering lets us compute it in one pass.
  std::ostringstream image(std::ios::binary);
  image.write(kSnapshotMagic, 8);
  WritePod(image, kSnapshotVersion);
  WritePod(image, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [type, payload] : sections_) {
    WritePod(image, type);
    WritePod(image, std::uint32_t{0});
    WritePod(image, static_cast<std::uint64_t>(payload.size()));
    WritePod(image, Crc32c(payload));
    image.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
    CheckWrite(image);
  }
  const std::string body = std::move(image).str();

  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  CheckWrite(out);
  out.write(kFooterMagic, 8);
  CheckWrite(out);
  WritePod(out, Crc32c(body));
  WritePod(out, std::uint32_t{0});
  out.flush();
  CheckWrite(out);
}

SnapshotReader::SnapshotReader(std::istream& in) {
  std::ostringstream buffer(std::ios::binary);
  buffer << in.rdbuf();
  if (in.bad() || buffer.bad()) {
    throw SerializationError("failed to read snapshot stream");
  }
  bytes_ = std::move(buffer).str();
  Parse();
}

SnapshotReader::SnapshotReader(std::string bytes) : bytes_(std::move(bytes)) {
  Parse();
}

void SnapshotReader::Parse() {
  if (bytes_.size() < kHeaderBytes + kFooterBytes) {
    throw SerializationError("snapshot too small (" +
                             std::to_string(bytes_.size()) + " bytes)");
  }
  if (std::memcmp(bytes_.data(), kSnapshotMagic, 8) != 0) {
    throw SerializationError("bad snapshot magic");
  }

  // Validate the footer and whole-file CRC before trusting any field.
  const std::size_t footer_at = bytes_.size() - kFooterBytes;
  if (std::memcmp(bytes_.data() + footer_at, kFooterMagic, 8) != 0) {
    throw SerializationError("bad snapshot footer magic (truncated file?)");
  }
  std::uint32_t file_crc = 0;
  std::memcpy(&file_crc, bytes_.data() + footer_at + 8, sizeof(file_crc));
  const std::uint32_t actual_crc =
      Crc32c(bytes_.data(), footer_at);
  if (file_crc != actual_crc) {
    throw SerializationError("snapshot file checksum mismatch");
  }
  // The footer's reserved field sits outside the CRC-covered region, so
  // it gets its own check: any flipped bit there must still be rejected.
  std::uint32_t footer_reserved = 0;
  std::memcpy(&footer_reserved, bytes_.data() + footer_at + 12,
              sizeof(footer_reserved));
  if (footer_reserved != 0) {
    throw SerializationError("snapshot footer reserved field is nonzero");
  }

  ViewIStream in(std::string_view(bytes_.data(), footer_at));
  CheckHeader(in, kSnapshotMagic, kSnapshotVersion);
  const auto section_count = ReadPod<std::uint32_t>(in);

  std::size_t cursor = kHeaderBytes;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    if (footer_at - cursor < kSectionHeaderBytes) {
      throw SerializationError("snapshot section header out of bounds");
    }
    std::uint32_t type = 0;
    std::uint64_t payload_size = 0;
    std::uint32_t payload_crc = 0;
    std::memcpy(&type, bytes_.data() + cursor, sizeof(type));
    std::memcpy(&payload_size, bytes_.data() + cursor + 8,
                sizeof(payload_size));
    std::memcpy(&payload_crc, bytes_.data() + cursor + 16,
                sizeof(payload_crc));
    cursor += kSectionHeaderBytes;
    if (payload_size > footer_at - cursor) {
      throw SerializationError("snapshot section payload out of bounds");
    }
    const std::size_t size = static_cast<std::size_t>(payload_size);
    if (Crc32c(bytes_.data() + cursor, size) != payload_crc) {
      throw SerializationError("snapshot section " + std::to_string(type) +
                               " checksum mismatch");
    }
    for (const auto& [existing, span] : sections_) {
      if (existing == type) {
        throw SerializationError("duplicate snapshot section type " +
                                 std::to_string(type));
      }
    }
    sections_.emplace_back(type, std::make_pair(cursor, size));
    cursor += size;
  }
  if (cursor != footer_at) {
    throw SerializationError("snapshot has trailing garbage before footer");
  }
}

bool SnapshotReader::Has(SnapshotSection type) const {
  const auto raw = static_cast<std::uint32_t>(type);
  for (const auto& [existing, span] : sections_) {
    if (existing == raw) return true;
  }
  return false;
}

std::string_view SnapshotReader::Section(SnapshotSection type) const {
  const auto raw = static_cast<std::uint32_t>(type);
  for (const auto& [existing, span] : sections_) {
    if (existing == raw) {
      return std::string_view(bytes_.data() + span.first, span.second);
    }
  }
  throw SerializationError("snapshot missing section " + std::to_string(raw));
}

std::vector<SnapshotSection> SnapshotReader::Sections() const {
  std::vector<SnapshotSection> types;
  types.reserve(sections_.size());
  for (const auto& [type, span] : sections_) {
    types.push_back(static_cast<SnapshotSection>(type));
  }
  return types;
}

std::vector<std::pair<SnapshotSection, std::uint64_t>>
SnapshotReader::SectionOffsets() const {
  std::vector<std::pair<SnapshotSection, std::uint64_t>> offsets;
  offsets.reserve(sections_.size());
  for (const auto& [type, span] : sections_) {
    offsets.emplace_back(static_cast<SnapshotSection>(type), span.first);
  }
  return offsets;
}

bool WriteFileAtomically(const std::string& path,
                         const std::function<void(std::ostream&)>& write,
                         const AtomicWriteHooks* hooks) {
  const std::string temp = path + kTempSuffix;
  auto crash = [&](AtomicWritePhase phase) {
    return hooks != nullptr && hooks->on_phase &&
           !hooks->on_phase(phase);
  };

  if (crash(AtomicWritePhase::kBeforeTempWrite)) return false;

  try {
    {
      std::ofstream file(temp, std::ios::binary | std::ios::trunc);
      if (!file) {
        throw SerializationError("cannot create temp file " + temp);
      }
      if (hooks != nullptr) {
        FaultyOStream faulty(file, hooks->stream_faults);
        write(faulty);
        faulty.flush();
        CheckWrite(faulty);
      } else {
        write(file);
      }
      file.flush();
      CheckWrite(file);
    }
    // Re-open by fd to fsync the data before the rename publishes it.
    {
      const int fd = ::open(temp.c_str(), O_RDONLY);
      if (fd < 0) {
        throw SerializationError("reopen for fsync failed: " + temp + ": " +
                                 std::strerror(errno));
      }
      try {
        FsyncFd(fd, temp);
      } catch (...) {
        ::close(fd);
        throw;
      }
      ::close(fd);
    }

    if (crash(AtomicWritePhase::kAfterTempWrite)) return false;

    if (std::rename(temp.c_str(), path.c_str()) != 0) {
      throw SerializationError("rename " + temp + " -> " + path +
                               " failed: " + std::strerror(errno));
    }

    if (crash(AtomicWritePhase::kAfterRename)) return false;

    const auto dir = std::filesystem::path(path).parent_path();
    FsyncPath(dir.empty() ? "." : dir.string());
    return true;
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(temp, ec);  // Best effort; rethrow the cause.
    throw;
  }
}

std::string SnapshotFileName(std::uint64_t sequence) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%s%06llu%s", kSnapshotPrefix,
                static_cast<unsigned long long>(sequence), kSnapshotSuffix);
  return buffer;
}

std::vector<std::pair<std::uint64_t, std::string>> FindSnapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return found;
  for (const auto& entry : it) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::size_t prefix_len = sizeof(kSnapshotPrefix) - 1;
    const std::size_t suffix_len = sizeof(kSnapshotSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len ||
        name.compare(0, prefix_len, kSnapshotPrefix) != 0 ||
        name.compare(name.size() - suffix_len, suffix_len,
                     kSnapshotSuffix) != 0) {
      continue;
    }
    const char* digits = name.data() + prefix_len;
    const char* digits_end = name.data() + name.size() - suffix_len;
    std::uint64_t sequence = 0;
    const auto [ptr, parse_ec] = std::from_chars(digits, digits_end, sequence);
    if (parse_ec != std::errc{} || ptr != digits_end) continue;
    found.emplace_back(sequence, entry.path().string());
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return found;
}

std::size_t PruneSnapshots(const std::string& dir, std::size_t keep) {
  std::size_t removed = 0;
  std::error_code ec;

  const auto snapshots = FindSnapshots(dir);
  for (std::size_t i = keep; i < snapshots.size(); ++i) {
    if (std::filesystem::remove(snapshots[i].second, ec) && !ec) ++removed;
  }

  // Leftover temp files are debris from crashed writers.
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return removed;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    const std::size_t temp_len = sizeof(kTempSuffix) - 1;
    if (name.size() > temp_len &&
        name.compare(name.size() - temp_len, temp_len, kTempSuffix) == 0 &&
        name.compare(0, sizeof(kSnapshotPrefix) - 1, kSnapshotPrefix) == 0) {
      if (std::filesystem::remove(entry.path(), ec) && !ec) ++removed;
    }
  }
  return removed;
}

std::uint64_t ValidateSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot open snapshot " + path + ": " +
                             std::strerror(errno));
  }
  SnapshotReader reader(in);
  return reader.TotalBytes();
}

std::string ReadFileRange(const std::string& path, std::uint64_t offset,
                          std::uint32_t count) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("cannot open snapshot " + path + ": " +
                             std::strerror(errno));
  }
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  if (end < 0) throw SerializationError("cannot size snapshot " + path);
  const std::uint64_t size = static_cast<std::uint64_t>(end);
  if (offset > size) {
    throw SerializationError("offset " + std::to_string(offset) +
                             " beyond snapshot " + path + " (" +
                             std::to_string(size) + " bytes)");
  }
  const std::uint64_t want =
      std::min<std::uint64_t>(count, size - offset);
  std::string bytes(static_cast<std::size_t>(want), '\0');
  in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  if (want > 0) in.read(bytes.data(), static_cast<std::streamsize>(want));
  if (!in) {
    throw SerializationError("short read from snapshot " + path);
  }
  return bytes;
}

}  // namespace kspin::io
