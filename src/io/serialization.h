// Binary save/load for the expensive artifacts: graphs, document stores,
// and the pre-processed distance indexes. Building a hub labeling for a
// continental graph takes minutes; loading it back takes a disk read.
//
// All Load* functions throw io::SerializationError on malformed input.
#ifndef KSPIN_IO_SERIALIZATION_H_
#define KSPIN_IO_SERIALIZATION_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "kspin/keyword_index.h"
#include "routing/alt.h"
#include "routing/contraction_hierarchy.h"
#include "routing/hub_labeling.h"
#include "text/document_store.h"
#include "text/vocabulary.h"

namespace kspin {

void SaveGraph(const Graph& graph, std::ostream& out);
Graph LoadGraph(std::istream& in);

void SaveDocumentStore(const DocumentStore& store, std::ostream& out);
DocumentStore LoadDocumentStore(std::istream& in);

void SaveAltIndex(const AltIndex& alt, std::ostream& out);
AltIndex LoadAltIndex(std::istream& in);

void SaveContractionHierarchy(const ContractionHierarchy& ch,
                              std::ostream& out);
ContractionHierarchy LoadContractionHierarchy(std::istream& in);

void SaveHubLabeling(const HubLabeling& labels, std::ostream& out);
HubLabeling LoadHubLabeling(std::istream& in);

// SaveKeywordIndex / LoadKeywordIndex and the ApxNvd / quadtree / R-tree
// save/load functions they build on are declared next to their classes
// (kspin/keyword_index.h, nvd/apx_nvd.h, nvd/quadtree.h, nvd/rtree.h).

/// The string-level half of a PoiService: the interned keyword vocabulary
/// plus the ObjectId -> display-name table.
struct PoiCatalog {
  Vocabulary vocabulary;
  std::vector<std::string> names;
};

void SavePoiCatalog(const PoiCatalog& catalog, std::ostream& out);
PoiCatalog LoadPoiCatalog(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_IO_SERIALIZATION_H_
