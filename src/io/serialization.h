// Binary save/load for the expensive artifacts: graphs, document stores,
// and the pre-processed distance indexes. Building a hub labeling for a
// continental graph takes minutes; loading it back takes a disk read.
//
// All Load* functions throw io::SerializationError on malformed input.
#ifndef KSPIN_IO_SERIALIZATION_H_
#define KSPIN_IO_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "graph/graph.h"
#include "routing/alt.h"
#include "routing/contraction_hierarchy.h"
#include "routing/hub_labeling.h"
#include "text/document_store.h"

namespace kspin {

void SaveGraph(const Graph& graph, std::ostream& out);
Graph LoadGraph(std::istream& in);

void SaveDocumentStore(const DocumentStore& store, std::ostream& out);
DocumentStore LoadDocumentStore(std::istream& in);

void SaveAltIndex(const AltIndex& alt, std::ostream& out);
AltIndex LoadAltIndex(std::istream& in);

void SaveContractionHierarchy(const ContractionHierarchy& ch,
                              std::ostream& out);
ContractionHierarchy LoadContractionHierarchy(std::istream& in);

void SaveHubLabeling(const HubLabeling& labels, std::ostream& out);
HubLabeling LoadHubLabeling(std::istream& in);

}  // namespace kspin

#endif  // KSPIN_IO_SERIALIZATION_H_
