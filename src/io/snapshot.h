// Crash-safe, checksummed snapshot container (docs/persistence.md).
//
// A snapshot is one file holding the entire serving state as a sequence
// of typed sections. Layout (all integers native-endian, like the rest of
// the binary format):
//
//   header   : magic "KSNAPSHT" (8) | u32 version | u32 section_count
//   section* : u32 type | u32 reserved(0) | u64 payload_size
//              | u32 payload_crc32c | payload bytes
//   footer   : magic "KSNAPEND" (8) | u32 file_crc32c | u32 reserved(0)
//
// file_crc32c covers every byte before the footer, so any torn write,
// truncation, or bit flip anywhere in the file is detected before a
// single section is parsed. Per-section CRCs localize the damage for
// diagnostics and defend each section independently.
//
// Durability comes from the write path, not the format: snapshots are
// written to a temp file in the same directory, fsync'd, atomically
// renamed into place, and the directory fsync'd — a crash at any instant
// leaves either the old snapshot set or the old set plus a complete new
// file, never a half-written visible snapshot. On the read side,
// FindSnapshots + per-file validation give "newest valid wins" recovery.
#ifndef KSPIN_IO_SNAPSHOT_H_
#define KSPIN_IO_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <istream>
#include <optional>
#include <streambuf>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "io/fault_injection.h"

namespace kspin::io {

inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Section types of the serving-state snapshot. Values are part of the
/// on-disk format; never renumber, only append.
enum class SnapshotSection : std::uint32_t {
  kGraph = 1,         ///< SaveGraph payload.
  kDocumentStore = 2, ///< SaveDocumentStore payload.
  kPoiCatalog = 3,    ///< SavePoiCatalog payload (vocabulary + names).
  kAltIndex = 4,      ///< SaveAltIndex payload.
  kKeywordIndex = 5,  ///< SaveKeywordIndex payload.
  kContractionHierarchy = 6,  ///< SaveContractionHierarchy payload.
  kHubLabeling = 7,   ///< SaveHubLabeling payload.
  kOplogPosition = 8, ///< u64 applied mutation sequence (op-log replay
                      ///< starts after it; absent = 0, pre-oplog format).
};

/// Accumulates sections in memory, then emits the checksummed container.
/// Sections are written in AddSection order; duplicate types are rejected.
class SnapshotWriter {
 public:
  /// Serializes one section via `save` (typically a Save* lambda).
  void AddSection(SnapshotSection type,
                  const std::function<void(std::ostream&)>& save);

  /// Writes the full container. Throws SerializationError on stream
  /// failure (checked after every write, so ENOSPC surfaces here).
  void Finish(std::ostream& out) const;

 private:
  std::vector<std::pair<std::uint32_t, std::string>> sections_;
};

/// Zero-copy istream over a byte range (a section payload). The viewed
/// bytes must outlive the stream.
class ViewIStream : public std::istream {
 public:
  explicit ViewIStream(std::string_view bytes)
      : std::istream(&buffer_), buffer_(bytes) {}

 private:
  class ViewStreambuf : public std::streambuf {
   public:
    explicit ViewStreambuf(std::string_view bytes) {
      char* begin = const_cast<char*>(bytes.data());
      setg(begin, begin, begin + bytes.size());
    }
  };
  ViewStreambuf buffer_;
};

/// Parses and fully validates a snapshot container: header, footer, file
/// CRC, section bounds, per-section CRCs. The constructor throws
/// SerializationError on any inconsistency — a reader that constructed
/// successfully is safe to read sections from.
class SnapshotReader {
 public:
  /// Reads the whole stream into memory and validates it.
  explicit SnapshotReader(std::istream& in);
  /// Validates an in-memory snapshot image (it is copied).
  explicit SnapshotReader(std::string bytes);

  bool Has(SnapshotSection type) const;
  /// Payload bytes of a section; throws SerializationError if absent.
  std::string_view Section(SnapshotSection type) const;
  /// Section types present, in file order.
  std::vector<SnapshotSection> Sections() const;
  /// Whole-container byte count (header + sections + footer).
  std::uint64_t TotalBytes() const { return bytes_.size(); }

  /// Byte offset of each section's payload within the file, in file
  /// order — used by corruption property tests to target boundaries.
  std::vector<std::pair<SnapshotSection, std::uint64_t>> SectionOffsets()
      const;

 private:
  void Parse();

  std::string bytes_;
  // type -> (offset, size) into bytes_, plus file order.
  std::vector<std::pair<std::uint32_t, std::pair<std::size_t, std::size_t>>>
      sections_;
};

// ----- Crash-safe file writing and recovery --------------------------------

/// Writes a file crash-safely: temp file in the same directory, fsync,
/// atomic rename over `path`, directory fsync. Throws SerializationError
/// when the write fails (the temp file is removed). Returns false without
/// renaming when `hooks` simulates a crash mid-sequence (the temp file is
/// left behind, exactly like a real crash); returns true on success.
bool WriteFileAtomically(const std::string& path,
                         const std::function<void(std::ostream&)>& write,
                         const AtomicWriteHooks* hooks = nullptr);

/// Snapshot file name for a sequence number: "snapshot-000042.snap".
/// Zero-padding makes lexicographic order equal numeric order.
std::string SnapshotFileName(std::uint64_t sequence);

/// Snapshot files in `dir`, newest (highest sequence) first, with their
/// parsed sequence numbers. Temp files and foreign names are ignored.
/// A missing directory yields an empty list.
std::vector<std::pair<std::uint64_t, std::string>> FindSnapshots(
    const std::string& dir);

/// Deletes all but the `keep` newest snapshot files plus any leftover
/// temp files from crashed writers. Returns the number removed.
std::size_t PruneSnapshots(const std::string& dir, std::size_t keep);

// ----- Streaming reads (replication) ---------------------------------------

/// Fully validates the snapshot container at `path` (same checks as
/// SnapshotReader) and returns its byte size. Throws SerializationError
/// when the file is unreadable or fails any integrity check. Used by the
/// primary to pick a provably-good snapshot before streaming it.
std::uint64_t ValidateSnapshotFile(const std::string& path);

/// Reads up to `count` bytes of `path` starting at `offset` (clamped to
/// the end of the file; `offset` == size yields an empty string). Throws
/// SerializationError when the file cannot be opened, the read fails, or
/// `offset` lies beyond the file. Range reads deliberately skip container
/// validation — the fetching replica verifies the reassembled image
/// end-to-end before installing it.
std::string ReadFileRange(const std::string& path, std::uint64_t offset,
                          std::uint32_t count);

}  // namespace kspin::io

#endif  // KSPIN_IO_SNAPSHOT_H_
