// Low-level helpers for the versioned binary index format.
//
// Every artifact starts with an 8-byte magic tag and a uint32 version so a
// stale or foreign file fails fast with a clear error instead of producing
// a corrupt index. All integers are written in the host's native byte
// order (the format is a cache, not an interchange format).
#ifndef KSPIN_IO_BINARY_FORMAT_H_
#define KSPIN_IO_BINARY_FORMAT_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

namespace kspin::io {

/// Thrown on magic/version mismatches and truncated streams.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw SerializationError("truncated stream reading scalar");
  return value;
}

template <typename T>
void WritePodVector(std::ostream& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<std::uint64_t>(out, values.size());
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadPodVector(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto size = ReadPod<std::uint64_t>(in);
  std::vector<T> values(size);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  if (!in) throw SerializationError("truncated stream reading vector");
  return values;
}

/// Writes the artifact header.
inline void WriteHeader(std::ostream& out, const char magic[8],
                        std::uint32_t version) {
  out.write(magic, 8);
  WritePod(out, version);
}

/// Validates the artifact header; throws SerializationError on mismatch.
inline void CheckHeader(std::istream& in, const char magic[8],
                        std::uint32_t expected_version) {
  char read_magic[8] = {};
  in.read(read_magic, 8);
  if (!in || std::memcmp(read_magic, magic, 8) != 0) {
    throw SerializationError(std::string("bad magic; expected '") +
                             std::string(magic, 8) + "'");
  }
  const auto version = ReadPod<std::uint32_t>(in);
  if (version != expected_version) {
    throw SerializationError("unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(expected_version) + ")");
  }
}

}  // namespace kspin::io

#endif  // KSPIN_IO_BINARY_FORMAT_H_
