// Low-level helpers for the versioned binary index format.
//
// Every artifact starts with an 8-byte magic tag and a uint32 version so a
// stale or foreign file fails fast with a clear error instead of producing
// a corrupt index. All integers are written in the host's native byte
// order (the format is a cache, not an interchange format).
//
// Hardening rules (see docs/persistence.md):
//  - every write checks the stream afterwards, so ENOSPC / EIO raise
//    SerializationError instead of silently truncating an artifact;
//  - every length field read from disk is untrusted: vectors and strings
//    are materialized incrementally, so a corrupt 2^60 length exhausts the
//    stream and throws instead of attempting a giant allocation.
#ifndef KSPIN_IO_BINARY_FORMAT_H_
#define KSPIN_IO_BINARY_FORMAT_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace kspin::io {

/// Thrown on magic/version mismatches, truncated or corrupt streams, and
/// failed writes (disk full, I/O error).
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Bytes materialized per step when reading an untrusted length field.
/// Small enough that a corrupt length cannot force a giant allocation,
/// large enough that honest multi-megabyte artifacts read in a few steps.
inline constexpr std::size_t kReadChunkBytes = std::size_t{1} << 20;

/// Checks `out` after a write; throws so ENOSPC is never swallowed.
inline void CheckWrite(std::ostream& out) {
  if (!out) {
    throw SerializationError("write failed (stream error, disk full?)");
  }
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
  CheckWrite(out);
}

template <typename T>
T ReadPod(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw SerializationError("truncated stream reading scalar");
  return value;
}

/// Length-prefixed pod array from any contiguous range (vector with any
/// allocator, FlatLists row span, ...). Byte-identical to the historical
/// WritePodVector encoding.
template <typename T>
void WritePodSpan(std::ostream& out, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod<std::uint64_t>(out, values.size());
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size() * sizeof(T)));
  CheckWrite(out);
}

template <typename T, typename Alloc>
void WritePodVector(std::ostream& out, const std::vector<T, Alloc>& values) {
  WritePodSpan<T>(out, values);
}

/// Reads a length-prefixed pod array into `Container` (any vector
/// instantiation — used to materialize directly into AlignedVector).
template <typename Container>
Container ReadPodVectorAs(std::istream& in) {
  using T = typename Container::value_type;
  static_assert(std::is_trivially_copyable_v<T>);
  const auto size = ReadPod<std::uint64_t>(in);
  // The length field is untrusted: grow incrementally so a corrupt huge
  // value runs the stream dry (throwing) long before memory does.
  const std::size_t chunk_elems =
      std::max<std::size_t>(1, kReadChunkBytes / sizeof(T));
  Container values;
  std::uint64_t got = 0;
  while (got < size) {
    const std::size_t step = static_cast<std::size_t>(
        std::min<std::uint64_t>(chunk_elems, size - got));
    values.resize(static_cast<std::size_t>(got) + step);
    in.read(reinterpret_cast<char*>(values.data() + got),
            static_cast<std::streamsize>(step * sizeof(T)));
    if (!in) throw SerializationError("truncated stream reading vector");
    got += step;
  }
  return values;
}

template <typename T>
std::vector<T> ReadPodVector(std::istream& in) {
  return ReadPodVectorAs<std::vector<T>>(in);
}

inline void WriteString(std::ostream& out, const std::string& s) {
  WritePod<std::uint64_t>(out, s.size());
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
  CheckWrite(out);
}

inline std::string ReadString(std::istream& in) {
  const auto size = ReadPod<std::uint64_t>(in);
  std::string s;
  std::uint64_t got = 0;
  while (got < size) {
    const std::size_t step = static_cast<std::size_t>(
        std::min<std::uint64_t>(kReadChunkBytes, size - got));
    s.resize(static_cast<std::size_t>(got) + step);
    in.read(s.data() + got, static_cast<std::streamsize>(step));
    if (!in) throw SerializationError("truncated stream reading string");
    got += step;
  }
  return s;
}

/// Writes the artifact header.
inline void WriteHeader(std::ostream& out, const char magic[8],
                        std::uint32_t version) {
  out.write(magic, 8);
  CheckWrite(out);
  WritePod(out, version);
}

/// Validates the magic and returns the version, accepting any version in
/// [1, max_version]. For artifacts with backward-compatible readers (the
/// ALT index keeps loading its landmark-major v1 files).
inline std::uint32_t ReadHeaderVersion(std::istream& in, const char magic[8],
                                       std::uint32_t max_version) {
  char read_magic[8] = {};
  in.read(read_magic, 8);
  if (!in || std::memcmp(read_magic, magic, 8) != 0) {
    throw SerializationError(std::string("bad magic; expected '") +
                             std::string(magic, 8) + "'");
  }
  const auto version = ReadPod<std::uint32_t>(in);
  if (version == 0 || version > max_version) {
    throw SerializationError("unsupported version " +
                             std::to_string(version) + " (max supported " +
                             std::to_string(max_version) + ")");
  }
  return version;
}

/// Validates the artifact header; throws SerializationError on mismatch.
inline void CheckHeader(std::istream& in, const char magic[8],
                        std::uint32_t expected_version) {
  char read_magic[8] = {};
  in.read(read_magic, 8);
  if (!in || std::memcmp(read_magic, magic, 8) != 0) {
    throw SerializationError(std::string("bad magic; expected '") +
                             std::string(magic, 8) + "'");
  }
  const auto version = ReadPod<std::uint32_t>(in);
  if (version != expected_version) {
    throw SerializationError("unsupported version " +
                             std::to_string(version) + " (expected " +
                             std::to_string(expected_version) + ")");
  }
}

}  // namespace kspin::io

#endif  // KSPIN_IO_BINARY_FORMAT_H_
