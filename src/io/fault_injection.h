// Deterministic fault injection for the persistence layer.
//
// Storage fails in boring, repeatable ways — short writes, torn writes,
// ENOSPC, bit rot, a crash between writing a temp file and renaming it
// into place. This header gives tests an injectable shim for each class
// so tests/test_fault_injection.cc can prove that every failure yields a
// typed io::SerializationError (or a clean fallback), never UB or a
// silently wrong index:
//
//  - StreamFaultPlan + FaultyOStream: wrap any ostream and fail, drop, or
//    corrupt bytes at an exact offset (ENOSPC/EIO, torn write, bit flip);
//  - AtomicWriteHooks: stop WriteFileAtomically (io/snapshot.h) at a
//    chosen phase, simulating a crash before/after the rename;
//  - FlipByteInFile / TruncateFileTo: post-hoc corruption of files on
//    disk for property tests over saved snapshots.
//
// Everything here is deterministic: faults trigger at byte offsets, not
// timers or randomness, so a failing test replays exactly.
#ifndef KSPIN_IO_FAULT_INJECTION_H_
#define KSPIN_IO_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>
#include <streambuf>
#include <string>

namespace kspin::io {

/// What to do to the byte stream, keyed by absolute write offset.
struct StreamFaultPlan {
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();

  /// Writes at/after this offset fail (stream badbit): ENOSPC / EIO. The
  /// bytes before the offset reach the sink — a classic partial write.
  std::uint64_t fail_after = kNever;

  /// Writes at/after this offset claim success but are discarded: a torn
  /// write the writer cannot detect without fsync+reread. Loaders must
  /// still fail cleanly on the resulting truncated artifact.
  std::uint64_t silently_drop_after = kNever;

  /// XOR `flip_mask` into the byte at exactly this offset: bit rot.
  std::uint64_t flip_byte_at = kNever;
  std::uint8_t flip_mask = 0x01;
};

/// streambuf wrapper applying a StreamFaultPlan; see FaultyOStream.
class FaultInjectingStreambuf : public std::streambuf {
 public:
  FaultInjectingStreambuf(std::streambuf* sink, StreamFaultPlan plan)
      : sink_(sink), plan_(plan) {}

  std::uint64_t BytesWritten() const { return offset_; }

 protected:
  int_type overflow(int_type ch) override;
  std::streamsize xsputn(const char* data, std::streamsize count) override;
  int sync() override { return sink_->pubsync(); }

 private:
  /// Forwards one byte, applying the plan. False = injected failure.
  bool Put(char byte);

  std::streambuf* sink_;
  StreamFaultPlan plan_;
  std::uint64_t offset_ = 0;
};

/// An ostream that forwards to `sink` through a StreamFaultPlan. Drop-in
/// for any Save* function: SaveGraph(graph, faulty) exercises the exact
/// failure path a full disk would produce.
class FaultyOStream : public std::ostream {
 public:
  FaultyOStream(std::ostream& sink, StreamFaultPlan plan)
      : std::ostream(&buffer_), buffer_(sink.rdbuf(), plan) {}

  std::uint64_t BytesWritten() const { return buffer_.BytesWritten(); }

 private:
  FaultInjectingStreambuf buffer_;
};

/// Phases of WriteFileAtomically where a simulated crash can be injected.
/// The hook returns false to "crash": the writer stops immediately,
/// leaving the filesystem exactly as a real kill -9 at that instant would
/// (temp file present but not renamed, etc.).
enum class AtomicWritePhase {
  kBeforeTempWrite,  ///< Nothing written yet.
  kAfterTempWrite,   ///< Temp file fully written + synced, not renamed.
  kAfterRename,      ///< Renamed into place, directory not yet synced.
};

struct AtomicWriteHooks {
  /// Crash simulation; return false to stop at that phase.
  std::function<bool(AtomicWritePhase)> on_phase;
  /// Fault plan applied to the temp file's byte stream (ENOSPC etc.).
  StreamFaultPlan stream_faults;
};

// ----- Post-hoc file corruption (for property tests) -----------------------

/// XORs `mask` into the byte at `offset`. Throws std::runtime_error on
/// I/O errors or out-of-range offsets.
void FlipByteInFile(const std::string& path, std::uint64_t offset,
                    std::uint8_t mask = 0x01);

/// Truncates the file to `size` bytes (must not exceed the current size).
void TruncateFileTo(const std::string& path, std::uint64_t size);

/// Size of a file in bytes; throws std::runtime_error if unreadable.
std::uint64_t FileSize(const std::string& path);

}  // namespace kspin::io

#endif  // KSPIN_IO_FAULT_INJECTION_H_
