#include "io/serialization.h"

#include <istream>
#include <ostream>

#include "io/binary_format.h"

namespace kspin {
namespace {

constexpr char kGraphMagic[8] = {'K', 'S', 'P', 'G', 'R', 'P', 'H', '1'};
constexpr char kStoreMagic[8] = {'K', 'S', 'P', 'D', 'O', 'C', 'S', '1'};
constexpr char kAltMagic[8] = {'K', 'S', 'P', 'A', 'L', 'T', 'I', '1'};
constexpr char kChMagic[8] = {'K', 'S', 'P', 'C', 'H', 'I', 'X', '1'};
constexpr char kHlMagic[8] = {'K', 'S', 'P', 'H', 'L', 'B', 'L', '1'};
constexpr std::uint32_t kVersion = 1;

}  // namespace

void SaveGraph(const Graph& graph, std::ostream& out) {
  io::WriteHeader(out, kGraphMagic, kVersion);
  io::WritePodVector(out, graph.offsets_);
  io::WritePodVector(out, graph.arcs_);
  io::WritePodVector(out, graph.coordinates_);
}

Graph LoadGraph(std::istream& in) {
  io::CheckHeader(in, kGraphMagic, kVersion);
  Graph graph;
  graph.offsets_ = io::ReadPodVector<std::size_t>(in);
  graph.arcs_ = io::ReadPodVector<Arc>(in);
  graph.coordinates_ = io::ReadPodVector<Coordinate>(in);
  if (graph.offsets_.empty() ||
      graph.offsets_.back() != graph.arcs_.size() ||
      (!graph.coordinates_.empty() &&
       graph.coordinates_.size() != graph.offsets_.size() - 1)) {
    throw io::SerializationError("inconsistent graph arrays");
  }
  for (const Arc& arc : graph.arcs_) {
    if (arc.head >= graph.offsets_.size() - 1) {
      throw io::SerializationError("arc head out of range");
    }
  }
  return graph;
}

void SaveDocumentStore(const DocumentStore& store, std::ostream& out) {
  io::WriteHeader(out, kStoreMagic, kVersion);
  io::WritePod<std::uint64_t>(out, store.NumSlots());
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    const bool live = store.IsLive(o);
    io::WritePod<std::uint8_t>(out, live ? 1 : 0);
    io::WritePod<std::uint32_t>(out, live ? store.ObjectVertex(o) : 0);
    const auto doc = store.Document(o);
    io::WritePod<std::uint64_t>(out, doc.size());
    for (const DocEntry& e : doc) {
      io::WritePod(out, e.keyword);
      io::WritePod(out, e.frequency);
    }
  }
}

DocumentStore LoadDocumentStore(std::istream& in) {
  io::CheckHeader(in, kStoreMagic, kVersion);
  DocumentStore store;
  const auto num_slots = io::ReadPod<std::uint64_t>(in);
  for (std::uint64_t o = 0; o < num_slots; ++o) {
    const bool live = io::ReadPod<std::uint8_t>(in) != 0;
    const auto vertex = io::ReadPod<std::uint32_t>(in);
    const auto doc_size = io::ReadPod<std::uint64_t>(in);
    std::vector<DocEntry> document;
    document.reserve(doc_size);
    for (std::uint64_t i = 0; i < doc_size; ++i) {
      DocEntry entry;
      entry.keyword = io::ReadPod<KeywordId>(in);
      entry.frequency = io::ReadPod<std::uint32_t>(in);
      document.push_back(entry);
    }
    // Tombstoned slots keep their ids: add then delete. Their documents
    // were cleared at deletion, so a placeholder entry is enough.
    const ObjectId id = store.AddObject(vertex, std::move(document));
    if (!live) store.DeleteObject(id);
  }
  return store;
}

void SaveAltIndex(const AltIndex& alt, std::ostream& out) {
  io::WriteHeader(out, kAltMagic, kVersion);
  io::WritePod<std::uint64_t>(out, alt.num_vertices_);
  io::WritePodVector(out, alt.landmarks_);
  io::WritePodVector(out, alt.distances_);
}

AltIndex LoadAltIndex(std::istream& in) {
  io::CheckHeader(in, kAltMagic, kVersion);
  AltIndex alt;
  alt.num_vertices_ = io::ReadPod<std::uint64_t>(in);
  alt.landmarks_ = io::ReadPodVector<VertexId>(in);
  alt.distances_ = io::ReadPodVector<Distance>(in);
  if (alt.distances_.size() != alt.landmarks_.size() * alt.num_vertices_) {
    throw io::SerializationError("inconsistent ALT arrays");
  }
  return alt;
}

void SaveContractionHierarchy(const ContractionHierarchy& ch,
                              std::ostream& out) {
  io::WriteHeader(out, kChMagic, kVersion);
  io::WritePodVector(out, ch.rank_);
  io::WritePodVector(out, ch.up_offsets_);
  io::WritePodVector(out, ch.up_arcs_);
  io::WritePodVector(out, ch.up_mids_);
  io::WritePod<std::uint64_t>(out, ch.num_shortcuts_);
}

ContractionHierarchy LoadContractionHierarchy(std::istream& in) {
  io::CheckHeader(in, kChMagic, kVersion);
  ContractionHierarchy ch;
  ch.rank_ = io::ReadPodVector<std::uint32_t>(in);
  ch.up_offsets_ = io::ReadPodVector<std::size_t>(in);
  ch.up_arcs_ = io::ReadPodVector<Arc>(in);
  ch.up_mids_ = io::ReadPodVector<VertexId>(in);
  ch.num_shortcuts_ = io::ReadPod<std::uint64_t>(in);
  if (ch.up_offsets_.size() != ch.rank_.size() + 1 ||
      ch.up_offsets_.back() != ch.up_arcs_.size() ||
      ch.up_mids_.size() != ch.up_arcs_.size()) {
    throw io::SerializationError("inconsistent CH arrays");
  }
  return ch;
}

void SaveHubLabeling(const HubLabeling& labels, std::ostream& out) {
  io::WriteHeader(out, kHlMagic, kVersion);
  io::WritePodVector(out, labels.offsets_);
  io::WritePodVector(out, labels.entries_);
}

HubLabeling LoadHubLabeling(std::istream& in) {
  io::CheckHeader(in, kHlMagic, kVersion);
  HubLabeling labels;
  labels.offsets_ = io::ReadPodVector<std::size_t>(in);
  labels.entries_ = io::ReadPodVector<LabelEntry>(in);
  if (labels.offsets_.empty() ||
      labels.offsets_.back() != labels.entries_.size()) {
    throw io::SerializationError("inconsistent hub label arrays");
  }
  return labels;
}

}  // namespace kspin
