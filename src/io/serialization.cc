#include "io/serialization.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <memory>
#include <ostream>

#include "io/binary_format.h"

namespace kspin {
namespace {

constexpr char kGraphMagic[8] = {'K', 'S', 'P', 'G', 'R', 'P', 'H', '1'};
constexpr char kStoreMagic[8] = {'K', 'S', 'P', 'D', 'O', 'C', 'S', '1'};
constexpr char kAltMagic[8] = {'K', 'S', 'P', 'A', 'L', 'T', 'I', '1'};
constexpr char kChMagic[8] = {'K', 'S', 'P', 'C', 'H', 'I', 'X', '1'};
constexpr char kHlMagic[8] = {'K', 'S', 'P', 'H', 'L', 'B', 'L', '1'};
constexpr char kKwixMagic[8] = {'K', 'S', 'P', 'K', 'W', 'I', 'X', '1'};
constexpr char kCatalogMagic[8] = {'K', 'S', 'P', 'P', 'C', 'A', 'T', '1'};
constexpr std::uint32_t kVersion = 1;
/// ALT format: v1 stored the landmark-major matrix (d[l*n + v]); v2 stores
/// the vertex-major matrix compactly (d[v*m + l], no row padding). Old v1
/// files keep loading via a transpose.
constexpr std::uint32_t kAltVersion = 2;

}  // namespace

void SaveGraph(const Graph& graph, std::ostream& out) {
  io::WriteHeader(out, kGraphMagic, kVersion);
  io::WritePodVector(out, graph.offsets_);
  io::WritePodVector(out, graph.arcs_);
  io::WritePodVector(out, graph.coordinates_);
}

Graph LoadGraph(std::istream& in) {
  io::CheckHeader(in, kGraphMagic, kVersion);
  Graph graph;
  graph.offsets_ = io::ReadPodVector<std::size_t>(in);
  graph.arcs_ = io::ReadPodVector<Arc>(in);
  graph.coordinates_ = io::ReadPodVector<Coordinate>(in);
  if (graph.offsets_.empty() ||
      graph.offsets_.back() != graph.arcs_.size() ||
      (!graph.coordinates_.empty() &&
       graph.coordinates_.size() != graph.offsets_.size() - 1)) {
    throw io::SerializationError("inconsistent graph arrays");
  }
  for (const Arc& arc : graph.arcs_) {
    if (arc.head >= graph.offsets_.size() - 1) {
      throw io::SerializationError("arc head out of range");
    }
  }
  return graph;
}

void SaveDocumentStore(const DocumentStore& store, std::ostream& out) {
  io::WriteHeader(out, kStoreMagic, kVersion);
  io::WritePod<std::uint64_t>(out, store.NumSlots());
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    const bool live = store.IsLive(o);
    io::WritePod<std::uint8_t>(out, live ? 1 : 0);
    io::WritePod<std::uint32_t>(out, live ? store.ObjectVertex(o) : 0);
    const auto doc = store.Document(o);
    io::WritePod<std::uint64_t>(out, doc.size());
    for (const DocEntry& e : doc) {
      io::WritePod(out, e.keyword);
      io::WritePod(out, e.frequency);
    }
  }
}

DocumentStore LoadDocumentStore(std::istream& in) {
  io::CheckHeader(in, kStoreMagic, kVersion);
  DocumentStore store;
  const auto num_slots = io::ReadPod<std::uint64_t>(in);
  for (std::uint64_t o = 0; o < num_slots; ++o) {
    const bool live = io::ReadPod<std::uint8_t>(in) != 0;
    const auto vertex = io::ReadPod<std::uint32_t>(in);
    const auto doc_size = io::ReadPod<std::uint64_t>(in);
    std::vector<DocEntry> document;
    document.reserve(doc_size);
    for (std::uint64_t i = 0; i < doc_size; ++i) {
      DocEntry entry;
      entry.keyword = io::ReadPod<KeywordId>(in);
      entry.frequency = io::ReadPod<std::uint32_t>(in);
      document.push_back(entry);
    }
    // Tombstoned slots keep their ids: add then delete. Their documents
    // were cleared at deletion, so a placeholder entry is enough.
    const ObjectId id = store.AddObject(vertex, std::move(document));
    if (!live) store.DeleteObject(id);
  }
  return store;
}

void SaveAltIndex(const AltIndex& alt, std::ostream& out) {
  io::WriteHeader(out, kAltMagic, kAltVersion);
  io::WritePod<std::uint64_t>(out, alt.num_vertices_);
  io::WritePodVector(out, alt.landmarks_);
  // Compact vertex-major matrix: rows are written without their SIMD
  // padding, so the on-disk size is independent of the in-memory stride.
  const std::size_t m = alt.landmarks_.size();
  io::WritePod<std::uint64_t>(out, alt.num_vertices_ * m);
  for (std::size_t v = 0; v < alt.num_vertices_; ++v) {
    out.write(reinterpret_cast<const char*>(
                  alt.RowData(static_cast<VertexId>(v))),
              static_cast<std::streamsize>(m * sizeof(Distance)));
  }
  io::CheckWrite(out);
}

AltIndex LoadAltIndex(std::istream& in) {
  const std::uint32_t version =
      io::ReadHeaderVersion(in, kAltMagic, kAltVersion);
  AltIndex alt;
  alt.num_vertices_ = io::ReadPod<std::uint64_t>(in);
  alt.landmarks_ = io::ReadPodVector<VertexId>(in);
  const std::size_t m = alt.landmarks_.size();
  const auto count = io::ReadPod<std::uint64_t>(in);
  if (count != m * alt.num_vertices_) {
    throw io::SerializationError("inconsistent ALT arrays");
  }
  alt.InitLayout(alt.num_vertices_, m);
  if (version >= 2) {
    // Vertex-major compact rows: stream each row straight into its padded
    // in-memory slot.
    for (std::size_t v = 0; v < alt.num_vertices_; ++v) {
      in.read(reinterpret_cast<char*>(
                  alt.MutableRowData(static_cast<VertexId>(v))),
              static_cast<std::streamsize>(m * sizeof(Distance)));
      if (!in) throw io::SerializationError("truncated ALT distance rows");
    }
    return alt;
  }
  // v1: landmark-major d[l*n + v]; transpose into the vertex-major layout.
  std::vector<Distance> column(alt.num_vertices_);
  for (std::size_t l = 0; l < m; ++l) {
    in.read(reinterpret_cast<char*>(column.data()),
            static_cast<std::streamsize>(column.size() * sizeof(Distance)));
    if (!in) throw io::SerializationError("truncated ALT distance rows");
    for (std::size_t v = 0; v < alt.num_vertices_; ++v) {
      alt.MutableRowData(static_cast<VertexId>(v))[l] = column[v];
    }
  }
  return alt;
}

void SaveContractionHierarchy(const ContractionHierarchy& ch,
                              std::ostream& out) {
  io::WriteHeader(out, kChMagic, kVersion);
  io::WritePodVector(out, ch.rank_);
  io::WritePodVector(out, ch.up_offsets_);
  io::WritePodVector(out, ch.up_arcs_);
  io::WritePodVector(out, ch.up_mids_);
  io::WritePod<std::uint64_t>(out, ch.num_shortcuts_);
}

ContractionHierarchy LoadContractionHierarchy(std::istream& in) {
  io::CheckHeader(in, kChMagic, kVersion);
  ContractionHierarchy ch;
  ch.rank_ = io::ReadPodVector<std::uint32_t>(in);
  ch.up_offsets_ = io::ReadPodVector<std::size_t>(in);
  ch.up_arcs_ = io::ReadPodVector<Arc>(in);
  ch.up_mids_ = io::ReadPodVector<VertexId>(in);
  ch.num_shortcuts_ = io::ReadPod<std::uint64_t>(in);
  if (ch.up_offsets_.size() != ch.rank_.size() + 1 ||
      ch.up_offsets_.back() != ch.up_arcs_.size() ||
      ch.up_mids_.size() != ch.up_arcs_.size()) {
    throw io::SerializationError("inconsistent CH arrays");
  }
  return ch;
}

void SaveHubLabeling(const HubLabeling& labels, std::ostream& out) {
  io::WriteHeader(out, kHlMagic, kVersion);
  io::WritePodVector(out, labels.offsets_);
  io::WritePodVector(out, labels.entries_);
}

HubLabeling LoadHubLabeling(std::istream& in) {
  io::CheckHeader(in, kHlMagic, kVersion);
  HubLabeling labels;
  labels.offsets_ = io::ReadPodVector<std::size_t>(in);
  labels.entries_ = io::ReadPodVector<LabelEntry>(in);
  if (labels.offsets_.empty() ||
      labels.offsets_.back() != labels.entries_.size()) {
    throw io::SerializationError("inconsistent hub label arrays");
  }
  return labels;
}

// ----- Keyword Separated Index ---------------------------------------------
//
// The keyword index is a forest of per-keyword ApxNvds, each of which may
// own a colour quadtree or R-tree. These have no standalone magic: they
// appear only nested inside the KSPKWIX1 artifact (or a snapshot section),
// whose header/CRC already frames them.

void SaveColorQuadtree(const ColorQuadtree& tree, std::ostream& out) {
  io::WritePod(out, tree.origin_x_);
  io::WritePod(out, tree.origin_y_);
  io::WritePod(out, tree.scale_);
  io::WritePod(out, tree.grid_bits_);
  io::WritePod(out, tree.max_leaf_depth_);
  io::WritePodVector(out, tree.leaves_);
  io::WritePodVector(out, tree.color_pool_);
}

ColorQuadtree LoadColorQuadtree(std::istream& in) {
  ColorQuadtree tree;
  tree.origin_x_ = io::ReadPod<double>(in);
  tree.origin_y_ = io::ReadPod<double>(in);
  tree.scale_ = io::ReadPod<double>(in);
  tree.grid_bits_ = io::ReadPod<std::uint32_t>(in);
  tree.max_leaf_depth_ = io::ReadPod<std::uint32_t>(in);
  tree.leaves_ = io::ReadPodVectorAs<AlignedVector<ColorQuadtree::Leaf>>(in);
  tree.color_pool_ = io::ReadPodVectorAs<AlignedVector<std::uint32_t>>(in);
  if (!std::isfinite(tree.scale_) || tree.scale_ <= 0 ||
      tree.grid_bits_ == 0 || tree.grid_bits_ > 32) {
    throw io::SerializationError("quadtree geometry out of range");
  }
  for (const auto& leaf : tree.leaves_) {
    if (leaf.z_begin >= leaf.z_end ||
        leaf.color_offset > tree.color_pool_.size() ||
        leaf.color_count > tree.color_pool_.size() - leaf.color_offset) {
      throw io::SerializationError("quadtree leaf out of bounds");
    }
  }
  return tree;
}

void SaveVoronoiRTree(const VoronoiRTree& tree, std::ostream& out) {
  io::WritePodVector(out, tree.nodes_);
  io::WritePodVector(out, tree.children_);
  io::WritePod(out, tree.root_);
  io::WritePod<std::uint64_t>(out, tree.num_colors_);
}

VoronoiRTree LoadVoronoiRTree(std::istream& in) {
  VoronoiRTree tree;
  tree.nodes_ = io::ReadPodVector<VoronoiRTree::Node>(in);
  tree.children_ = io::ReadPodVector<std::uint32_t>(in);
  tree.root_ = io::ReadPod<std::uint32_t>(in);
  tree.num_colors_ =
      static_cast<std::size_t>(io::ReadPod<std::uint64_t>(in));
  if (tree.nodes_.empty() || tree.root_ >= tree.nodes_.size()) {
    throw io::SerializationError("r-tree root out of range");
  }
  for (const auto& node : tree.nodes_) {
    if (node.num_children == 0) continue;  // Leaf entry.
    if (node.child_begin > tree.children_.size() ||
        node.num_children > tree.children_.size() - node.child_begin) {
      throw io::SerializationError("r-tree child range out of bounds");
    }
  }
  for (std::uint32_t child : tree.children_) {
    if (child >= tree.nodes_.size()) {
      throw io::SerializationError("r-tree child index out of range");
    }
  }
  return tree;
}

void SaveApxNvd(const ApxNvd& nvd, std::ostream& out) {
  io::WritePod(out, nvd.options_.rho);
  io::WritePod(out, static_cast<std::uint32_t>(nvd.options_.storage));
  io::WritePod(out, nvd.options_.quadtree_max_depth);
  io::WritePod(out, nvd.options_.lazy_insert_threshold);

  io::WritePodVector(out, nvd.sites_);
  io::WritePod<std::uint64_t>(out, nvd.adjacency_.NumLists());
  for (std::size_t i = 0; i < nvd.adjacency_.NumLists(); ++i) {
    io::WritePodSpan<std::uint32_t>(out, nvd.adjacency_[i]);
  }
  io::WritePodVector(out, nvd.max_radius_);

  std::uint8_t storage_tag = 0;
  if (nvd.quadtree_ != nullptr) storage_tag = 1;
  if (nvd.rtree_ != nullptr) storage_tag = 2;
  io::WritePod(out, storage_tag);
  if (nvd.quadtree_ != nullptr) SaveColorQuadtree(*nvd.quadtree_, out);
  if (nvd.rtree_ != nullptr) SaveVoronoiRTree(*nvd.rtree_, out);

  io::WritePod<std::uint64_t>(out, nvd.attachments_.size());
  for (const auto& list : nvd.attachments_) io::WritePodVector(out, list);

  // Sort hash-ordered containers so identical state yields identical bytes
  // (snapshot files are byte-comparable across runs).
  std::vector<std::pair<ObjectId, std::vector<std::uint32_t>>> attached(
      nvd.attached_nodes_.begin(), nvd.attached_nodes_.end());
  std::sort(attached.begin(), attached.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  io::WritePod<std::uint64_t>(out, attached.size());
  for (const auto& [object, nodes] : attached) {
    io::WritePod(out, object);
    io::WritePodVector(out, nodes);
  }

  std::vector<ObjectId> deleted(nvd.deleted_.begin(), nvd.deleted_.end());
  std::sort(deleted.begin(), deleted.end());
  io::WritePodVector(out, deleted);

  io::WritePod<std::uint64_t>(out, nvd.lazy_inserts_);
  io::WritePod<std::uint64_t>(out, nvd.last_affected_size_);
}

std::unique_ptr<ApxNvd> LoadApxNvd(const Graph& graph, std::istream& in) {
  std::unique_ptr<ApxNvd> nvd(new ApxNvd(graph));
  nvd->options_.rho = io::ReadPod<std::uint32_t>(in);
  const auto storage = io::ReadPod<std::uint32_t>(in);
  nvd->options_.quadtree_max_depth = io::ReadPod<std::uint32_t>(in);
  nvd->options_.lazy_insert_threshold = io::ReadPod<std::uint32_t>(in);
  if (nvd->options_.rho == 0 || storage > 1) {
    throw io::SerializationError("ApxNvd options out of range");
  }
  nvd->options_.storage = static_cast<ApxNvdStorage>(storage);

  nvd->sites_ = io::ReadPodVector<SiteObject>(in);
  const auto adjacency_size = io::ReadPod<std::uint64_t>(in);
  if (adjacency_size > nvd->sites_.size()) {
    throw io::SerializationError("ApxNvd adjacency larger than site set");
  }
  for (std::uint64_t i = 0; i < adjacency_size; ++i) {
    nvd->adjacency_.Append(io::ReadPodVector<std::uint32_t>(in));
  }
  nvd->max_radius_ = io::ReadPodVector<Distance>(in);

  const auto storage_tag = io::ReadPod<std::uint8_t>(in);
  if (storage_tag == 1) {
    nvd->quadtree_ =
        std::make_unique<ColorQuadtree>(LoadColorQuadtree(in));
  } else if (storage_tag == 2) {
    nvd->rtree_ = std::make_unique<VoronoiRTree>(LoadVoronoiRTree(in));
  } else if (storage_tag != 0) {
    throw io::SerializationError("ApxNvd unknown storage tag");
  }

  const auto attachments_size = io::ReadPod<std::uint64_t>(in);
  if (attachments_size != nvd->sites_.size()) {
    throw io::SerializationError("ApxNvd attachments size mismatch");
  }
  nvd->attachments_.resize(static_cast<std::size_t>(attachments_size));
  for (auto& list : nvd->attachments_) {
    list = io::ReadPodVector<SiteObject>(in);
  }

  const auto attached_count = io::ReadPod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < attached_count; ++i) {
    const auto object = io::ReadPod<ObjectId>(in);
    auto nodes = io::ReadPodVector<std::uint32_t>(in);
    for (std::uint32_t node : nodes) {
      if (node >= nvd->sites_.size()) {
        throw io::SerializationError("ApxNvd attachment node out of range");
      }
    }
    if (!nvd->attached_nodes_.emplace(object, std::move(nodes)).second) {
      throw io::SerializationError("ApxNvd duplicate attached object");
    }
  }

  for (const ObjectId o : io::ReadPodVector<ObjectId>(in)) {
    nvd->deleted_.insert(o);
  }
  nvd->lazy_inserts_ =
      static_cast<std::size_t>(io::ReadPod<std::uint64_t>(in));
  nvd->last_affected_size_ =
      static_cast<std::size_t>(io::ReadPod<std::uint64_t>(in));

  // Cross-field consistency: a wrong-but-well-framed index must never
  // reach queries.
  const std::size_t num_sites = nvd->sites_.size();
  const bool has_voronoi = storage_tag != 0;
  if (has_voronoi &&
      (nvd->adjacency_.NumLists() != num_sites ||
       nvd->max_radius_.size() != num_sites)) {
    throw io::SerializationError("ApxNvd Voronoi arrays size mismatch");
  }
  if (!has_voronoi &&
      (!nvd->adjacency_.Empty() || !nvd->max_radius_.empty())) {
    throw io::SerializationError("ApxNvd flat index has Voronoi arrays");
  }
  for (std::uint32_t node : nvd->adjacency_.Pool()) {
    if (node >= num_sites) {
      throw io::SerializationError("ApxNvd adjacency node out of range");
    }
  }
  for (std::uint32_t i = 0; i < num_sites; ++i) {
    const SiteObject& s = nvd->sites_[i];
    if (s.vertex >= graph.NumVertices()) {
      throw io::SerializationError("ApxNvd site vertex out of range");
    }
    if (!nvd->site_index_.emplace(s.object, i).second) {
      throw io::SerializationError("ApxNvd duplicate site object");
    }
  }
  for (const auto& [object, nodes] : nvd->attached_nodes_) {
    if (nvd->site_index_.contains(object)) {
      throw io::SerializationError("ApxNvd object both site and attachment");
    }
  }
  if (has_voronoi && !graph.HasCoordinates()) {
    throw io::SerializationError(
        "ApxNvd Voronoi storage requires graph coordinates");
  }
  return nvd;
}

void SaveKeywordIndex(const KeywordIndex& index, std::ostream& out) {
  io::WriteHeader(out, kKwixMagic, kVersion);
  io::WritePod(out, index.options_.nvd.rho);
  io::WritePod(out, static_cast<std::uint32_t>(index.options_.nvd.storage));
  io::WritePod(out, index.options_.nvd.quadtree_max_depth);
  io::WritePod(out, index.options_.nvd.lazy_insert_threshold);
  io::WritePod(out, index.build_seconds_);
  io::WritePod<std::uint64_t>(out, index.indexes_.size());
  for (const auto& nvd : index.indexes_) {
    io::WritePod<std::uint8_t>(out, nvd != nullptr ? 1 : 0);
    if (nvd != nullptr) SaveApxNvd(*nvd, out);
  }
}

KeywordIndex LoadKeywordIndex(const Graph& graph, std::istream& in) {
  io::CheckHeader(in, kKwixMagic, kVersion);
  KeywordIndex index(graph);
  index.options_.nvd.rho = io::ReadPod<std::uint32_t>(in);
  const auto storage = io::ReadPod<std::uint32_t>(in);
  index.options_.nvd.quadtree_max_depth = io::ReadPod<std::uint32_t>(in);
  index.options_.nvd.lazy_insert_threshold = io::ReadPod<std::uint32_t>(in);
  if (index.options_.nvd.rho == 0 || storage > 1) {
    throw io::SerializationError("keyword index options out of range");
  }
  index.options_.nvd.storage = static_cast<ApxNvdStorage>(storage);
  index.build_seconds_ = io::ReadPod<double>(in);
  const auto num_keywords = io::ReadPod<std::uint64_t>(in);
  index.indexes_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(num_keywords, 1 << 20)));
  for (std::uint64_t t = 0; t < num_keywords; ++t) {
    if (io::ReadPod<std::uint8_t>(in) != 0) {
      index.indexes_.push_back(LoadApxNvd(graph, in));
    } else {
      index.indexes_.emplace_back();
    }
  }
  return index;
}

// ----- POI catalogue -------------------------------------------------------

void SavePoiCatalog(const PoiCatalog& catalog, std::ostream& out) {
  io::WriteHeader(out, kCatalogMagic, kVersion);
  io::WritePod<std::uint64_t>(out, catalog.vocabulary.Size());
  for (KeywordId t = 0; t < catalog.vocabulary.Size(); ++t) {
    io::WriteString(out, catalog.vocabulary.TermOf(t));
  }
  io::WritePod<std::uint64_t>(out, catalog.names.size());
  for (const std::string& name : catalog.names) {
    io::WriteString(out, name);
  }
}

PoiCatalog LoadPoiCatalog(std::istream& in) {
  io::CheckHeader(in, kCatalogMagic, kVersion);
  PoiCatalog catalog;
  const auto num_terms = io::ReadPod<std::uint64_t>(in);
  for (std::uint64_t t = 0; t < num_terms; ++t) {
    // Terms were interned in id order, so re-interning reproduces the ids.
    const std::string term = io::ReadString(in);
    if (catalog.vocabulary.AddOrGet(term) != t) {
      throw io::SerializationError("catalog has duplicate vocabulary term");
    }
  }
  const auto num_names = io::ReadPod<std::uint64_t>(in);
  for (std::uint64_t i = 0; i < num_names; ++i) {
    catalog.names.push_back(io::ReadString(in));
  }
  return catalog;
}

}  // namespace kspin
