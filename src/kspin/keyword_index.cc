#include "kspin/keyword_index.h"

#include <atomic>
#include <thread>

#include "common/timer.h"

namespace kspin {

KeywordIndex::KeywordIndex(const Graph& graph, const DocumentStore& store,
                           const InvertedIndex& inverted,
                           KeywordIndexOptions options)
    : graph_(graph), options_(options) {
  Timer timer;
  indexes_.resize(inverted.NumKeywords());

  // Keyword separation makes per-keyword builds independent
  // (Observation 3): farm them out across threads.
  unsigned num_threads = options.num_threads;
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;

  std::atomic<std::size_t> next{0};
  auto worker = [this, &store, &inverted, &next] {
    for (;;) {
      const std::size_t t = next.fetch_add(1);
      if (t >= indexes_.size()) break;
      const std::span<const ObjectId> inv =
          inverted.Objects(static_cast<KeywordId>(t));
      if (inv.empty()) continue;
      std::vector<SiteObject> sites;
      sites.reserve(inv.size());
      for (ObjectId o : inv) {
        sites.push_back({o, store.ObjectVertex(o)});
      }
      indexes_[t] =
          std::make_unique<ApxNvd>(graph_, std::move(sites), options_.nvd);
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }
  build_seconds_ = timer.ElapsedSeconds();
}

ApxNvd* KeywordIndex::EnsureIndex(KeywordId t) {
  if (t >= indexes_.size()) indexes_.resize(t + 1);
  if (indexes_[t] == nullptr) {
    indexes_[t] = std::make_unique<ApxNvd>(graph_, std::vector<SiteObject>{},
                                           options_.nvd);
  }
  return indexes_[t].get();
}

void KeywordIndex::OnObjectInserted(ObjectId o, VertexId vertex,
                                    std::span<const KeywordId> keywords,
                                    DistanceOracle& oracle) {
  for (KeywordId t : keywords) {
    EnsureIndex(t)->Insert(o, vertex, oracle);
  }
}

void KeywordIndex::OnObjectDeleted(ObjectId o,
                                   std::span<const KeywordId> keywords) {
  for (KeywordId t : keywords) {
    if (const ApxNvd* index = Index(t); index != nullptr) {
      indexes_[t]->Delete(o);
    }
  }
}

void KeywordIndex::OnKeywordAdded(ObjectId o, VertexId vertex,
                                  KeywordId keyword, DistanceOracle& oracle) {
  EnsureIndex(keyword)->Insert(o, vertex, oracle);
}

void KeywordIndex::OnKeywordRemoved(ObjectId o, KeywordId keyword) {
  if (Index(keyword) != nullptr) indexes_[keyword]->Delete(o);
}

std::size_t KeywordIndex::RebuildPending() {
  std::vector<ApxNvd*> pending;
  for (auto& index : indexes_) {
    if (index != nullptr && index->NeedsRebuild()) {
      pending.push_back(index.get());
    }
  }
  unsigned num_threads = options_.num_threads;
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;
  num_threads = std::min<unsigned>(
      num_threads,
      static_cast<unsigned>(std::max<std::size_t>(1, pending.size())));
  std::atomic<std::size_t> next{0};
  auto worker = [&pending, &next] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= pending.size()) break;
      pending[i]->Rebuild();
    }
  };
  if (num_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> workers;
    for (unsigned i = 0; i < num_threads; ++i) workers.emplace_back(worker);
    for (auto& w : workers) w.join();
  }
  return pending.size();
}

std::size_t KeywordIndex::NumVoronoiIndexes() const {
  std::size_t count = 0;
  for (const auto& index : indexes_) {
    if (index != nullptr && index->HasVoronoi()) ++count;
  }
  return count;
}

std::size_t KeywordIndex::NumIndexes() const {
  std::size_t count = 0;
  for (const auto& index : indexes_) {
    if (index != nullptr) ++count;
  }
  return count;
}

std::size_t KeywordIndex::MemoryBytes() const {
  std::size_t total = indexes_.size() * sizeof(void*);
  for (const auto& index : indexes_) {
    if (index != nullptr) total += index->MemoryBytes();
  }
  return total;
}

}  // namespace kspin
