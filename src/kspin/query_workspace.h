// Per-query reusable scratch of one QueryProcessor (and, transitively, of
// one serving thread): pooled inverted-heap backing storage, the heap
// vector itself, the stamped dedup set and the priority-queue backing
// vectors of the query algorithms. One workspace serves one query at a
// time; a thread reuses its workspace across queries so steady-state query
// execution performs no heap allocation.
#ifndef KSPIN_KSPIN_QUERY_WORKSPACE_H_
#define KSPIN_KSPIN_QUERY_WORKSPACE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stamped_set.h"
#include "common/types.h"
#include "kspin/inverted_heap.h"

namespace kspin {

/// Pooled per-query scratch. Not thread-safe: one workspace per thread.
class QueryWorkspace {
 public:
  /// Priority-queue cursor over heaps, keyed by MINKEY. The comparator is
  /// lexicographic on (key, heap index), matching the extraction order of
  /// the std::pair-based priority_queue it replaces.
  struct DistanceCursor {
    Distance key;
    std::uint32_t heap;
    bool operator>(const DistanceCursor& o) const {
      if (key != o.key) return key > o.key;
      return heap > o.heap;
    }
  };

  /// Priority-queue cursor over heaps, keyed by pseudo lower-bound score.
  /// Score-only comparison, matching the original TopK PQEntry.
  struct ScoreCursor {
    double score;
    std::uint32_t heap;
    bool operator>(const ScoreCursor& o) const { return score > o.score; }
  };

  /// Resets the workspace for a new query. Pooled scratch objects and the
  /// backing vectors keep their capacity.
  void BeginQuery() {
    next_scratch_ = 0;
    heaps_.clear();
    evaluated_.Clear();
    distance_queue_.clear();
    score_queue_.clear();
  }

  /// Hands out the next pooled heap scratch (reset, capacity retained).
  /// Valid until the next BeginQuery.
  InvertedHeap::Scratch* AcquireHeapScratch() {
    if (next_scratch_ == pool_.size()) pool_.emplace_back();
    InvertedHeap::Scratch* scratch = &pool_[next_scratch_++];
    scratch->Reset();
    return scratch;
  }

  /// The query's heap set (cleared by BeginQuery, capacity retained).
  std::vector<InvertedHeap>& Heaps() { return heaps_; }

  /// Stamped dedup set shared by the query algorithms (each query uses at
  /// most one of BooleanKnn/BooleanKnnCnf/TopK at a time).
  StampedIdSet& Evaluated() { return evaluated_; }

  /// Backing vector of the per-heap MINKEY priority queue.
  std::vector<DistanceCursor>& DistanceQueue() { return distance_queue_; }

  /// Backing vector of the per-heap score priority queue.
  std::vector<ScoreCursor>& ScoreQueue() { return score_queue_; }

 private:
  // deque: stable addresses while the pool grows mid-query.
  std::deque<InvertedHeap::Scratch> pool_;
  std::size_t next_scratch_ = 0;
  std::vector<InvertedHeap> heaps_;
  StampedIdSet evaluated_;
  std::vector<DistanceCursor> distance_queue_;
  std::vector<ScoreCursor> score_queue_;
};

}  // namespace kspin

#endif  // KSPIN_KSPIN_QUERY_WORKSPACE_H_
