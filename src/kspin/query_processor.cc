#include "kspin/query_processor.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <queue>

namespace kspin {
namespace {

// Steady-clock nanoseconds for QueryStats stage timings. Two reads per
// stage; ~20-40ns each, noise next to a single distance computation.
inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Keeps the k best (smallest-key) results seen so far and exposes the
// current D_k (the k-th best key; +infinity while fewer than k are held).
template <typename Key, typename Value>
class BestK {
 public:
  explicit BestK(std::uint32_t k) : k_(k) {}

  Key Dk() const {
    return heap_.size() < k_ ? std::numeric_limits<Key>::max()
                             : heap_.top().first;
  }

  void Offer(Key key, const Value& value) {
    if (heap_.size() < k_) {
      heap_.push({key, value});
    } else if (key < heap_.top().first) {
      heap_.pop();
      heap_.push({key, value});
    }
  }

  // Ascending by key.
  std::vector<std::pair<Key, Value>> Sorted() {
    std::vector<std::pair<Key, Value>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  std::uint32_t k_;
  std::priority_queue<std::pair<Key, Value>> heap_;  // Max-heap on key.
};

// D_k for doubles needs infinity, not max().
inline double DoubleDk(double dk) {
  return dk == std::numeric_limits<double>::max()
             ? std::numeric_limits<double>::infinity()
             : dk;
}

std::vector<KeywordId> Deduplicate(std::span<const KeywordId> keywords) {
  std::vector<KeywordId> unique(keywords.begin(), keywords.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  return unique;
}

}  // namespace

template <typename SatisfiesFn>
std::vector<BkNNResult> QueryProcessor::DisjunctiveSearch(
    VertexId q, std::uint32_t k, std::vector<InvertedHeap>& heaps,
    const SatisfiesFn& satisfies, QueryStats* stats,
    const QueryControl* control) {
  detail::CheckControl(control, 0);  // Abort before any work if expired.
  QueryStats local;
  const std::uint64_t search_start_ns = stats != nullptr ? NowNs() : 0;
  BestK<Distance, ObjectId> best(k);
  oracle_.BeginSourceBatch(*oracle_workspace_, q);

  // One priority-queue cursor per heap, keyed by its MINKEY (Algorithm 1).
  // Pooled backing vector + std::*_heap replicate the priority_queue this
  // used to be, without its per-query allocation.
  const auto greater = std::greater<QueryWorkspace::DistanceCursor>{};
  std::vector<QueryWorkspace::DistanceCursor>& pq =
      workspace_.DistanceQueue();
  pq.clear();
  for (std::size_t i = 0; i < heaps.size(); ++i) {
    ++local.heaps_created;
    if (!heaps[i].Empty()) {
      pq.push_back({heaps[i].MinKey(), static_cast<std::uint32_t>(i)});
      std::push_heap(pq.begin(), pq.end(), greater);
    }
  }

  StampedIdSet& evaluated = workspace_.Evaluated();
  evaluated.Clear();
  while (!pq.empty() && pq.front().key < best.Dk()) {
    const std::size_t i = pq.front().heap;
    std::pop_heap(pq.begin(), pq.end(), greater);
    pq.pop_back();
    InvertedHeap::Candidate c = heaps[i].ExtractMin();
    detail::CheckControl(control, ++local.candidates_extracted);
    if (!heaps[i].Empty()) {
      pq.push_back({heaps[i].MinKey(), static_cast<std::uint32_t>(i)});
      std::push_heap(pq.begin(), pq.end(), greater);
    }

    if (c.deleted) continue;
    if (!evaluated.Insert(c.object)) continue;  // Seen via another heap.
    if (!satisfies(c.object)) continue;
    if (approximate_mode_) {
      // Brownout: rank by the (monotone) lower bound instead of paying
      // for the exact distance. Candidates pop in LB order, so the
      // D_k termination test stays sound against LB-valued entries.
      best.Offer(c.lower_bound, c.object);
      continue;
    }
    const Distance d = oracle_.NetworkDistance(*oracle_workspace_, q,
                                               c.vertex);
    ++local.network_distance_computations;
    best.Offer(d, c.object);
  }

  for (const InvertedHeap& heap : heaps) {
    local.lower_bounds_computed += heap.Stats().lower_bounds_computed;
    local.heap_insertions += heap.Stats().insertions;
    local.lb_batch_calls += heap.Stats().lb_batch_calls;
    local.lb_batch_items += heap.Stats().lb_batch_items;
  }

  std::vector<BkNNResult> results;
  for (const auto& [d, o] : best.Sorted()) results.push_back({o, d});
  if (stats != nullptr) {
    // Every distance paid for an object that missed the final top-k was a
    // false positive (including early candidates later evicted by D_k).
    // Saturating: in approximate mode results arrive without distances.
    local.false_positive_distances =
        local.network_distance_computations > results.size()
            ? local.network_distance_computations - results.size()
            : 0;
    local.results_returned = results.size();
    local.search_ns = NowNs() - search_start_ns;
    *stats += local;
  }
  return results;
}

std::vector<BkNNResult> QueryProcessor::BooleanKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    BooleanOp op, QueryStats* stats, const QueryControl* control) {
  if (k == 0 || keywords.empty()) return {};
  const std::vector<KeywordId> unique = Deduplicate(keywords);
  if (op == BooleanOp::kConjunctive) {
    return ConjunctiveKnn(q, k, unique, stats, control);
  }
  workspace_.BeginQuery();
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  std::vector<InvertedHeap>& heaps = workspace_.Heaps();
  heaps.reserve(unique.size());
  for (KeywordId t : unique) {
    heaps.push_back(
        heap_generator_.Make(t, q, workspace_.AcquireHeapScratch()));
  }
  if (stats != nullptr) stats->heap_build_ns += NowNs() - build_start_ns;
  // Membership re-check against the live store keeps results exact even
  // when keyword indexes carry lazy tombstones.
  auto satisfies = [this, &unique](ObjectId o) {
    for (KeywordId t : unique) {
      if (store_.Contains(o, t)) return true;
    }
    return false;
  };
  return DisjunctiveSearch(q, k, heaps, satisfies, stats, control);
}

std::vector<BkNNResult> QueryProcessor::ConjunctiveKnn(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    QueryStats* stats, const QueryControl* control) {
  // Use only the heap of the least frequent keyword (Section 4.1.2): it
  // has the fewest candidates and every result must contain it.
  KeywordId rarest = keywords.front();
  for (KeywordId t : keywords) {
    if (inverted_.ListSize(t) < inverted_.ListSize(rarest)) rarest = t;
  }
  if (inverted_.ListSize(rarest) == 0) return {};

  workspace_.BeginQuery();
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  std::vector<InvertedHeap>& heaps = workspace_.Heaps();
  heaps.push_back(
      heap_generator_.Make(rarest, q, workspace_.AcquireHeapScratch()));
  if (stats != nullptr) stats->heap_build_ns += NowNs() - build_start_ns;
  auto satisfies = [this, &keywords](ObjectId o) {
    for (KeywordId t : keywords) {
      if (!store_.Contains(o, t)) return false;
    }
    return true;
  };
  return DisjunctiveSearch(q, k, heaps, satisfies, stats, control);
}

std::vector<BkNNResult> QueryProcessor::BooleanKnnCnf(
    VertexId q, std::uint32_t k,
    std::span<const std::vector<KeywordId>> clauses, QueryStats* stats,
    const QueryControl* control) {
  if (k == 0 || clauses.empty()) return {};
  // Drive candidate generation with the clause of smallest total
  // inverted-list size (every result must satisfy it); filter candidates
  // against the full CNF.
  std::size_t driver = 0;
  std::size_t driver_size = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    std::size_t size = 0;
    for (KeywordId t : clauses[i]) size += inverted_.ListSize(t);
    if (size < driver_size) {
      driver_size = size;
      driver = i;
    }
  }
  workspace_.BeginQuery();
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  std::vector<InvertedHeap>& heaps = workspace_.Heaps();
  for (KeywordId t : Deduplicate(clauses[driver])) {
    heaps.push_back(
        heap_generator_.Make(t, q, workspace_.AcquireHeapScratch()));
  }
  if (stats != nullptr) stats->heap_build_ns += NowNs() - build_start_ns;
  auto satisfies = [this, &clauses](ObjectId o) {
    for (const std::vector<KeywordId>& clause : clauses) {
      bool any = false;
      for (KeywordId t : clause) {
        if (store_.Contains(o, t)) {
          any = true;
          break;
        }
      }
      if (!any) return false;
    }
    return true;
  };
  return DisjunctiveSearch(q, k, heaps, satisfies, stats, control);
}

std::vector<TopKResult> QueryProcessor::TopK(
    VertexId q, std::uint32_t k, std::span<const KeywordId> keywords,
    const ScoringFunction& scoring, QueryStats* stats,
    const QueryControl* control) {
  if (k == 0 || keywords.empty()) return {};
  detail::CheckControl(control, 0);  // Abort before any work if expired.
  const std::vector<KeywordId> unique = Deduplicate(keywords);
  const PreparedQuery prepared = relevance_.PrepareQuery(unique);

  QueryStats local;
  workspace_.BeginQuery();
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  std::vector<InvertedHeap>& heaps = workspace_.Heaps();
  heaps.reserve(unique.size());
  for (KeywordId t : unique) {
    heaps.push_back(
        heap_generator_.Make(t, q, workspace_.AcquireHeapScratch()));
    ++local.heaps_created;
  }
  if (stats != nullptr) local.heap_build_ns = NowNs() - build_start_ns;
  const std::uint64_t search_start_ns = stats != nullptr ? NowNs() : 0;
  oracle_.BeginSourceBatch(*oracle_workspace_, q);

  // Pseudo lower-bound score of heap i (Algorithm 2): assume every unseen
  // object in H_i contains keyword t_j only if MINKEY(H_i) >= MINKEY(H_j);
  // impact of such a keyword is bounded by lambda_{t_j,max}. With the
  // ablation switch off, fall back to the valid lower bound ST_all that
  // credits every keyword to every unseen object.
  auto pseudo_lb = [this, &prepared, &heaps,
                    &scoring](std::size_t i) -> double {
    const Distance min_i = heaps[i].MinKey();
    if (min_i == kInfDistance) {
      return std::numeric_limits<double>::infinity();
    }
    double tr_p = 0.0;
    for (std::size_t j = 0; j < heaps.size(); ++j) {
      if (!use_pseudo_lower_bounds_ || min_i >= heaps[j].MinKey()) {
        tr_p += prepared.impacts[j] *
                relevance_.MaxImpact(prepared.keywords[j]);
      }
    }
    return scoring.LowerBoundScore(min_i, tr_p);
  };

  const auto greater = std::greater<QueryWorkspace::ScoreCursor>{};
  std::vector<QueryWorkspace::ScoreCursor>& pq = workspace_.ScoreQueue();
  pq.clear();
  for (std::size_t i = 0; i < heaps.size(); ++i) {
    const double score = pseudo_lb(i);
    if (score != std::numeric_limits<double>::infinity()) {
      pq.push_back({score, static_cast<std::uint32_t>(i)});
      std::push_heap(pq.begin(), pq.end(), greater);
    }
  }

  BestK<double, std::pair<ObjectId, std::pair<Distance, double>>> best(k);
  StampedIdSet& processed = workspace_.Evaluated();
  processed.Clear();
  while (!pq.empty() && pq.front().score < DoubleDk(best.Dk())) {
    const std::size_t i = pq.front().heap;
    std::pop_heap(pq.begin(), pq.end(), greater);
    pq.pop_back();
    if (heaps[i].Empty()) continue;  // Stale entry for a drained heap.
    InvertedHeap::Candidate c = heaps[i].ExtractMin();
    detail::CheckControl(control, ++local.candidates_extracted);
    const double score = pseudo_lb(i);
    if (score != std::numeric_limits<double>::infinity()) {
      pq.push_back({score, static_cast<std::uint32_t>(i)});
      std::push_heap(pq.begin(), pq.end(), greater);
    }

    if (c.deleted) continue;
    if (!processed.Insert(c.object)) continue;
    // Cheap filter: the candidate's *actual* textual relevance with its
    // lower-bound distance (line 10 of Algorithm 3).
    const double tr = relevance_.TextualRelevance(prepared, c.object);
    if (tr <= 0.0) continue;
    const double lb_score = scoring.LowerBoundScore(c.lower_bound, tr);
    if (lb_score > DoubleDk(best.Dk())) {
      ++local.candidates_pruned_lb;  // LB beat D_k: no distance paid.
      continue;
    }
    if (approximate_mode_) {
      // Brownout: admit on the lower-bound score alone; the reported
      // distance is the LB distance, not the exact network distance.
      best.Offer(lb_score, {c.object, {c.lower_bound, tr}});
      continue;
    }
    const Distance d = oracle_.NetworkDistance(*oracle_workspace_, q,
                                               c.vertex);
    ++local.network_distance_computations;
    const double st = scoring.Score(d, tr);
    best.Offer(st, {c.object, {d, tr}});
  }

  for (const InvertedHeap& heap : heaps) {
    local.lower_bounds_computed += heap.Stats().lower_bounds_computed;
    local.heap_insertions += heap.Stats().insertions;
    local.lb_batch_calls += heap.Stats().lb_batch_calls;
    local.lb_batch_items += heap.Stats().lb_batch_items;
  }

  std::vector<TopKResult> results;
  for (const auto& [score, payload] : best.Sorted()) {
    results.push_back(
        {payload.first, score, payload.second.first, payload.second.second});
  }
  if (stats != nullptr) {
    // Saturating: in approximate mode results arrive without distances.
    local.false_positive_distances =
        local.network_distance_computations > results.size()
            ? local.network_distance_computations - results.size()
            : 0;
    local.results_returned = results.size();
    local.search_ns = NowNs() - search_start_ns;
    *stats += local;
  }
  return results;
}

// ---------------------------------------------------------------------
// Incremental top-k stream.
//
// Same machinery as TopK, reorganized around an emission rule instead of a
// D_k cutoff: a fully-scored candidate is released once its score is at
// most every heap's pseudo lower bound — at that point no unseen object
// can beat it (Lemma 2's argument, applied per emission). Without a k
// bound there is no D_k to pre-filter candidates, so every textually
// relevant extraction pays its network distance; that is the inherent
// price of "give me more" pagination.
//
// A stream can outlive any number of interleaved one-shot queries on the
// same processor, so it owns its heaps (private scratch, not the pooled
// workspace) and its own dedup set.
// ---------------------------------------------------------------------

struct QueryProcessor::TopKStream::State {
  QueryProcessor* processor;
  VertexId q;
  PreparedQuery prepared;
  ScoringFunction scoring;
  std::vector<InvertedHeap> heaps;

  struct PQEntry {
    double score;
    std::size_t heap;
    bool operator>(const PQEntry& o) const { return score > o.score; }
  };
  std::priority_queue<PQEntry, std::vector<PQEntry>, std::greater<PQEntry>>
      pq;
  struct Scored {
    double score;
    TopKResult result;
    bool operator>(const Scored& o) const { return score > o.score; }
  };
  std::priority_queue<Scored, std::vector<Scored>, std::greater<Scored>>
      scored;
  StampedIdSet processed;

  double PseudoLb(std::size_t i) const {
    const Distance min_i = heaps[i].MinKey();
    if (min_i == kInfDistance) {
      return std::numeric_limits<double>::infinity();
    }
    double tr_p = 0.0;
    for (std::size_t j = 0; j < heaps.size(); ++j) {
      if (min_i >= heaps[j].MinKey()) {
        tr_p += prepared.impacts[j] *
                processor->relevance_.MaxImpact(prepared.keywords[j]);
      }
    }
    return scoring.LowerBoundScore(min_i, tr_p);
  }
};

QueryProcessor::TopKStream::TopKStream(std::shared_ptr<State> state)
    : state_(std::move(state)) {}

std::optional<TopKResult> QueryProcessor::TopKStream::Next() {
  State& s = *state_;
  for (;;) {
    const double frontier =
        s.pq.empty() ? std::numeric_limits<double>::infinity()
                     : s.pq.top().score;
    if (!s.scored.empty() && s.scored.top().score <= frontier) {
      TopKResult result = s.scored.top().result;
      s.scored.pop();
      ++produced_;
      return result;
    }
    if (s.pq.empty()) return std::nullopt;  // Everything emitted.

    const std::size_t i = s.pq.top().heap;
    s.pq.pop();
    if (s.heaps[i].Empty()) continue;  // Stale entry for a drained heap.
    const InvertedHeap::Candidate c = s.heaps[i].ExtractMin();
    const double refreshed = s.PseudoLb(i);
    if (refreshed != std::numeric_limits<double>::infinity()) {
      s.pq.push({refreshed, i});
    }
    if (c.deleted) continue;
    if (!s.processed.Insert(c.object)) continue;
    const double tr =
        s.processor->relevance_.TextualRelevance(s.prepared, c.object);
    if (tr <= 0.0) continue;
    const Distance d = s.processor->oracle_.NetworkDistance(
        *s.processor->oracle_workspace_, s.q, c.vertex);
    const double score = s.scoring.Score(d, tr);
    s.scored.push({score, TopKResult{c.object, score, d, tr}});
  }
}

QueryProcessor::TopKStream QueryProcessor::OpenTopKStream(
    VertexId q, std::span<const KeywordId> keywords,
    const ScoringFunction& scoring) {
  auto state = std::make_shared<TopKStream::State>();
  state->processor = this;
  state->q = q;
  state->scoring = scoring;
  const std::vector<KeywordId> unique = Deduplicate(keywords);
  state->prepared = relevance_.PrepareQuery(unique);
  oracle_.BeginSourceBatch(*oracle_workspace_, q);
  state->heaps.reserve(unique.size());
  for (KeywordId t : unique) {
    state->heaps.push_back(heap_generator_.Make(t, q));
  }
  for (std::size_t i = 0; i < state->heaps.size(); ++i) {
    const double score = state->PseudoLb(i);
    if (score != std::numeric_limits<double>::infinity()) {
      state->pq.push({score, i});
    }
  }
  return TopKStream(std::move(state));
}

}  // namespace kspin
