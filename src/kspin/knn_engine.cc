#include "kspin/knn_engine.h"

#include <algorithm>
#include <chrono>
#include <queue>

namespace kspin {
namespace {

inline std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

KnnEngine::KnnEngine(const Graph& graph, std::vector<SiteObject> objects,
                     const LowerBoundModule& lower_bounds, DistanceOracle& oracle,
                     ApxNvdOptions options)
    : lower_bounds_(lower_bounds),
      oracle_(oracle),
      oracle_workspace_(oracle.MakeWorkspace()),
      nvd_(graph, std::move(objects), options) {}

std::vector<BkNNResult> KnnEngine::Knn(VertexId q, std::uint32_t k,
                                       QueryStats* stats) {
  std::vector<BkNNResult> results;
  if (k == 0) return results;
  QueryStats local;
  oracle_.BeginSourceBatch(*oracle_workspace_, q);
  const std::uint64_t build_start_ns = stats != nullptr ? NowNs() : 0;
  InvertedHeap heap(&nvd_, &lower_bounds_, q, &heap_scratch_);
  if (stats != nullptr) local.heap_build_ns = NowNs() - build_start_ns;
  const std::uint64_t search_start_ns = stats != nullptr ? NowNs() : 0;

  // Max-heap of the best k distances for the D_k bound.
  std::priority_queue<std::pair<Distance, ObjectId>> best;
  auto dk = [&best, k] {
    return best.size() < k ? kInfDistance : best.top().first;
  };
  ++local.heaps_created;
  while (!heap.Empty() && heap.MinKey() < dk()) {
    const InvertedHeap::Candidate c = heap.ExtractMin();
    ++local.candidates_extracted;
    if (c.deleted) continue;
    const Distance d = oracle_.NetworkDistance(*oracle_workspace_, q,
                                               c.vertex);
    ++local.network_distance_computations;
    if (d < dk()) {
      if (best.size() == k) best.pop();
      best.push({d, c.object});
    }
  }
  local.lower_bounds_computed = heap.Stats().lower_bounds_computed;
  local.heap_insertions = heap.Stats().insertions;
  local.lb_batch_calls = heap.Stats().lb_batch_calls;
  local.lb_batch_items = heap.Stats().lb_batch_items;
  results.reserve(best.size());
  while (!best.empty()) {
    results.push_back({best.top().second, best.top().first});
    best.pop();
  }
  std::reverse(results.begin(), results.end());
  if (stats != nullptr) {
    local.false_positive_distances =
        local.network_distance_computations - results.size();
    local.results_returned = results.size();
    local.search_ns = NowNs() - search_start_ns;
    *stats += local;
  }
  return results;
}

void KnnEngine::Insert(ObjectId o, VertexId vertex) {
  nvd_.Insert(o, vertex, oracle_);
}

void KnnEngine::Delete(ObjectId o) { nvd_.Delete(o); }

bool KnnEngine::MaintainIndex() {
  if (!nvd_.NeedsRebuild()) return false;
  nvd_.Rebuild();
  return true;
}

}  // namespace kspin
