#include "kspin/knn_engine.h"

#include <algorithm>
#include <queue>

namespace kspin {

KnnEngine::KnnEngine(const Graph& graph, std::vector<SiteObject> objects,
                     const LowerBoundModule& lower_bounds, DistanceOracle& oracle,
                     ApxNvdOptions options)
    : lower_bounds_(lower_bounds),
      oracle_(oracle),
      oracle_workspace_(oracle.MakeWorkspace()),
      nvd_(graph, std::move(objects), options) {}

std::vector<BkNNResult> KnnEngine::Knn(VertexId q, std::uint32_t k,
                                       QueryStats* stats) {
  std::vector<BkNNResult> results;
  if (k == 0) return results;
  oracle_.BeginSourceBatch(*oracle_workspace_, q);
  InvertedHeap heap(&nvd_, &lower_bounds_, q, &heap_scratch_);

  // Max-heap of the best k distances for the D_k bound.
  std::priority_queue<std::pair<Distance, ObjectId>> best;
  auto dk = [&best, k] {
    return best.size() < k ? kInfDistance : best.top().first;
  };
  QueryStats local;
  ++local.heaps_created;
  while (!heap.Empty() && heap.MinKey() < dk()) {
    const InvertedHeap::Candidate c = heap.ExtractMin();
    ++local.candidates_extracted;
    if (c.deleted) continue;
    const Distance d = oracle_.NetworkDistance(*oracle_workspace_, q,
                                               c.vertex);
    ++local.network_distance_computations;
    if (d < dk()) {
      if (best.size() == k) best.pop();
      best.push({d, c.object});
    }
  }
  local.lower_bounds_computed = heap.Stats().lower_bounds_computed;
  if (stats != nullptr) {
    stats->network_distance_computations +=
        local.network_distance_computations;
    stats->candidates_extracted += local.candidates_extracted;
    stats->lower_bounds_computed += local.lower_bounds_computed;
    stats->heaps_created += local.heaps_created;
  }
  results.reserve(best.size());
  while (!best.empty()) {
    results.push_back({best.top().second, best.top().first});
    best.pop();
  }
  std::reverse(results.begin(), results.end());
  return results;
}

void KnnEngine::Insert(ObjectId o, VertexId vertex) {
  nvd_.Insert(o, vertex, oracle_);
}

void KnnEngine::Delete(ObjectId o) { nvd_.Delete(o); }

bool KnnEngine::MaintainIndex() {
  if (!nvd_.NeedsRebuild()) return false;
  nvd_.Rebuild();
  return true;
}

}  // namespace kspin
