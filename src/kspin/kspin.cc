#include "kspin/kspin.h"

#include <algorithm>
#include <stdexcept>

namespace kspin {
namespace {

std::size_t MaxKeywordId(const DocumentStore& store) {
  std::size_t max_id = 0;
  for (ObjectId o = 0; o < store.NumSlots(); ++o) {
    if (!store.IsLive(o)) continue;
    for (const DocEntry& e : store.Document(o)) {
      max_id = std::max<std::size_t>(max_id, e.keyword);
    }
  }
  return max_id;
}

}  // namespace

KSpin::KSpin(const Graph& graph, DocumentStore store, DistanceOracle& oracle,
             KSpinOptions options)
    : graph_(graph), store_(std::move(store)), oracle_(oracle) {
  const std::size_t num_keywords =
      store_.NumLiveObjects() == 0 ? 0 : MaxKeywordId(store_) + 1;
  inverted_ = std::make_unique<InvertedIndex>(store_, num_keywords);
  relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
  alt_ = std::make_unique<AltIndex>(graph_, options.num_landmarks,
                                    LandmarkStrategy::kFarthest,
                                    options.seed);
  lower_bounds_ = alt_.get();
  if (options.use_euclidean_heuristic) {
    euclidean_ = std::make_unique<EuclideanLowerBound>(graph_);
    composite_ = std::make_unique<MaxLowerBound>(
        std::vector<const LowerBoundModule*>{alt_.get(), euclidean_.get()});
    lower_bounds_ = composite_.get();
  }
  KeywordIndexOptions ki_options;
  ki_options.nvd.rho = options.rho;
  ki_options.nvd.storage = options.nvd_storage;
  ki_options.nvd.lazy_insert_threshold = options.lazy_insert_threshold;
  ki_options.num_threads = options.num_threads;
  keyword_index_ =
      std::make_unique<KeywordIndex>(graph_, store_, *inverted_, ki_options);
  processor_ = std::make_unique<QueryProcessor>(
      store_, *inverted_, *relevance_, *keyword_index_, *lower_bounds_,
      oracle_);
}

KSpin::KSpin(const Graph& graph, DocumentStore store, DistanceOracle& oracle,
             std::unique_ptr<AltIndex> alt,
             std::unique_ptr<KeywordIndex> keyword_index,
             KSpinOptions options, std::uint64_t initial_generation)
    : graph_(graph),
      store_(std::move(store)),
      oracle_(oracle),
      generation_(initial_generation) {
  if (alt == nullptr || keyword_index == nullptr) {
    throw std::invalid_argument("KSpin: restore requires prebuilt indexes");
  }
  const std::size_t num_keywords =
      store_.NumLiveObjects() == 0 ? 0 : MaxKeywordId(store_) + 1;
  inverted_ = std::make_unique<InvertedIndex>(store_, num_keywords);
  relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
  alt_ = std::move(alt);
  lower_bounds_ = alt_.get();
  if (options.use_euclidean_heuristic) {
    euclidean_ = std::make_unique<EuclideanLowerBound>(graph_);
    composite_ = std::make_unique<MaxLowerBound>(
        std::vector<const LowerBoundModule*>{alt_.get(), euclidean_.get()});
    lower_bounds_ = composite_.get();
  }
  keyword_index_ = std::move(keyword_index);
  processor_ = std::make_unique<QueryProcessor>(
      store_, *inverted_, *relevance_, *keyword_index_, *lower_bounds_,
      oracle_);
}

ObjectId KSpin::InsertObject(VertexId vertex,
                             std::vector<DocEntry> document) {
  const ObjectId o = store_.AddObject(vertex, std::move(document));
  std::vector<KeywordId> keywords;
  KeywordId max_keyword = 0;
  for (const DocEntry& e : store_.Document(o)) {
    keywords.push_back(e.keyword);
    max_keyword = std::max(max_keyword, e.keyword);
  }
  if (!keywords.empty() && max_keyword >= inverted_->NumKeywords()) {
    // Grow the keyword universe once, to the document's largest id: the
    // rebuild scans the whole store (which already holds this object), so
    // growing per-entry would trip over the document's later keywords.
    inverted_ = std::make_unique<InvertedIndex>(store_, max_keyword + 1);
    relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
    processor_ = std::make_unique<QueryProcessor>(
        store_, *inverted_, *relevance_, *keyword_index_, *lower_bounds_,
        oracle_);
    ++generation_;  // External processors now reference dead components.
  }
  for (KeywordId t : keywords) inverted_->Add(t, o);
  relevance_->RefreshObject(o);
  keyword_index_->OnObjectInserted(o, vertex, keywords, oracle_);
  return o;
}

void KSpin::DeleteObject(ObjectId o) {
  std::vector<KeywordId> keywords;
  for (const DocEntry& e : store_.Document(o)) keywords.push_back(e.keyword);
  store_.DeleteObject(o);
  for (KeywordId t : keywords) inverted_->Remove(t, o);
  relevance_->RefreshObject(o);
  keyword_index_->OnObjectDeleted(o, keywords);
}

void KSpin::AddKeywordToObject(ObjectId o, KeywordId keyword,
                               std::uint32_t frequency) {
  const bool had = store_.Contains(o, keyword);
  store_.AddKeyword(o, keyword, frequency);
  if (!had) {
    if (keyword >= inverted_->NumKeywords()) {
      inverted_ = std::make_unique<InvertedIndex>(store_, keyword + 1);
      relevance_ = std::make_unique<RelevanceModel>(store_, *inverted_);
      processor_ = std::make_unique<QueryProcessor>(
          store_, *inverted_, *relevance_, *keyword_index_, *lower_bounds_,
          oracle_);
      ++generation_;  // External processors now reference dead components.
    } else {
      inverted_->Add(keyword, o);
    }
    keyword_index_->OnKeywordAdded(o, store_.ObjectVertex(o), keyword,
                                   oracle_);
  }
  relevance_->RefreshObject(o);
}

void KSpin::RemoveKeywordFromObject(ObjectId o, KeywordId keyword) {
  store_.RemoveKeyword(o, keyword);
  inverted_->Remove(keyword, o);
  relevance_->RefreshObject(o);
  keyword_index_->OnKeywordRemoved(o, keyword);
}

}  // namespace kspin
