// Keyword-free k-nearest-neighbour engine over a single object set.
//
// The paper closes by noting that rho-Approximate NVDs "are useful
// techniques on their own": this engine is exactly that — one APX-NVD over
// a pre-determined POI set (the classic kNN-on-road-networks setting of
// G-tree/ROAD, no keywords involved), served through the same on-demand
// heap machinery, with the same lazy update support.
#ifndef KSPIN_KSPIN_KNN_ENGINE_H_
#define KSPIN_KSPIN_KNN_ENGINE_H_

#include <memory>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/inverted_heap.h"
#include "kspin/query_processor.h"
#include "nvd/apx_nvd.h"
#include "routing/lower_bound.h"
#include "routing/distance_oracle.h"

namespace kspin {

/// Exact kNN over one object set via an APX-NVD + on-demand heap.
class KnnEngine {
 public:
  /// Builds the engine over `objects`. `lower_bounds` and `oracle` must
  /// outlive it.
  KnnEngine(const Graph& graph, std::vector<SiteObject> objects,
            const LowerBoundModule& lower_bounds, DistanceOracle& oracle,
            ApxNvdOptions options = {});

  /// The k nearest live objects to q, ascending by network distance.
  std::vector<BkNNResult> Knn(VertexId q, std::uint32_t k,
                              QueryStats* stats = nullptr);

  /// Lazy insertion / deletion (Section 6.2 semantics).
  void Insert(ObjectId o, VertexId vertex);
  void Delete(ObjectId o);

  /// Rebuilds the NVD if the lazy budget ran out; returns true if rebuilt.
  bool MaintainIndex();

  std::size_t NumLiveObjects() const { return nvd_.NumLiveObjects(); }
  std::size_t MemoryBytes() const { return nvd_.MemoryBytes(); }

 private:
  const LowerBoundModule& lower_bounds_;
  DistanceOracle& oracle_;
  std::unique_ptr<OracleWorkspace> oracle_workspace_;
  InvertedHeap::Scratch heap_scratch_;  // Reused across Knn calls.
  ApxNvd nvd_;
};

}  // namespace kspin

#endif  // KSPIN_KSPIN_KNN_ENGINE_H_
