// Cooperative deadline / cancellation for long-running queries.
//
// A QueryControl is owned by the caller (a network server enforcing a
// per-request deadline, a UI thread cancelling a superseded search) and
// passed by pointer into the query algorithms, which poll Expired() at
// loop boundaries. Expiry aborts the query by throwing
// QueryCancelledError — a query either completes exactly or not at all;
// there are no silently truncated result sets.
#ifndef KSPIN_KSPIN_QUERY_CONTROL_H_
#define KSPIN_KSPIN_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace kspin {

/// Thrown by query algorithms when their QueryControl expires mid-search.
class QueryCancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Deadline and/or cancellation flag for one query. Either trigger may be
/// unset. The control must outlive the query it governs; the cancel flag
/// may be set from any thread.
struct QueryControl {
  /// Absolute deadline; time_point{} (the epoch default) means "none".
  std::chrono::steady_clock::time_point deadline{};
  /// Optional external cancel flag (e.g. flipped on connection close).
  const std::atomic<bool>* cancel = nullptr;

  /// True once the deadline has passed or the cancel flag is set.
  bool Expired() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline != std::chrono::steady_clock::time_point{} &&
           std::chrono::steady_clock::now() >= deadline;
  }

  /// Convenience: a control expiring `ms` milliseconds from now.
  static QueryControl AfterMillis(std::uint64_t ms) {
    QueryControl control;
    control.deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return control;
  }
};

namespace detail {

/// Polls `control` (if any) every `kCheckInterval` calls; call with
/// `count == 0` to force an immediate check so already-expired controls
/// abort before any work. Throws QueryCancelledError on expiry.
inline void CheckControl(const QueryControl* control, std::uint64_t count) {
  constexpr std::uint64_t kCheckInterval = 16;
  if (control == nullptr || count % kCheckInterval != 0) return;
  if (control->Expired()) {
    throw QueryCancelledError("query deadline exceeded or cancelled");
  }
}

}  // namespace detail
}  // namespace kspin

#endif  // KSPIN_KSPIN_QUERY_CONTROL_H_
