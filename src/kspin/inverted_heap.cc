#include "kspin/inverted_heap.h"

#include <algorithm>
#include <functional>

namespace kspin {

void InvertedHeap::StageNew(const SiteObject& site) {
  if (!scratch_->inserted.Insert(site.object)) return;  // Already inserted.
  scratch_->pending.push_back(site);
}

namespace {

/// Frontier size below which per-pair pricing beats the batch kernel
/// (dispatch, staging arrays, and the horizontal-max epilogue amortize
/// over ~one AVX2 row-quad). Both paths are bit-identical, so the
/// threshold is a pure performance knob.
constexpr std::size_t kScalarFlushThreshold = 8;

}  // namespace

void InvertedHeap::FlushPending() {
  std::vector<SiteObject>& pending = scratch_->pending;
  if (pending.empty()) return;

  // One flush = one batch pricing of the staged frontier. Small frontiers
  // (the common LazyReheap case) are priced with the per-pair loop; large
  // ones go through LowerBoundBatch, where the ALT module keeps the query
  // row hot and runs its SIMD kernel across the block.
  stats_.lower_bounds_computed += pending.size();
  stats_.lb_batch_items += pending.size();
  stats_.insertions += pending.size();
  ++stats_.lb_batch_calls;

  AlignedVector<Entry>& entries = scratch_->entries;
  const auto greater = std::greater<Entry>{};
  // Initial seeding fills an empty heap: one O(n) make_heap beats n
  // push_heap sifts. Extraction order is unaffected either way — the
  // comparator is a strict total order on (lower_bound, object).
  const bool bulk = entries.empty();
  if (pending.size() < kScalarFlushThreshold) {
    for (const SiteObject& site : pending) {
      const Distance lb = lower_bounds_->LowerBound(query_, site.vertex);
      entries.push_back({lb, site.object, site.vertex});
      if (!bulk) std::push_heap(entries.begin(), entries.end(), greater);
    }
  } else {
    std::vector<VertexId>& vertices = scratch_->batch_vertices;
    std::vector<Distance>& bounds = scratch_->batch_bounds;
    vertices.resize(pending.size());
    bounds.resize(pending.size());
    for (std::size_t i = 0; i < pending.size(); ++i) {
      vertices[i] = pending[i].vertex;
    }
    lower_bounds_->LowerBoundBatch(query_, vertices, bounds);
    for (std::size_t i = 0; i < pending.size(); ++i) {
      entries.push_back({bounds[i], pending[i].object, pending[i].vertex});
      if (!bulk) std::push_heap(entries.begin(), entries.end(), greater);
    }
  }
  if (bulk) std::make_heap(entries.begin(), entries.end(), greater);
  pending.clear();
}

InvertedHeap::Candidate InvertedHeap::ExtractMin() {
  AlignedVector<Entry>& entries = scratch_->entries;
  const Entry top = entries.front();
  std::pop_heap(entries.begin(), entries.end(), std::greater<Entry>{});
  entries.pop_back();
  ++stats_.extractions;

  // LazyReheap (Algorithm 4): inject the adjacent objects of the extracted
  // candidate so Property 1 keeps holding for the remaining objects. The
  // injected frontier is lower-bounded as one block.
  scratch_->expand.clear();
  nvd_->ExpandCandidates(top.object, &scratch_->expand);
  for (const SiteObject& site : scratch_->expand) StageNew(site);
  FlushPending();

  Candidate candidate;
  candidate.object = top.object;
  candidate.vertex = top.vertex;
  candidate.lower_bound = top.lower_bound;
  candidate.deleted = nvd_->IsDeleted(top.object);
  return candidate;
}

InvertedHeap::InvertedHeap(const ApxNvd* nvd,
                           const LowerBoundModule* lower_bounds, VertexId q,
                           Scratch* scratch)
    : nvd_(nvd), lower_bounds_(lower_bounds), query_(q), scratch_(scratch) {
  if (scratch_ == nullptr) {
    owned_ = std::make_unique<Scratch>();
    scratch_ = owned_.get();
  } else {
    scratch_->Reset();
  }
  nvd_->InitialCandidates(q, &scratch_->expand);
  for (const SiteObject& site : scratch_->expand) StageNew(site);
  FlushPending();
}

InvertedHeap HeapGenerator::Make(KeywordId t, VertexId q,
                                 InvertedHeap::Scratch* scratch) const {
  const ApxNvd* nvd = keyword_index_.Index(t);
  if (nvd == nullptr) return {};  // No objects: permanently empty.
  return InvertedHeap(nvd, &lower_bounds_, q, scratch);
}

}  // namespace kspin
