#include "kspin/inverted_heap.h"

namespace kspin {

void InvertedHeap::InsertNew(const SiteObject& site) {
  if (!inserted_.insert(site.object).second) return;  // Already inserted.
  const Distance lb = lower_bounds_->LowerBound(query_, site.vertex);
  ++stats_.lower_bounds_computed;
  ++stats_.insertions;
  queue_.push({lb, site.object, site.vertex});
}

InvertedHeap::Candidate InvertedHeap::ExtractMin() {
  const Entry top = queue_.top();
  queue_.pop();
  ++stats_.extractions;

  // LazyReheap (Algorithm 4): inject the adjacent objects of the extracted
  // candidate so Property 1 keeps holding for the remaining objects.
  scratch_.clear();
  nvd_->ExpandCandidates(top.object, &scratch_);
  for (const SiteObject& site : scratch_) InsertNew(site);

  Candidate candidate;
  candidate.object = top.object;
  candidate.vertex = top.vertex;
  candidate.lower_bound = top.lower_bound;
  candidate.deleted = nvd_->IsDeleted(top.object);
  return candidate;
}

InvertedHeap::InvertedHeap(const ApxNvd* nvd,
                           const LowerBoundModule* lower_bounds,
                           VertexId q)
    : nvd_(nvd), lower_bounds_(lower_bounds), query_(q) {
  std::vector<SiteObject> initial;
  nvd_->InitialCandidates(q, &initial);
  for (const SiteObject& site : initial) InsertNew(site);
}

InvertedHeap HeapGenerator::Make(KeywordId t, VertexId q) const {
  const ApxNvd* nvd = keyword_index_.Index(t);
  if (nvd == nullptr) return {};  // No objects: permanently empty.
  return InvertedHeap(nvd, &lower_bounds_, q);
}

}  // namespace kspin
