#include "kspin/inverted_heap.h"

#include <algorithm>
#include <functional>

namespace kspin {

void InvertedHeap::InsertNew(const SiteObject& site) {
  if (!scratch_->inserted.Insert(site.object)) return;  // Already inserted.
  const Distance lb = lower_bounds_->LowerBound(query_, site.vertex);
  ++stats_.lower_bounds_computed;
  ++stats_.insertions;
  scratch_->entries.push_back({lb, site.object, site.vertex});
  std::push_heap(scratch_->entries.begin(), scratch_->entries.end(),
                 std::greater<Entry>{});
}

InvertedHeap::Candidate InvertedHeap::ExtractMin() {
  const Entry top = scratch_->entries.front();
  std::pop_heap(scratch_->entries.begin(), scratch_->entries.end(),
                std::greater<Entry>{});
  scratch_->entries.pop_back();
  ++stats_.extractions;

  // LazyReheap (Algorithm 4): inject the adjacent objects of the extracted
  // candidate so Property 1 keeps holding for the remaining objects.
  scratch_->expand.clear();
  nvd_->ExpandCandidates(top.object, &scratch_->expand);
  for (const SiteObject& site : scratch_->expand) InsertNew(site);

  Candidate candidate;
  candidate.object = top.object;
  candidate.vertex = top.vertex;
  candidate.lower_bound = top.lower_bound;
  candidate.deleted = nvd_->IsDeleted(top.object);
  return candidate;
}

InvertedHeap::InvertedHeap(const ApxNvd* nvd,
                           const LowerBoundModule* lower_bounds, VertexId q,
                           Scratch* scratch)
    : nvd_(nvd), lower_bounds_(lower_bounds), query_(q), scratch_(scratch) {
  if (scratch_ == nullptr) {
    owned_ = std::make_unique<Scratch>();
    scratch_ = owned_.get();
  } else {
    scratch_->Reset();
  }
  nvd_->InitialCandidates(q, &scratch_->expand);
  for (const SiteObject& site : scratch_->expand) InsertNew(site);
}

InvertedHeap HeapGenerator::Make(KeywordId t, VertexId q,
                                 InvertedHeap::Scratch* scratch) const {
  const ApxNvd* nvd = keyword_index_.Index(t);
  if (nvd == nullptr) return {};  // No objects: permanently empty.
  return InvertedHeap(nvd, &lower_bounds_, q, scratch);
}

}  // namespace kspin
