// The Keyword Separated Index (paper Section 6): one rho-Approximate NVD
// per keyword, built in parallel over all cores (Observation 3). Keywords
// whose inverted lists have at most rho objects get a flat index for free
// (Observation 1) — in Zipfian corpora that is the vast majority.
#ifndef KSPIN_KSPIN_KEYWORD_INDEX_H_
#define KSPIN_KSPIN_KEYWORD_INDEX_H_

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "nvd/apx_nvd.h"
#include "routing/distance_oracle.h"
#include "text/document_store.h"
#include "text/inverted_index.h"

namespace kspin {

/// Construction parameters for the whole keyword index family.
struct KeywordIndexOptions {
  ApxNvdOptions nvd;         ///< rho, storage backend, lazy thresholds.
  unsigned num_threads = 0;  ///< 0 = hardware concurrency (Observation 3).
};

/// Per-keyword index collection with update routing.
class KeywordIndex {
 public:
  /// Builds an ApxNvd for every keyword with a non-empty inverted list.
  KeywordIndex(const Graph& graph, const DocumentStore& store,
               const InvertedIndex& inverted, KeywordIndexOptions options);

  /// The index of keyword t, or nullptr when t has no objects.
  const ApxNvd* Index(KeywordId t) const {
    return t < indexes_.size() ? indexes_[t].get() : nullptr;
  }

  /// Routes a new object into the indexes of all its keywords (creating
  /// flat indexes for previously object-less keywords).
  void OnObjectInserted(ObjectId o, VertexId vertex,
                        std::span<const KeywordId> keywords,
                        DistanceOracle& oracle);

  /// Routes a deletion into the indexes of the object's keywords.
  void OnObjectDeleted(ObjectId o, std::span<const KeywordId> keywords);

  /// A keyword was added to / removed from an existing object.
  void OnKeywordAdded(ObjectId o, VertexId vertex, KeywordId keyword,
                      DistanceOracle& oracle);
  void OnKeywordRemoved(ObjectId o, KeywordId keyword);

  /// Rebuilds every index whose lazy-update budget is exhausted; returns
  /// how many were rebuilt. Rebuilds run in parallel.
  std::size_t RebuildPending();

  /// Number of keywords that needed full Voronoi structures (|inv| > rho).
  std::size_t NumVoronoiIndexes() const;

  /// Total keywords with an index (non-empty inverted list).
  std::size_t NumIndexes() const;

  /// Total index memory in bytes (the paper's K-SPIN keyword index size).
  std::size_t MemoryBytes() const;

  /// Wall-clock seconds spent in the parallel construction.
  double BuildSeconds() const { return build_seconds_; }

 private:
  friend void SaveKeywordIndex(const KeywordIndex&, std::ostream&);
  friend KeywordIndex LoadKeywordIndex(const Graph&, std::istream&);
  /// Shell for deserialization; LoadKeywordIndex fills every field.
  explicit KeywordIndex(const Graph& graph) : graph_(graph) {}

  ApxNvd* EnsureIndex(KeywordId t);

  const Graph& graph_;
  KeywordIndexOptions options_;
  std::vector<std::unique_ptr<ApxNvd>> indexes_;
  double build_seconds_ = 0.0;
};

void SaveKeywordIndex(const KeywordIndex& index, std::ostream& out);
/// Reconstructs a keyword index against the serving `graph` (which must be
/// the graph the index was built over).
KeywordIndex LoadKeywordIndex(const Graph& graph, std::istream& in);

}  // namespace kspin

#endif  // KSPIN_KSPIN_KEYWORD_INDEX_H_
