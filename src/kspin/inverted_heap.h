// On-demand inverted heaps and the Heap Generator (paper Sections 3 and 5).
//
// An inverted heap for keyword t delivers the objects of inv(t) in
// ascending *lower-bound* network distance from the query vertex
// (Property 1). It is populated lazily: initialization seeds at most rho
// candidates from the keyword's ApxNvd (one of which is the 1NN of q,
// Theorem 1), and each extraction triggers LazyReheap (Algorithm 4), which
// injects the adjacent objects of the extracted one.
//
// Candidate frontiers are lower-bounded in *blocks*: newly injected sites
// are staged in a pending buffer and priced with one LowerBoundBatch call
// (SIMD on the ALT module) instead of one virtual call per candidate —
// see docs/performance.md. Batching never changes results: the kernels
// are bit-identical to the scalar loop and extraction order is a strict
// total order on (lower_bound, object).
//
// Storage: every heap operates on an InvertedHeap::Scratch — the heap
// array, the dedup set and the expansion buffers. A query workspace can
// lend pooled scratch so repeated queries allocate nothing; without one
// the heap owns a private scratch (same semantics, one allocation).
#ifndef KSPIN_KSPIN_INVERTED_HEAP_H_
#define KSPIN_KSPIN_INVERTED_HEAP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/stamped_set.h"
#include "common/types.h"
#include "kspin/keyword_index.h"
#include "routing/lower_bound.h"

namespace kspin {

/// Counters describing heap work (used by ablation benches and tests).
struct HeapStats {
  std::uint64_t lower_bounds_computed = 0;
  std::uint64_t insertions = 0;
  std::uint64_t extractions = 0;
  /// Batching effectiveness: LowerBoundBatch calls issued and candidates
  /// priced across them (items / calls = mean frontier block size).
  std::uint64_t lb_batch_calls = 0;
  std::uint64_t lb_batch_items = 0;
};

/// One keyword's lazily populated candidate heap.
class InvertedHeap {
 public:
  /// A heap entry: candidate keyed by its lower-bound distance (ties by
  /// object id, matching the extraction order of the original
  /// priority_queue-based implementation). 16 flat bytes; entries live in
  /// one cache-line-aligned pod array, four per line.
  struct Entry {
    Distance lower_bound;
    ObjectId object;
    VertexId vertex;
    bool operator>(const Entry& o) const {
      if (lower_bound != o.lower_bound) return lower_bound > o.lower_bound;
      return object > o.object;
    }
  };
  static_assert(sizeof(Entry) == 16, "heap entries must stay flat pods");

  /// Reusable backing storage of one heap. Pool-owned scratch objects are
  /// handed out by QueryWorkspace so per-query heap construction performs
  /// no allocation in steady state.
  struct Scratch {
    AlignedVector<Entry> entries;      // Binary min-heap via std::*_heap.
    StampedIdSet inserted;             // Dedup of injected objects.
    std::vector<SiteObject> expand;    // LazyReheap expansion buffer.
    std::vector<SiteObject> pending;   // Staged sites awaiting batch LB.
    std::vector<VertexId> batch_vertices;  // LowerBoundBatch inputs...
    std::vector<Distance> batch_bounds;    // ...and outputs.

    void Reset() {
      entries.clear();
      inserted.Clear();
      expand.clear();
      pending.clear();
    }
  };

  /// An empty heap (no backing object set).
  InvertedHeap() = default;

  /// A heap over `nvd`'s object set for query vertex q, seeded with the
  /// index's initial candidates (Theorem 1). `nvd` and `lower_bounds`
  /// must outlive the heap. When `scratch` is non-null it provides the
  /// backing storage (and must outlive the heap); otherwise the heap owns
  /// a private scratch. Used directly by the keyword-free KnnEngine;
  /// keyword queries go through HeapGenerator.
  InvertedHeap(const ApxNvd* nvd, const LowerBoundModule* lower_bounds,
               VertexId q, Scratch* scratch = nullptr);

  /// A candidate delivered by the heap.
  struct Candidate {
    ObjectId object = kInvalidObject;
    VertexId vertex = kInvalidVertex;
    Distance lower_bound = kInfDistance;
    bool deleted = false;  ///< Tombstoned in the ApxNvd (skip, still expand).
  };

  /// True when no candidates remain (every object of inv(t) was
  /// extracted, or the keyword had none).
  bool Empty() const { return scratch_ == nullptr || scratch_->entries.empty(); }

  /// Lower-bound distance of the current top (MINKEY); kInfDistance when
  /// empty. Property 1: every not-yet-extracted object o of the keyword
  /// has d(q, o) >= MinKey().
  Distance MinKey() const {
    return Empty() ? kInfDistance : scratch_->entries.front().lower_bound;
  }

  /// Extracts the top candidate and runs LazyReheap to restore Property 1.
  /// Requires !Empty().
  Candidate ExtractMin();

  /// Work counters for this heap.
  const HeapStats& Stats() const { return stats_; }

 private:
  friend class HeapGenerator;

  void StageNew(const SiteObject& site);
  void FlushPending();

  const ApxNvd* nvd_ = nullptr;  // Null for keywords without objects.
  const LowerBoundModule* lower_bounds_ = nullptr;
  VertexId query_ = kInvalidVertex;
  Scratch* scratch_ = nullptr;       // Null only for the empty heap.
  std::unique_ptr<Scratch> owned_;   // Set when no pooled scratch was lent.
  HeapStats stats_;
};

/// Factory wiring keyword indexes and the Lower Bounding Module together.
class HeapGenerator {
 public:
  HeapGenerator(const KeywordIndex& keyword_index,
                const LowerBoundModule& lower_bounds)
      : keyword_index_(keyword_index), lower_bounds_(lower_bounds) {}

  /// Creates the on-demand inverted heap for keyword t and query vertex q.
  /// A keyword without objects yields an empty heap. `scratch` (optional)
  /// provides pooled backing storage, see InvertedHeap.
  InvertedHeap Make(KeywordId t, VertexId q,
                    InvertedHeap::Scratch* scratch = nullptr) const;

 private:
  const KeywordIndex& keyword_index_;
  const LowerBoundModule& lower_bounds_;
};

}  // namespace kspin

#endif  // KSPIN_KSPIN_INVERTED_HEAP_H_
