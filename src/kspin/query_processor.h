// The K-SPIN Query Processor (paper Section 4): Boolean kNN queries
// (disjunctive — Algorithm 1 — and conjunctive), top-k spatial keyword
// queries with pseudo lower-bound scores (Algorithms 2 and 3), and the
// mixed-operator CNF extension the paper sketches in Section 2.
//
// All algorithms return *exact* results; lower bounds from the ALT module
// and the pseudo lower-bound scores only delay or avoid expensive network
// distance computations.
#ifndef KSPIN_KSPIN_QUERY_PROCESSOR_H_
#define KSPIN_KSPIN_QUERY_PROCESSOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"
#include "kspin/inverted_heap.h"
#include "kspin/keyword_index.h"
#include "kspin/query_control.h"
#include "kspin/query_workspace.h"
#include "routing/lower_bound.h"
#include "routing/distance_oracle.h"
#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/relevance.h"

namespace kspin {

/// Boolean operator of a BkNN query.
enum class BooleanOp {
  kDisjunctive,  ///< Object must contain at least one query keyword.
  kConjunctive,  ///< Object must contain all query keywords.
};

/// One BkNN result.
struct BkNNResult {
  ObjectId object = kInvalidObject;
  Distance distance = kInfDistance;

  friend bool operator==(const BkNNResult&, const BkNNResult&) = default;
};

/// One top-k result (score = weighted distance, Equation 1).
struct TopKResult {
  ObjectId object = kInvalidObject;
  double score = 0.0;
  Distance distance = kInfDistance;
  double relevance = 0.0;
};

/// Per-query work counters (benchmarks, ablations, and the server's
/// observability layer — docs/observability.md). Plain integers: the hot
/// path bumps fields of a stack-local instance and the caller folds the
/// whole struct into aggregates once per query (zero atomics per query).
struct QueryStats {
  std::uint64_t network_distance_computations = 0;
  std::uint64_t candidates_extracted = 0;  ///< kappa: inverted-heap pops.
  std::uint64_t lower_bounds_computed = 0;
  std::uint64_t heaps_created = 0;
  std::uint64_t heap_insertions = 0;
  /// Batched lower-bounding (docs/performance.md): LowerBoundBatch calls
  /// issued and candidates priced across them. items / calls is the mean
  /// frontier block size the SIMD kernels amortize over.
  std::uint64_t lb_batch_calls = 0;
  std::uint64_t lb_batch_items = 0;
  /// Distances computed for objects that did not make the final top-k —
  /// the "aggregation penalty" K-SPIN's per-keyword indexes avoid.
  /// Invariant: false_positive_distances <= network_distance_computations.
  std::uint64_t false_positive_distances = 0;
  /// Candidates discarded by a lower-bound score before paying a network
  /// distance computation (Algorithm 3 line 10 and G-tree border bounds).
  std::uint64_t candidates_pruned_lb = 0;
  std::uint64_t results_returned = 0;
  /// Per-stage wall-clock timings (steady clock, nanoseconds).
  std::uint64_t heap_build_ns = 0;  ///< Heap generation / index descent.
  std::uint64_t search_ns = 0;      ///< Main best-first search loop.

  QueryStats& operator+=(const QueryStats& o) {
    network_distance_computations += o.network_distance_computations;
    candidates_extracted += o.candidates_extracted;
    lower_bounds_computed += o.lower_bounds_computed;
    heaps_created += o.heaps_created;
    heap_insertions += o.heap_insertions;
    lb_batch_calls += o.lb_batch_calls;
    lb_batch_items += o.lb_batch_items;
    false_positive_distances += o.false_positive_distances;
    candidates_pruned_lb += o.candidates_pruned_lb;
    results_returned += o.results_returned;
    heap_build_ns += o.heap_build_ns;
    search_ns += o.search_ns;
    return *this;
  }
};

/// Query algorithms over the K-SPIN module stack.
///
/// A processor owns its oracle workspace and query scratch, so distinct
/// processors over the same (shared, immutable) module stack may run on
/// distinct threads concurrently. One processor serves one query at a
/// time.
class QueryProcessor {
 public:
  QueryProcessor(const DocumentStore& store, const InvertedIndex& inverted,
                 const RelevanceModel& relevance,
                 const KeywordIndex& keyword_index,
                 const LowerBoundModule& lower_bounds,
                 const DistanceOracle& oracle)
      : store_(store),
        inverted_(inverted),
        relevance_(relevance),
        keyword_index_(keyword_index),
        lower_bounds_(lower_bounds),
        oracle_(oracle),
        oracle_workspace_(oracle.MakeWorkspace()),
        heap_generator_(keyword_index, lower_bounds) {}

  /// Boolean kNN query (q, k, psi, op). Results ascend by distance (ties
  /// by object id). Fewer than k results are returned when fewer objects
  /// satisfy the criteria. A non-null `control` is polled cooperatively;
  /// expiry throws QueryCancelledError.
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op, QueryStats* stats = nullptr,
                                     const QueryControl* control = nullptr);

  /// Mixed-operator extension: conjunction of disjunctive clauses, e.g.
  /// {"thai"} AND {"takeaway" OR "restaurant"}. Each clause is a keyword
  /// set; an object qualifies if it contains a keyword of every clause.
  std::vector<BkNNResult> BooleanKnnCnf(
      VertexId q, std::uint32_t k,
      std::span<const std::vector<KeywordId>> clauses,
      QueryStats* stats = nullptr, const QueryControl* control = nullptr);

  /// Top-k spatial keyword query (Algorithm 3 with Algorithm 2's pseudo
  /// lower-bound scores) under the default weighted-distance scoring
  /// (Equation 1). Results ascend by score.
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               QueryStats* stats = nullptr,
                               const QueryControl* control = nullptr) {
    return TopK(q, k, keywords, ScoringFunction{}, stats, control);
  }

  /// Top-k with an explicit scoring function (weighted distance or
  /// weighted sum — the framework is orthogonal to the combination, paper
  /// Section 2). The pseudo lower bound generalizes because the score is
  /// monotone in distance and relevance.
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               const ScoringFunction& scoring,
                               QueryStats* stats = nullptr,
                               const QueryControl* control = nullptr);

  /// Incremental top-k: results are produced one at a time in ascending
  /// score order, so callers can paginate ("show 10 more") without
  /// recomputing. Holds references into the processor; do not outlive it
  /// or mutate the indexes while streaming.
  class TopKStream {
   public:
    /// The next-best result, or std::nullopt when exhausted.
    std::optional<TopKResult> Next();

    /// Total results produced so far.
    std::size_t Produced() const { return produced_; }

   private:
    friend class QueryProcessor;
    struct State;
    explicit TopKStream(std::shared_ptr<State> state);
    std::shared_ptr<State> state_;
    std::size_t produced_ = 0;
  };

  /// Opens an incremental top-k stream (default weighted-distance
  /// scoring). Exact: the i-th Next() is the i-th best object.
  TopKStream OpenTopKStream(VertexId q,
                            std::span<const KeywordId> keywords,
                            const ScoringFunction& scoring = {});

  /// Ablation switch: when disabled, TopK ranks heaps by the *valid*
  /// lower-bound score ST_all = MINKEY(H_i) / TR_max(psi) instead of the
  /// pseudo lower bound (Section 4.2 contrasts the two). Results stay
  /// exact either way; the pseudo bound terminates sooner.
  void SetUsePseudoLowerBounds(bool enabled) {
    use_pseudo_lower_bounds_ = enabled;
  }

  /// Brownout switch (docs/protocol.md "Overload control & degradation"):
  /// when enabled, disjunctive and ranked searches skip the exact
  /// NetworkDistance refinement and rank candidates by their lower-bound
  /// distance / lower-bound score alone — the cheap index-only answer the
  /// paper's pruning machinery makes viable. Results are approximate
  /// (ranked by LB, distances reported as LBs); conjunctive queries stay
  /// exact. Per-processor, so one worker can degrade per-request.
  void SetApproximateMode(bool enabled) { approximate_mode_ = enabled; }
  bool ApproximateMode() const { return approximate_mode_; }

 private:
  // Disjunctive search over an explicit heap set with a candidate filter;
  // shared by BooleanKnn(disjunctive) and BooleanKnnCnf. The filter is a
  // template parameter so the per-candidate check inlines instead of going
  // through a type-erased std::function call. Defined in the .cc (all
  // instantiations live there).
  template <typename SatisfiesFn>
  std::vector<BkNNResult> DisjunctiveSearch(VertexId q, std::uint32_t k,
                                            std::vector<InvertedHeap>& heaps,
                                            const SatisfiesFn& satisfies,
                                            QueryStats* stats,
                                            const QueryControl* control);

  std::vector<BkNNResult> ConjunctiveKnn(VertexId q, std::uint32_t k,
                                         std::span<const KeywordId> keywords,
                                         QueryStats* stats,
                                         const QueryControl* control);

  const DocumentStore& store_;
  const InvertedIndex& inverted_;
  const RelevanceModel& relevance_;
  const KeywordIndex& keyword_index_;
  const LowerBoundModule& lower_bounds_;
  const DistanceOracle& oracle_;
  std::unique_ptr<OracleWorkspace> oracle_workspace_;
  QueryWorkspace workspace_;
  HeapGenerator heap_generator_;
  bool use_pseudo_lower_bounds_ = true;
  bool approximate_mode_ = false;
};

}  // namespace kspin

#endif  // KSPIN_KSPIN_QUERY_PROCESSOR_H_
