// K-SPIN framework facade (paper Figure 2): wires the Lower Bounding
// Module (ALT), a pluggable Network Distance Module, the Keyword Separated
// Index, the Heap Generator and the Query Processor into one object, and
// routes dynamic updates (Section 6.2) through every affected structure.
//
// Typical use:
//
//   kspin::ContractionHierarchy ch(graph);
//   kspin::ChOracle oracle(ch);
//   kspin::KSpin engine(graph, std::move(store), oracle);
//   auto results = engine.TopK(q, 10, {t_hotel, t_pool});
#ifndef KSPIN_KSPIN_KSPIN_H_
#define KSPIN_KSPIN_KSPIN_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "graph/graph.h"
#include "kspin/keyword_index.h"
#include "kspin/query_processor.h"
#include "routing/alt.h"
#include "routing/distance_oracle.h"
#include "text/document_store.h"
#include "text/inverted_index.h"
#include "text/relevance.h"

namespace kspin {

/// Framework-level construction knobs.
struct KSpinOptions {
  std::uint32_t rho = 5;  ///< rho-Approximate NVD candidate bound.
  ApxNvdStorage nvd_storage = ApxNvdStorage::kQuadtree;
  std::uint32_t lazy_insert_threshold = 64;
  std::uint32_t num_landmarks = 16;  ///< ALT Lower Bounding Module size.
  /// Compose the index-free Euclidean heuristic with ALT so the Lower
  /// Bounding Module returns the tightest of both (Section 3's "multiple
  /// heuristics"). Requires graph coordinates.
  bool use_euclidean_heuristic = false;
  unsigned num_threads = 0;          ///< Parallel index build (0 = all).
  std::uint64_t seed = 7;
};

/// The K-SPIN engine. Owns the textual structures and keyword indexes;
/// borrows the graph and the Network Distance Module (any DistanceOracle).
class KSpin {
 public:
  /// Builds every K-SPIN-side index. `oracle` must outlive the engine.
  KSpin(const Graph& graph, DocumentStore store, DistanceOracle& oracle,
        KSpinOptions options = {});

  /// Restores an engine from snapshot-loaded artifacts instead of
  /// rebuilding them: `alt` and `keyword_index` must have been built over
  /// (a graph identical to) `graph` and `store`. The cheap textual
  /// structures (inverted index, relevance model) are derived from the
  /// store. `initial_generation` seeds StructureGeneration(): a server
  /// swapping engines on RELOAD passes old-generation + 1 so processors
  /// cached against the previous engine can never alias the new one.
  KSpin(const Graph& graph, DocumentStore store, DistanceOracle& oracle,
        std::unique_ptr<AltIndex> alt,
        std::unique_ptr<KeywordIndex> keyword_index, KSpinOptions options,
        std::uint64_t initial_generation);

  // Internal components hold references into the engine; copying or moving
  // would dangle them. Construct in place (guaranteed elision covers
  // factory-style returns).
  KSpin(const KSpin&) = delete;
  KSpin& operator=(const KSpin&) = delete;

  // ----- Queries ---------------------------------------------------------

  /// Boolean kNN (Section 4.1). Exact. A non-null `control` is polled
  /// cooperatively; expiry throws QueryCancelledError.
  std::vector<BkNNResult> BooleanKnn(VertexId q, std::uint32_t k,
                                     std::span<const KeywordId> keywords,
                                     BooleanOp op, QueryStats* stats = nullptr,
                                     const QueryControl* control = nullptr) {
    return processor_->BooleanKnn(q, k, keywords, op, stats, control);
  }

  /// Mixed-operator Boolean kNN over a conjunction of disjunctive clauses.
  std::vector<BkNNResult> BooleanKnnCnf(
      VertexId q, std::uint32_t k,
      std::span<const std::vector<KeywordId>> clauses,
      QueryStats* stats = nullptr, const QueryControl* control = nullptr) {
    return processor_->BooleanKnnCnf(q, k, clauses, stats, control);
  }

  /// Top-k spatial keyword query (Section 4.2). Exact.
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               QueryStats* stats = nullptr,
                               const QueryControl* control = nullptr) {
    return processor_->TopK(q, k, keywords, stats, control);
  }

  /// Top-k with an explicit scoring function (weighted distance or
  /// weighted sum).
  std::vector<TopKResult> TopK(VertexId q, std::uint32_t k,
                               std::span<const KeywordId> keywords,
                               const ScoringFunction& scoring,
                               QueryStats* stats = nullptr,
                               const QueryControl* control = nullptr) {
    return processor_->TopK(q, k, keywords, scoring, stats, control);
  }

  // ----- Updates (Section 6.2) -------------------------------------------

  /// Inserts a new object; lazily updates each keyword's APX-NVD. Returns
  /// the new object id.
  ObjectId InsertObject(VertexId vertex, std::vector<DocEntry> document);

  /// Deletes an object (tombstones in every keyword index).
  void DeleteObject(ObjectId o);

  /// Adds / removes a keyword on an existing object.
  void AddKeywordToObject(ObjectId o, KeywordId keyword,
                          std::uint32_t frequency = 1);
  void RemoveKeywordFromObject(ObjectId o, KeywordId keyword);

  /// Rebuilds keyword indexes whose lazy-update budgets are exhausted
  /// (run periodically / in the background); returns #rebuilt.
  std::size_t MaintainIndexes() { return keyword_index_->RebuildPending(); }

  // ----- Concurrent serving ------------------------------------------------

  /// Creates an independent QueryProcessor over the engine's current
  /// module stack. Each processor owns its oracle workspace and query
  /// scratch, so distinct processors may serve queries from distinct
  /// threads concurrently (while no update runs). A processor is
  /// invalidated when StructureGeneration() changes — certain updates
  /// rebuild the inverted index / relevance model it references — and
  /// must then be re-created.
  std::unique_ptr<QueryProcessor> MakeProcessor() const {
    return std::make_unique<QueryProcessor>(store_, *inverted_, *relevance_,
                                            *keyword_index_, *lower_bounds_,
                                            oracle_);
  }

  /// Bumped whenever an update rebuilds components that externally held
  /// processors reference. Compare before reusing a MakeProcessor result.
  std::uint64_t StructureGeneration() const { return generation_; }

  // ----- Component access --------------------------------------------------

  const Graph& NetworkGraph() const { return graph_; }
  const DocumentStore& Store() const { return store_; }
  const InvertedIndex& Inverted() const { return *inverted_; }
  const RelevanceModel& Relevance() const { return *relevance_; }
  const KeywordIndex& Keywords() const { return *keyword_index_; }
  const AltIndex& Alt() const { return *alt_; }
  /// The active Lower Bounding Module (ALT, possibly composed with the
  /// Euclidean heuristic).
  const LowerBoundModule& LowerBounds() const { return *lower_bounds_; }
  DistanceOracle& Oracle() { return oracle_; }

  /// K-SPIN-side index memory (keyword indexes + ALT), excluding the
  /// Network Distance Module (reported separately, as in Table 1).
  std::size_t IndexMemoryBytes() const {
    return keyword_index_->MemoryBytes() + alt_->MemoryBytes() +
           inverted_->MemoryBytes();
  }

 private:
  const Graph& graph_;
  DocumentStore store_;
  DistanceOracle& oracle_;
  std::unique_ptr<InvertedIndex> inverted_;
  std::unique_ptr<RelevanceModel> relevance_;
  std::unique_ptr<AltIndex> alt_;
  std::unique_ptr<EuclideanLowerBound> euclidean_;
  std::unique_ptr<MaxLowerBound> composite_;
  const LowerBoundModule* lower_bounds_ = nullptr;
  std::unique_ptr<KeywordIndex> keyword_index_;
  std::unique_ptr<QueryProcessor> processor_;
  std::uint64_t generation_ = 0;
};

}  // namespace kspin

#endif  // KSPIN_KSPIN_KSPIN_H_
