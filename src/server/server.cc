#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "io/binary_format.h"
#include "io/snapshot.h"
#include "kspin/query_control.h"
#include "service/query_parser.h"
#include "service/service_snapshot.h"

namespace kspin::server {
namespace {

using Clock = std::chrono::steady_clock;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void ThrowErrno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

// One TCP connection. The I/O thread owns fd / read state / the
// close_after_flush flag; the write queue is shared with workers under
// write_mutex. After the I/O thread closes the socket it sets `closed`,
// turning late worker responses into no-ops.
struct Server::Connection {
  int fd = -1;
  std::vector<std::uint8_t> read_buffer;
  std::size_t read_offset = 0;

  std::mutex write_mutex;
  std::deque<std::vector<std::uint8_t>> write_queue;
  std::size_t write_offset = 0;   // Into write_queue.front().
  std::size_t queued_bytes = 0;   // Un-flushed response backlog.
  std::atomic<bool> closed{false};
  bool close_after_flush = false;

  // Hardening state, owned by the I/O thread. `last_activity` tracks
  // bytes moving in either direction; `partial_frame_since` is set while
  // the read buffer ends in an incomplete frame (slow-loris detection).
  std::chrono::steady_clock::time_point last_activity{};
  std::chrono::steady_clock::time_point partial_frame_since{};
  /// Latched by QueueWrite when the backlog bound is exceeded; the I/O
  /// thread closes the connection on its next tick.
  std::atomic<bool> overflowed{false};

  /// Per-connection rate limiter (overload.per_client_qps); touched only
  /// by the I/O thread in HandleFrame.
  TokenBucket bucket;

  void QueueWrite(std::vector<std::uint8_t> bytes, std::size_t max_bytes) {
    std::lock_guard<std::mutex> lock(write_mutex);
    if (closed.load(std::memory_order_relaxed)) return;
    queued_bytes += bytes.size();
    write_queue.push_back(std::move(bytes));
    if (max_bytes > 0 && queued_bytes > max_bytes) {
      overflowed.store(true, std::memory_order_relaxed);
    }
  }

  bool HasPendingWrites() {
    std::lock_guard<std::mutex> lock(write_mutex);
    return !write_queue.empty();
  }
};

// One admitted request travelling from the I/O thread to a worker.
struct Server::Request {
  std::shared_ptr<Connection> conn;
  FrameHeader header;
  std::vector<std::uint8_t> payload;
  Clock::time_point admitted_at{};
  /// admitted_at + deadline_ms; time_point{} when the request has none.
  Clock::time_point deadline{};
  /// Trace trailer stripped off the frame (trace_id 0 = none carried).
  TraceContext trace;
  /// Admission sojourn (EDF queue wait), filled at dequeue.
  std::uint32_t queue_us = 0;
};

Server::Server(PoiService& service, ServerOptions options)
    : service_(service),
      options_(options),
      recorder_(options_.flight_recorder_capacity),
      oplog_(options_.oplog),
      idempotency_(options_.idempotency_cache_size) {
  role_.store(options_.replication.role, std::memory_order_relaxed);
  queue_ = std::make_unique<AdmissionQueue<Request>>(
      options_.queue_capacity,
      std::chrono::milliseconds(options_.overload.codel_target_ms),
      std::chrono::milliseconds(
          std::max<std::uint32_t>(options_.overload.tick_interval_ms, 1)));
  metrics_.admission_limit.store(options_.queue_capacity,
                                 std::memory_order_relaxed);
  if (options_.overload.latency_slo_ms > 0) {
    const unsigned workers = options_.num_workers > 0
                                 ? options_.num_workers
                                 : std::thread::hardware_concurrency();
    overload_ = std::make_unique<OverloadController>(
        options_.overload, options_.queue_capacity, workers);
  }
  retry_after_hint_ms_.store(options_.overload.retry_after_ms,
                             std::memory_order_relaxed);
  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<TraceSink>(options_.trace_path,
                                         options_.trace_max_bytes,
                                         options_.trace_keep);
    if (!trace_->enabled()) {
      std::fprintf(stderr, "server: cannot open trace file %s; tracing off\n",
                   options_.trace_path.c_str());
      trace_.reset();
    }
  }
}

Server::~Server() { Stop(); }

void Server::Start() {
  if (started_.exchange(true)) {
    throw std::logic_error("Server::Start called twice");
  }
  start_time_ = Clock::now();
  if (!options_.snapshot.dir.empty()) {
    const auto existing = io::FindSnapshots(options_.snapshot.dir);
    if (!existing.empty()) {
      snapshot_sequence_.store(existing.front().first,
                               std::memory_order_relaxed);
    }
  }

  // Boot = restore-newest-snapshot-then-replay-tail: the caller already
  // restored the snapshot into `service_` and told us the mutation
  // sequence it covers; every valid log record past it is applied before
  // a single request is served (docs/persistence.md).
  applied_sequence_.store(options_.restored_mutation_sequence,
                          std::memory_order_relaxed);
  // The epoch sidecar outlives truncated log segments; replayed epoch
  // records below can only move the epoch forward from here.
  LoadEpochState();
  if (!oplog_.Open(options_.restored_mutation_sequence + 1)) {
    throw std::runtime_error("cannot open op log in " + options_.oplog.dir);
  }
  if (oplog_.Enabled()) {
    const OplogReplayResult replayed = ReplayOplog(
        options_.oplog.dir, options_.restored_mutation_sequence,
        [this](const OplogRecord& rec) {
          MutationRecord record;
          if (!DecodeMutationRecord(rec.payload, &record)) {
            // CRC-valid but undecodable means a format bug, not bit rot;
            // serving a silently divergent state would be worse than
            // failing the boot.
            throw std::runtime_error("op log record " +
                                     std::to_string(rec.sequence) +
                                     " does not decode");
          }
          if (record.op == MutationOp::kEpochTransition) {
            // Epoch records move replication state, not the catalog.
            if (record.epoch >=
                primary_epoch_.load(std::memory_order_relaxed)) {
              primary_epoch_.store(record.epoch, std::memory_order_relaxed);
              epoch_boundary_.store(rec.sequence, std::memory_order_relaxed);
            }
            return;
          }
          ApplyMutationRecord(service_, record);
        });
    if (replayed.last_sequence >
        applied_sequence_.load(std::memory_order_relaxed)) {
      applied_sequence_.store(replayed.last_sequence,
                              std::memory_order_relaxed);
    }
    metrics_.oplog_replay_records.store(replayed.records_applied,
                                        std::memory_order_relaxed);
    metrics_.mutations_applied.fetch_add(replayed.records_applied,
                                         std::memory_order_relaxed);
    if (replayed.records_applied > 0 || replayed.stopped_at_corruption) {
      std::fprintf(
          stderr,
          "oplog: replayed %llu record(s) to sequence %llu%s%s\n",
          static_cast<unsigned long long>(replayed.records_applied),
          static_cast<unsigned long long>(
              applied_sequence_.load(std::memory_order_relaxed)),
          replayed.stopped_at_corruption ? "; stopped at corruption: " : "",
          replayed.corruption_detail.c_str());
    }
  }
  MirrorOplogMetrics();
  metrics_.primary_epoch.store(PrimaryEpoch(), std::memory_order_relaxed);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) ThrowErrno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
      0) {
    ThrowErrno("bind");
  }
  if (::listen(listen_fd_, 128) < 0) ThrowErrno("listen");
  socklen_t addr_len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  int wake[2];
  if (::pipe(wake) < 0) ThrowErrno("pipe");
  wake_read_fd_ = wake[0];
  wake_write_fd_ = wake[1];
  SetNonBlocking(wake_read_fd_);
  SetNonBlocking(wake_write_fd_);

  unsigned workers = options_.num_workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  if (!options_.snapshot.dir.empty() && options_.snapshot.period_ms > 0) {
    snapshot_thread_ = std::thread([this] { SnapshotLoop(); });
  }
  if (options_.replication.role == ServerRole::kReplica &&
      options_.replication.primary.port != 0) {
    Replicator::Hooks hooks;
    hooks.local_sequence = [this] { return SnapshotSequence(); };
    hooks.install = [this](std::uint64_t sequence, const std::string& bytes,
                           std::string* error) {
      return InstallReplicaSnapshot(sequence, bytes, error);
    };
    hooks.local_mutation_sequence = [this] { return AppliedSequence(); };
    hooks.apply_mutations = [this](const std::vector<OplogWireRecord>& records,
                                   std::string* error) {
      return ApplyReplicatedMutations(records, error);
    };
    hooks.local_epoch = [this] { return PrimaryEpoch(); };
    hooks.observe_epoch = [this](std::uint64_t epoch,
                                 std::uint64_t boundary) {
      AdoptEpoch(epoch, boundary);
    };
    hooks.quarantine_divergent = [this](std::uint64_t boundary) {
      return QuarantineDivergentOplog(boundary);
    };
    hooks.source_switched = [this](bool oplog) {
      recorder_.RecordEvent(oplog ? DiagEvent::kReplicationSourceOplog
                                  : DiagEvent::kReplicationSourceSnapshot);
    };
    replicator_ = std::make_unique<Replicator>(options_.replication,
                                               metrics_, std::move(hooks));
    replicator_->Start();
  }
}

void Server::Stop() {
  if (!started_.load() || stopping_.exchange(true)) return;
  // 0. Stop the replicator first — an in-flight install briefly takes the
  // exclusive update lock, which needs nothing from the threads torn down
  // below, but no new fetches should start during shutdown.
  if (replicator_ != nullptr) replicator_->Stop();
  // Then the background snapshotter (it grabs the update lock; let it
  // finish any in-flight write, then exit).
  {
    std::lock_guard<std::mutex> lock(snapshot_cv_mutex_);
    snapshot_stop_ = true;
  }
  snapshot_cv_.notify_all();
  if (snapshot_thread_.joinable()) snapshot_thread_.join();
  // 1. Refuse new work; admitted requests keep draining.
  queue_->Close();
  Wake();
  // 2. Workers finish every admitted request and exit; the op log gets a
  // final fsync once nothing can append anymore.
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  oplog_.Close();
  // 3. The I/O thread flushes remaining responses and exits.
  io_exit_.store(true);
  Wake();
  if (io_thread_.joinable()) io_thread_.join();
  // 4. Tear down sockets.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  for (auto& [fd, conn] : connections_) {
    conn->closed.store(true);
    ::close(fd);
  }
  connections_.clear();
}

void Server::Wake() {
  if (wake_write_fd_ < 0) return;
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_fd_, &byte, 1);
}

// ----- I/O thread ----------------------------------------------------------

void Server::IoLoop() {
  while (!io_exit_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({wake_read_fd_, POLLIN, 0});
    // Skip the listen fd while paused after fd exhaustion — otherwise a
    // perpetually-ready listen socket turns poll() into a hot spin.
    const bool accepting = !stopping_.load(std::memory_order_acquire) &&
                           Clock::now() >= accept_pause_until_;
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});
    std::vector<std::shared_ptr<Connection>> polled;
    polled.reserve(connections_.size());
    for (auto& [fd, conn] : connections_) {
      short events = POLLIN;
      if (conn->HasPendingWrites()) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    if (::poll(fds.data(), fds.size(), 100) < 0) {
      if (errno == EINTR) continue;
      break;
    }

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      char drain[256];
      while (::read(wake_read_fd_, drain, sizeof drain) > 0) {
      }
    }
    ++index;
    if (accepting) {
      if (fds[index].revents & POLLIN) AcceptNew();
      ++index;
    }

    for (std::size_t c = 0; c < polled.size(); ++c, ++index) {
      const std::shared_ptr<Connection>& conn = polled[c];
      const short revents = fds[index].revents;
      bool alive = true;
      if (revents & (POLLERR | POLLNVAL)) alive = false;
      if (alive && (revents & (POLLIN | POLLHUP))) {
        alive = ReadFromConnection(conn);
      }
      if (alive) alive = FlushConnection(conn);
      if (alive && conn->close_after_flush && !conn->HasPendingWrites()) {
        alive = false;
      }
      if (!alive) CloseConnection(conn->fd);
    }

    const Clock::time_point now = Clock::now();
    SweepConnections(now);
    OverloadTick(now);
    FlushShedBursts(now);
  }

  // Final flush: give queued responses a brief window to reach clients
  // before the sockets close.
  const Clock::time_point flush_deadline =
      Clock::now() + std::chrono::seconds(2);
  for (bool pending = true; pending && Clock::now() < flush_deadline;) {
    pending = false;
    for (auto& [fd, conn] : connections_) {
      if (!FlushConnection(conn)) continue;
      if (conn->HasPendingWrites()) pending = true;
    }
    if (pending) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void Server::OverloadTick(Clock::time_point now) {
  if (!overload_) return;
  const auto interval = std::chrono::milliseconds(
      std::max<std::uint32_t>(options_.overload.tick_interval_ms, 1));
  if (last_overload_tick_ != Clock::time_point{} &&
      now - last_overload_tick_ < interval) {
    return;
  }
  last_overload_tick_ = now;

  const OverloadDecision decision =
      overload_->Tick(metrics_.query_latency.Snapshot(),
                      metrics_.admission_sojourn.Snapshot(), queue_->Size());
  queue_->SetLimit(decision.admission_limit);
  metrics_.admission_limit.store(decision.admission_limit,
                                 std::memory_order_relaxed);
  retry_after_hint_ms_.store(decision.retry_after_ms,
                             std::memory_order_relaxed);

  const bool was_brownout = brownout_active_.load(std::memory_order_relaxed);
  if (decision.brownout_entered) {
    metrics_.brownout_entries.fetch_add(1, std::memory_order_relaxed);
    brownout_since_ = now;
    brownout_seconds_credited_ = 0;
    recorder_.RecordEvent(DiagEvent::kBrownoutEnter,
                          decision.admission_limit);
  }
  if (was_brownout && !decision.brownout) {
    recorder_.RecordEvent(DiagEvent::kBrownoutExit, decision.admission_limit);
  }
  brownout_active_.store(decision.brownout, std::memory_order_relaxed);
  if (decision.brownout) {
    // Credit whole seconds of the running episode as they accrue, so the
    // counter moves while the episode is still open.
    const auto active_s = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::seconds>(now -
                                                         brownout_since_)
            .count());
    if (active_s > brownout_seconds_credited_) {
      metrics_.brownout_seconds.fetch_add(
          active_s - brownout_seconds_credited_, std::memory_order_relaxed);
      brownout_seconds_credited_ = active_s;
    }
  }
  metrics_.overload_state.store(
      decision.brownout
          ? 2
          : (decision.admission_limit < options_.queue_capacity ? 1 : 0),
      std::memory_order_relaxed);
}

void Server::RecordShed(DiagShedCause cause) {
  const auto index = static_cast<std::size_t>(cause);
  if (index >= std::size(shed_counts_)) return;
  shed_counts_[index].fetch_add(1, std::memory_order_relaxed);
}

void Server::FlushShedBursts(Clock::time_point now) {
  if (shed_window_start_ == Clock::time_point{}) {
    shed_window_start_ = now;
    return;
  }
  if (now - shed_window_start_ < std::chrono::seconds(1)) return;
  shed_window_start_ = now;
  for (std::size_t i = 1; i < std::size(shed_counts_); ++i) {
    const std::uint64_t count =
        shed_counts_[i].exchange(0, std::memory_order_relaxed);
    if (count == 0) continue;
    recorder_.RecordEvent(DiagEvent::kShedBurst, i, count);
  }
}

void Server::RecordEnvelopeSpan(const TraceContext& trace, Opcode opcode,
                                StatusCode status, std::uint32_t queue_us) {
  SpanRecord span;
  span.trace_id = trace.trace_id;
  span.parent_span_id = trace.parent_span_id;
  span.span_id = recorder_.NextSpanId();
  span.opcode = static_cast<std::uint8_t>(opcode);
  span.status = static_cast<std::uint8_t>(status);
  span.queue_us = queue_us;
  recorder_.RecordSpan(span);
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // Resource exhaustion (out of fds / kernel memory) is not transient
      // on the poll timescale: the listen fd stays readable, so returning
      // silently would spin the I/O thread hot. Count it and back off.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        metrics_.accept_errors.fetch_add(1, std::memory_order_relaxed);
        accept_pause_until_ =
            Clock::now() + std::chrono::milliseconds(options_.accept_pause_ms);
      }
      return;  // EAGAIN or transient error; poll again.
    }
    SetNonBlocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_activity = Clock::now();
    connections_.emplace(fd, std::move(conn));
    metrics_.connections_opened.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SweepConnections(Clock::time_point now) {
  std::vector<std::pair<int, std::atomic<std::uint64_t>*>> doomed;
  for (auto& [fd, conn] : connections_) {
    if (conn->overflowed.load(std::memory_order_relaxed)) {
      doomed.emplace_back(fd, &metrics_.connections_reaped_backpressure);
    } else if (options_.read_deadline_ms > 0 &&
               conn->partial_frame_since != Clock::time_point{} &&
               now - conn->partial_frame_since >=
                   std::chrono::milliseconds(options_.read_deadline_ms)) {
      doomed.emplace_back(fd, &metrics_.connections_reaped_slow);
    } else if (options_.idle_timeout_ms > 0 &&
               now - conn->last_activity >=
                   std::chrono::milliseconds(options_.idle_timeout_ms)) {
      doomed.emplace_back(fd, &metrics_.connections_reaped_idle);
    }
  }
  for (const auto& [fd, counter] : doomed) {
    counter->fetch_add(1, std::memory_order_relaxed);
    CloseConnection(fd);
  }
}

bool Server::ReadFromConnection(const std::shared_ptr<Connection>& conn) {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (n > 0) {
      conn->read_buffer.insert(conn->read_buffer.end(), chunk, chunk + n);
      conn->last_activity = Clock::now();
      if (static_cast<std::size_t>(n) < sizeof chunk) break;
      continue;
    }
    if (n == 0) return false;  // Peer closed.
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  // Decode every complete frame in the buffer.
  while (conn->read_offset < conn->read_buffer.size()) {
    const std::span<const std::uint8_t> pending(
        conn->read_buffer.data() + conn->read_offset,
        conn->read_buffer.size() - conn->read_offset);
    FrameHeader header;
    std::size_t frame_size = 0;
    const DecodeResult result = TryDecodeFrame(pending, &header, &frame_size);
    if (result == DecodeResult::kNeedMore) break;
    if (result != DecodeResult::kFrame) {
      // Fatal stream error: report, then close once the report flushes.
      metrics_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
      FrameHeader error_header;
      error_header.opcode = Opcode::kError;
      StatusCode status = StatusCode::kMalformedPayload;
      std::string message = "malformed frame";
      if (result == DecodeResult::kBadVersion) {
        error_header.request_id = header.request_id;
        status = StatusCode::kUnsupported;
        message = "unsupported protocol version";
      } else if (result == DecodeResult::kTooLarge) {
        error_header.request_id = header.request_id;
        message = "frame exceeds maximum payload size";
      }
      conn->QueueWrite(
          EncodeFrame(error_header, EncodeErrorResponse(status, message)),
          options_.max_write_queue_bytes);
      conn->close_after_flush = true;
      conn->read_offset = conn->read_buffer.size();
      break;
    }

    std::vector<std::uint8_t> payload(
        pending.begin() + kHeaderSize, pending.begin() + frame_size);
    conn->read_offset += frame_size;
    HandleFrame(conn, header, std::move(payload));
  }

  // Compact the consumed prefix once it dominates the buffer.
  if (conn->read_offset > 0 &&
      conn->read_offset * 2 >= conn->read_buffer.size()) {
    conn->read_buffer.erase(conn->read_buffer.begin(),
                            conn->read_buffer.begin() + conn->read_offset);
    conn->read_offset = 0;
  }

  // Track how long an unfinished frame has been pending (slow-loris): the
  // clock starts when a partial frame first appears and resets whenever
  // the buffer drains to a frame boundary.
  if (conn->read_offset < conn->read_buffer.size()) {
    if (conn->partial_frame_since == Clock::time_point{}) {
      conn->partial_frame_since = Clock::now();
    }
  } else {
    conn->partial_frame_since = Clock::time_point{};
  }
  return true;
}

bool Server::FlushConnection(const std::shared_ptr<Connection>& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  while (!conn->write_queue.empty()) {
    std::vector<std::uint8_t>& front = conn->write_queue.front();
    // MSG_NOSIGNAL: a peer that vanished between poll() and this send
    // must be an ordinary close, not a process-wide SIGPIPE.
    const ssize_t n = ::send(conn->fd, front.data() + conn->write_offset,
                             front.size() - conn->write_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    conn->write_offset += static_cast<std::size_t>(n);
    conn->queued_bytes -= static_cast<std::size_t>(n);
    conn->last_activity = Clock::now();
    if (conn->write_offset == front.size()) {
      conn->write_queue.pop_front();
      conn->write_offset = 0;
    }
  }
  return true;
}

void Server::CloseConnection(int fd) {
  const auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  it->second->closed.store(true, std::memory_order_relaxed);
  ::close(fd);
  connections_.erase(it);
  metrics_.connections_closed.fetch_add(1, std::memory_order_relaxed);
}

void Server::Respond(const std::shared_ptr<Connection>& conn,
                     const FrameHeader& request_header,
                     std::vector<std::uint8_t> response_payload) {
  FrameHeader header;
  // Echo the request's protocol version: a v1 client gets v1 frames back
  // even from a v2 server.
  header.version = request_header.version;
  header.opcode = request_header.opcode;
  header.request_id = request_header.request_id;
  conn->QueueWrite(EncodeFrame(header, response_payload),
                   options_.max_write_queue_bytes);
  Wake();
}

void Server::HandleFrame(const std::shared_ptr<Connection>& conn,
                         const FrameHeader& header,
                         std::vector<std::uint8_t> payload) {
  metrics_.frames_received.fetch_add(1, std::memory_order_relaxed);
  metrics_.CountOpcode(header.opcode);

  // v5 trace trailer: strip it off the payload before any opcode body
  // decode, so every body codec sees exactly the v<=4 bytes.
  TraceContext trace;
  if ((header.flags & kFrameFlagTraceContext) != 0) {
    std::span<const std::uint8_t> body;
    if (!SplitTraceTrailer(payload, header.flags, &body, &trace)) {
      metrics_.requests_malformed_payload.fetch_add(
          1, std::memory_order_relaxed);
      Respond(conn, header,
              EncodeErrorResponse(StatusCode::kMalformedPayload,
                                  "truncated trace trailer"));
      return;
    }
    payload.resize(body.size());
  }

  switch (header.opcode) {
    case Opcode::kPing:
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, header, EncodeOkResponse());
      return;
    case Opcode::kStats: {
      // Snapshot before counting so a STATS response never includes
      // itself; it shows up in the next snapshot instead. One FullSnapshot
      // backs the whole response, so counters, histogram buckets, and the
      // derived summary values all describe the same instant.
      MirrorOplogMetrics();
      const MetricsSnapshot snapshot = metrics_.FullSnapshot(queue_->Size());
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      auto pairs = snapshot.counters;
      const auto append = [&pairs](const char* prefix,
                                   const HistogramSnapshot& h) {
        const std::string p(prefix);
        pairs.emplace_back(p + "_count", h.count);
        pairs.emplace_back(p + "_mean_us", h.MeanMicros());
        pairs.emplace_back(p + "_p50_us", h.PercentileMicros(0.50));
        pairs.emplace_back(p + "_p99_us", h.PercentileMicros(0.99));
      };
      append("query_latency", snapshot.query_latency);
      append("update_latency", snapshot.update_latency);
      append("admission_sojourn", snapshot.admission_sojourn);
      if (header.version < 2) {
        // v1 clients get the flat pairs only (no trailing histograms —
        // their decoder rejects trailing bytes).
        Respond(conn, header, EncodeStatsResponse(pairs));
        return;
      }
      const auto to_wire = [](const char* name, const HistogramSnapshot& h) {
        WireHistogram wh;
        wh.name = name;
        wh.count = h.count;
        wh.sum_micros = h.sum_micros;
        wh.buckets.assign(h.buckets.begin(), h.buckets.end());
        return wh;
      };
      const WireHistogram histograms[] = {
          to_wire("query_latency_us", snapshot.query_latency),
          to_wire("update_latency_us", snapshot.update_latency),
          to_wire("admission_sojourn_us", snapshot.admission_sojourn),
      };
      Respond(conn, header, EncodeStatsResponse(pairs, histograms));
      return;
    }
    case Opcode::kMetrics: {
      // Prometheus text exposition; inline like STATS so scrapes work on
      // a saturated server.
      MirrorOplogMetrics();
      const MetricsSnapshot snapshot = metrics_.FullSnapshot(queue_->Size());
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, header,
              EncodeMetricsResponse(RenderPrometheusText(snapshot)));
      return;
    }
    case Opcode::kHealth:
      // Inline like PING/STATS: health probes must work on a saturated
      // server — that is when failover needs them most.
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, header, BuildHealthResponse());
      return;
    case Opcode::kDumpDiag:
      // Inline for the same reason: the flight recorder exists for
      // post-incident forensics, which is exactly when workers may be
      // wedged. Dump() is lock-free against concurrent writers.
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      Respond(conn, header,
              EncodeDiagResponse(recorder_.Dump(kMaxPayloadSize - 256)));
      return;
    case Opcode::kPoiAdd:
    case Opcode::kPoiClose:
    case Opcode::kPoiTag:
    case Opcode::kPoiUntag:
    case Opcode::kInsertDoc:
    case Opcode::kDeleteDoc:
    case Opcode::kUpdateDoc: {
      if (role_.load(std::memory_order_acquire) == ServerRole::kReplica) {
        // Replicas are read-only; tell the client where the primary is
        // (the NOT_PRIMARY message is the redirect address).
        metrics_.requests_not_primary.fetch_add(1,
                                                std::memory_order_relaxed);
        RecordEnvelopeSpan(trace, header.opcode, StatusCode::kNotPrimary);
        Respond(conn, header,
                EncodeErrorResponse(
                    StatusCode::kNotPrimary,
                    options_.replication.primary.ToString()));
        return;
      }
      // Once any request carried a higher epoch this primary is fenced:
      // every write — even keyless/legacy ones — is refused until it
      // rejoins as a replica of the new primary.
      const std::uint64_t fenced =
          fenced_epoch_.load(std::memory_order_acquire);
      if (fenced > primary_epoch_.load(std::memory_order_acquire)) {
        metrics_.requests_stale_epoch.fetch_add(1,
                                                std::memory_order_relaxed);
        RecordEnvelopeSpan(trace, header.opcode, StatusCode::kStaleEpoch);
        Respond(conn, header,
                EncodeErrorResponse(
                    StatusCode::kStaleEpoch,
                    "fenced: a newer primary epoch " +
                        std::to_string(fenced) + " has been observed"));
        return;
      }
      [[fallthrough]];
    }
    case Opcode::kSearchBoolean:
    case Opcode::kSearchRanked:
    case Opcode::kSnapshot:
    case Opcode::kReload:
    case Opcode::kFetchSnapshot:
    case Opcode::kFetchOplog:
    case Opcode::kPromote: {
      const Clock::time_point now = Clock::now();
      const std::uint32_t retry_after =
          retry_after_hint_ms_.load(std::memory_order_relaxed);
      // Per-connection token bucket (overload.per_client_qps): one noisy
      // client must not starve the rest of the fleet's admission slots.
      if (options_.overload.per_client_qps > 0 &&
          !conn->bucket.TryAcquire(now, options_.overload.per_client_qps,
                                   options_.overload.per_client_burst)) {
        metrics_.requests_rate_limited.fetch_add(1,
                                                 std::memory_order_relaxed);
        RecordShed(DiagShedCause::kRateLimited);
        RecordEnvelopeSpan(trace, header.opcode, StatusCode::kOverloaded);
        Respond(conn, header,
                EncodeErrorResponse(StatusCode::kOverloaded,
                                    "rate limited", retry_after));
        return;
      }
      Request request;
      request.conn = conn;
      request.header = header;
      request.payload = std::move(payload);
      request.admitted_at = now;
      request.trace = trace;
      if (header.deadline_ms > 0) {
        request.deadline = request.admitted_at +
                           std::chrono::milliseconds(header.deadline_ms);
      }
      const Clock::time_point deadline = request.deadline;
      // Admission uses a fresh clock when the test hook widens the gap
      // between receipt and enqueue; in production the two coincide.
      Clock::time_point admit_now = now;
      if (options_.test_admission_delay_ms > 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.test_admission_delay_ms));
        admit_now = Clock::now();
      }
      switch (queue_->TryPush(std::move(request), deadline, admit_now)) {
        case AdmissionResult::kAdmitted:
          metrics_.RecordQueueDepth(queue_->Size());
          return;
        case AdmissionResult::kExpired:
          // Doomed on arrival: refuse at the door instead of queueing
          // work whose deadline already passed. Counted separately from
          // the overload sheds.
          metrics_.requests_deadline_rejected.fetch_add(
              1, std::memory_order_relaxed);
          RecordShed(DiagShedCause::kDeadline);
          RecordEnvelopeSpan(trace, header.opcode,
                             StatusCode::kDeadlineExceeded);
          Respond(conn, header,
                  EncodeErrorResponse(StatusCode::kDeadlineExceeded,
                                      "deadline expired before admission"));
          return;
        case AdmissionResult::kLimited:
          metrics_.requests_admission_limited.fetch_add(
              1, std::memory_order_relaxed);
          RecordShed(DiagShedCause::kLimited);
          RecordEnvelopeSpan(trace, header.opcode, StatusCode::kOverloaded);
          Respond(conn, header,
                  EncodeErrorResponse(StatusCode::kOverloaded,
                                      "admission limited", retry_after));
          return;
        case AdmissionResult::kQueueFull:
        case AdmissionResult::kClosed:
          metrics_.requests_overloaded.fetch_add(1,
                                                 std::memory_order_relaxed);
          RecordShed(DiagShedCause::kQueueFull);
          RecordEnvelopeSpan(trace, header.opcode, StatusCode::kOverloaded);
          Respond(conn, header,
                  EncodeErrorResponse(StatusCode::kOverloaded,
                                      "admission queue full", retry_after));
          return;
      }
      return;
    }
    case Opcode::kError:
      break;
  }
  metrics_.requests_unsupported.fetch_add(1, std::memory_order_relaxed);
  Respond(conn, header,
          EncodeErrorResponse(StatusCode::kUnsupported, "unknown opcode"));
}

// ----- Workers -------------------------------------------------------------

void Server::WorkerLoop(std::size_t worker_index) {
  // Per-thread processor, lazily (re)built when the engine's structure
  // generation moves — the same invalidation rule ParallelQueryExecutor
  // follows.
  std::unique_ptr<QueryProcessor> processor;
  std::uint64_t generation = 0;

  for (;;) {
    std::optional<AdmissionQueue<Request>::Popped> popped = queue_->Pop();
    if (!popped.has_value()) return;  // Closed and drained.
    metrics_.admission_sojourn.Record(
        static_cast<std::uint64_t>(popped->sojourn.count()));
    Request* const request = &popped->item;
    request->queue_us = static_cast<std::uint32_t>(
        std::min<std::int64_t>(popped->sojourn.count(), UINT32_MAX));

    if (options_.test_dequeue_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.test_dequeue_delay_ms));
    }
    if (options_.enforce_deadline_at_dequeue &&
        request->deadline != Clock::time_point{} &&
        Clock::now() >= request->deadline) {
      metrics_.requests_deadline_dropped.fetch_add(
          1, std::memory_order_relaxed);
      RecordShed(DiagShedCause::kDeadline);
      RecordEnvelopeSpan(request->trace, request->header.opcode,
                         StatusCode::kDeadlineExceeded, request->queue_us);
      Respond(request->conn, request->header,
              EncodeErrorResponse(StatusCode::kDeadlineExceeded,
                                  "deadline expired before execution"));
      continue;
    }
    if (popped->shed) {
      // CoDel verdict: the queue stayed congested and this request
      // overstayed the sojourn target — fail fast rather than serve
      // stale work the client has likely given up on.
      metrics_.requests_codel_shed.fetch_add(1, std::memory_order_relaxed);
      RecordShed(DiagShedCause::kCodel);
      RecordEnvelopeSpan(request->trace, request->header.opcode,
                         StatusCode::kOverloaded, request->queue_us);
      Respond(request->conn, request->header,
              EncodeErrorResponse(
                  StatusCode::kOverloaded, "shed: queue sojourn over target",
                  retry_after_hint_ms_.load(std::memory_order_relaxed)));
      continue;
    }

    const Opcode opcode = request->header.opcode;
    // FETCH_SNAPSHOT only reads immutable snapshot files and FETCH_OPLOG
    // serializes inside the Oplog, so both are query-class: they must not
    // quiesce queries (or be blocked by them).
    const bool is_query = opcode == Opcode::kSearchBoolean ||
                          opcode == Opcode::kSearchRanked ||
                          opcode == Opcode::kFetchSnapshot ||
                          opcode == Opcode::kFetchOplog;
    const bool is_mutation =
        opcode == Opcode::kPoiAdd || opcode == Opcode::kPoiClose ||
        opcode == Opcode::kPoiTag || opcode == Opcode::kPoiUntag ||
        opcode == Opcode::kInsertDoc || opcode == Opcode::kDeleteDoc ||
        opcode == Opcode::kUpdateDoc;
    if (is_query) {
      // Wait-free unless a mutation's in-memory apply window is open.
      const EpochGate::ReadGuard guard = gate_.Reader(worker_index);
      const std::uint64_t current =
          service_.Engine().StructureGeneration();
      if (processor == nullptr || generation != current) {
        processor = service_.Engine().MakeProcessor();
        generation = current;
      }
      const bool needs_processor = opcode == Opcode::kSearchBoolean ||
                                   opcode == Opcode::kSearchRanked;
      ProcessRequest(*request, needs_processor ? processor.get() : nullptr);
    } else if (is_mutation) {
      ProcessMutation(*request);  // Takes mutation_mutex_ itself.
    } else if (opcode == Opcode::kPromote) {
      // PROMOTE stops the replicator before locking; it must NOT run
      // under mutation_mutex_ like the branch below (the replicator's
      // poll thread takes that mutex, so Stop-under-lock would deadlock).
      ProcessPromote(*request);
    } else {
      // SNAPSHOT / RELOAD: exclude other state-changers; queries keep
      // flowing (RELOAD additionally opens an apply window for its swap).
      std::lock_guard<std::mutex> guard(mutation_mutex_);
      ProcessRequest(*request, nullptr);
    }
  }
}

void Server::ProcessRequest(Request& request, QueryProcessor* processor) {
  const FrameHeader& header = request.header;
  const Opcode opcode = header.opcode;
  const bool is_query =
      opcode == Opcode::kSearchBoolean || opcode == Opcode::kSearchRanked;
  const Clock::time_point exec_start = Clock::now();

  QueryControl control;
  control.deadline = request.deadline;
  const QueryControl* control_ptr =
      request.deadline != Clock::time_point{} ? &control : nullptr;

  std::vector<std::uint8_t> response;
  bool ok = false;
  // Engine counters for this query: plain stack integers on the hot path,
  // folded into the atomic aggregates exactly once below.
  QueryStats qstats;
  std::string traced_query;  // Retained for trace / slow-query lines.
  VertexId traced_vertex = 0;
  std::uint32_t traced_k = 0;
  bool traced_degraded = false;
  std::uint32_t traced_results = 0;
  try {
    switch (opcode) {
      case Opcode::kSearchBoolean:
      case Opcode::kSearchRanked: {
        SearchRequest search;
        if (!DecodeSearchRequest(request.payload, &search)) {
          metrics_.requests_malformed_payload.fetch_add(
              1, std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kMalformedPayload,
                                         "bad search payload");
          break;
        }
        const Graph& graph = service_.Engine().NetworkGraph();
        if (search.vertex >= graph.NumVertices()) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kBadQuery,
                                         "vertex out of range");
          break;
        }
        if (search.k > options_.max_k) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response =
              EncodeErrorResponse(StatusCode::kBadQuery, "k too large");
          break;
        }
        traced_query = search.query;
        traced_vertex = search.vertex;
        traced_k = search.k;
        // Brownout (docs/protocol.md "Overload control & degradation"):
        // clamp k and answer from lower bounds only — cheap index work
        // instead of exact distance refinement — and stamp the reply
        // DEGRADED so clients can tell.
        const bool degraded =
            brownout_active_.load(std::memory_order_relaxed);
        if (degraded && options_.overload.brownout_max_k > 0) {
          search.k = std::min(search.k, options_.overload.brownout_max_k);
        }
        if (degraded) processor->SetApproximateMode(true);
        std::vector<PoiResult> hits;
        try {
          hits = opcode == Opcode::kSearchBoolean
                     ? service_.SearchOn(*processor, search.query,
                                         search.vertex, search.k,
                                         control_ptr, &qstats)
                     : service_.SearchRankedOn(*processor, search.query,
                                               search.vertex, search.k,
                                               control_ptr, &qstats);
        } catch (...) {
          if (degraded) processor->SetApproximateMode(false);
          throw;
        }
        if (degraded) {
          processor->SetApproximateMode(false);
          metrics_.requests_degraded.fetch_add(1, std::memory_order_relaxed);
        }
        traced_degraded = degraded;
        traced_results = static_cast<std::uint32_t>(hits.size());
        std::vector<WireResult> results;
        results.reserve(hits.size());
        for (const PoiResult& hit : hits) {
          results.push_back(
              {hit.id, hit.travel_time, hit.score, hit.name});
        }
        response = EncodeSearchResponse(
            results, degraded ? kSearchFlagDegraded : std::uint8_t{0},
            header.version);
        ok = true;
        break;
      }
      case Opcode::kSnapshot: {
        if (options_.snapshot.dir.empty()) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kBadQuery,
                                         "snapshotting disabled");
          break;
        }
        // The worker already holds mutation_mutex_ (SNAPSHOT routes as a
        // state-changer), so the state cannot change underneath.
        const auto [sequence, path] = SnapshotLocked();
        response = EncodeSnapshotResponse(sequence, path);
        ok = true;
        break;
      }
      case Opcode::kReload: {
        if (options_.snapshot.dir.empty()) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kBadQuery,
                                         "snapshotting disabled");
          break;
        }
        response = HandleReloadLocked();
        ok = response.size() > 0 &&
             response[0] == static_cast<std::uint8_t>(StatusCode::kOk);
        break;
      }
      case Opcode::kFetchSnapshot: {
        FetchSnapshotRequest fetch;
        if (!DecodeFetchSnapshotRequest(request.payload, &fetch)) {
          metrics_.requests_malformed_payload.fetch_add(
              1, std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kMalformedPayload,
                                         "bad fetch-snapshot payload");
          break;
        }
        if (options_.snapshot.dir.empty()) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kBadQuery,
                                         "snapshotting disabled");
          break;
        }
        response = HandleFetchSnapshot(fetch);
        ok = response.size() > 0 &&
             response[0] == static_cast<std::uint8_t>(StatusCode::kOk);
        if (!ok) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
        }
        break;
      }
      case Opcode::kFetchOplog: {
        FetchOplogRequest fetch;
        if (!DecodeFetchOplogRequest(request.payload, &fetch)) {
          metrics_.requests_malformed_payload.fetch_add(
              1, std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kMalformedPayload,
                                         "bad fetch-oplog payload");
          break;
        }
        response = HandleFetchOplog(fetch);
        ok = response.size() > 0 &&
             response[0] == static_cast<std::uint8_t>(StatusCode::kOk);
        if (!ok) {
          metrics_.requests_unsupported.fetch_add(1,
                                                  std::memory_order_relaxed);
        }
        break;
      }
      default:
        response = EncodeErrorResponse(StatusCode::kUnsupported,
                                       "unknown opcode");
        metrics_.requests_unsupported.fetch_add(1,
                                                std::memory_order_relaxed);
        break;
    }
  } catch (const QueryParseError& e) {
    metrics_.requests_bad_query.fetch_add(1, std::memory_order_relaxed);
    response = EncodeErrorResponse(StatusCode::kBadQuery, e.what());
  } catch (const QueryCancelledError&) {
    metrics_.requests_deadline_cancelled.fetch_add(
        1, std::memory_order_relaxed);
    response = EncodeErrorResponse(StatusCode::kDeadlineExceeded,
                                   "deadline exceeded during execution");
  } catch (const std::invalid_argument& e) {
    metrics_.requests_bad_query.fetch_add(1, std::memory_order_relaxed);
    response = EncodeErrorResponse(StatusCode::kBadQuery, e.what());
  } catch (const std::exception& e) {
    metrics_.requests_internal_error.fetch_add(1,
                                               std::memory_order_relaxed);
    response = EncodeErrorResponse(StatusCode::kInternal, e.what());
  }

  const auto micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          Clock::now() - request.admitted_at)
          .count());
  const StatusCode final_status =
      response.empty() ? StatusCode::kInternal
                       : static_cast<StatusCode>(response[0]);
  // One span id shared by the flight-recorder record and the trace-file
  // line, so the two can be joined post hoc.
  const std::uint64_t span_id = recorder_.NextSpanId();
  if (ok) {
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    // The trace id (when present) becomes the histogram bucket's exemplar.
    (is_query ? metrics_.query_latency : metrics_.update_latency)
        .Record(micros, request.trace.trace_id);
  }
  if (is_query) {
    // Fold this query's engine counters into the aggregates (a handful of
    // relaxed adds; AddQueryStats skips zero fields, so a failed query
    // that never reached the engine costs nothing here).
    metrics_.AddQueryStats(qstats);

    const bool slow = options_.slow_query_threshold_ms > 0 &&
                      micros >= std::uint64_t{1000} *
                                    options_.slow_query_threshold_ms;
    if (trace_ != nullptr || slow) {
      QueryTraceEvent event;
      event.fingerprint =
          QueryFingerprint(traced_query, traced_vertex, traced_k);
      event.trace_id = request.trace.trace_id;
      event.parent_span_id = request.trace.parent_span_id;
      event.span_id = span_id;
      event.opcode = opcode == Opcode::kSearchBoolean ? "search_boolean"
                                                      : "search_ranked";
      event.query = traced_query;
      event.vertex = traced_vertex;
      event.k = traced_k;
      event.status = StatusName(final_status);
      event.latency_us = micros;
      event.queue_us = request.queue_us;
      event.degraded = traced_degraded;
      event.stats = qstats;
      const std::string line = FormatQueryTrace(event);
      if (trace_ != nullptr) {
        trace_->Write(line);
        metrics_.traces_emitted.fetch_add(1, std::memory_order_relaxed);
        metrics_.trace_rotations.store(trace_->rotations(),
                                       std::memory_order_relaxed);
      }
      if (slow) {
        metrics_.slow_queries.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "slow query (%llu us): %s\n",
                     static_cast<unsigned long long>(micros), line.c_str());
      }
    }
  }
  const Clock::time_point respond_start = Clock::now();
  Respond(request.conn, header, std::move(response));
  // Always record the span into the flight recorder — this is what a
  // post-incident DUMP_DIAG reconstructs when no trace file was on.
  const auto clamp_us = [](std::int64_t us) {
    return static_cast<std::uint32_t>(
        std::min<std::int64_t>(std::max<std::int64_t>(us, 0), UINT32_MAX));
  };
  const auto clamp_u32 = [](std::uint64_t v) {
    return static_cast<std::uint32_t>(
        std::min<std::uint64_t>(v, UINT32_MAX));
  };
  SpanRecord span;
  span.trace_id = request.trace.trace_id;
  span.parent_span_id = request.trace.parent_span_id;
  span.span_id = span_id;
  span.opcode = static_cast<std::uint8_t>(opcode);
  span.status = static_cast<std::uint8_t>(final_status);
  span.degraded = traced_degraded ? 1 : 0;
  span.queue_us = request.queue_us;
  span.execute_us =
      clamp_us(std::chrono::duration_cast<std::chrono::microseconds>(
                   respond_start - exec_start)
                   .count());
  span.reply_us =
      clamp_us(std::chrono::duration_cast<std::chrono::microseconds>(
                   Clock::now() - respond_start)
                   .count());
  span.heap_build_ns = qstats.heap_build_ns;
  span.search_ns = qstats.search_ns;
  span.heap_pops = clamp_u32(qstats.candidates_extracted);
  span.lower_bounds = clamp_u32(qstats.lower_bounds_computed);
  span.distance_computations =
      clamp_u32(qstats.network_distance_computations);
  span.false_positive_distances =
      clamp_u32(qstats.false_positive_distances);
  span.results = traced_results;
  recorder_.RecordSpan(span);
}

// ----- Mutations -----------------------------------------------------------

namespace {

// Pre-validates a mutation against the current catalog so nothing invalid
// is ever appended to the log. Replay applies logged records
// unconditionally, so the apply of a validated record must succeed — this
// function must anticipate every way ApplyMutationRecord could throw.
bool ValidateMutation(const PoiService& service, const MutationRecord& record,
                      std::string* why) {
  switch (record.op) {
    case MutationOp::kInsert:
      if (record.vertex >= service.Engine().NetworkGraph().NumVertices()) {
        *why = "vertex out of range";
        return false;
      }
      return true;
    case MutationOp::kDelete:
      if (!service.Engine().Store().IsLive(record.object)) {
        *why = "no such poi";
        return false;
      }
      return true;
    case MutationOp::kEpochTransition:
      // Minted by PROMOTE only; never accepted from the client path.
      *why = "not a client mutation";
      return false;
    case MutationOp::kUpdate: {
      if (!service.Engine().Store().IsLive(record.object)) {
        *why = "no such poi";
        return false;
      }
      // Adds apply before removes and never fail on a live object; a
      // remove fails if its keyword is absent at that point. Simulate the
      // per-keyword presence so "add x, remove x" and "remove x twice"
      // validate exactly as they would apply.
      std::unordered_map<std::string, bool> present;
      const auto state = [&](const std::string& keyword) -> bool& {
        const std::string canonical = PoiService::CanonicalKeyword(keyword);
        auto it = present.find(canonical);
        if (it == present.end()) {
          it = present.emplace(canonical,
                               service.HasTag(record.object, canonical))
                   .first;
        }
        return it->second;
      };
      for (const std::string& keyword : record.add_keywords) {
        state(keyword) = true;
      }
      for (const std::string& keyword : record.remove_keywords) {
        bool& tagged = state(keyword);
        if (!tagged) {
          *why = "poi does not have keyword: " + keyword;
          return false;
        }
        tagged = false;
      }
      return true;
    }
  }
  *why = "unknown mutation op";
  return false;
}

}  // namespace

bool Server::DecodeMutationRequest(const Request& request,
                                   MutationRecord* record,
                                   std::uint64_t* fence_epoch,
                                   std::vector<std::uint8_t>* error_response) {
  const auto malformed = [&](const char* what) {
    metrics_.requests_malformed_payload.fetch_add(1,
                                                  std::memory_order_relaxed);
    *error_response =
        EncodeErrorResponse(StatusCode::kMalformedPayload, what);
    return false;
  };
  *fence_epoch = 0;
  switch (request.header.opcode) {
    case Opcode::kInsertDoc: {
      InsertDocRequest req;
      if (!DecodeInsertDocRequest(request.payload, &req)) {
        return malformed("bad insert-doc payload");
      }
      record->op = MutationOp::kInsert;
      record->idempotency_key = req.idempotency_key;
      record->vertex = req.vertex;
      record->name = std::move(req.name);
      record->add_keywords = std::move(req.keywords);
      *fence_epoch = req.fence_epoch;
      return true;
    }
    case Opcode::kDeleteDoc: {
      DeleteDocRequest req;
      if (!DecodeDeleteDocRequest(request.payload, &req)) {
        return malformed("bad delete-doc payload");
      }
      record->op = MutationOp::kDelete;
      record->idempotency_key = req.idempotency_key;
      record->object = req.object;
      *fence_epoch = req.fence_epoch;
      return true;
    }
    case Opcode::kUpdateDoc: {
      UpdateDocRequest req;
      if (!DecodeUpdateDocRequest(request.payload, &req)) {
        return malformed("bad update-doc payload");
      }
      record->op = MutationOp::kUpdate;
      record->idempotency_key = req.idempotency_key;
      record->object = req.object;
      record->add_keywords = std::move(req.add_keywords);
      record->remove_keywords = std::move(req.remove_keywords);
      *fence_epoch = req.fence_epoch;
      return true;
    }
    // Legacy v1/v2 write opcodes route through the same logged path.
    // They carry no idempotency key (0 = every call is distinct).
    case Opcode::kPoiAdd: {
      PoiAddRequest add;
      if (!DecodePoiAddRequest(request.payload, &add)) {
        return malformed("bad poi-add payload");
      }
      record->op = MutationOp::kInsert;
      record->vertex = add.vertex;
      record->name = std::move(add.name);
      record->add_keywords = std::move(add.keywords);
      return true;
    }
    case Opcode::kPoiClose: {
      PayloadReader reader(request.payload);
      const ObjectId object = reader.U32();
      if (!reader.Finished()) {
        return malformed("bad poi-close payload");
      }
      record->op = MutationOp::kDelete;
      record->object = object;
      return true;
    }
    case Opcode::kPoiTag:
    case Opcode::kPoiUntag: {
      PoiTagRequest tag;
      if (!DecodePoiTagRequest(request.payload, &tag)) {
        return malformed("bad poi-tag payload");
      }
      record->op = MutationOp::kUpdate;
      record->object = tag.object;
      if (request.header.opcode == Opcode::kPoiTag) {
        record->add_keywords.push_back(std::move(tag.keyword));
      } else {
        record->remove_keywords.push_back(std::move(tag.keyword));
      }
      return true;
    }
    default:
      break;
  }
  metrics_.requests_unsupported.fetch_add(1, std::memory_order_relaxed);
  *error_response =
      EncodeErrorResponse(StatusCode::kUnsupported, "not a mutation opcode");
  return false;
}

void Server::ProcessMutation(Request& request) {
  const FrameHeader& header = request.header;
  const Opcode opcode = header.opcode;
  const Clock::time_point exec_start = Clock::now();
  std::vector<std::uint8_t> response;
  bool ok = false;
  bool need_sync = false;
  MutationReply result;
  MutationRecord record;
  std::uint64_t fence_epoch = 0;
  try {
    if (DecodeMutationRequest(request, &record, &fence_epoch, &response)) {
      // The logged form is canonical: a record the log codec would reject
      // (oversized name / keyword list) is refused here, so replay never
      // meets a record it cannot decode.
      const std::vector<std::uint8_t> payload = EncodeMutationRecord(record);
      MutationRecord canonical;
      if (fence_epoch > primary_epoch_.load(std::memory_order_acquire)) {
        // The client has seen a newer primary: this server was promoted
        // away from. Latch the fence so every later write (keyed or not)
        // is rejected inline before reaching here.
        ObserveFencedEpoch(fence_epoch);
        metrics_.requests_stale_epoch.fetch_add(1,
                                                std::memory_order_relaxed);
        response = EncodeErrorResponse(
            StatusCode::kStaleEpoch,
            "fenced: a newer primary epoch " +
                std::to_string(fence_epoch) + " has been observed");
      } else if (!DecodeMutationRecord(payload, &canonical)) {
        metrics_.requests_bad_query.fetch_add(1, std::memory_order_relaxed);
        response = EncodeErrorResponse(StatusCode::kBadQuery,
                                       "mutation exceeds size limits");
      } else {
        std::lock_guard<std::mutex> guard(mutation_mutex_);
        const IdempotencyCache::Result* seen =
            idempotency_.Find(record.idempotency_key);
        if (record.idempotency_key != 0) {
          (seen != nullptr ? metrics_.idempotency_cache_hits
                           : metrics_.idempotency_cache_misses)
              .fetch_add(1, std::memory_order_relaxed);
        }
        std::string why;
        if (seen != nullptr) {
          // Retry of an already-applied (and already-durable) mutation:
          // answer with the original result, apply nothing.
          result.sequence = seen->sequence;
          result.object = seen->object;
          ok = true;
        } else if (!ValidateMutation(service_, record, &why)) {
          metrics_.requests_bad_query.fetch_add(1,
                                                std::memory_order_relaxed);
          response = EncodeErrorResponse(StatusCode::kBadQuery, why);
        } else {
          const std::uint64_t sequence = oplog_.Append(payload);
          if (sequence == 0) {
            metrics_.requests_internal_error.fetch_add(
                1, std::memory_order_relaxed);
            response = EncodeErrorResponse(StatusCode::kInternal,
                                           "op log append failed");
          } else {
            ObjectId object = kInvalidObject;
            {
              // The only instant queries wait on a mutation: the
              // in-memory apply. The fsync happens outside the window
              // (and outside mutation_mutex_).
              const EpochGate::ApplyGuard apply(gate_);
              object = ApplyMutationRecord(service_, record);
            }
            applied_sequence_.store(sequence, std::memory_order_release);
            idempotency_.Remember(record.idempotency_key,
                                  {sequence, object});
            metrics_.mutations_applied.fetch_add(1,
                                                 std::memory_order_relaxed);
            result.sequence = sequence;
            result.object = object;
            ok = true;
            need_sync = true;
          }
        }
      }
    }
  } catch (const std::exception& e) {
    // Validation should make the apply infallible; anything that still
    // escapes (allocation failure) is an internal error.
    metrics_.requests_internal_error.fetch_add(1, std::memory_order_relaxed);
    response = EncodeErrorResponse(StatusCode::kInternal, e.what());
    ok = false;
    need_sync = false;
  }
  // Group-committed durability barrier, outside mutation_mutex_ so
  // concurrent mutations append while this one fsyncs (one fsync covers
  // every record appended before it started).
  if (need_sync && !oplog_.Sync()) {
    // Applied in memory but not durable: refuse the acknowledgement.
    metrics_.requests_internal_error.fetch_add(1, std::memory_order_relaxed);
    response =
        EncodeErrorResponse(StatusCode::kInternal, "op log sync failed");
    ok = false;
  }
  if (ok) {
    // Legacy opcodes keep their v1/v2 response bodies; the v3 opcodes
    // return the log sequence + object id (+ the acking primary's epoch,
    // so failover clients learn the newest epoch from every ack).
    result.primary_epoch = PrimaryEpoch();
    switch (opcode) {
      case Opcode::kPoiAdd:
        response = EncodeObjectIdResponse(result.object);
        break;
      case Opcode::kPoiClose:
      case Opcode::kPoiTag:
      case Opcode::kPoiUntag:
        response = EncodeOkResponse();
        break;
      default:
        response = EncodeMutationResponse(result);
        break;
    }
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    const auto micros = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - request.admitted_at)
            .count());
    metrics_.update_latency.Record(micros, request.trace.trace_id);
  }
  MirrorOplogMetrics();
  const StatusCode final_status =
      response.empty() ? StatusCode::kInternal
                       : static_cast<StatusCode>(response[0]);
  const Clock::time_point respond_start = Clock::now();
  Respond(request.conn, header, std::move(response));
  SpanRecord span;
  span.trace_id = request.trace.trace_id;
  span.parent_span_id = request.trace.parent_span_id;
  span.span_id = recorder_.NextSpanId();
  span.opcode = static_cast<std::uint8_t>(opcode);
  span.status = static_cast<std::uint8_t>(final_status);
  span.queue_us = request.queue_us;
  span.execute_us = static_cast<std::uint32_t>(std::min<std::int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(respond_start -
                                                            exec_start)
          .count(),
      UINT32_MAX));
  span.reply_us = static_cast<std::uint32_t>(std::min<std::int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            respond_start)
          .count(),
      UINT32_MAX));
  recorder_.RecordSpan(span);
}

void Server::ProcessPromote(Request& request) {
  const FrameHeader& header = request.header;
  PromoteRequest promote;
  if (!DecodePromoteRequest(request.payload, &promote)) {
    metrics_.requests_malformed_payload.fetch_add(1,
                                                  std::memory_order_relaxed);
    Respond(request.conn, header,
            EncodeErrorResponse(StatusCode::kMalformedPayload,
                                "bad promote payload"));
    return;
  }
  if (Role() == ServerRole::kPrimary) {
    // Idempotent: a retried (or misdirected) PROMOTE on a primary reports
    // the standing epoch instead of minting a new one.
    PromoteReply reply;
    reply.epoch = PrimaryEpoch();
    reply.applied_sequence = AppliedSequence();
    reply.role = static_cast<std::uint8_t>(ServerRole::kPrimary);
    metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
    Respond(request.conn, header, EncodePromoteResponse(reply));
    return;
  }
  if (promote.min_applied_sequence > 0 &&
      AppliedSequence() < promote.min_applied_sequence) {
    metrics_.requests_bad_query.fetch_add(1, std::memory_order_relaxed);
    Respond(request.conn, header,
            EncodeErrorResponse(
                StatusCode::kBadQuery,
                "applied sequence " + std::to_string(AppliedSequence()) +
                    " is below required " +
                    std::to_string(promote.min_applied_sequence)));
    return;
  }
  // Stop tailing the old primary BEFORE taking mutation_mutex_: the
  // replicator's poll thread takes that mutex inside
  // ApplyReplicatedMutations, so stopping it under the lock would
  // deadlock. After this point nothing else advances the applied state.
  if (replicator_ != nullptr) replicator_->Stop();

  std::vector<std::uint8_t> response;
  bool need_sync = false;
  PromoteReply reply;
  {
    std::lock_guard<std::mutex> guard(mutation_mutex_);
    // Jump past any epoch ever observed, so the new reign is strictly
    // newer than both our old primary's and any concurrent claimant a
    // client has fenced us with.
    const std::uint64_t new_epoch =
        std::max(primary_epoch_.load(std::memory_order_relaxed),
                 fenced_epoch_.load(std::memory_order_relaxed)) +
        1;
    MutationRecord record;
    record.op = MutationOp::kEpochTransition;
    record.epoch = new_epoch;
    const std::uint64_t sequence = oplog_.Append(EncodeMutationRecord(record));
    if (sequence == 0) {
      metrics_.requests_internal_error.fetch_add(1,
                                                 std::memory_order_relaxed);
      response =
          EncodeErrorResponse(StatusCode::kInternal, "op log append failed");
    } else {
      // The epoch record's sequence IS the boundary: the first sequence
      // of the new reign. A demoted ex-primary whose applied position
      // reaches it has diverged and must truncate (docs/persistence.md).
      applied_sequence_.store(sequence, std::memory_order_release);
      epoch_boundary_.store(sequence, std::memory_order_release);
      primary_epoch_.store(new_epoch, std::memory_order_release);
      role_.store(ServerRole::kPrimary, std::memory_order_release);
      metrics_.promotions.fetch_add(1, std::memory_order_relaxed);
      metrics_.primary_epoch.store(new_epoch, std::memory_order_relaxed);
      recorder_.RecordEvent(DiagEvent::kPromote, new_epoch, sequence);
      PersistEpochStateLocked();
      reply.epoch = new_epoch;
      reply.applied_sequence = sequence;
      reply.role = static_cast<std::uint8_t>(ServerRole::kPrimary);
      need_sync = true;
    }
  }
  if (need_sync) {
    if (!oplog_.Sync()) {
      // The flip happened but the epoch record is not durable; refuse the
      // acknowledgement. A retry lands in the already-primary path and
      // reports the standing epoch.
      metrics_.requests_internal_error.fetch_add(1,
                                                 std::memory_order_relaxed);
      response =
          EncodeErrorResponse(StatusCode::kInternal, "op log sync failed");
    } else {
      metrics_.requests_ok.fetch_add(1, std::memory_order_relaxed);
      response = EncodePromoteResponse(reply);
    }
  }
  MirrorOplogMetrics();
  Respond(request.conn, header, std::move(response));
}

// ----- Epoch fencing --------------------------------------------------------

void Server::ObserveFencedEpoch(std::uint64_t epoch) {
  std::uint64_t current = fenced_epoch_.load(std::memory_order_relaxed);
  bool raised = false;
  while (epoch > current) {
    if (fenced_epoch_.compare_exchange_weak(current, epoch,
                                            std::memory_order_acq_rel)) {
      raised = true;
      break;
    }
  }
  if (raised) {
    // Journal the fencing: the one-line answer to "why did this primary
    // start rejecting writes?" in a post-incident DUMP_DIAG.
    recorder_.RecordEvent(DiagEvent::kStaleEpochFence, epoch,
                          primary_epoch_.load(std::memory_order_acquire));
  }
}

void Server::AdoptEpoch(std::uint64_t epoch, std::uint64_t boundary) {
  std::lock_guard<std::mutex> guard(mutation_mutex_);
  AdoptEpochLocked(epoch, boundary);
}

void Server::AdoptEpochLocked(std::uint64_t epoch, std::uint64_t boundary) {
  if (epoch <= primary_epoch_.load(std::memory_order_relaxed)) return;
  primary_epoch_.store(epoch, std::memory_order_release);
  if (boundary != 0) {
    epoch_boundary_.store(boundary, std::memory_order_release);
  }
  metrics_.primary_epoch.store(epoch, std::memory_order_relaxed);
  PersistEpochStateLocked();
}

std::size_t Server::QuarantineDivergentOplog(std::uint64_t boundary) {
  std::string path;
  const std::size_t preserved = oplog_.QuarantineTail(boundary, &path);
  if (preserved == static_cast<std::size_t>(-1)) {
    std::fprintf(stderr,
                 "oplog: quarantine of records >= %llu failed; the "
                 "divergent tail will be lost to the snapshot install\n",
                 static_cast<unsigned long long>(boundary));
    return 0;
  }
  if (preserved > 0) {
    metrics_.oplog_quarantined_records.fetch_add(preserved,
                                                 std::memory_order_relaxed);
    std::fprintf(stderr,
                 "oplog: preserved %zu divergent record(s) at sequence >= "
                 "%llu to %s\n",
                 preserved, static_cast<unsigned long long>(boundary),
                 path.c_str());
  }
  // The catalog already has the divergent records applied and there is no
  // in-memory undo, so the positions it advertises are lies. Zero them:
  // the next poll then fetches the new primary's snapshot and the install
  // replaces the catalog wholesale (and Reset()s the log), which is the
  // actual repair.
  {
    std::lock_guard<std::mutex> guard(mutation_mutex_);
    applied_sequence_.store(0, std::memory_order_release);
    snapshot_sequence_.store(0, std::memory_order_relaxed);
  }
  return preserved;
}

std::string Server::EpochStateDir() const {
  if (oplog_.Enabled()) return oplog_.Dir();
  return options_.snapshot.dir;
}

void Server::PersistEpochStateLocked() {
  const std::string dir = EpochStateDir();
  if (dir.empty()) return;
  const std::string path =
      (std::filesystem::path(dir) / "primary-epoch").string();
  try {
    std::filesystem::create_directories(dir);
    io::WriteFileAtomically(path, [&](std::ostream& out) {
      out << primary_epoch_.load(std::memory_order_relaxed) << ' '
          << epoch_boundary_.load(std::memory_order_relaxed) << '\n';
      if (!out) throw io::SerializationError("short epoch sidecar write");
    });
  } catch (const std::exception& e) {
    // Non-fatal: the epoch also lives in the log until truncation.
    std::fprintf(stderr, "epoch: cannot persist %s: %s\n", path.c_str(),
                 e.what());
  }
}

void Server::LoadEpochState() {
  const std::string dir = EpochStateDir();
  if (dir.empty()) return;
  std::ifstream in(std::filesystem::path(dir) / "primary-epoch");
  std::uint64_t epoch = 0;
  std::uint64_t boundary = 0;
  if (!(in >> epoch)) return;  // Missing or unreadable: epoch 0.
  in >> boundary;
  primary_epoch_.store(epoch, std::memory_order_relaxed);
  epoch_boundary_.store(boundary, std::memory_order_relaxed);
}

std::vector<std::uint8_t> Server::HandleFetchOplog(
    const FetchOplogRequest& fetch) {
  // A fetcher that has seen a newer epoch fences us exactly like a
  // write-path client would.
  if (fetch.requester_epoch > primary_epoch_.load(std::memory_order_acquire)) {
    ObserveFencedEpoch(fetch.requester_epoch);
  }
  if (!oplog_.Enabled()) {
    // No durable log (no --oplog-dir): replicas must use snapshots.
    return EncodeErrorResponse(StatusCode::kUnsupported, "op log disabled");
  }
  const std::uint32_t max_bytes =
      fetch.max_bytes == 0
          ? kMaxSnapshotChunkBytes
          : std::min(fetch.max_bytes, kMaxSnapshotChunkBytes);
  std::vector<OplogRecord> records;
  bool truncated = false;
  if (!oplog_.ReadRange(fetch.from_sequence, max_bytes, &records,
                        &truncated)) {
    return EncodeErrorResponse(StatusCode::kInternal, "op log read failed");
  }
  OplogChunk chunk;
  chunk.truncated = truncated ? 1 : 0;
  chunk.last_sequence = oplog_.LastSequence();
  chunk.oldest_sequence = oplog_.OldestSequence();
  chunk.primary_epoch = PrimaryEpoch();
  chunk.epoch_boundary_sequence =
      epoch_boundary_.load(std::memory_order_acquire);
  chunk.records.reserve(records.size());
  for (OplogRecord& record : records) {
    OplogWireRecord wire;
    wire.sequence = record.sequence;
    wire.payload.assign(record.payload.begin(), record.payload.end());
    chunk.records.push_back(std::move(wire));
  }
  return EncodeOplogChunkResponse(chunk);
}

void Server::MirrorOplogMetrics() {
  metrics_.oplog_appends.store(oplog_.Appends(), std::memory_order_relaxed);
  metrics_.oplog_fsync_batches.store(oplog_.FsyncBatches(),
                                     std::memory_order_relaxed);
}

bool Server::ApplyReplicatedMutations(
    const std::vector<OplogWireRecord>& records, std::string* error) {
  bool appended = false;
  {
    std::lock_guard<std::mutex> guard(mutation_mutex_);
    for (const OplogWireRecord& wire : records) {
      const std::uint64_t applied =
          applied_sequence_.load(std::memory_order_relaxed);
      if (wire.sequence <= applied) continue;  // Duplicate from a retry.
      if (wire.sequence != applied + 1) {
        *error = "sequence gap: applied " + std::to_string(applied) +
                 ", got " + std::to_string(wire.sequence);
        return false;
      }
      const auto* data =
          reinterpret_cast<const std::uint8_t*>(wire.payload.data());
      const std::span<const std::uint8_t> payload{data, wire.payload.size()};
      MutationRecord record;
      if (!DecodeMutationRecord(payload, &record)) {
        *error = "undecodable mutation record at sequence " +
                 std::to_string(wire.sequence);
        return false;
      }
      // Mirror into the local log first (the explicit sequence keeps the
      // replica's log byte-identical to the primary's), then apply.
      if (oplog_.Append(payload, wire.sequence) == 0) {
        *error = "op log append failed at sequence " +
                 std::to_string(wire.sequence);
        return false;
      }
      appended = true;
      if (record.op == MutationOp::kEpochTransition) {
        // The primary's reign change, streamed in-band: adopt the epoch
        // (and its boundary — this very sequence) without touching the
        // catalog.
        applied_sequence_.store(wire.sequence, std::memory_order_release);
        AdoptEpochLocked(record.epoch, wire.sequence);
        continue;
      }
      try {
        const EpochGate::ApplyGuard apply(gate_);
        ApplyMutationRecord(service_, record);
      } catch (const std::exception& e) {
        // The primary validated this record against the same state, so
        // this indicates divergence; the replicator falls back to a
        // snapshot transfer, which resets the log past this record.
        *error = "apply failed at sequence " +
                 std::to_string(wire.sequence) + ": " + e.what();
        return false;
      }
      applied_sequence_.store(wire.sequence, std::memory_order_release);
      metrics_.mutations_applied.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (appended && !oplog_.Sync()) {
    *error = "op log sync failed";
    return false;
  }
  MirrorOplogMetrics();
  return true;
}

// ----- Replication ---------------------------------------------------------

std::vector<std::uint8_t> Server::BuildHealthResponse() {
  HealthInfo info;
  const ServerRole role = Role();  // Dynamic: PROMOTE flips it at runtime.
  info.role = static_cast<std::uint8_t>(role);
  info.snapshot_sequence = SnapshotSequence();
  info.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start_time_)
          .count());
  info.queue_depth = queue_->Size();
  info.applied_sequence = AppliedSequence();
  info.primary_epoch = PrimaryEpoch();
  if (role == ServerRole::kReplica) {
    info.primary_address = options_.replication.primary.ToString();
  }
  return EncodeHealthResponse(info);
}

std::vector<std::uint8_t> Server::HandleFetchSnapshot(
    const FetchSnapshotRequest& fetch) {
  const std::string& dir = options_.snapshot.dir;
  std::uint64_t sequence = fetch.sequence;
  std::string path;
  std::uint64_t total = 0;
  try {
    if (fetch.offset == 0 && sequence == 0) {
      // Start of a "newest valid" transfer: walk newest-first and pin the
      // first snapshot that passes full validation, so a corrupt newest
      // file is skipped rather than shipped.
      for (const auto& [seq, candidate] : io::FindSnapshots(dir)) {
        try {
          total = io::ValidateSnapshotFile(candidate);
          sequence = seq;
          path = candidate;
          break;
        } catch (const io::SerializationError&) {
          // Damaged; try the next-newest.
        }
      }
      if (path.empty()) {
        return EncodeErrorResponse(StatusCode::kBadQuery,
                                   "no valid snapshot available");
      }
    } else if (sequence == 0) {
      return EncodeErrorResponse(
          StatusCode::kBadQuery,
          "nonzero offset requires an explicit sequence");
    } else {
      path = (std::filesystem::path(dir) / io::SnapshotFileName(sequence))
                 .string();
      if (fetch.offset == 0) {
        // Explicit-sequence transfers validate once up front too.
        total = io::ValidateSnapshotFile(path);
      } else {
        // Later chunks are plain range reads; the fetcher verifies the
        // assembled image end-to-end. A pruned file surfaces here as a
        // clean BAD_QUERY and the fetcher restarts from the newest.
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (ec) {
          return EncodeErrorResponse(
              StatusCode::kBadQuery,
              "snapshot " + std::to_string(sequence) + " no longer exists");
        }
        total = size;
      }
    }
    if (fetch.offset > total) {
      return EncodeErrorResponse(StatusCode::kBadQuery,
                                 "offset beyond snapshot end");
    }
    const std::uint32_t max_bytes =
        fetch.max_bytes == 0
            ? kMaxSnapshotChunkBytes
            : std::min(fetch.max_bytes, kMaxSnapshotChunkBytes);
    SnapshotChunk chunk;
    chunk.sequence = sequence;
    chunk.total_size = total;
    chunk.offset = fetch.offset;
    chunk.bytes = io::ReadFileRange(path, fetch.offset, max_bytes);
    metrics_.snapshot_chunks_served.fetch_add(1, std::memory_order_relaxed);
    return EncodeSnapshotChunkResponse(chunk);
  } catch (const io::SerializationError& e) {
    return EncodeErrorResponse(StatusCode::kBadQuery, e.what());
  }
}

bool Server::InstallReplicaSnapshot(std::uint64_t sequence,
                                    const std::string& bytes,
                                    std::string* error) {
  try {
    // 1. Validate and load the image OFF the serving path — full container
    // checks plus the graph-identity check against the serving graph (the
    // graph reference never changes across RestoreCatalog, so reading it
    // needs no lock). Reads keep being served from the old state.
    const Graph* serving_graph = &service_.Engine().NetworkGraph();
    RestoredServiceState state =
        ReadServiceSnapshotBytes(bytes, serving_graph);

    // 2. Persist the verified image locally (crash-safe), so a replica
    // restart restores from disk instead of re-fetching.
    if (!options_.snapshot.dir.empty()) {
      std::filesystem::create_directories(options_.snapshot.dir);
      const std::string path = (std::filesystem::path(options_.snapshot.dir) /
                                io::SnapshotFileName(sequence))
                                   .string();
      io::WriteFileAtomically(path, [&](std::ostream& out) {
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out) throw io::SerializationError("short snapshot write");
      });
    }

    // 3. Swap the serving catalog inside an apply window — the same path
    // RELOAD takes: queries drain for the swap itself, nothing else.
    {
      std::lock_guard<std::mutex> guard(mutation_mutex_);
      {
        const EpochGate::ApplyGuard apply(gate_);
        service_.RestoreCatalog(std::move(state.catalog.vocabulary),
                                std::move(state.catalog.names),
                                std::move(state.store), std::move(state.alt),
                                std::move(state.keyword_index),
                                options_.snapshot.engine_options);
      }
      snapshot_sequence_.store(sequence, std::memory_order_relaxed);
      // The snapshot carries its applied mutation position; jump there and
      // restart the local log (a dense log cannot represent the gap).
      applied_sequence_.store(state.applied_mutation_sequence,
                              std::memory_order_release);
      if (!oplog_.Reset(state.applied_mutation_sequence + 1)) {
        std::fprintf(stderr,
                     "oplog: reset after snapshot install failed; "
                     "log tailing disabled until restart\n");
      }
    }
    if (!options_.snapshot.dir.empty()) {
      io::PruneSnapshots(options_.snapshot.dir, options_.snapshot.keep);
    }
    recorder_.RecordEvent(DiagEvent::kSnapshotRestored, sequence);
    return true;
  } catch (const std::exception& e) {
    *error = e.what();
    return false;
  }
}

// ----- Persistence ---------------------------------------------------------

std::pair<std::uint64_t, std::string> Server::SnapshotNow() {
  std::lock_guard<std::mutex> guard(mutation_mutex_);
  return SnapshotLocked();
}

std::pair<std::uint64_t, std::string> Server::SnapshotLocked() {
  const std::string& dir = options_.snapshot.dir;
  if (dir.empty()) {
    throw std::logic_error("SnapshotLocked: no snapshot directory");
  }
  try {
    std::filesystem::create_directories(dir);
    const auto existing = io::FindSnapshots(dir);
    const std::uint64_t sequence =
        existing.empty() ? 1 : existing.front().first + 1;
    const std::string path =
        (std::filesystem::path(dir) / io::SnapshotFileName(sequence))
            .string();
    // mutation_mutex_ (held by the caller) excludes writers, so the state
    // and its applied position are mutually consistent for the whole
    // write; queries keep flowing (they never change state).
    const std::uint64_t applied =
        applied_sequence_.load(std::memory_order_relaxed);
    WriteServiceSnapshotFile(
        path, service_,
        {options_.snapshot.ch, options_.snapshot.hl, applied});
    io::PruneSnapshots(dir, options_.snapshot.keep);
    metrics_.snapshots_written.fetch_add(1, std::memory_order_relaxed);
    snapshot_sequence_.store(sequence, std::memory_order_relaxed);
    recorder_.RecordEvent(DiagEvent::kSnapshotWritten, sequence, applied);
    // Everything up to `applied` is now in the snapshot; sealed log
    // segments it covers can go (the active segment stays for tailing).
    oplog_.TruncateThrough(applied);
    if (oplog_.Enabled()) {
      recorder_.RecordEvent(DiagEvent::kOplogRotated, applied);
    }
    return {sequence, path};
  } catch (...) {
    metrics_.snapshots_failed.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
}

std::vector<std::uint8_t> Server::HandleReloadLocked() {
  std::vector<std::string> errors;
  std::optional<LoadedServiceSnapshot> loaded = LoadNewestValidServiceSnapshot(
      options_.snapshot.dir, &service_.Engine().NetworkGraph(), &errors);
  if (!loaded.has_value()) {
    metrics_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    std::string message = "no valid snapshot";
    for (const std::string& error : errors) {
      message += "; ";
      message += error;
    }
    return EncodeErrorResponse(StatusCode::kBadQuery, message);
  }
  try {
    const EpochGate::ApplyGuard apply(gate_);
    service_.RestoreCatalog(std::move(loaded->state.catalog.vocabulary),
                            std::move(loaded->state.catalog.names),
                            std::move(loaded->state.store),
                            std::move(loaded->state.alt),
                            std::move(loaded->state.keyword_index),
                            options_.snapshot.engine_options);
  } catch (...) {
    metrics_.reloads_failed.fetch_add(1, std::memory_order_relaxed);
    throw;
  }
  metrics_.reloads_ok.fetch_add(1, std::memory_order_relaxed);
  snapshot_sequence_.store(loaded->sequence, std::memory_order_relaxed);
  recorder_.RecordEvent(DiagEvent::kSnapshotRestored, loaded->sequence);
  // RELOAD is an explicit rewind to the snapshot's state: the applied
  // position jumps back with it and the log restarts there — any records
  // past the snapshot are deliberately discarded.
  applied_sequence_.store(loaded->state.applied_mutation_sequence,
                          std::memory_order_release);
  if (!oplog_.Reset(loaded->state.applied_mutation_sequence + 1)) {
    std::fprintf(stderr, "oplog: reset after reload failed\n");
  }
  return EncodeSnapshotResponse(loaded->sequence, loaded->path);
}

void Server::SnapshotLoop() {
  std::unique_lock<std::mutex> lock(snapshot_cv_mutex_);
  for (;;) {
    const bool stop = snapshot_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.snapshot.period_ms),
        [this] { return snapshot_stop_; });
    if (stop) return;
    lock.unlock();
    {
      std::lock_guard<std::mutex> guard(mutation_mutex_);
      try {
        SnapshotLocked();
      } catch (const std::exception&) {
        // Counted by SnapshotLocked; keep serving, retry next period.
      }
    }
    lock.lock();
  }
}

}  // namespace kspin::server
