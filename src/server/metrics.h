// Server-side observability: lock-free counters and a latency histogram,
// snapshotted by the STATS opcode and rendered as Prometheus 0.0.4 text by
// the METRICS opcode (docs/observability.md). Everything here is safe to
// update from the I/O thread and every worker concurrently.
#ifndef KSPIN_SERVER_METRICS_H_
#define KSPIN_SERVER_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "kspin/query_processor.h"
#include "server/wire.h"

namespace kspin::server {

/// A point-in-time copy of one histogram: every bucket, the count, and the
/// sum loaded exactly once (relaxed), so derived values (mean, percentiles,
/// cumulative buckets) are all computed from the same self-consistent data
/// instead of re-reading live atomics per statistic.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 40;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_micros = 0;
  /// Per-bucket exemplars: the trace id (0 = none) and recorded value of
  /// a recent sample that landed in the bucket, so a p999 spike on a
  /// dashboard links straight to a flight-recorder span. Best-effort:
  /// the pair is written with two relaxed stores, so a torn read may mix
  /// two samples' fields — both still name real recent samples.
  std::array<std::uint64_t, kBuckets> exemplar_trace{};
  std::array<std::uint64_t, kBuckets> exemplar_value{};

  /// Mean in microseconds (0 when empty).
  std::uint64_t MeanMicros() const;
  /// p in (0, 1]; upper bound of the bucket holding the p-quantile.
  std::uint64_t PercentileMicros(double p) const;
  /// Upper bound of bucket i in microseconds (2^(i+1)).
  static std::uint64_t BucketUpperMicros(std::size_t i) {
    return std::uint64_t{1} << (i + 1);
  }
};

/// Log2-bucketed latency histogram over microseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) us (bucket 0 also takes 0; values past the
/// last bucket saturate into it). Percentiles are reported as the upper
/// bound of the containing bucket — at most 2x off, plenty for load
/// shedding and dashboards.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(std::uint64_t micros) { Record(micros, 0); }
  /// Records the sample and, when `trace_id` != 0, stamps it as the
  /// bucket's exemplar (last-writer-wins).
  void Record(std::uint64_t micros, std::uint64_t trace_id);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  /// One consistent relaxed-load pass over all fields.
  HistogramSnapshot Snapshot() const;

  /// Mean in microseconds (0 when empty). Prefer Snapshot() when reading
  /// more than one statistic: these convenience readers each take their
  /// own snapshot, so values from separate calls may disagree.
  std::uint64_t MeanMicros() const { return Snapshot().MeanMicros(); }
  /// p in (0, 1]; upper bound of the bucket holding the p-quantile.
  std::uint64_t PercentileMicros(double p) const {
    return Snapshot().PercentileMicros(p);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_micros_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_trace_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplar_value_{};
};

/// One consistent view of all server metrics: the flat counter list (the
/// STATS key/value payload) plus raw histogram buckets, taken in a single
/// pass so every derived statistic in one response agrees with itself.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  HistogramSnapshot query_latency;
  HistogramSnapshot update_latency;
  HistogramSnapshot admission_sojourn;
};

/// All server counters. Field names match the keys reported by STATS.
class ServerMetrics {
 public:
  // Connection lifecycle.
  std::atomic<std::uint64_t> connections_opened{0};
  std::atomic<std::uint64_t> connections_closed{0};
  /// accept() failures from resource exhaustion (EMFILE/ENFILE/ENOBUFS/
  /// ENOMEM); each one also pauses accepting briefly.
  std::atomic<std::uint64_t> accept_errors{0};

  // Frame decoding.
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> frames_malformed{0};

  // Request outcomes.
  std::atomic<std::uint64_t> requests_ok{0};
  std::atomic<std::uint64_t> requests_bad_query{0};
  std::atomic<std::uint64_t> requests_malformed_payload{0};
  std::atomic<std::uint64_t> requests_unsupported{0};
  std::atomic<std::uint64_t> requests_internal_error{0};
  /// Shed at admission (queue full).
  std::atomic<std::uint64_t> requests_overloaded{0};
  /// Dropped at dequeue: deadline already passed before work started.
  std::atomic<std::uint64_t> requests_deadline_dropped{0};
  /// Aborted mid-query by the cooperative cancellation check.
  std::atomic<std::uint64_t> requests_deadline_cancelled{0};

  // Overload control (docs/protocol.md "Overload control & degradation").
  /// Rejected at admission: the deadline had already elapsed on arrival
  /// (never queued; distinct from requests_deadline_dropped).
  std::atomic<std::uint64_t> requests_deadline_rejected{0};
  /// Rejected by the adaptive (AIMD) admission limit — the soft bound
  /// below the hard queue capacity; requests_overloaded counts only the
  /// hard-capacity sheds.
  std::atomic<std::uint64_t> requests_admission_limited{0};
  /// Shed at dequeue by the CoDel sojourn check (queued too long while
  /// the queue stayed congested; failed fast instead of served stale).
  std::atomic<std::uint64_t> requests_codel_shed{0};
  /// Rejected by the per-connection token bucket.
  std::atomic<std::uint64_t> requests_rate_limited{0};
  /// Searches answered in brownout (degraded) mode.
  std::atomic<std::uint64_t> requests_degraded{0};
  /// Times brownout engaged.
  std::atomic<std::uint64_t> brownout_entries{0};
  /// Cumulative whole seconds spent browned out (counter).
  std::atomic<std::uint64_t> brownout_seconds{0};
  /// Gauge: 0 = normal, 1 = limited (AIMD limit below capacity),
  /// 2 = brownout.
  std::atomic<std::uint64_t> overload_state{0};
  /// Gauge: the admission queue's current adaptive limit.
  std::atomic<std::uint64_t> admission_limit{0};

  // Persistence.
  std::atomic<std::uint64_t> snapshots_written{0};
  std::atomic<std::uint64_t> snapshots_failed{0};
  std::atomic<std::uint64_t> reloads_ok{0};
  std::atomic<std::uint64_t> reloads_failed{0};

  // Mutation subsystem (docs/persistence.md, "The operation log").
  /// Records appended to the op log (mirrored from the Oplog writer).
  std::atomic<std::uint64_t> oplog_appends{0};
  /// fsync calls issued by group commit; appends / batches is the
  /// batching ratio.
  std::atomic<std::uint64_t> oplog_fsync_batches{0};
  /// Records replayed at boot (restore-snapshot-then-replay-tail).
  std::atomic<std::uint64_t> oplog_replay_records{0};
  /// Mutations applied to the serving state (wire, replay, or tailed from
  /// a primary).
  std::atomic<std::uint64_t> mutations_applied{0};
  /// Keyed-mutation retries answered from the idempotency cache vs fresh
  /// keyed mutations that missed it (key 0 counts neither).
  std::atomic<std::uint64_t> idempotency_cache_hits{0};
  std::atomic<std::uint64_t> idempotency_cache_misses{0};

  // Replication / failover.
  /// Writes rejected because this server is a replica.
  std::atomic<std::uint64_t> requests_not_primary{0};
  /// Writes rejected because this server is fenced (a higher primary
  /// epoch was observed).
  std::atomic<std::uint64_t> requests_stale_epoch{0};
  /// PROMOTE calls that flipped this server to primary.
  std::atomic<std::uint64_t> promotions{0};
  /// Gauge: this server's current primary epoch.
  std::atomic<std::uint64_t> primary_epoch{0};
  /// Divergent op-log records preserved to quarantine/ on rejoin.
  std::atomic<std::uint64_t> oplog_quarantined_records{0};
  /// FETCH_SNAPSHOT chunks served (primary side).
  std::atomic<std::uint64_t> snapshot_chunks_served{0};
  /// Replica-side poll loop (see Replicator): poll cycles started, cycles
  /// that failed before a verdict (connect/health error), whole-snapshot
  /// fetches, and install outcomes.
  std::atomic<std::uint64_t> replication_polls{0};
  std::atomic<std::uint64_t> replication_poll_errors{0};
  std::atomic<std::uint64_t> replication_fetches_ok{0};
  std::atomic<std::uint64_t> replication_fetches_failed{0};
  std::atomic<std::uint64_t> replication_installs_ok{0};
  std::atomic<std::uint64_t> replication_installs_rejected{0};
  /// Gauges: last installed sequence and primary-minus-local sequence gap.
  std::atomic<std::uint64_t> replication_last_sequence{0};
  std::atomic<std::uint64_t> replication_sequence_delta{0};
  /// steady_clock ms timestamp of the last poll that confirmed the replica
  /// in sync (or installed a snapshot / applied tailed records); 0 =
  /// never. STATS derives replication_lag_ms from it.
  std::atomic<std::uint64_t> replication_last_success_ms{0};
  /// Gauge: how the replica last converged — 0 = snapshot transfer,
  /// 1 = op-log tailing. Stays 0 until the first convergence.
  std::atomic<std::uint64_t> replication_source{0};
  /// Op-log records applied via tailing (replica side).
  std::atomic<std::uint64_t> replication_oplog_records{0};

  // Connection hardening (reasons the I/O thread force-closed a peer).
  /// No bytes in either direction for idle_timeout_ms.
  std::atomic<std::uint64_t> connections_reaped_idle{0};
  /// A partial frame sat unfinished past read_deadline_ms (slow-loris).
  std::atomic<std::uint64_t> connections_reaped_slow{0};
  /// The response backlog exceeded max_write_queue_bytes (peer not
  /// reading; unbounded buffering refused).
  std::atomic<std::uint64_t> connections_reaped_backpressure{0};

  // Engine cost drivers (docs/observability.md): per-query QueryStats
  // folded in once per executed search via AddQueryStats — the query loop
  // itself only bumps plain integers.
  std::atomic<std::uint64_t> engine_heap_pops{0};
  std::atomic<std::uint64_t> engine_lower_bounds{0};
  /// Batched lower-bounding (docs/performance.md): LowerBoundBatch calls
  /// and candidates priced across them. items / calls = mean block size
  /// the SIMD kernels amortize over.
  std::atomic<std::uint64_t> engine_lb_batch_calls{0};
  std::atomic<std::uint64_t> engine_lb_batch_items{0};
  std::atomic<std::uint64_t> engine_distance_computations{0};
  std::atomic<std::uint64_t> engine_false_positive_distances{0};
  std::atomic<std::uint64_t> engine_candidates_pruned_lb{0};
  std::atomic<std::uint64_t> engine_heaps_created{0};
  std::atomic<std::uint64_t> engine_heap_insertions{0};
  std::atomic<std::uint64_t> engine_results_returned{0};
  std::atomic<std::uint64_t> engine_heap_build_ns{0};
  std::atomic<std::uint64_t> engine_search_ns{0};

  // Tracing / slow-query log (kspin_server --trace / --slow-query-ms).
  std::atomic<std::uint64_t> slow_queries{0};
  std::atomic<std::uint64_t> traces_emitted{0};
  std::atomic<std::uint64_t> trace_rotations{0};

  /// Requests by opcode (indexed via OpcodeSlot).
  std::array<std::atomic<std::uint64_t>, 19> requests_by_opcode{};

  /// Queue depth high-watermark (the live depth is sampled at STATS time).
  std::atomic<std::uint64_t> queue_depth_peak{0};

  /// End-to-end latency (admission to response encoded) of executed
  /// requests, by class.
  LatencyHistogram query_latency;   ///< kSearchBoolean / kSearchRanked.
  LatencyHistogram update_latency;  ///< kPoi* and mutation opcodes.
  /// Time requests spent queued (push to pop), microseconds.
  LatencyHistogram admission_sojourn;

  /// Dense slot for an opcode, or npos for unknown ones.
  static std::size_t OpcodeSlot(Opcode opcode);
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  void CountOpcode(Opcode opcode) {
    const std::size_t slot = OpcodeSlot(opcode);
    if (slot != kNoSlot) {
      requests_by_opcode[slot].fetch_add(1, std::memory_order_relaxed);
    }
  }

  void RecordQueueDepth(std::size_t depth);

  /// Folds one query's engine counters into the aggregates (a handful of
  /// relaxed fetch_adds, once per query).
  void AddQueryStats(const QueryStats& stats);

  /// One consistent snapshot of every counter and both histograms, taken
  /// in a single relaxed-load pass. STATS and METRICS responses are built
  /// entirely from this, so all derived values in one response agree.
  MetricsSnapshot FullSnapshot(std::size_t current_queue_depth) const;

  /// Flat snapshot for the STATS response, `current_queue_depth` sampled
  /// by the caller. Keys are stable; tests and dashboards may rely on
  /// them (see docs/protocol.md).
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot(
      std::size_t current_queue_depth) const;
};

/// Renders a snapshot as Prometheus text exposition format 0.0.4: one
/// `kspin_`-prefixed family per counter, plus native histograms with
/// cumulative `le` buckets for query/update latency (docs/observability.md
/// shows a scrape). Also emits `kspin_build_info` (version / git sha /
/// protocol labels) and process gauges (RSS bytes, open fds, uptime
/// seconds) read from /proc, and OpenMetrics-style `# {trace_id="..."}`
/// exemplars on query-latency buckets that have one.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace kspin::server

#endif  // KSPIN_SERVER_METRICS_H_
