// Blocking client for the kspin wire protocol (server/wire.h).
//
// One Client owns one TCP connection and is NOT thread-safe: requests are
// issued strictly one at a time (send frame, read matching response).
// Transport problems (connect/read/write failures, protocol violations)
// throw ClientError; server-side rejections are returned in-band as the
// StatusCode of each reply so callers can distinguish OVERLOADED from
// DEADLINE_EXCEEDED from BAD_QUERY without exception plumbing.
#ifndef KSPIN_SERVER_CLIENT_H_
#define KSPIN_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.h"
#include "server/wire.h"

namespace kspin::server {

/// Thrown on transport / protocol failures (not server-side rejections).
class ClientError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects to `host:port`. Throws ClientError on failure.
  void Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool Connected() const { return fd_ >= 0; }

  /// Common reply envelope: server status + error message (empty on kOk).
  struct Reply {
    StatusCode status = StatusCode::kInternal;
    std::string error;
    /// RETRY_AFTER hint from an OVERLOADED reply's tolerant trailer
    /// (docs/protocol.md "Overload control & degradation"); 0 when the
    /// server sent none. RetryingClient honors it for backoff.
    std::uint32_t retry_after_ms = 0;
    bool ok() const { return status == StatusCode::kOk; }
  };

  struct SearchReply : Reply {
    std::vector<WireResult> results;
    /// True when the server answered in brownout mode: k may have been
    /// clamped and ranking is by lower bound, not exact distance.
    bool degraded = false;
  };

  struct AddPoiReply : Reply {
    ObjectId id = kInvalidObject;
  };

  struct StatsReply : Reply {
    std::vector<std::pair<std::string, std::uint64_t>> stats;
    /// Raw latency histograms (protocol v2+; empty from a v1 server).
    std::vector<WireHistogram> histograms;
    /// Value of `key`, or 0 if absent.
    std::uint64_t Value(std::string_view key) const;
  };

  struct MetricsReply : Reply {
    std::string text;  ///< Prometheus 0.0.4 exposition.
  };

  struct SnapshotReply : Reply {
    std::uint64_t sequence = 0;
    std::string path;
  };

  struct HealthReply : Reply {
    HealthInfo health;
  };

  struct FetchSnapshotReply : Reply {
    SnapshotChunk chunk;
  };

  struct FetchOplogReply : Reply {
    OplogChunk chunk;
  };

  struct MutateReply : Reply {
    std::uint64_t sequence = 0;     ///< Op-log sequence of the mutation.
    ObjectId id = kInvalidObject;   ///< Affected object (new id on insert).
    /// The acking primary's epoch (0 from pre-epoch servers). Failover
    /// clients track the max they have seen and fence stale primaries
    /// with it.
    std::uint64_t primary_epoch = 0;
  };

  struct PromoteAck : Reply {
    std::uint64_t epoch = 0;             ///< Primary epoch after the flip.
    std::uint64_t applied_sequence = 0;  ///< Applied sequence at the flip.
    std::uint8_t role = 0;               ///< Role after the call.
  };

  /// Liveness probe.
  Reply Ping();

  /// Server metrics snapshot.
  StatsReply Stats();

  /// Prometheus text exposition (METRICS opcode) — answered inline by the
  /// I/O thread, so scrapes work on a saturated server.
  MetricsReply Metrics();

  /// Role, newest snapshot sequence, uptime, and queue depth — answered
  /// inline by the I/O thread, so it works on a saturated server.
  HealthReply Health();

  /// One chunk of a snapshot file (FETCH_SNAPSHOT opcode). sequence 0
  /// with offset 0 asks for the newest valid snapshot; the reply pins the
  /// concrete sequence to echo on subsequent chunks. max_bytes 0 accepts
  /// the server's default chunk size.
  FetchSnapshotReply FetchSnapshotChunk(std::uint64_t sequence,
                                        std::uint64_t offset,
                                        std::uint32_t max_bytes = 0);

  /// Boolean (nearest-first) or ranked search. `deadline_ms` of 0 means
  /// no deadline; otherwise the server drops or aborts the request once
  /// the budget expires.
  SearchReply Search(std::string_view query, VertexId from, std::uint32_t k,
                     bool ranked = false, std::uint32_t deadline_ms = 0);

  AddPoiReply AddPoi(std::string_view name, VertexId vertex,
                     std::span<const std::string> keywords);
  Reply ClosePoi(ObjectId id);
  Reply TagPoi(ObjectId id, std::string_view keyword);
  Reply UntagPoi(ObjectId id, std::string_view keyword);

  /// Durable write path (v3 opcodes). `idempotency_key` is a client-chosen
  /// retry token: resending with the same key returns the original result
  /// instead of applying twice, so these are safe to retry (0 = no token,
  /// every send is a distinct operation).
  MutateReply InsertDoc(std::uint64_t idempotency_key, VertexId vertex,
                        std::string_view name,
                        std::span<const std::string> keywords);
  MutateReply DeleteDoc(std::uint64_t idempotency_key, ObjectId id);
  MutateReply UpdateDoc(std::uint64_t idempotency_key, ObjectId id,
                        std::span<const std::string> add_keywords,
                        std::span<const std::string> remove_keywords);

  /// One batch of op-log records after `from_sequence` (FETCH_OPLOG
  /// opcode) — the replica tailing path. max_bytes 0 accepts the server's
  /// default batch size. `requester_epoch` is the caller's primary epoch:
  /// a primary seeing a higher one knows it has been superseded and
  /// fences itself.
  FetchOplogReply FetchOplog(std::uint64_t from_sequence,
                             std::uint32_t max_bytes = 0,
                             std::uint64_t requester_epoch = 0);

  /// Admin: flip a replica to primary (PROMOTE opcode), bumping the
  /// primary epoch. Rejected with kBadQuery when the replica's applied
  /// sequence is below `min_applied_sequence` (0 = no guard). Idempotent
  /// on an already-primary server (reports the standing epoch).
  PromoteAck Promote(std::uint64_t min_applied_sequence = 0);

  /// Epoch stamped into every v3 mutation request (InsertDoc/DeleteDoc/
  /// UpdateDoc). A primary that sees a fence epoch above its own rejects
  /// the write with STALE_EPOCH and stays fenced. 0 = no fencing (the
  /// field still encodes; pre-epoch servers ignore it).
  void SetFenceEpoch(std::uint64_t epoch) { fence_epoch_ = epoch; }
  std::uint64_t FenceEpoch() const { return fence_epoch_; }

  /// Trace context stamped onto every subsequent request (v5 trace
  /// trailer + kFrameFlagTraceContext). A default (trace_id 0) context
  /// clears stamping. RetryingClient reuses this Client across attempts,
  /// so one SetTraceContext covers every retry of an operation.
  void SetTraceContext(const TraceContext& context) { trace_ = context; }
  const TraceContext& GetTraceContext() const { return trace_; }

  /// Flight-recorder dump (DUMP_DIAG opcode, v5+) — answered inline by
  /// the I/O thread, so it works on a saturated server.
  MetricsReply DumpDiag();

  /// Asks the server to write a snapshot now (SNAPSHOT opcode). On kOk
  /// the reply carries the new snapshot's sequence number and path.
  SnapshotReply Snapshot();
  /// Asks the server to replace its serving state with the newest valid
  /// snapshot on disk (RELOAD opcode).
  SnapshotReply Reload();

 private:
  /// Sends one frame and reads the response frame for it. Returns the
  /// response payload; throws ClientError on transport errors, a
  /// mismatched request id, or a server kError frame.
  std::vector<std::uint8_t> RoundTrip(Opcode opcode,
                                      std::span<const std::uint8_t> payload,
                                      std::uint32_t deadline_ms = 0);
  void WriteAll(std::span<const std::uint8_t> bytes);
  void ReadExactly(std::uint8_t* out, std::size_t count);

  int fd_ = -1;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t fence_epoch_ = 0;
  TraceContext trace_;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_CLIENT_H_
