#include "server/wire.h"

#include <algorithm>

#include "io/checksum.h"

namespace kspin::server {
namespace {

std::uint32_t ReadU32Le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t ReadU64Le(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(ReadU32Le(p)) |
         static_cast<std::uint64_t>(ReadU32Le(p + 4)) << 32;
}

void WriteU32Le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void WriteU64Le(std::uint8_t* p, std::uint64_t v) {
  WriteU32Le(p, static_cast<std::uint32_t>(v));
  WriteU32Le(p + 4, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace

std::string_view StatusName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kMalformedPayload:
      return "MALFORMED_PAYLOAD";
    case StatusCode::kBadQuery:
      return "BAD_QUERY";
    case StatusCode::kOverloaded:
      return "OVERLOADED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kNotPrimary:
      return "NOT_PRIMARY";
    case StatusCode::kStaleEpoch:
      return "STALE_EPOCH";
  }
  return "UNKNOWN";
}

DecodeResult TryDecodeFrame(std::span<const std::uint8_t> buffer,
                            FrameHeader* header, std::size_t* frame_size) {
  // Validate the magic on however many of its bytes have arrived, so a
  // garbage stream is rejected without waiting for a full header.
  static constexpr std::uint8_t kMagicBytes[4] = {
      static_cast<std::uint8_t>(kMagic),
      static_cast<std::uint8_t>(kMagic >> 8),
      static_cast<std::uint8_t>(kMagic >> 16),
      static_cast<std::uint8_t>(kMagic >> 24)};
  for (std::size_t i = 0; i < buffer.size() && i < 4; ++i) {
    if (buffer[i] != kMagicBytes[i]) return DecodeResult::kBadMagic;
  }
  if (buffer.size() < kHeaderSize) return DecodeResult::kNeedMore;

  header->version = buffer[4];
  header->opcode = static_cast<Opcode>(buffer[5]);
  header->flags = 0;
  header->request_id = ReadU64Le(buffer.data() + 8);
  header->deadline_ms = ReadU32Le(buffer.data() + 16);
  header->payload_size = ReadU32Le(buffer.data() + 20);
  if (header->version < kMinProtocolVersion ||
      header->version > kProtocolVersion) {
    return DecodeResult::kBadVersion;
  }
  if (header->version >= 5) {
    // v5 turned the reserved u16 into a flags field.
    header->flags = static_cast<std::uint16_t>(
        buffer[6] | static_cast<std::uint16_t>(buffer[7]) << 8);
  } else if (buffer[6] != 0 || buffer[7] != 0) {
    // On pre-v5 frames the bytes are reserved and must be zero; a nonzero
    // value means a future protocol revision this server does not
    // understand.
    return DecodeResult::kBadVersion;
  }
  if (header->payload_size > kMaxPayloadSize) return DecodeResult::kTooLarge;
  if (buffer.size() < kHeaderSize + header->payload_size) {
    return DecodeResult::kNeedMore;
  }
  *frame_size = kHeaderSize + header->payload_size;
  return DecodeResult::kFrame;
}

std::vector<std::uint8_t> EncodeFrame(const FrameHeader& header,
                                      std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> frame(kHeaderSize + payload.size());
  WriteU32Le(frame.data(), kMagic);
  frame[4] = header.version;
  frame[5] = static_cast<std::uint8_t>(header.opcode);
  if (header.version >= 5) {
    frame[6] = static_cast<std::uint8_t>(header.flags);
    frame[7] = static_cast<std::uint8_t>(header.flags >> 8);
  } else {
    frame[6] = frame[7] = 0;  // Reserved before v5.
  }
  WriteU64Le(frame.data() + 8, header.request_id);
  WriteU32Le(frame.data() + 16, header.deadline_ms);
  WriteU32Le(frame.data() + 20,
             static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderSize, payload.data(), payload.size());
  }
  return frame;
}

void AppendTraceTrailer(std::vector<std::uint8_t>* payload,
                        const TraceContext& context) {
  const std::size_t base = payload->size();
  payload->resize(base + kTraceTrailerSize);
  WriteU64Le(payload->data() + base, context.trace_id);
  WriteU64Le(payload->data() + base + 8, context.parent_span_id);
  (*payload)[base + 16] = context.flags;
}

bool SplitTraceTrailer(std::span<const std::uint8_t> payload,
                       std::uint16_t frame_flags,
                       std::span<const std::uint8_t>* body,
                       TraceContext* context) {
  if ((frame_flags & kFrameFlagTraceContext) == 0) {
    *body = payload;
    *context = TraceContext{};
    return true;
  }
  if (payload.size() < kTraceTrailerSize) return false;
  const std::size_t body_size = payload.size() - kTraceTrailerSize;
  const std::uint8_t* trailer = payload.data() + body_size;
  context->trace_id = ReadU64Le(trailer);
  context->parent_span_id = ReadU64Le(trailer + 8);
  context->flags = trailer[16];
  *body = payload.first(body_size);
  return true;
}

void PayloadWriter::String(std::string_view s) {
  U32(static_cast<std::uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

std::string PayloadReader::String() {
  const std::uint32_t size = U32();
  if (!ok_ || data_.size() - pos_ < size) {
    ok_ = false;
    return {};
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), size);
  pos_ += size;
  return s;
}

std::vector<std::uint8_t> EncodeSearchRequest(const SearchRequest& request) {
  PayloadWriter w;
  w.U32(request.vertex);
  w.U32(request.k);
  w.String(request.query);
  return w.Take();
}

bool DecodeSearchRequest(std::span<const std::uint8_t> payload,
                         SearchRequest* request) {
  PayloadReader r(payload);
  request->vertex = r.U32();
  request->k = r.U32();
  request->query = r.String();
  return r.Finished();
}

std::vector<std::uint8_t> EncodePoiAddRequest(const PoiAddRequest& request) {
  PayloadWriter w;
  w.U32(request.vertex);
  w.String(request.name);
  w.U32(static_cast<std::uint32_t>(request.keywords.size()));
  for (const std::string& keyword : request.keywords) w.String(keyword);
  return w.Take();
}

bool DecodePoiAddRequest(std::span<const std::uint8_t> payload,
                         PoiAddRequest* request) {
  PayloadReader r(payload);
  request->vertex = r.U32();
  request->name = r.String();
  const std::uint32_t count = r.U32();
  request->keywords.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    request->keywords.push_back(r.String());
  }
  return r.Finished();
}

std::vector<std::uint8_t> EncodePoiTagRequest(const PoiTagRequest& request) {
  PayloadWriter w;
  w.U32(request.object);
  w.String(request.keyword);
  return w.Take();
}

bool DecodePoiTagRequest(std::span<const std::uint8_t> payload,
                         PoiTagRequest* request) {
  PayloadReader r(payload);
  request->object = r.U32();
  request->keyword = r.String();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeFetchSnapshotRequest(
    const FetchSnapshotRequest& request) {
  PayloadWriter w;
  w.U64(request.sequence);
  w.U64(request.offset);
  w.U32(request.max_bytes);
  return w.Take();
}

bool DecodeFetchSnapshotRequest(std::span<const std::uint8_t> payload,
                                FetchSnapshotRequest* request) {
  PayloadReader r(payload);
  request->sequence = r.U64();
  request->offset = r.U64();
  request->max_bytes = r.U32();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeInsertDocRequest(
    const InsertDocRequest& request) {
  PayloadWriter w;
  w.U64(request.idempotency_key);
  w.U32(request.vertex);
  w.String(request.name);
  w.U32(static_cast<std::uint32_t>(request.keywords.size()));
  for (const std::string& keyword : request.keywords) w.String(keyword);
  w.U64(request.fence_epoch);
  return w.Take();
}

bool DecodeInsertDocRequest(std::span<const std::uint8_t> payload,
                            InsertDocRequest* request) {
  PayloadReader r(payload);
  request->idempotency_key = r.U64();
  request->vertex = r.U32();
  request->name = r.String();
  const std::uint32_t count = r.U32();
  request->keywords.clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    request->keywords.push_back(r.String());
  }
  // Pre-epoch senders end here; the epoch revision appends fence_epoch.
  request->fence_epoch = 0;
  if (r.Finished()) return true;
  request->fence_epoch = r.U64();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeDeleteDocRequest(
    const DeleteDocRequest& request) {
  PayloadWriter w;
  w.U64(request.idempotency_key);
  w.U32(request.object);
  w.U64(request.fence_epoch);
  return w.Take();
}

bool DecodeDeleteDocRequest(std::span<const std::uint8_t> payload,
                            DeleteDocRequest* request) {
  PayloadReader r(payload);
  request->idempotency_key = r.U64();
  request->object = r.U32();
  request->fence_epoch = 0;
  if (r.Finished()) return true;
  request->fence_epoch = r.U64();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeUpdateDocRequest(
    const UpdateDocRequest& request) {
  PayloadWriter w;
  w.U64(request.idempotency_key);
  w.U32(request.object);
  w.U32(static_cast<std::uint32_t>(request.add_keywords.size()));
  for (const std::string& keyword : request.add_keywords) w.String(keyword);
  w.U32(static_cast<std::uint32_t>(request.remove_keywords.size()));
  for (const std::string& keyword : request.remove_keywords) {
    w.String(keyword);
  }
  w.U64(request.fence_epoch);
  return w.Take();
}

bool DecodeUpdateDocRequest(std::span<const std::uint8_t> payload,
                            UpdateDocRequest* request) {
  PayloadReader r(payload);
  request->idempotency_key = r.U64();
  request->object = r.U32();
  const std::uint32_t adds = r.U32();
  request->add_keywords.clear();
  for (std::uint32_t i = 0; i < adds && r.ok(); ++i) {
    request->add_keywords.push_back(r.String());
  }
  const std::uint32_t removes = r.U32();
  request->remove_keywords.clear();
  for (std::uint32_t i = 0; i < removes && r.ok(); ++i) {
    request->remove_keywords.push_back(r.String());
  }
  request->fence_epoch = 0;
  if (r.Finished()) return true;
  request->fence_epoch = r.U64();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeFetchOplogRequest(
    const FetchOplogRequest& request) {
  PayloadWriter w;
  w.U64(request.from_sequence);
  w.U32(request.max_bytes);
  w.U64(request.requester_epoch);
  return w.Take();
}

bool DecodeFetchOplogRequest(std::span<const std::uint8_t> payload,
                             FetchOplogRequest* request) {
  PayloadReader r(payload);
  request->from_sequence = r.U64();
  request->max_bytes = r.U32();
  request->requester_epoch = 0;
  if (r.Finished()) return true;
  request->requester_epoch = r.U64();
  return r.Finished();
}

std::vector<std::uint8_t> EncodePromoteRequest(const PromoteRequest& request) {
  PayloadWriter w;
  w.U64(request.min_applied_sequence);
  return w.Take();
}

bool DecodePromoteRequest(std::span<const std::uint8_t> payload,
                          PromoteRequest* request) {
  PayloadReader r(payload);
  // An empty body is a valid "no applied-sequence guard" promote.
  request->min_applied_sequence = 0;
  if (r.Finished()) return true;
  request->min_applied_sequence = r.U64();
  return r.Finished();
}

std::vector<std::uint8_t> EncodeErrorResponse(StatusCode status,
                                              std::string_view message) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(status));
  w.String(message);
  return w.Take();
}

std::vector<std::uint8_t> EncodeErrorResponse(StatusCode status,
                                              std::string_view message,
                                              std::uint32_t retry_after_ms) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(status));
  w.String(message);
  if (retry_after_ms > 0) w.U32(retry_after_ms);
  return w.Take();
}

std::vector<std::uint8_t> EncodeOkResponse() {
  return {static_cast<std::uint8_t>(StatusCode::kOk)};
}

std::vector<std::uint8_t> EncodeSearchResponse(
    std::span<const WireResult> results) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U32(static_cast<std::uint32_t>(results.size()));
  for (const WireResult& result : results) {
    w.U32(result.object);
    w.U64(result.travel_time);
    w.F64(result.score);
    w.String(result.name);
  }
  return w.Take();
}

std::vector<std::uint8_t> EncodeSearchResponse(
    std::span<const WireResult> results, std::uint8_t flags,
    std::uint8_t version) {
  std::vector<std::uint8_t> body = EncodeSearchResponse(results);
  // Pre-v4 decoders reject trailing bytes; only v4+ requests may see the
  // flags trailer (the server echoes the request's version).
  if (version >= 4) body.push_back(flags);
  return body;
}

bool DecodeSearchResponse(PayloadReader& reader,
                          std::vector<WireResult>* results) {
  std::uint8_t flags = 0;
  return DecodeSearchResponse(reader, results, &flags);
}

bool DecodeSearchResponse(PayloadReader& reader,
                          std::vector<WireResult>* results,
                          std::uint8_t* flags) {
  const std::uint32_t count = reader.U32();
  results->clear();
  for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
    WireResult result;
    result.object = reader.U32();
    result.travel_time = reader.U64();
    result.score = reader.F64();
    result.name = reader.String();
    results->push_back(std::move(result));
  }
  *flags = 0;
  if (reader.ok() && !reader.AtEnd()) *flags = reader.U8();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeObjectIdResponse(ObjectId id) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U32(id);
  return w.Take();
}

std::vector<std::uint8_t> EncodeSnapshotResponse(std::uint64_t sequence,
                                                 std::string_view path) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U64(sequence);
  w.String(path);
  return w.Take();
}

bool DecodeSnapshotResponse(PayloadReader& reader, std::uint64_t* sequence,
                            std::string* path) {
  *sequence = reader.U64();
  *path = reader.String();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeStatsResponse(
    std::span<const std::pair<std::string, std::uint64_t>> stats) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U32(static_cast<std::uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    w.String(name);
    w.U64(value);
  }
  return w.Take();
}

std::vector<std::uint8_t> EncodeStatsResponse(
    std::span<const std::pair<std::string, std::uint64_t>> stats,
    std::span<const WireHistogram> histograms) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U32(static_cast<std::uint32_t>(stats.size()));
  for (const auto& [name, value] : stats) {
    w.String(name);
    w.U64(value);
  }
  w.U32(static_cast<std::uint32_t>(histograms.size()));
  for (const WireHistogram& h : histograms) {
    w.String(h.name);
    w.U64(h.count);
    w.U64(h.sum_micros);
    w.U32(static_cast<std::uint32_t>(h.buckets.size()));
    for (const std::uint64_t bucket : h.buckets) w.U64(bucket);
  }
  return w.Take();
}

bool DecodeStatsResponse(
    PayloadReader& reader,
    std::vector<std::pair<std::string, std::uint64_t>>* stats,
    std::vector<WireHistogram>* histograms) {
  const std::uint32_t count = reader.U32();
  stats->clear();
  if (histograms != nullptr) histograms->clear();
  for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
    std::string name = reader.String();
    const std::uint64_t value = reader.U64();
    stats->emplace_back(std::move(name), value);
  }
  // Version-1 bodies end here; version 2 appends a histogram section.
  if (reader.Finished()) return true;
  const std::uint32_t histogram_count = reader.U32();
  for (std::uint32_t i = 0; i < histogram_count && reader.ok(); ++i) {
    WireHistogram h;
    h.name = reader.String();
    h.count = reader.U64();
    h.sum_micros = reader.U64();
    const std::uint32_t buckets = reader.U32();
    h.buckets.reserve(std::min<std::uint32_t>(buckets, 1024));
    for (std::uint32_t b = 0; b < buckets && reader.ok(); ++b) {
      h.buckets.push_back(reader.U64());
    }
    if (histograms != nullptr) histograms->push_back(std::move(h));
  }
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeMetricsResponse(std::string_view text) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.String(text);
  return w.Take();
}

bool DecodeMetricsResponse(PayloadReader& reader, std::string* text) {
  *text = reader.String();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeDiagResponse(std::string_view text) {
  return EncodeMetricsResponse(text);
}

bool DecodeDiagResponse(PayloadReader& reader, std::string* text) {
  return DecodeMetricsResponse(reader, text);
}

std::vector<std::uint8_t> EncodeHealthResponse(const HealthInfo& info) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U8(info.role);
  w.U64(info.snapshot_sequence);
  w.U64(info.uptime_ms);
  w.U64(info.queue_depth);
  w.String(info.primary_address);
  w.U64(info.applied_sequence);
  w.U64(info.primary_epoch);
  return w.Take();
}

bool DecodeHealthResponse(PayloadReader& reader, HealthInfo* info) {
  info->role = reader.U8();
  info->snapshot_sequence = reader.U64();
  info->uptime_ms = reader.U64();
  info->queue_depth = reader.U64();
  info->primary_address = reader.String();
  // Pre-epoch servers end here; the epoch revision appends two fields.
  info->applied_sequence = 0;
  info->primary_epoch = 0;
  if (reader.Finished()) return true;
  info->applied_sequence = reader.U64();
  info->primary_epoch = reader.U64();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeSnapshotChunkResponse(
    const SnapshotChunk& chunk) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U64(chunk.sequence);
  w.U64(chunk.total_size);
  w.U64(chunk.offset);
  w.U32(io::Crc32c(chunk.bytes.data(), chunk.bytes.size()));
  w.String(chunk.bytes);
  return w.Take();
}

bool DecodeSnapshotChunkResponse(PayloadReader& reader, SnapshotChunk* chunk) {
  chunk->sequence = reader.U64();
  chunk->total_size = reader.U64();
  chunk->offset = reader.U64();
  const std::uint32_t crc = reader.U32();
  chunk->bytes = reader.String();
  if (!reader.Finished()) return false;
  return io::Crc32c(chunk->bytes.data(), chunk->bytes.size()) == crc;
}

std::vector<std::uint8_t> EncodeMutationResponse(const MutationReply& reply) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U64(reply.sequence);
  w.U32(reply.object);
  w.U64(reply.primary_epoch);
  return w.Take();
}

bool DecodeMutationResponse(PayloadReader& reader, MutationReply* reply) {
  reply->sequence = reader.U64();
  reply->object = reader.U32();
  reply->primary_epoch = 0;
  if (reader.Finished()) return true;
  reply->primary_epoch = reader.U64();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodeOplogChunkResponse(const OplogChunk& chunk) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U8(chunk.truncated);
  w.U64(chunk.last_sequence);
  w.U64(chunk.oldest_sequence);
  w.U32(static_cast<std::uint32_t>(chunk.records.size()));
  for (const OplogWireRecord& record : chunk.records) {
    w.U64(record.sequence);
    w.U32(io::Crc32c(record.payload.data(), record.payload.size()));
    w.String(record.payload);
  }
  w.U64(chunk.primary_epoch);
  w.U64(chunk.epoch_boundary_sequence);
  return w.Take();
}

bool DecodeOplogChunkResponse(PayloadReader& reader, OplogChunk* chunk) {
  chunk->truncated = reader.U8();
  chunk->last_sequence = reader.U64();
  chunk->oldest_sequence = reader.U64();
  const std::uint32_t count = reader.U32();
  chunk->records.clear();
  for (std::uint32_t i = 0; i < count && reader.ok(); ++i) {
    OplogWireRecord record;
    record.sequence = reader.U64();
    const std::uint32_t crc = reader.U32();
    record.payload = reader.String();
    if (!reader.ok()) return false;
    if (io::Crc32c(record.payload.data(), record.payload.size()) != crc) {
      return false;
    }
    chunk->records.push_back(std::move(record));
  }
  chunk->primary_epoch = 0;
  chunk->epoch_boundary_sequence = 0;
  if (reader.Finished()) return true;
  chunk->primary_epoch = reader.U64();
  chunk->epoch_boundary_sequence = reader.U64();
  return reader.Finished();
}

std::vector<std::uint8_t> EncodePromoteResponse(const PromoteReply& reply) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.U64(reply.epoch);
  w.U64(reply.applied_sequence);
  w.U8(reply.role);
  return w.Take();
}

bool DecodePromoteResponse(PayloadReader& reader, PromoteReply* reply) {
  reply->epoch = reader.U64();
  reply->applied_sequence = reader.U64();
  reply->role = reader.U8();
  return reader.Finished();
}

}  // namespace kspin::server
