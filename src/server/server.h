// kspin_server core: a poll()-based TCP event loop speaking the framed
// wire protocol (server/wire.h) in front of a PoiService.
//
// Threading model:
//
//   - One I/O thread owns every socket: it accepts connections, decodes
//     frames, answers PING/STATS inline, and flushes response bytes.
//   - Query and update frames are copied into a bounded AdmissionQueue;
//     when it is full the I/O thread replies OVERLOADED immediately —
//     explicit load shedding, never silent drops or unbounded buffering.
//   - A worker pool drains the queue. Each worker owns one QueryProcessor
//     (per-thread oracle + query workspaces, PR 1's design) refreshed
//     whenever KSpin::StructureGeneration() changes. Queries enter an
//     EpochGate read section (wait-free unless a mutation's in-memory
//     apply window is open); all state-changers — mutations, snapshot,
//     reload, replica install — serialize on one mutation mutex and wrap
//     only their in-memory apply in the gate's write window, so readers
//     never wait on a writer's durability work (op-log append + fsync).
//     This replaces the earlier coarse shared/exclusive update lock.
//   - Mutations (INSERT_DOC / DELETE_DOC / UPDATE_DOC, and the legacy
//     kPoi* opcodes routed through the same path) are appended to a
//     durable op log before being applied; the acknowledgement is sent
//     only after a group-committed fsync covers the record
//     (docs/persistence.md, "The operation log").
//   - Deadlines (frame header deadline_ms, relative to admission) are
//     enforced twice: expired requests are dropped at dequeue with
//     DEADLINE_EXCEEDED, and running queries poll a QueryControl
//     cooperatively inside the kNN search loops.
//
// Stop() is graceful: stop accepting, close the queue, let workers drain
// every admitted request, flush responses, then tear sockets down.
#ifndef KSPIN_SERVER_SERVER_H_
#define KSPIN_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/admission_queue.h"
#include "server/flight_recorder.h"
#include "server/metrics.h"
#include "server/mutation.h"
#include "server/oplog.h"
#include "server/overload.h"
#include "server/replication.h"
#include "server/trace.h"
#include "server/wire.h"
#include "service/poi_service.h"

namespace kspin {
class ContractionHierarchy;
class HubLabeling;
}  // namespace kspin

namespace kspin::server {

/// Crash-safe persistence configuration (docs/persistence.md). Snapshots
/// cover the whole serving state and are written under the exclusive
/// update lock, so every file is a consistent point-in-time image.
struct SnapshotOptions {
  /// Directory for snapshot-<seq>.snap files; empty disables the
  /// SNAPSHOT / RELOAD opcodes and background snapshotting.
  std::string dir;
  /// Background snapshot period; 0 = only on explicit SNAPSHOT requests.
  std::uint32_t period_ms = 0;
  /// Newest snapshots retained by pruning after each write.
  std::size_t keep = 4;
  /// Distance-oracle artifacts to include so a restart can skip their
  /// (expensive) reconstruction. Optional; must outlive the server.
  const ContractionHierarchy* ch = nullptr;
  const HubLabeling* hl = nullptr;
  /// Engine options applied when RELOAD rebuilds the KSpin engine; must
  /// match how the serving PoiService was configured.
  KSpinOptions engine_options{};
};

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see
  /// Server::Port()).
  std::uint16_t port = 0;
  /// Worker pool size; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// Admission queue bound; 0 admits nothing (every request OVERLOADED).
  std::size_t queue_capacity = 256;
  /// Requests with k above this are rejected with BAD_QUERY.
  std::uint32_t max_k = 1000;

  /// Persistence (SNAPSHOT / RELOAD opcodes + periodic snapshots).
  SnapshotOptions snapshot;

  /// Durable op log for live mutations (docs/persistence.md, "The
  /// operation log"). An empty dir disables durability: mutations still
  /// apply and get in-memory sequences, but nothing survives a crash.
  OplogOptions oplog;
  /// Mutation sequence already reflected in the serving state when
  /// Start() runs (the restored snapshot's kOplogPosition section);
  /// op-log replay at boot begins after it.
  std::uint64_t restored_mutation_sequence = 0;

  /// Capacity of the idempotency cache (recently applied mutation keys
  /// answered from memory on retry). Sized for the retry window — a key
  /// only needs to survive seconds, not the log's lifetime. 0 disables
  /// retry deduplication entirely.
  std::size_t idempotency_cache_size = 4096;

  /// Replication (docs/protocol.md "Replication"). With role kReplica the
  /// server rejects POI writes with NOT_PRIMARY and polls
  /// replication.primary for new snapshots; fetched snapshots are
  /// persisted into snapshot.dir (when configured) and installed through
  /// the RELOAD path.
  ReplicationOptions replication;

  /// How long to stop accepting after an fd-exhaustion accept() failure
  /// (EMFILE/ENFILE/...), so the poll loop does not spin hot on a
  /// perpetually-ready listen fd.
  std::uint32_t accept_pause_ms = 100;

  // Connection hardening — all enforced by the I/O thread each poll tick.
  /// Close connections with no traffic in either direction for this long.
  /// 0 disables idle reaping.
  std::uint32_t idle_timeout_ms = 300000;
  /// Close connections that leave a frame *partially* sent for this long
  /// (slow-loris defence: a trickle of header bytes must not pin a socket
  /// forever). 0 disables.
  std::uint32_t read_deadline_ms = 30000;
  /// Close connections whose un-flushed response backlog exceeds this
  /// (peer stopped reading; refuse unbounded buffering). 0 = unlimited.
  std::size_t max_write_queue_bytes = 32u << 20;

  // Observability (docs/observability.md).
  /// JSON-lines trace file: one line per executed search query (query
  /// fingerprint, stage timings, engine counter deltas). Empty disables
  /// tracing; counters are collected either way.
  std::string trace_path;
  /// Size-based rotation for the trace file: once it exceeds this many
  /// bytes it is shifted to trace.log.1 (keeping trace_keep old files)
  /// and a fresh file is started. 0 = never rotate.
  std::uint64_t trace_max_bytes = 0;
  /// Rotated trace files kept (trace.log.1 .. trace.log.N).
  std::uint32_t trace_keep = 3;
  /// Searches slower than this (end-to-end, admission to response) are
  /// logged to stderr with their trace line. 0 disables the slow-query
  /// log.
  std::uint32_t slow_query_threshold_ms = 0;
  /// Spans + control-plane events retained by the always-on flight
  /// recorder (DUMP_DIAG); clamped up to a small minimum. The recorder
  /// cannot be disabled — it is the post-hoc record that exists when no
  /// trace file was configured.
  std::size_t flight_recorder_capacity = 2048;

  /// Overload resilience (docs/protocol.md "Overload control &
  /// degradation"): deadline-aware EDF admission, AIMD concurrency
  /// limiting, CoDel sojourn shedding, per-connection rate limits, and
  /// brownout. Defaults disable every mechanism.
  OverloadOptions overload;

  // Test hooks — leave at defaults in production.
  /// When false, the dequeue-time deadline check is skipped so expiry is
  /// only caught by the cooperative in-query check.
  bool enforce_deadline_at_dequeue = true;
  /// Artificial delay before each worker dequeue check, to make
  /// deadline expiry deterministic in tests.
  std::uint32_t test_dequeue_delay_ms = 0;
  /// Artificial delay between frame receipt and admission, to make the
  /// enqueue-time expiry rejection deterministic in tests.
  std::uint32_t test_admission_delay_ms = 0;
};

/// A serving instance. Construct, Start(), connect clients to Port().
/// The PoiService must outlive the server; while the server runs, all
/// access to it (including updates) must go through the server.
class Server {
 public:
  explicit Server(PoiService& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O thread + workers. Throws
  /// std::runtime_error on socket failures.
  void Start();

  /// Graceful shutdown: stop accepting, drain admitted requests, flush
  /// responses, join all threads. Idempotent; also run by ~Server.
  void Stop();

  /// The bound port (valid after Start()).
  std::uint16_t Port() const { return port_; }

  const ServerMetrics& Metrics() const { return metrics_; }

  /// The always-on flight recorder (spans + control-plane events). Public
  /// for tests; clients read it via DUMP_DIAG.
  FlightRecorder& Recorder() { return recorder_; }

  /// Sequence of the newest local snapshot (written, restored, or
  /// installed from a primary); 0 = none. This is what HEALTH reports.
  std::uint64_t SnapshotSequence() const {
    return snapshot_sequence_.load(std::memory_order_relaxed);
  }

  /// Highest op-log sequence applied to the serving state (restored +
  /// replayed at boot, then advanced by every mutation).
  std::uint64_t AppliedSequence() const {
    return applied_sequence_.load(std::memory_order_relaxed);
  }

  /// Current role. Boots from options.replication.role; PROMOTE flips a
  /// replica to primary at runtime.
  ServerRole Role() const {
    return role_.load(std::memory_order_acquire);
  }

  /// Highest primary epoch this server knows of (its own when primary;
  /// its primary's when a replica that has observed one). Epochs are
  /// bumped by PROMOTE and persisted in a `primary-epoch` sidecar plus an
  /// epoch-transition op-log record.
  std::uint64_t PrimaryEpoch() const {
    return primary_epoch_.load(std::memory_order_acquire);
  }

  /// Op-log sequence of the newest epoch-transition record (the first
  /// sequence of the current epoch); 0 = the epoch never changed.
  std::uint64_t EpochBoundarySequence() const {
    return epoch_boundary_.load(std::memory_order_acquire);
  }

  /// Replica-side install of a snapshot image fetched from the primary:
  /// validate + load it off the serving lock (reads keep flowing), write
  /// it into snapshot.dir crash-safely, then swap the serving catalog
  /// under the mutation mutex + epoch gate. Returns false with `*error`
  /// set on rejection (corrupt image, graph mismatch, ...) — serving
  /// state is untouched. Public for tests; normally driven by the
  /// Replicator.
  bool InstallReplicaSnapshot(std::uint64_t sequence,
                              const std::string& bytes, std::string* error);

  /// Replica-side apply of op-log records tailed from the primary: each
  /// record is validated, appended to the local log under its shipped
  /// sequence, and applied through the epoch gate. Records at or below
  /// the applied sequence are skipped (idempotent retries). Returns false
  /// with `*error` set on the first rejected record; everything before it
  /// stays applied. Public for tests; normally driven by the Replicator.
  bool ApplyReplicatedMutations(const std::vector<OplogWireRecord>& records,
                                std::string* error);

  /// Writes a snapshot now, taking the mutation mutex itself (the boot /
  /// test entry point; the SNAPSHOT opcode reaches SnapshotLocked through
  /// a worker that already holds it). Returns the new snapshot's
  /// (sequence, path). Throws io::SerializationError on failure. Requires
  /// options.snapshot.dir to be configured.
  std::pair<std::uint64_t, std::string> SnapshotNow();

 private:
  struct Connection;
  struct Request;

  void IoLoop();
  /// One overload-controller tick (I/O thread, every
  /// overload.tick_interval_ms): diffs the query-latency histogram,
  /// moves the AIMD admission limit, updates brownout state and the
  /// overload gauges, and refreshes the RETRY_AFTER hint.
  void OverloadTick(std::chrono::steady_clock::time_point now);
  void WorkerLoop(std::size_t worker_index);
  void SnapshotLoop();
  /// Caller must hold mutation_mutex_ (or run pre-Start).
  std::pair<std::uint64_t, std::string> SnapshotLocked();
  /// Handles the RELOAD opcode; caller holds mutation_mutex_.
  std::vector<std::uint8_t> HandleReloadLocked();
  /// The durable write path shared by the v3 mutation opcodes and the
  /// legacy kPoi* opcodes: idempotency check, validate, append to the op
  /// log, apply through the epoch gate, group-commit fsync, respond.
  void ProcessMutation(Request& request);
  /// PROMOTE: flip this replica to primary, bump the epoch, log the
  /// transition. Runs on a worker WITHOUT mutation_mutex_ pre-taken — it
  /// must stop the replicator (whose poll thread takes that mutex) before
  /// locking, or the two would deadlock.
  void ProcessPromote(Request& request);
  /// Decodes any mutation-class request into a MutationRecord. Returns
  /// false with a ready error response on malformed payloads. For the v3
  /// opcodes `*fence_epoch` receives the request's fence epoch (0 for
  /// legacy opcodes).
  bool DecodeMutationRequest(const Request& request, MutationRecord* record,
                             std::uint64_t* fence_epoch,
                             std::vector<std::uint8_t>* error_response);
  /// Latches the highest epoch ever observed in a request; once it
  /// exceeds our own primary epoch this server is fenced and rejects all
  /// writes with STALE_EPOCH.
  void ObserveFencedEpoch(std::uint64_t epoch);
  /// Adopts a higher primary epoch learned from this replica's primary
  /// (health poll or in-stream epoch record). boundary 0 = unknown, keep
  /// the current one. The *Locked variant requires mutation_mutex_.
  void AdoptEpoch(std::uint64_t epoch, std::uint64_t boundary);
  void AdoptEpochLocked(std::uint64_t epoch, std::uint64_t boundary);
  /// Preserves op-log records at/past `boundary` into quarantine/ (a
  /// demoted ex-primary's divergent tail) before a snapshot install
  /// discards them. Returns records preserved.
  std::size_t QuarantineDivergentOplog(std::uint64_t boundary);
  /// Writes the `primary-epoch` sidecar (epoch + boundary) so the epoch
  /// survives restarts even after log truncation. Caller must hold
  /// mutation_mutex_ (or run pre-Start).
  void PersistEpochStateLocked();
  /// Reads the sidecar at boot; missing file = epoch 0.
  void LoadEpochState();
  /// Directory holding the sidecar: the op-log dir when enabled, else the
  /// snapshot dir, else empty (epoch not persisted).
  std::string EpochStateDir() const;
  /// FETCH_OPLOG handler (query-class; the Oplog serializes internally).
  std::vector<std::uint8_t> HandleFetchOplog(const FetchOplogRequest& fetch);
  /// Copies the Oplog's internal counters into ServerMetrics.
  void MirrorOplogMetrics();
  /// Counts one shed of `cause` toward the next kShedBurst event.
  void RecordShed(DiagShedCause cause);
  /// Flushes accumulated shed counts into kShedBurst recorder events once
  /// per window (I/O thread, called from IoLoop).
  void FlushShedBursts(std::chrono::steady_clock::time_point now);
  /// Records a minimal span for a request answered straight from the
  /// envelope (sheds, redirects, fence rejections) so the trace_id is
  /// visible in DUMP_DIAG even on the node that refused the work.
  void RecordEnvelopeSpan(const TraceContext& trace, Opcode opcode,
                          StatusCode status, std::uint32_t queue_us = 0);
  /// Closes connections that tripped a hardening limit.
  void SweepConnections(std::chrono::steady_clock::time_point now);
  void AcceptNew();
  /// False when the connection hit a fatal error and must close.
  bool ReadFromConnection(const std::shared_ptr<Connection>& conn);
  bool FlushConnection(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header,
                   std::vector<std::uint8_t> payload);
  /// `processor` is non-null for query opcodes, null for updates.
  void ProcessRequest(Request& request, QueryProcessor* processor);
  void Respond(const std::shared_ptr<Connection>& conn,
               const FrameHeader& request_header,
               std::vector<std::uint8_t> response_payload);
  void Wake();
  /// HEALTH response body (answered inline by the I/O thread).
  std::vector<std::uint8_t> BuildHealthResponse();
  /// FETCH_SNAPSHOT handler (runs on a worker under the shared lock —
  /// snapshot files are immutable once renamed into place).
  std::vector<std::uint8_t> HandleFetchSnapshot(
      const FetchSnapshotRequest& fetch);

  PoiService& service_;
  const ServerOptions options_;
  ServerMetrics metrics_;
  std::unique_ptr<TraceSink> trace_;  // Null unless options_.trace_path.
  FlightRecorder recorder_;  // Always on; sized in the ctor.

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unique_ptr<AdmissionQueue<Request>> queue_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Overload control (owned by the I/O thread except the atomics).
  std::unique_ptr<OverloadController> overload_;  ///< Null when disabled.
  /// Brownout state, read by workers per search request.
  std::atomic<bool> brownout_active_{false};
  /// Current RETRY_AFTER hint for OVERLOADED replies (ms; 0 = none).
  std::atomic<std::uint32_t> retry_after_hint_ms_{0};
  /// I/O-thread only: last controller tick and brownout entry instant
  /// (for the brownout_seconds counter).
  std::chrono::steady_clock::time_point last_overload_tick_{};
  std::chrono::steady_clock::time_point brownout_since_{};
  /// Whole seconds of the current brownout episode already counted into
  /// metrics_.brownout_seconds.
  std::uint64_t brownout_seconds_credited_ = 0;
  /// Per-cause shed counts (indexed by DiagShedCause) accumulated since
  /// the last kShedBurst flush; bumped by the I/O thread and workers,
  /// flushed once per second by FlushShedBursts so a shed storm becomes
  /// a handful of journal events instead of thousands.
  std::atomic<std::uint64_t> shed_counts_[6] = {};
  /// I/O-thread only: start of the current shed-burst window.
  std::chrono::steady_clock::time_point shed_window_start_{};

  // Background snapshotting (runs only when dir + period are configured).
  std::thread snapshot_thread_;
  std::mutex snapshot_cv_mutex_;
  std::condition_variable snapshot_cv_;
  bool snapshot_stop_ = false;  // Guarded by snapshot_cv_mutex_.

  // Replication (replica role only).
  std::unique_ptr<Replicator> replicator_;
  /// Newest local snapshot sequence; see SnapshotSequence().
  std::atomic<std::uint64_t> snapshot_sequence_{0};
  std::chrono::steady_clock::time_point start_time_{};

  // Epoch-fenced failover state (docs/protocol.md "Replication").
  /// Runtime role; seeded from options, flipped by PROMOTE.
  std::atomic<ServerRole> role_{ServerRole::kPrimary};
  /// Highest primary epoch this server knows of (see PrimaryEpoch()).
  std::atomic<std::uint64_t> primary_epoch_{0};
  /// Highest epoch ever observed in any request (fence latch): when it
  /// exceeds primary_epoch_ on a primary, every write is rejected with
  /// STALE_EPOCH until the server rejoins as a replica.
  std::atomic<std::uint64_t> fenced_epoch_{0};
  /// Sequence of the newest epoch-transition record; 0 = none.
  std::atomic<std::uint64_t> epoch_boundary_{0};

  /// I/O-thread only: accepting is suspended until this instant after an
  /// fd-exhaustion accept() failure.
  std::chrono::steady_clock::time_point accept_pause_until_{};

  // Mutation subsystem (see the threading model above). mutation_mutex_
  // serializes every state-changer; gate_ excludes queries only during
  // the in-memory apply window; oplog_ makes acknowledged mutations
  // durable; idempotency_ absorbs client retries.
  std::mutex mutation_mutex_;
  EpochGate gate_;
  Oplog oplog_;
  IdempotencyCache idempotency_;  // Capacity set from options_ in the ctor.
  /// Highest mutation sequence applied to the serving state.
  std::atomic<std::uint64_t> applied_sequence_{0};

  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_exit_{false};
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_SERVER_H_
