// kspin_server core: a poll()-based TCP event loop speaking the framed
// wire protocol (server/wire.h) in front of a PoiService.
//
// Threading model:
//
//   - One I/O thread owns every socket: it accepts connections, decodes
//     frames, answers PING/STATS inline, and flushes response bytes.
//   - Query and update frames are copied into a bounded AdmissionQueue;
//     when it is full the I/O thread replies OVERLOADED immediately —
//     explicit load shedding, never silent drops or unbounded buffering.
//   - A worker pool drains the queue. Each worker owns one QueryProcessor
//     (per-thread oracle + query workspaces, PR 1's design) refreshed
//     whenever KSpin::StructureGeneration() changes. Queries run under a
//     shared lock; POI updates take the lock exclusively, which is
//     exactly the "updates quiesce queries" rule of the concurrency model
//     in docs/architecture.md — here enforced by the server rather than
//     trusted to callers.
//   - Deadlines (frame header deadline_ms, relative to admission) are
//     enforced twice: expired requests are dropped at dequeue with
//     DEADLINE_EXCEEDED, and running queries poll a QueryControl
//     cooperatively inside the kNN search loops.
//
// Stop() is graceful: stop accepting, close the queue, let workers drain
// every admitted request, flush responses, then tear sockets down.
#ifndef KSPIN_SERVER_SERVER_H_
#define KSPIN_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/admission_queue.h"
#include "server/metrics.h"
#include "server/wire.h"
#include "service/poi_service.h"

namespace kspin::server {

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (see
  /// Server::Port()).
  std::uint16_t port = 0;
  /// Worker pool size; 0 = hardware concurrency.
  unsigned num_workers = 0;
  /// Admission queue bound; 0 admits nothing (every request OVERLOADED).
  std::size_t queue_capacity = 256;
  /// Requests with k above this are rejected with BAD_QUERY.
  std::uint32_t max_k = 1000;

  // Test hooks — leave at defaults in production.
  /// When false, the dequeue-time deadline check is skipped so expiry is
  /// only caught by the cooperative in-query check.
  bool enforce_deadline_at_dequeue = true;
  /// Artificial delay before each worker dequeue check, to make
  /// deadline expiry deterministic in tests.
  std::uint32_t test_dequeue_delay_ms = 0;
};

/// A serving instance. Construct, Start(), connect clients to Port().
/// The PoiService must outlive the server; while the server runs, all
/// access to it (including updates) must go through the server.
class Server {
 public:
  explicit Server(PoiService& service, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O thread + workers. Throws
  /// std::runtime_error on socket failures.
  void Start();

  /// Graceful shutdown: stop accepting, drain admitted requests, flush
  /// responses, join all threads. Idempotent; also run by ~Server.
  void Stop();

  /// The bound port (valid after Start()).
  std::uint16_t Port() const { return port_; }

  const ServerMetrics& Metrics() const { return metrics_; }

 private:
  struct Connection;
  struct Request;

  void IoLoop();
  void WorkerLoop();
  void AcceptNew();
  /// False when the connection hit a fatal error and must close.
  bool ReadFromConnection(const std::shared_ptr<Connection>& conn);
  bool FlushConnection(const std::shared_ptr<Connection>& conn);
  void CloseConnection(int fd);
  void HandleFrame(const std::shared_ptr<Connection>& conn,
                   const FrameHeader& header,
                   std::vector<std::uint8_t> payload);
  /// `processor` is non-null for query opcodes, null for updates.
  void ProcessRequest(Request& request, QueryProcessor* processor);
  void Respond(const std::shared_ptr<Connection>& conn,
               const FrameHeader& request_header,
               std::vector<std::uint8_t> response_payload);
  void Wake();

  PoiService& service_;
  const ServerOptions options_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;

  std::unique_ptr<AdmissionQueue<Request>> queue_;
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  /// Queries hold it shared, POI updates exclusively.
  std::shared_mutex update_mutex_;

  std::unordered_map<int, std::shared_ptr<Connection>> connections_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> io_exit_{false};
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_SERVER_H_
