#include "server/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "server/wire.h"

namespace kspin::server {
namespace {

// Word layout shared by writer and dump. Word 0 is the record kind, word
// 1 the timestamp; the rest is kind-specific (see Encode* below).
constexpr std::uint64_t kKindSpan = 1;
constexpr std::uint64_t kKindEvent = 2;

std::string_view OpcodeName(std::uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kError: return "ERROR";
    case Opcode::kPing: return "PING";
    case Opcode::kStats: return "STATS";
    case Opcode::kHealth: return "HEALTH";
    case Opcode::kMetrics: return "METRICS";
    case Opcode::kDumpDiag: return "DUMP_DIAG";
    case Opcode::kSearchBoolean: return "SEARCH_BOOLEAN";
    case Opcode::kSearchRanked: return "SEARCH_RANKED";
    case Opcode::kPoiAdd: return "POI_ADD";
    case Opcode::kPoiClose: return "POI_CLOSE";
    case Opcode::kPoiTag: return "POI_TAG";
    case Opcode::kPoiUntag: return "POI_UNTAG";
    case Opcode::kInsertDoc: return "INSERT_DOC";
    case Opcode::kDeleteDoc: return "DELETE_DOC";
    case Opcode::kUpdateDoc: return "UPDATE_DOC";
    case Opcode::kSnapshot: return "SNAPSHOT";
    case Opcode::kReload: return "RELOAD";
    case Opcode::kFetchSnapshot: return "FETCH_SNAPSHOT";
    case Opcode::kFetchOplog: return "FETCH_OPLOG";
    case Opcode::kPromote: return "PROMOTE_OP";
  }
  return "UNKNOWN";
}

}  // namespace

std::string_view DiagEventName(DiagEvent event) {
  switch (event) {
    case DiagEvent::kPromote: return "PROMOTE";
    case DiagEvent::kStaleEpochFence: return "STALE_EPOCH_FENCE";
    case DiagEvent::kBrownoutEnter: return "BROWNOUT_ENTER";
    case DiagEvent::kBrownoutExit: return "BROWNOUT_EXIT";
    case DiagEvent::kReplicationSourceOplog:
      return "REPLICATION_SOURCE_OPLOG";
    case DiagEvent::kReplicationSourceSnapshot:
      return "REPLICATION_SOURCE_SNAPSHOT";
    case DiagEvent::kShedBurst: return "SHED_BURST";
    case DiagEvent::kSnapshotWritten: return "SNAPSHOT_WRITTEN";
    case DiagEvent::kSnapshotRestored: return "SNAPSHOT_RESTORED";
    case DiagEvent::kOplogRotated: return "OPLOG_ROTATED";
  }
  return "UNKNOWN";
}

std::string_view DiagShedCauseName(DiagShedCause cause) {
  switch (cause) {
    case DiagShedCause::kQueueFull: return "QUEUE_FULL";
    case DiagShedCause::kLimited: return "LIMITED";
    case DiagShedCause::kDeadline: return "DEADLINE";
    case DiagShedCause::kCodel: return "CODEL";
    case DiagShedCause::kRateLimited: return "RATE_LIMITED";
  }
  return "UNKNOWN";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 64)),
      slots_(new Slot[capacity_]),
      start_(std::chrono::steady_clock::now()) {}

std::uint64_t FlightRecorder::NowMicros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::uint64_t FlightRecorder::NextSpanId() {
  return span_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void FlightRecorder::WriteSlot(
    const std::uint64_t (&words)[kWordsPerSlot]) {
  const std::uint64_t seq =
      cursor_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = slots_[seq % capacity_];
  // Invalidate first so a dump racing this overwrite sees a stamp
  // mismatch instead of a half-new record with the old stamp.
  slot.stamp.store(0, std::memory_order_release);
  for (std::size_t i = 0; i < kWordsPerSlot; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.stamp.store(seq, std::memory_order_release);
}

void FlightRecorder::RecordSpan(const SpanRecord& span) {
  std::uint64_t words[kWordsPerSlot] = {};
  words[0] = kKindSpan;
  words[1] = NowMicros();
  words[2] = span.trace_id;
  words[3] = span.parent_span_id;
  words[4] = span.span_id;
  words[5] = static_cast<std::uint64_t>(span.opcode) |
             static_cast<std::uint64_t>(span.status) << 8 |
             static_cast<std::uint64_t>(span.degraded) << 16;
  words[6] = static_cast<std::uint64_t>(span.queue_us) |
             static_cast<std::uint64_t>(span.execute_us) << 32;
  words[7] = static_cast<std::uint64_t>(span.reply_us) |
             static_cast<std::uint64_t>(span.results) << 32;
  words[8] = span.heap_build_ns;
  words[9] = span.search_ns;
  words[10] = static_cast<std::uint64_t>(span.heap_pops) |
              static_cast<std::uint64_t>(span.lower_bounds) << 32;
  words[11] = static_cast<std::uint64_t>(span.distance_computations) |
              static_cast<std::uint64_t>(span.false_positive_distances)
                  << 32;
  WriteSlot(words);
}

void FlightRecorder::RecordEvent(DiagEvent event, std::uint64_t a,
                                 std::uint64_t b) {
  std::uint64_t words[kWordsPerSlot] = {};
  words[0] = kKindEvent;
  words[1] = NowMicros();
  words[2] = static_cast<std::uint64_t>(event);
  words[3] = a;
  words[4] = b;
  WriteSlot(words);
}

std::string FlightRecorder::Dump(std::size_t max_bytes) const {
  const std::uint64_t end = cursor_.load(std::memory_order_acquire);
  const std::uint64_t begin =
      end > capacity_ ? end - capacity_ + 1 : std::uint64_t{1};

  std::vector<std::string> lines;
  lines.reserve(end >= begin ? static_cast<std::size_t>(end - begin + 1)
                             : 0);
  char buf[512];
  for (std::uint64_t seq = begin; seq <= end; ++seq) {
    const Slot& slot = slots_[seq % capacity_];
    std::uint64_t words[kWordsPerSlot];
    const std::uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != seq) continue;  // Already overwritten (or mid-write).
    for (std::size_t i = 0; i < kWordsPerSlot; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    // Acquire re-check: the copy is only kept if no writer touched the
    // slot in between (WriteSlot zeroes the stamp before the words).
    if (slot.stamp.load(std::memory_order_acquire) != s1) continue;

    int n = 0;
    if (words[0] == kKindSpan) {
      n = std::snprintf(
          buf, sizeof buf,
          "{\"kind\":\"span\",\"seq\":%" PRIu64 ",\"t_us\":%" PRIu64
          ",\"trace_id\":\"%016" PRIx64 "\",\"parent_span_id\":\"%016"
          PRIx64 "\",\"span_id\":\"%016" PRIx64
          "\",\"opcode\":\"%s\",\"status\":\"%s\",\"degraded\":%u,"
          "\"queue_us\":%u,\"execute_us\":%u,\"reply_us\":%u,"
          "\"results\":%u,\"heap_build_ns\":%" PRIu64 ",\"search_ns\":%"
          PRIu64 ",\"heap_pops\":%u,\"lower_bounds\":%u,"
          "\"distance_computations\":%u,\"false_positive_distances\":%u}",
          seq, words[1], words[2], words[3], words[4],
          std::string(OpcodeName(static_cast<std::uint8_t>(words[5])))
              .c_str(),
          std::string(
              StatusName(static_cast<StatusCode>(words[5] >> 8 & 0xFF)))
              .c_str(),
          static_cast<unsigned>(words[5] >> 16 & 0xFF),
          static_cast<unsigned>(words[6] & 0xFFFFFFFF),
          static_cast<unsigned>(words[6] >> 32),
          static_cast<unsigned>(words[7] & 0xFFFFFFFF),
          static_cast<unsigned>(words[7] >> 32), words[8], words[9],
          static_cast<unsigned>(words[10] & 0xFFFFFFFF),
          static_cast<unsigned>(words[10] >> 32),
          static_cast<unsigned>(words[11] & 0xFFFFFFFF),
          static_cast<unsigned>(words[11] >> 32));
    } else if (words[0] == kKindEvent) {
      const auto event = static_cast<DiagEvent>(words[2]);
      if (event == DiagEvent::kShedBurst) {
        n = std::snprintf(
            buf, sizeof buf,
            "{\"kind\":\"event\",\"seq\":%" PRIu64 ",\"t_us\":%" PRIu64
            ",\"type\":\"SHED_BURST\",\"cause\":\"%s\",\"count\":%" PRIu64
            "}",
            seq, words[1],
            std::string(
                DiagShedCauseName(static_cast<DiagShedCause>(words[3])))
                .c_str(),
            words[4]);
      } else {
        n = std::snprintf(
            buf, sizeof buf,
            "{\"kind\":\"event\",\"seq\":%" PRIu64 ",\"t_us\":%" PRIu64
            ",\"type\":\"%s\",\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}",
            seq, words[1],
            std::string(DiagEventName(event)).c_str(), words[3],
            words[4]);
      }
    } else {
      continue;  // Unknown kind (future revision); skip.
    }
    if (n > 0) lines.emplace_back(buf, static_cast<std::size_t>(n));
  }

  // Keep the newest lines that fit the byte budget (0 = unlimited).
  std::size_t first = 0;
  if (max_bytes > 0) {
    std::size_t total = 0;
    first = lines.size();
    while (first > 0 && total + lines[first - 1].size() + 1 <= max_bytes) {
      total += lines[first - 1].size() + 1;
      --first;
    }
  }
  std::string out;
  for (std::size_t i = first; i < lines.size(); ++i) {
    out += lines[i];
    out += '\n';
  }
  return out;
}

}  // namespace kspin::server
