// Live mutations: the typed operations behind the INSERT_DOC / DELETE_DOC
// / UPDATE_DOC opcodes, their oplog record encoding, the epoch gate that
// lets queries run wait-free while mutations apply, and the idempotency
// cache that makes retried mutations safe.
//
// One MutationRecord encoding serves three places: the op-log record
// payload, the FETCH_OPLOG chunk entries a replica tails, and (wrapped in
// the v3 request bodies of wire.h) the client-facing opcodes. Applying a
// record to a PoiService is deterministic — same starting state, same
// record order, same resulting object ids — which is what makes crash
// replay and log-shipping replication converge on the primary's state.
#ifndef KSPIN_SERVER_MUTATION_H_
#define KSPIN_SERVER_MUTATION_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "service/poi_service.h"

namespace kspin::server {

/// Kinds of logged mutations. Values are part of the on-disk record
/// format; never renumber, only append.
enum class MutationOp : std::uint8_t {
  kInsert = 1,  ///< Register a new POI (name + vertex + keywords).
  kDelete = 2,  ///< Remove a POI from search.
  kUpdate = 3,  ///< Add / remove keyword tags on an existing POI.
  /// Marks a primary-epoch bump (failover promotion). Carries no service
  /// change — applying it is a no-op — but its op-log sequence is the
  /// epoch boundary: every earlier record belongs to the old epoch.
  kEpochTransition = 4,
};

/// One logged mutation. Exactly one of the op-specific field groups is
/// meaningful; the rest stay at their defaults.
struct MutationRecord {
  MutationOp op = MutationOp::kInsert;
  /// Client-chosen retry token; 0 = none. The primary remembers recent
  /// keys and answers a duplicate with the original result instead of
  /// applying twice, so RetryingClient may treat mutations as idempotent.
  std::uint64_t idempotency_key = 0;
  VertexId vertex = kInvalidVertex;   ///< kInsert.
  ObjectId object = kInvalidObject;   ///< kDelete / kUpdate.
  std::string name;                   ///< kInsert.
  std::vector<std::string> add_keywords;     ///< kInsert / kUpdate.
  std::vector<std::string> remove_keywords;  ///< kUpdate.
  std::uint64_t epoch = 0;            ///< kEpochTransition: the new epoch.
};

/// Record payload codec (the bytes stored in the oplog and shipped in
/// FETCH_OPLOG chunks). Decode rejects trailing bytes, unknown ops, and
/// structurally impossible field combinations.
std::vector<std::uint8_t> EncodeMutationRecord(const MutationRecord& record);
bool DecodeMutationRecord(std::span<const std::uint8_t> payload,
                          MutationRecord* record);

/// Applies one record to the service and returns the affected object id
/// (the newly assigned id for kInsert). Throws std::invalid_argument on
/// ids/vertices the service rejects — the caller maps that to BAD_QUERY
/// before the record ever reaches the log.
ObjectId ApplyMutationRecord(PoiService& service,
                             const MutationRecord& record);

/// Epoch gate: the reader/writer exclusion for the mutation apply path.
///
/// Readers (query workers) enter wait-free when no apply is in progress:
/// one fetch_add on a per-worker striped slot plus one load — no shared
/// CAS, no lock, so a reader never blocks on another reader and never
/// waits for a writer's *durability* work (oplog append + fsync happen
/// outside the gate). While an apply's in-memory window is open (tens of
/// microseconds), arriving readers spin-yield; writers wait for in-flight
/// readers to drain. Writers must already be serialized among themselves
/// (the server's mutation mutex). Every EndApply bumps the epoch, which
/// pairs with the engine's StructureGeneration to version what readers
/// observed.
class EpochGate {
 public:
  static constexpr std::size_t kSlots = 32;

  /// RAII read section. Obtain via Reader().
  class ReadGuard {
   public:
    ReadGuard(ReadGuard&& other) noexcept
        : gate_(other.gate_), slot_(other.slot_) {
      other.gate_ = nullptr;
    }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;
    ReadGuard& operator=(ReadGuard&&) = delete;
    ~ReadGuard();

   private:
    friend class EpochGate;
    ReadGuard(EpochGate* gate, std::size_t slot)
        : gate_(gate), slot_(slot) {}
    EpochGate* gate_;
    std::size_t slot_;
  };

  /// Enters a read section. `slot_hint` (typically the worker index)
  /// stripes readers across slots to keep the fast path contention-free.
  ReadGuard Reader(std::size_t slot_hint);

  /// Opens / closes an apply window. Callers hold the mutation mutex, so
  /// at most one window is open at a time.
  void BeginApply();
  void EndApply();

  /// RAII apply window.
  class ApplyGuard {
   public:
    explicit ApplyGuard(EpochGate& gate) : gate_(gate) {
      gate_.BeginApply();
    }
    ~ApplyGuard() { gate_.EndApply(); }
    ApplyGuard(const ApplyGuard&) = delete;
    ApplyGuard& operator=(const ApplyGuard&) = delete;

   private:
    EpochGate& gate_;
  };

  /// Number of completed apply windows.
  std::uint64_t Epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> active{0};
  };
  Slot slots_[kSlots];
  std::atomic<bool> writer_active_{false};
  std::atomic<std::uint64_t> epoch_{0};
};

/// Bounded map of recently applied idempotency keys to their results.
/// Single-writer (callers hold the mutation mutex); lookups and inserts
/// are O(1); capacity eviction is FIFO. Keys only need to outlive a
/// client's retry window (seconds), not the log.
class IdempotencyCache {
 public:
  struct Result {
    std::uint64_t sequence = 0;
    ObjectId object = kInvalidObject;
  };

  explicit IdempotencyCache(std::size_t capacity = 4096)
      : capacity_(capacity) {}

  /// Returns the recorded result for `key`, or nullptr when unseen.
  const Result* Find(std::uint64_t key) const;
  /// Records the result of a freshly applied mutation (key 0 is ignored).
  void Remember(std::uint64_t key, Result result);

  std::size_t Size() const { return map_.size(); }

 private:
  std::size_t capacity_;
  std::unordered_map<std::uint64_t, Result> map_;
  std::vector<std::uint64_t> fifo_;
  std::size_t fifo_head_ = 0;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_MUTATION_H_
