// Client-side resilience: RetryingClient wraps Client with reconnect +
// bounded, jittered exponential backoff.
//
// What gets retried:
//  - connect failures (the server may be restarting);
//  - in-band kOverloaded rejections (load shedding is an invitation to
//    back off and come again);
//  - ClientError mid-request (disconnect / torn response) — but only for
//    idempotent operations. A torn AddPoi may or may not have been
//    applied server-side, so re-sending it could double-insert; such
//    failures surface to the caller instead.
//
// Backoff is exponential with deterministic jitter (seeded xorshift, so
// tests are reproducible): attempt i sleeps a uniform value in
// [base/2, base] where base = min(max_backoff_ms, initial * mult^i).
// The sleep function is injectable so tests never actually wait.
#ifndef KSPIN_SERVER_RETRY_H_
#define KSPIN_SERVER_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "server/client.h"

namespace kspin::server {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  std::uint32_t max_attempts = 4;
  std::uint32_t initial_backoff_ms = 50;
  std::uint32_t max_backoff_ms = 2000;
  /// Backoff growth factor per attempt.
  double multiplier = 2.0;
  /// Seed for the deterministic jitter stream.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Overall time budget for one operation across all attempts and
  /// backoffs, in milliseconds; 0 = unlimited. Once the budget can no
  /// longer fund another backoff + attempt, the current attempt is the
  /// last — so attempts x backoff never exceeds the caller's patience.
  /// Per-request deadlines sent while a budget is active are clamped to
  /// the remaining budget (see Search).
  std::uint32_t max_total_ms = 0;
};

/// A Client plus retry policy. Like Client, NOT thread-safe. Connection
/// management is implicit: each operation connects on demand and drops
/// the connection on transport errors so the next attempt reconnects.
class RetryingClient {
 public:
  using SleepFn = std::function<void(std::uint32_t ms)>;

  RetryingClient(std::string host, std::uint16_t port,
                 RetryPolicy policy = {});

  /// Replaces the real sleep (used between attempts) — test hook.
  void SetSleepFunction(SleepFn sleep_fn) { sleep_ = std::move(sleep_fn); }

  /// Attempts consumed by the last operation (1 = no retries needed).
  std::uint32_t LastAttempts() const { return last_attempts_; }

  /// Epoch stamped into every v3 mutation (see Client::SetFenceEpoch);
  /// survives the reconnects this wrapper performs between attempts.
  void SetFenceEpoch(std::uint64_t epoch) { client_.SetFenceEpoch(epoch); }
  std::uint64_t FenceEpoch() const { return client_.FenceEpoch(); }

  /// Trace context stamped onto every request (v5 trace trailer). The
  /// wrapped Client is reused across attempts and reconnects, so one
  /// trace_id survives every retry of an operation.
  void SetTraceContext(const TraceContext& context) {
    client_.SetTraceContext(context);
  }
  const TraceContext& GetTraceContext() const {
    return client_.GetTraceContext();
  }

  /// Flight-recorder dump (DUMP_DIAG, v5+) — an idempotent read.
  Client::MetricsReply DumpDiag();

  // Idempotent operations — retried on every retryable failure.
  Client::Reply Ping();
  Client::StatsReply Stats();
  Client::MetricsReply Metrics();
  Client::HealthReply Health();
  Client::FetchSnapshotReply FetchSnapshotChunk(std::uint64_t sequence,
                                                std::uint64_t offset,
                                                std::uint32_t max_bytes = 0);
  /// When the policy has a max_total_ms budget, the deadline actually
  /// sent is min(deadline_ms, remaining budget) — a retried request never
  /// asks the server for more time than the caller is still willing to
  /// wait (deadline_ms 0 becomes the remaining budget).
  Client::SearchReply Search(std::string_view query, VertexId from,
                             std::uint32_t k, bool ranked = false,
                             std::uint32_t deadline_ms = 0);
  /// Snapshot is safe to repeat (worst case: an extra snapshot file,
  /// pruned later); Reload always converges on the newest valid snapshot.
  Client::SnapshotReply Snapshot();
  Client::SnapshotReply Reload();

  // Updates — retried on connect failure and kOverloaded only (the
  // request provably never reached the server); a mid-request disconnect
  // rethrows because the update may already be applied.
  Client::AddPoiReply AddPoi(std::string_view name, VertexId vertex,
                             std::span<const std::string> keywords);
  Client::Reply ClosePoi(ObjectId id);
  Client::Reply TagPoi(ObjectId id, std::string_view keyword);
  Client::Reply UntagPoi(ObjectId id, std::string_view keyword);

  // Keyed mutations (v3) — with a nonzero idempotency key the server
  // deduplicates re-sends, so a torn round trip is safe to retry like an
  // idempotent read; key 0 falls back to the conservative update rules
  // above.
  Client::MutateReply InsertDoc(std::uint64_t idempotency_key,
                                VertexId vertex, std::string_view name,
                                std::span<const std::string> keywords);
  Client::MutateReply DeleteDoc(std::uint64_t idempotency_key, ObjectId id);
  Client::MutateReply UpdateDoc(std::uint64_t idempotency_key, ObjectId id,
                                std::span<const std::string> add_keywords,
                                std::span<const std::string> remove_keywords);

 private:
  /// Runs `op` under the retry loop. `op` must return a type derived
  /// from Client::Reply.
  template <typename Op>
  auto Execute(bool idempotent, Op&& op) -> decltype(op());

  /// Jittered backoff for 0-based attempt index, in milliseconds.
  std::uint32_t BackoffMs(std::uint32_t attempt);
  std::uint64_t NextRandom();

  /// Deadline to actually send for a caller-requested `deadline_ms`,
  /// clamped to the remaining max_total_ms budget (no-op without one).
  std::uint32_t ClampedDeadlineMs(std::uint32_t requested) const;

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  Client client_;
  SleepFn sleep_;
  std::uint64_t rng_state_;
  std::uint32_t last_attempts_ = 0;
  /// Budget left before the current attempt; 0 = no budget configured.
  /// Never 0 while a budget is active (clamped up to 1 ms) so it stays
  /// distinguishable from "no deadline" on the wire.
  std::uint32_t remaining_budget_ms_ = 0;
};

template <typename Op>
auto RetryingClient::Execute(bool idempotent, Op&& op) -> decltype(op()) {
  last_attempts_ = 0;
  const auto start = std::chrono::steady_clock::now();
  // Budget consumed so far: wall time, but at least the backoffs already
  // "slept" — with an injected no-op sleep (tests) the budget still
  // drains deterministically.
  std::uint64_t slept_ms = 0;
  const auto used_ms = [&] {
    const auto real = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    return std::max<std::uint64_t>(static_cast<std::uint64_t>(real),
                                   slept_ms);
  };
  for (std::uint32_t attempt = 0;; ++attempt) {
    ++last_attempts_;
    const std::uint32_t backoff = BackoffMs(attempt);
    bool last = attempt + 1 >= policy_.max_attempts;
    if (policy_.max_total_ms > 0) {
      const std::uint64_t used = used_ms();
      // This attempt is the last one the budget can fund if there is no
      // room left for its backoff plus another attempt.
      if (used + backoff >= policy_.max_total_ms) last = true;
      remaining_budget_ms_ = static_cast<std::uint32_t>(
          used >= policy_.max_total_ms
              ? 1
              : std::max<std::uint64_t>(1, policy_.max_total_ms - used));
    } else {
      remaining_budget_ms_ = 0;
    }

    // Phase 1: connect. Failures here are always retryable — nothing has
    // been sent yet.
    bool connected = client_.Connected();
    if (!connected) {
      try {
        client_.Connect(host_, port_);
        connected = true;
      } catch (const ClientError&) {
        if (last) throw;
      }
    }

    // Phase 2: the round trip itself.
    std::uint32_t sleep_ms = backoff;
    if (connected) {
      try {
        auto reply = op();
        if (reply.status != StatusCode::kOverloaded || last) return reply;
        // Shed at admission; definitely not applied, safe to re-send.
        // The server's RETRY_AFTER hint extends (never shortens) the
        // jittered backoff so clients stay away at least as long as the
        // shedding server asked, still capped by max_backoff_ms.
        if (reply.retry_after_ms > 0) {
          sleep_ms = std::max(
              sleep_ms, std::min(reply.retry_after_ms,
                                 policy_.max_backoff_ms));
        }
      } catch (const ClientError&) {
        client_.Close();
        if (!idempotent || last) throw;
      }
    } else if (last) {
      // Unreachable in practice (a failed last connect threw above), but
      // keeps the loop provably bounded.
      throw ClientError("connect failed");
    }

    sleep_(sleep_ms);
    slept_ms += sleep_ms;
  }
}

}  // namespace kspin::server

#endif  // KSPIN_SERVER_RETRY_H_
