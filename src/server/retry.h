// Client-side resilience: RetryingClient wraps Client with reconnect +
// bounded, jittered exponential backoff.
//
// What gets retried:
//  - connect failures (the server may be restarting);
//  - in-band kOverloaded rejections (load shedding is an invitation to
//    back off and come again);
//  - ClientError mid-request (disconnect / torn response) — but only for
//    idempotent operations. A torn AddPoi may or may not have been
//    applied server-side, so re-sending it could double-insert; such
//    failures surface to the caller instead.
//
// Backoff is exponential with deterministic jitter (seeded xorshift, so
// tests are reproducible): attempt i sleeps a uniform value in
// [base/2, base] where base = min(max_backoff_ms, initial * mult^i).
// The sleep function is injectable so tests never actually wait.
#ifndef KSPIN_SERVER_RETRY_H_
#define KSPIN_SERVER_RETRY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "server/client.h"

namespace kspin::server {

struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  std::uint32_t max_attempts = 4;
  std::uint32_t initial_backoff_ms = 50;
  std::uint32_t max_backoff_ms = 2000;
  /// Backoff growth factor per attempt.
  double multiplier = 2.0;
  /// Seed for the deterministic jitter stream.
  std::uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

/// A Client plus retry policy. Like Client, NOT thread-safe. Connection
/// management is implicit: each operation connects on demand and drops
/// the connection on transport errors so the next attempt reconnects.
class RetryingClient {
 public:
  using SleepFn = std::function<void(std::uint32_t ms)>;

  RetryingClient(std::string host, std::uint16_t port,
                 RetryPolicy policy = {});

  /// Replaces the real sleep (used between attempts) — test hook.
  void SetSleepFunction(SleepFn sleep_fn) { sleep_ = std::move(sleep_fn); }

  /// Attempts consumed by the last operation (1 = no retries needed).
  std::uint32_t LastAttempts() const { return last_attempts_; }

  // Idempotent operations — retried on every retryable failure.
  Client::Reply Ping();
  Client::StatsReply Stats();
  Client::SearchReply Search(std::string_view query, VertexId from,
                             std::uint32_t k, bool ranked = false,
                             std::uint32_t deadline_ms = 0);
  /// Snapshot is safe to repeat (worst case: an extra snapshot file,
  /// pruned later); Reload always converges on the newest valid snapshot.
  Client::SnapshotReply Snapshot();
  Client::SnapshotReply Reload();

  // Updates — retried on connect failure and kOverloaded only (the
  // request provably never reached the server); a mid-request disconnect
  // rethrows because the update may already be applied.
  Client::AddPoiReply AddPoi(std::string_view name, VertexId vertex,
                             std::span<const std::string> keywords);
  Client::Reply ClosePoi(ObjectId id);
  Client::Reply TagPoi(ObjectId id, std::string_view keyword);
  Client::Reply UntagPoi(ObjectId id, std::string_view keyword);

 private:
  /// Runs `op` under the retry loop. `op` must return a type derived
  /// from Client::Reply.
  template <typename Op>
  auto Execute(bool idempotent, Op&& op) -> decltype(op());

  /// Jittered backoff for 0-based attempt index, in milliseconds.
  std::uint32_t BackoffMs(std::uint32_t attempt);
  std::uint64_t NextRandom();

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  Client client_;
  SleepFn sleep_;
  std::uint64_t rng_state_;
  std::uint32_t last_attempts_ = 0;
};

template <typename Op>
auto RetryingClient::Execute(bool idempotent, Op&& op) -> decltype(op()) {
  last_attempts_ = 0;
  for (std::uint32_t attempt = 0;; ++attempt) {
    ++last_attempts_;
    const bool last = attempt + 1 >= policy_.max_attempts;

    // Phase 1: connect. Failures here are always retryable — nothing has
    // been sent yet.
    bool connected = client_.Connected();
    if (!connected) {
      try {
        client_.Connect(host_, port_);
        connected = true;
      } catch (const ClientError&) {
        if (last) throw;
      }
    }

    // Phase 2: the round trip itself.
    if (connected) {
      try {
        auto reply = op();
        if (reply.status != StatusCode::kOverloaded || last) return reply;
        // Shed at admission; definitely not applied, safe to re-send.
      } catch (const ClientError&) {
        client_.Close();
        if (!idempotent || last) throw;
      }
    }

    sleep_(BackoffMs(attempt));
  }
}

}  // namespace kspin::server

#endif  // KSPIN_SERVER_RETRY_H_
