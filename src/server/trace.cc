#include "server/trace.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace kspin::server {
namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t FnvMix(std::uint64_t hash, std::uint8_t byte) {
  return (hash ^ byte) * kFnvPrime;
}

// Minimal JSON string escaping: quotes, backslashes, and control bytes.
void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64Field(std::string& out, const char* key, std::uint64_t value,
                    bool trailing_comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

}  // namespace

std::uint64_t QueryFingerprint(std::string_view query, std::uint64_t vertex,
                               std::uint32_t k) {
  std::uint64_t hash = kFnvOffset;
  for (const char c : query) {
    hash = FnvMix(hash, static_cast<std::uint8_t>(c));
  }
  for (std::size_t i = 0; i < sizeof(vertex); ++i) {
    hash = FnvMix(hash, static_cast<std::uint8_t>(vertex >> (8 * i)));
  }
  for (std::size_t i = 0; i < sizeof(k); ++i) {
    hash = FnvMix(hash, static_cast<std::uint8_t>(k >> (8 * i)));
  }
  return hash;
}

std::string FormatQueryTrace(const QueryTraceEvent& event) {
  std::string out;
  out.reserve(512);
  out += '{';
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"fingerprint\":\"%016" PRIx64 "\",",
                event.fingerprint);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\"trace_id\":\"%016" PRIx64 "\",\"parent_span_id\":\"%016"
                PRIx64 "\",\"span_id\":\"%016" PRIx64 "\",",
                event.trace_id, event.parent_span_id, event.span_id);
  out += buf;
  out += "\"opcode\":\"";
  AppendJsonEscaped(out, event.opcode);
  out += "\",\"query\":\"";
  AppendJsonEscaped(out, event.query);
  out += "\",";
  AppendU64Field(out, "vertex", event.vertex);
  AppendU64Field(out, "k", event.k);
  out += "\"status\":\"";
  AppendJsonEscaped(out, event.status);
  out += "\",";
  AppendU64Field(out, "latency_us", event.latency_us);
  AppendU64Field(out, "queue_us", event.queue_us);
  AppendU64Field(out, "degraded", event.degraded ? 1 : 0);
  const QueryStats& s = event.stats;
  AppendU64Field(out, "heap_build_ns", s.heap_build_ns);
  AppendU64Field(out, "search_ns", s.search_ns);
  AppendU64Field(out, "heap_pops", s.candidates_extracted);
  AppendU64Field(out, "lower_bounds", s.lower_bounds_computed);
  AppendU64Field(out, "lb_batch_calls", s.lb_batch_calls);
  AppendU64Field(out, "lb_batch_items", s.lb_batch_items);
  AppendU64Field(out, "distance_computations",
                 s.network_distance_computations);
  AppendU64Field(out, "false_positive_distances",
                 s.false_positive_distances);
  AppendU64Field(out, "candidates_pruned_lb", s.candidates_pruned_lb);
  AppendU64Field(out, "heaps_created", s.heaps_created);
  AppendU64Field(out, "heap_insertions", s.heap_insertions);
  AppendU64Field(out, "results", s.results_returned,
                 /*trailing_comma=*/false);
  out += '}';
  return out;
}

TraceSink::TraceSink(const std::string& path, std::uint64_t max_bytes,
                     std::uint32_t keep)
    : out_(path, std::ios::app),
      path_(path),
      max_bytes_(max_bytes),
      keep_(keep == 0 ? 1 : keep) {
  enabled_ = out_.is_open() && out_.good();
  if (enabled_) {
    std::error_code ec;
    const auto size = std::filesystem::file_size(path_, ec);
    bytes_ = ec ? 0 : static_cast<std::uint64_t>(size);
  }
}

void TraceSink::Write(const std::string& json_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_ || !out_.good()) return;
  out_ << json_line << '\n';
  out_.flush();
  bytes_ += json_line.size() + 1;
  if (max_bytes_ > 0 && bytes_ >= max_bytes_) RotateLocked();
}

void TraceSink::RotateLocked() {
  out_.close();
  // Shift <path>.1 → <path>.2 ... then <path> → <path>.1; the file that
  // would become <path>.<keep_+1> is simply overwritten by the rename.
  for (std::uint32_t i = keep_; i >= 1; --i) {
    const std::string from =
        i == 1 ? path_ : path_ + "." + std::to_string(i - 1);
    const std::string to = path_ + "." + std::to_string(i);
    std::error_code ec;
    std::filesystem::rename(from, to, ec);  // Missing `from` is fine.
  }
  out_.open(path_, std::ios::trunc);
  bytes_ = 0;
  ++rotations_;
  if (!out_.is_open() || !out_.good()) enabled_ = false;
}

}  // namespace kspin::server
