// Overload-resilience building blocks for kspin_server: an AIMD
// concurrency limiter driven by observed p99 latency, per-connection
// token-bucket rate limiting, and a brownout controller with entry/exit
// hysteresis. All three are plain deterministic state machines — no
// threads, no clocks of their own — so they unit-test without sockets;
// the server ticks them from its I/O loop (docs/protocol.md "Overload
// control & degradation").
#ifndef KSPIN_SERVER_OVERLOAD_H_
#define KSPIN_SERVER_OVERLOAD_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "server/metrics.h"

namespace kspin::server {

/// Tuning for the whole subsystem; a default-constructed value disables
/// every mechanism (SLO 0, CoDel target 0, rate 0), so existing callers
/// keep the plain bounded-FIFO behaviour they had.
struct OverloadOptions {
  /// Query p99 latency objective in milliseconds; 0 disables the AIMD
  /// limiter *and* brownout (both key off SLO violations).
  std::uint32_t latency_slo_ms = 0;
  /// Controller tick period (p99 is measured per tick over the queries
  /// that completed within it).
  std::uint32_t tick_interval_ms = 100;
  /// Multiplicative decrease applied to the admission limit on an SLO
  /// violation; additive increase is +1 per healthy tick.
  double aimd_decrease = 0.7;
  /// The limit never drops below this (keeps a trickle of real traffic
  /// flowing so recovery is observable).
  std::size_t min_limit = 4;

  /// CoDel sojourn target in milliseconds; 0 disables the dequeue-time
  /// sojourn check. The congestion interval is tick_interval_ms.
  std::uint32_t codel_target_ms = 0;

  /// Consecutive SLO-violating ticks before brownout engages.
  std::uint32_t brownout_enter_ticks = 5;
  /// Consecutive healthy ticks before brownout disengages (exit is
  /// deliberately slower than entry so the server does not flap).
  std::uint32_t brownout_exit_ticks = 10;
  /// k is clamped to this while browned out (0 = no clamp).
  std::uint32_t brownout_max_k = 8;

  /// Per-connection sustained request rate; 0 disables rate limiting.
  double per_client_qps = 0.0;
  /// Per-connection burst allowance; 0 = 2 × per_client_qps.
  double per_client_burst = 0.0;

  /// Fixed RETRY_AFTER hint carried on OVERLOADED replies, in
  /// milliseconds; 0 = compute adaptively from queue drain time.
  std::uint32_t retry_after_ms = 0;
};

/// Token bucket for per-connection rate limiting. One instance lives in
/// each server Connection and is touched only by the I/O thread, so it
/// needs no locking. Time is passed in (steady_clock at the call site)
/// to keep tests deterministic.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  /// Refills at `rate` tokens/second up to `burst`, then tries to take
  /// one token. A fresh bucket starts full.
  bool TryAcquire(Clock::time_point now, double rate, double burst) {
    if (rate <= 0.0) return true;
    if (burst <= 0.0) burst = 2.0 * rate;
    if (last_refill_ == Clock::time_point{}) {
      tokens_ = burst;
    } else {
      const double elapsed =
          std::chrono::duration<double>(now - last_refill_).count();
      tokens_ = std::min(burst, tokens_ + elapsed * rate);
    }
    last_refill_ = now;
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

 private:
  double tokens_ = 0.0;
  Clock::time_point last_refill_{};
};

/// AIMD concurrency limiter: observes the per-tick p99 of query latency
/// against the SLO and moves the admission-queue limit — multiplicative
/// decrease on violation, additive increase (+1) when healthy. The
/// classic TCP-congestion shape: converges onto the largest backlog the
/// service can drain within the SLO.
class AimdLimiter {
 public:
  AimdLimiter(std::size_t max_limit, std::size_t min_limit, double decrease)
      : max_limit_(std::max<std::size_t>(max_limit, 1)),
        min_limit_(std::clamp<std::size_t>(min_limit, 1, max_limit_)),
        decrease_(std::clamp(decrease, 0.1, 0.99)),
        limit_(max_limit_) {}

  /// One controller tick. `p99_us` is the tick's observed query p99 (0
  /// when nothing completed — treated as healthy: an idle server must
  /// recover its limit). Returns true when this tick violated the SLO.
  bool Observe(std::uint64_t p99_us, std::uint64_t slo_us) {
    const bool violated = p99_us > slo_us;
    if (violated) {
      limit_ = std::max<std::size_t>(
          min_limit_, static_cast<std::size_t>(
                          static_cast<double>(limit_) * decrease_));
    } else if (limit_ < max_limit_) {
      ++limit_;
    }
    return violated;
  }

  std::size_t limit() const { return limit_; }

 private:
  const std::size_t max_limit_;
  const std::size_t min_limit_;
  const double decrease_;
  std::size_t limit_;
};

/// Brownout hysteresis: engages after `enter_ticks` consecutive
/// overloaded ticks, disengages after `exit_ticks` consecutive healthy
/// ones. Asymmetric on purpose — entering late sheds too little,
/// exiting early flaps.
class BrownoutController {
 public:
  BrownoutController(std::uint32_t enter_ticks, std::uint32_t exit_ticks)
      : enter_ticks_(std::max<std::uint32_t>(enter_ticks, 1)),
        exit_ticks_(std::max<std::uint32_t>(exit_ticks, 1)) {}

  /// One tick; returns the (possibly new) brownout state.
  bool Update(bool overloaded) {
    if (overloaded) {
      healthy_run_ = 0;
      if (!active_ && ++overloaded_run_ >= enter_ticks_) {
        active_ = true;
        ++entries_;
      }
    } else {
      overloaded_run_ = 0;
      if (active_ && ++healthy_run_ >= exit_ticks_) active_ = false;
    }
    return active_;
  }

  bool active() const { return active_; }
  std::uint64_t entries() const { return entries_; }

 private:
  const std::uint32_t enter_ticks_;
  const std::uint32_t exit_ticks_;
  bool active_ = false;
  std::uint32_t overloaded_run_ = 0;
  std::uint32_t healthy_run_ = 0;
  std::uint64_t entries_ = 0;
};

/// The server's per-tick overload decision, derived by OverloadController
/// from one histogram snapshot.
struct OverloadDecision {
  std::size_t admission_limit = 0;  ///< New soft limit for the queue.
  bool slo_violated = false;        ///< This tick's p99 exceeded the SLO.
  bool brownout = false;            ///< Degraded serving is in effect.
  bool brownout_entered = false;    ///< This tick flipped brownout on.
  std::uint32_t retry_after_ms = 0; ///< Hint for OVERLOADED replies.
  std::uint64_t p99_us = 0;         ///< Max of the query and sojourn p99s.
};

/// Glues the limiter and brownout controller to the server's existing
/// log2 latency histograms: each Tick diffs the cumulative histograms
/// against the previous tick's snapshots, takes the deltas' p99, and
/// runs one AIMD + hysteresis step. Owned and called by the I/O thread
/// only.
///
/// Two histograms, not one, on purpose: query latency only records
/// requests that *executed*, so a tick where CoDel shed everything
/// would read as "no completions = healthy" and the limiter would open
/// back up into a queue it just proved was standing — a blind spot
/// where shedding sustains itself at full queue depth. The admission
/// sojourn histogram records every dequeued request including the shed
/// ones, so queueing pain counts as an SLO violation even when nothing
/// survives to be measured end-to-end.
class OverloadController {
 public:
  OverloadController(const OverloadOptions& options, std::size_t queue_capacity,
                     unsigned workers)
      : options_(options),
        workers_(std::max(workers, 1u)),
        limiter_(std::max<std::size_t>(queue_capacity, 1),
                 options.min_limit, options.aimd_decrease),
        brownout_(options.brownout_enter_ticks, options.brownout_exit_ticks) {}

  bool enabled() const { return options_.latency_slo_ms > 0; }

  /// One controller tick over the cumulative query-latency and
  /// admission-sojourn histograms. The tick violates the SLO when
  /// either delta's p99 exceeds it. `queue_depth` feeds the adaptive
  /// RETRY_AFTER hint.
  OverloadDecision Tick(const HistogramSnapshot& query_latency,
                        const HistogramSnapshot& queue_sojourn,
                        std::size_t queue_depth);

  /// RETRY_AFTER hint: the configured constant, or an estimate of how
  /// long the current backlog takes to drain (depth × mean service time
  /// ÷ workers), doubled under brownout, clamped to [tick, 5000] ms so a
  /// bad estimate can neither hammer nor strand clients.
  std::uint32_t RetryAfterMs(std::size_t queue_depth, double mean_us,
                             bool brownout) const;

 private:
  /// Bucket-wise difference vs. the previous tick (cumulative counters
  /// only ever grow, so plain subtraction is safe).
  static HistogramSnapshot Delta(const HistogramSnapshot& current,
                                 const HistogramSnapshot& previous);

  const OverloadOptions options_;
  const unsigned workers_;
  AimdLimiter limiter_;
  BrownoutController brownout_;
  HistogramSnapshot previous_latency_{};
  HistogramSnapshot previous_sojourn_{};
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_OVERLOAD_H_
