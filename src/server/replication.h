// Primary–replica replication: snapshot shipping over the wire protocol.
//
// The model is deliberately simple — replicas pull whole snapshots:
//
//   1. A replica polls its primary's HEALTH on a fixed interval and
//      compares the primary's newest snapshot sequence to its own.
//   2. When the primary is ahead, the replica streams the snapshot with
//      FETCH_SNAPSHOT range requests (chunked under the 1 MiB frame
//      budget, each chunk CRC-checked at the frame level).
//   3. The reassembled image is validated end-to-end (full container
//      checks + load against the serving graph) OFF the serving lock, so
//      reads keep flowing from the old state the whole time; only the
//      final catalog swap takes the exclusive update lock.
//   4. The verified image is persisted into the replica's own snapshot
//      directory via the crash-safe write path, so a replica restart
//      recovers locally instead of re-fetching.
//
// A corrupt or torn transfer is rejected at step 3: the replica keeps
// serving its previous state and simply retries on the next poll. Chunk
// range-reads are idempotent, so every retry starts clean.
#ifndef KSPIN_SERVER_REPLICATION_H_
#define KSPIN_SERVER_REPLICATION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "server/client.h"
#include "server/metrics.h"

namespace kspin::server {

/// A server address. Formats as "host:port".
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string ToString() const;
};

/// Parses "host:port" (port in [1, 65535]). nullopt on any syntax error.
std::optional<Endpoint> ParseEndpoint(std::string_view spec);

/// What a server is in the replication topology.
enum class ServerRole : std::uint8_t {
  kPrimary = 0,  ///< Accepts writes; serves snapshots to replicas.
  kReplica = 1,  ///< Read-only; tracks a primary's snapshots.
};

std::string_view RoleName(ServerRole role);

/// Replication half of ServerOptions.
struct ReplicationOptions {
  ServerRole role = ServerRole::kPrimary;
  /// The primary to track. Required (port != 0) when role is kReplica.
  Endpoint primary;
  /// How often the replica health-checks its primary.
  std::uint32_t poll_interval_ms = 1000;
  /// FETCH_SNAPSHOT chunk size the replica requests (clamped server-side
  /// to kMaxSnapshotChunkBytes).
  std::uint32_t fetch_chunk_bytes = 256 * 1024;
  /// Test hook: mutates each fetched snapshot image before validation —
  /// simulates mid-transfer corruption deterministically.
  std::function<void(std::string&)> test_mutate_fetched;
};

/// Downloads snapshot `sequence` (0 = primary's newest valid) from the
/// connected `client` in `chunk_bytes` ranges. On success fills the pinned
/// sequence and the whole image and returns true; in-band rejections and
/// mid-transfer inconsistencies (sequence changed, bad offsets) return
/// false with `*error` set. Transport failures propagate as ClientError.
/// The caller still must validate the image before trusting it.
bool FetchSnapshotBytes(Client& client, std::uint64_t sequence,
                        std::uint32_t chunk_bytes,
                        std::uint64_t* out_sequence, std::string* out_bytes,
                        std::string* error);

/// The replica-side poll loop. Owns one connection to the primary and a
/// background thread; the actual install is delegated to the server via
/// Hooks so this class stays free of serving-state concerns.
class Replicator {
 public:
  struct Hooks {
    /// Sequence of the replica's newest installed snapshot (0 = none).
    std::function<std::uint64_t()> local_sequence;
    /// Validates + installs a fetched snapshot image. Returns false with
    /// `*error` set when the image is rejected; must leave the serving
    /// state untouched in that case.
    std::function<bool(std::uint64_t sequence, const std::string& bytes,
                       std::string* error)>
        install;
  };

  Replicator(ReplicationOptions options, ServerMetrics& metrics, Hooks hooks);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the background poll thread. Idempotent.
  void Start();
  /// Stops and joins the poll thread. Idempotent; called by ~Replicator.
  void Stop();

  /// One poll cycle (also the test entry point): health-check the primary
  /// and fetch + install if it is ahead. Returns true when a new snapshot
  /// was installed. Never throws — failures land in metrics and stderr
  /// and are retried on the next cycle.
  bool PollOnce();

 private:
  void Loop();

  ReplicationOptions options_;
  ServerMetrics& metrics_;
  Hooks hooks_;
  Client client_;  // Poll-thread only (PollOnce callers must not overlap).

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_REPLICATION_H_
