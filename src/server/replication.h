// Primary–replica replication: op-log tailing with snapshot fallback.
//
// Steady state is delta replication. Each poll, the replica asks the
// primary for op-log records after its own applied mutation sequence
// (FETCH_OPLOG) and applies them in order — bytes shipped per poll are
// proportional to the write rate, so replication lag is one poll interval,
// not one snapshot cycle.
//
// The snapshot path remains the bootstrap and repair mechanism. Tailing
// only starts once a snapshot baseline has been installed (a mutation
// sequence is meaningless across unrelated states), and the replica
// falls back to a full snapshot transfer when:
//   - the primary does not serve FETCH_OPLOG (no --oplog-dir, old server);
//   - the primary's log no longer retains the records the replica needs
//     (truncated after a snapshot — the replica was down too long);
//   - applying a shipped record fails (divergence; the snapshot resets
//     the replica to a known-good state).
//
// Snapshot transfers work as before: stream with FETCH_SNAPSHOT range
// requests (chunked under the 1 MiB frame budget), validate the image
// end-to-end OFF the serving path, persist it locally crash-safe, then
// swap the catalog in one apply window. A corrupt or torn transfer is
// rejected at validation: the replica keeps serving its previous state
// and retries on the next poll.
#ifndef KSPIN_SERVER_REPLICATION_H_
#define KSPIN_SERVER_REPLICATION_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/metrics.h"

namespace kspin::server {

/// A server address. Formats as "host:port".
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
  std::string ToString() const;
};

/// Parses "host:port" (port in [1, 65535]). nullopt on any syntax error.
std::optional<Endpoint> ParseEndpoint(std::string_view spec);

/// What a server is in the replication topology.
enum class ServerRole : std::uint8_t {
  kPrimary = 0,  ///< Accepts writes; serves snapshots to replicas.
  kReplica = 1,  ///< Read-only; tracks a primary's snapshots.
};

std::string_view RoleName(ServerRole role);

/// Replication half of ServerOptions.
struct ReplicationOptions {
  ServerRole role = ServerRole::kPrimary;
  /// The primary to track. Required (port != 0) when role is kReplica.
  Endpoint primary;
  /// How often the replica health-checks its primary.
  std::uint32_t poll_interval_ms = 1000;
  /// FETCH_SNAPSHOT chunk size the replica requests (clamped server-side
  /// to kMaxSnapshotChunkBytes).
  std::uint32_t fetch_chunk_bytes = 256 * 1024;
  /// Test hook: mutates each fetched snapshot image before validation —
  /// simulates mid-transfer corruption deterministically.
  std::function<void(std::string&)> test_mutate_fetched;
};

/// Downloads snapshot `sequence` (0 = primary's newest valid) from the
/// connected `client` in `chunk_bytes` ranges. On success fills the pinned
/// sequence and the whole image and returns true; in-band rejections and
/// mid-transfer inconsistencies (sequence changed, bad offsets) return
/// false with `*error` set. Transport failures propagate as ClientError.
/// The caller still must validate the image before trusting it.
bool FetchSnapshotBytes(Client& client, std::uint64_t sequence,
                        std::uint32_t chunk_bytes,
                        std::uint64_t* out_sequence, std::string* out_bytes,
                        std::string* error);

/// The replica-side poll loop. Owns one connection to the primary and a
/// background thread; the actual install is delegated to the server via
/// Hooks so this class stays free of serving-state concerns.
class Replicator {
 public:
  struct Hooks {
    /// Sequence of the replica's newest installed snapshot (0 = none).
    std::function<std::uint64_t()> local_sequence;
    /// Validates + installs a fetched snapshot image. Returns false with
    /// `*error` set when the image is rejected; must leave the serving
    /// state untouched in that case.
    std::function<bool(std::uint64_t sequence, const std::string& bytes,
                       std::string* error)>
        install;
    /// Highest mutation sequence applied locally — where log tailing
    /// resumes from. Unset disables tailing (snapshot-only replication).
    std::function<std::uint64_t()> local_mutation_sequence;
    /// Applies records shipped from the primary, in order. Returns false
    /// with `*error` set on a gap / decode / apply failure — the poll
    /// falls back to a snapshot transfer. Unset disables tailing.
    std::function<bool(const std::vector<OplogWireRecord>& records,
                       std::string* error)>
        apply_mutations;
    /// Highest primary epoch known locally. Unset = epoch-unaware (0);
    /// the replicator then accepts any primary, as before epochs existed.
    std::function<std::uint64_t()> local_epoch;
    /// A newer primary epoch was observed (health poll or a tailed
    /// chunk). `boundary` is the epoch-transition record's sequence when
    /// known, 0 when only the epoch itself is (health reports no
    /// boundary).
    std::function<void(std::uint64_t epoch, std::uint64_t boundary)>
        observe_epoch;
    /// The local applied position reaches past the new primary's epoch
    /// boundary: the records from `boundary` on are this ex-primary's
    /// divergent tail. Preserve them for operators before the snapshot
    /// fallback's log reset discards them. Returns records preserved.
    std::function<std::size_t(std::uint64_t boundary)> quarantine_divergent;
    /// The replication source changed (true = op-log tailing, false =
    /// snapshot transfer). Fired on transitions only, not every poll —
    /// the server journals these into its flight recorder.
    std::function<void(bool oplog)> source_switched;
  };

  Replicator(ReplicationOptions options, ServerMetrics& metrics, Hooks hooks);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the background poll thread. Idempotent.
  void Start();
  /// Stops and joins the poll thread. Idempotent; called by ~Replicator.
  void Stop();

  /// One poll cycle (also the test entry point): tail the primary's op
  /// log when possible, otherwise health-check and fetch + install a
  /// snapshot if the primary is ahead. Returns true when new state
  /// arrived (records applied or a snapshot installed). Never throws —
  /// failures land in metrics and stderr and are retried on the next
  /// cycle.
  bool PollOnce();

 private:
  enum class TailOutcome {
    kApplied,       ///< One or more records were applied.
    kInSync,        ///< Nothing to ship; the replica is caught up.
    kFallback,      ///< Tailing cannot proceed; use a snapshot transfer.
    kStalePrimary,  ///< The primary's epoch is older than ours: refuse to
                    ///< tail it AND to install its snapshots.
  };

  TailOutcome TailOplog();
  void Loop();
  /// Notes the current source (1 = op log, 0 = snapshot) and fires the
  /// source_switched hook on transitions.
  void NoteSource(int source);

  ReplicationOptions options_;
  ServerMetrics& metrics_;
  Hooks hooks_;
  Client client_;  // Poll-thread only (PollOnce callers must not overlap).
  std::uint64_t trace_state_ = 0;  ///< Per-poll trace-id xorshift state.
  int last_source_ = -1;           ///< -1 until the first sync completes.

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_REPLICATION_H_
