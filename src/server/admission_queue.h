// Bounded MPMC admission queue: the server's load-shedding point.
// Producers (the I/O thread) never block — a full queue is an immediate
// OVERLOADED rejection. Consumers (workers) block until work arrives or
// the queue is closed for shutdown.
#ifndef KSPIN_SERVER_ADMISSION_QUEUE_H_
#define KSPIN_SERVER_ADMISSION_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace kspin::server {

template <typename T>
class AdmissionQueue {
 public:
  /// `capacity` 0 means "admit nothing" (every TryPush fails) — useful to
  /// force the overload path in tests.
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Non-blocking; false when the queue is full or closed.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed. Returns
  /// nullopt only when closed *and* drained — pending work is always
  /// delivered, which is what makes shutdown graceful.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Rejects future pushes and wakes all poppers; queued items still
  /// drain through Pop().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_ADMISSION_QUEUE_H_
