// Deadline-aware MPMC admission scheduler: the server's load-shedding
// point. Producers (the I/O thread) never block — admission fails
// immediately when the queue is full, the adaptive limit is reached, or
// the request's deadline has already elapsed (doomed work is refused at
// the door instead of queued). Consumers (workers) block until work
// arrives or the queue is closed for shutdown.
//
// Ordering is earliest-deadline-first: the request closest to missing
// its deadline is always dequeued next; requests without a deadline sort
// last among themselves in FIFO order (a monotone sequence number breaks
// ties, so equal deadlines are also FIFO).
//
// Dequeue additionally applies the CoDel variant for request queues
// ("Fail at Scale", ACM Queue 13(8)): while the queue has stayed
// non-empty for a full `codel_interval`, the tolerated sojourn shrinks
// from `codel_interval` to `codel_target`; an item that waited longer is
// handed back flagged `shed` so the worker can fail it fast instead of
// serving stale work. With `codel_target` zero the check is off and the
// queue only orders and bounds.
#ifndef KSPIN_SERVER_ADMISSION_QUEUE_H_
#define KSPIN_SERVER_ADMISSION_QUEUE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace kspin::server {

/// Why TryPush refused a request. Distinguishing the causes matters for
/// metrics and for the client-facing status (expired requests get
/// DEADLINE_EXCEEDED, everything else OVERLOADED).
enum class AdmissionResult {
  kAdmitted,
  kExpired,    ///< Deadline elapsed before admission; never queued.
  kLimited,    ///< Over the adaptive (soft) limit, below the hard bound.
  kQueueFull,  ///< Over the hard capacity bound.
  kClosed,     ///< Shutting down.
};

template <typename T>
class AdmissionQueue {
 public:
  using Clock = std::chrono::steady_clock;

  /// A dequeued item plus its scheduling verdict.
  struct Popped {
    T item;
    /// Time spent queued (push to pop).
    std::chrono::microseconds sojourn{0};
    /// CoDel verdict: the item overstayed the tolerated sojourn while
    /// the queue was congested; the caller should fail it fast.
    bool shed = false;
  };

  /// `capacity` 0 means "admit nothing" (every TryPush fails) — useful
  /// to force the overload path in tests. `codel_target` 0 disables the
  /// sojourn check.
  explicit AdmissionQueue(std::size_t capacity,
                          std::chrono::milliseconds codel_target =
                              std::chrono::milliseconds{0},
                          std::chrono::milliseconds codel_interval =
                              std::chrono::milliseconds{100})
      : capacity_(capacity),
        codel_target_(codel_target),
        codel_interval_(codel_interval),
        limit_(capacity) {}

  /// Non-blocking admission. `deadline` uses Clock::time_point{} for
  /// "none"; an already-expired deadline is rejected without queueing.
  AdmissionResult TryPush(T&& item, Clock::time_point deadline,
                          Clock::time_point now = Clock::now()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return AdmissionResult::kClosed;
      if (deadline != Clock::time_point{} && deadline <= now) {
        return AdmissionResult::kExpired;
      }
      if (entries_.size() >= capacity_) return AdmissionResult::kQueueFull;
      if (entries_.size() >= std::min(limit_, capacity_)) {
        return AdmissionResult::kLimited;
      }
      if (entries_.empty()) last_empty_ = now;
      entries_.push_back(Entry{std::move(item), EffectiveDeadline(deadline),
                               now, next_seq_++});
      std::push_heap(entries_.begin(), entries_.end(), Later);
    }
    cv_.notify_one();
    return AdmissionResult::kAdmitted;
  }

  /// Blocks until an item is available or the queue is closed. Returns
  /// nullopt only when closed *and* drained — pending work is always
  /// delivered, which is what makes shutdown graceful. The earliest
  /// deadline pops first; `shed` carries the CoDel verdict.
  std::optional<Popped> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !entries_.empty(); });
    if (entries_.empty()) return std::nullopt;
    const Clock::time_point now = Clock::now();
    std::pop_heap(entries_.begin(), entries_.end(), Later);
    Entry entry = std::move(entries_.back());
    entries_.pop_back();
    Popped popped;
    popped.item = std::move(entry.item);
    popped.sojourn = std::chrono::duration_cast<std::chrono::microseconds>(
        now - entry.enqueued);
    if (codel_target_.count() > 0) {
      // Congested = the queue never went empty within the last interval;
      // only then does the tolerated sojourn shrink to the target.
      const bool congested = now - last_empty_ >= codel_interval_;
      const auto allowed = congested ? codel_target_ : codel_interval_;
      popped.shed = popped.sojourn > allowed;
    }
    if (entries_.empty()) last_empty_ = now;
    return popped;
  }

  /// Rejects future pushes and wakes all poppers; queued items still
  /// drain through Pop().
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Adaptive admission bound (the AIMD controller's knob): admission
  /// fails with kLimited once the queue holds `limit` items. Clamped to
  /// [1, capacity]; the hard capacity still applies.
  void SetLimit(std::size_t limit) {
    std::lock_guard<std::mutex> lock(mutex_);
    limit_ = std::clamp<std::size_t>(limit, 1, std::max<std::size_t>(
                                                    capacity_, 1));
  }

  std::size_t Limit() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::min(limit_, capacity_);
  }

  std::size_t Size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

 private:
  struct Entry {
    T item;
    Clock::time_point deadline;  ///< Effective; max() when none.
    Clock::time_point enqueued;
    std::uint64_t seq;
  };

  /// No deadline sorts after every real deadline.
  static Clock::time_point EffectiveDeadline(Clock::time_point deadline) {
    return deadline == Clock::time_point{} ? Clock::time_point::max()
                                           : deadline;
  }

  /// Max-heap comparator: true when `a` should pop *later* than `b`
  /// (later deadline, or same deadline but admitted more recently).
  static bool Later(const Entry& a, const Entry& b) {
    if (a.deadline != b.deadline) return a.deadline > b.deadline;
    return a.seq > b.seq;
  }

  const std::size_t capacity_;
  const std::chrono::milliseconds codel_target_;
  const std::chrono::milliseconds codel_interval_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Entry> entries_;  ///< Binary heap ordered by Later.
  std::size_t limit_;           ///< Soft bound; see SetLimit().
  std::uint64_t next_seq_ = 0;
  Clock::time_point last_empty_{};  ///< CoDel congestion reference.
  bool closed_ = false;
};

}  // namespace kspin::server

#endif  // KSPIN_SERVER_ADMISSION_QUEUE_H_
