#include "server/mutation.h"

#include <stdexcept>
#include <thread>

#include "server/wire.h"

namespace kspin::server {

namespace {
// Structural caps: a mutation names a handful of keywords, never
// thousands. Decode rejects anything past these so a corrupt length field
// cannot balloon into a giant allocation.
constexpr std::uint32_t kMaxMutationKeywords = 256;
constexpr std::uint32_t kMaxNameBytes = 4096;
// Keywords are single vocabulary terms. Capping their length (together
// with the counts above) bounds a maximal record near 140 KiB, so any
// logged record always fits a FETCH_OPLOG chunk when replicas tail it.
constexpr std::uint32_t kMaxKeywordBytes = 512;

bool ReadKeywords(PayloadReader& r, std::uint32_t count,
                  std::vector<std::string>* out) {
  if (count > kMaxMutationKeywords) return false;
  out->clear();
  for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
    out->push_back(r.String());
    if (out->back().size() > kMaxKeywordBytes) return false;
  }
  return true;
}
}  // namespace

std::vector<std::uint8_t> EncodeMutationRecord(const MutationRecord& record) {
  PayloadWriter w;
  w.U8(static_cast<std::uint8_t>(record.op));
  w.U64(record.idempotency_key);
  switch (record.op) {
    case MutationOp::kInsert:
      w.U32(record.vertex);
      w.String(record.name);
      w.U32(static_cast<std::uint32_t>(record.add_keywords.size()));
      for (const std::string& kw : record.add_keywords) w.String(kw);
      break;
    case MutationOp::kDelete:
      w.U32(record.object);
      break;
    case MutationOp::kUpdate:
      w.U32(record.object);
      w.U32(static_cast<std::uint32_t>(record.add_keywords.size()));
      for (const std::string& kw : record.add_keywords) w.String(kw);
      w.U32(static_cast<std::uint32_t>(record.remove_keywords.size()));
      for (const std::string& kw : record.remove_keywords) w.String(kw);
      break;
    case MutationOp::kEpochTransition:
      w.U64(record.epoch);
      break;
  }
  return w.Take();
}

bool DecodeMutationRecord(std::span<const std::uint8_t> payload,
                          MutationRecord* record) {
  PayloadReader r(payload);
  const std::uint8_t op = r.U8();
  record->idempotency_key = r.U64();
  switch (op) {
    case static_cast<std::uint8_t>(MutationOp::kInsert): {
      record->op = MutationOp::kInsert;
      record->vertex = r.U32();
      record->name = r.String();
      if (record->name.size() > kMaxNameBytes) return false;
      if (!ReadKeywords(r, r.U32(), &record->add_keywords)) return false;
      break;
    }
    case static_cast<std::uint8_t>(MutationOp::kDelete):
      record->op = MutationOp::kDelete;
      record->object = r.U32();
      break;
    case static_cast<std::uint8_t>(MutationOp::kUpdate): {
      record->op = MutationOp::kUpdate;
      record->object = r.U32();
      if (!ReadKeywords(r, r.U32(), &record->add_keywords)) return false;
      if (!ReadKeywords(r, r.U32(), &record->remove_keywords)) return false;
      break;
    }
    case static_cast<std::uint8_t>(MutationOp::kEpochTransition):
      record->op = MutationOp::kEpochTransition;
      record->epoch = r.U64();
      if (record->epoch == 0) return false;
      break;
    default:
      return false;
  }
  return r.Finished();
}

ObjectId ApplyMutationRecord(PoiService& service,
                             const MutationRecord& record) {
  switch (record.op) {
    case MutationOp::kInsert:
      return service.AddPoi(record.name, record.vertex,
                            record.add_keywords);
    case MutationOp::kDelete:
      service.ClosePoi(record.object);
      return record.object;
    case MutationOp::kUpdate:
      for (const std::string& kw : record.add_keywords) {
        service.TagPoi(record.object, kw);
      }
      for (const std::string& kw : record.remove_keywords) {
        service.UntagPoi(record.object, kw);
      }
      return record.object;
    case MutationOp::kEpochTransition:
      // Epoch bumps change no service state; the caller reads
      // record.epoch and advances its own primary epoch.
      return kInvalidObject;
  }
  throw std::invalid_argument("unknown mutation op");
}

EpochGate::ReadGuard::~ReadGuard() {
  if (gate_ != nullptr) {
    gate_->slots_[slot_].active.fetch_sub(1, std::memory_order_seq_cst);
  }
}

EpochGate::ReadGuard EpochGate::Reader(std::size_t slot_hint) {
  const std::size_t slot = slot_hint % kSlots;
  for (;;) {
    // Announce, then check for a writer (Dekker ordering: both sides use
    // seq_cst, so either the reader sees writer_active_ or the writer
    // sees the slot count — never neither).
    slots_[slot].active.fetch_add(1, std::memory_order_seq_cst);
    if (!writer_active_.load(std::memory_order_seq_cst)) {
      return ReadGuard(this, slot);
    }
    // A writer is applying: back out and wait for the window to close.
    slots_[slot].active.fetch_sub(1, std::memory_order_seq_cst);
    while (writer_active_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void EpochGate::BeginApply() {
  writer_active_.store(true, std::memory_order_seq_cst);
  for (Slot& slot : slots_) {
    while (slot.active.load(std::memory_order_seq_cst) != 0) {
      std::this_thread::yield();
    }
  }
}

void EpochGate::EndApply() {
  epoch_.fetch_add(1, std::memory_order_release);
  writer_active_.store(false, std::memory_order_seq_cst);
}

const IdempotencyCache::Result* IdempotencyCache::Find(
    std::uint64_t key) const {
  if (key == 0) return nullptr;
  const auto it = map_.find(key);
  return it == map_.end() ? nullptr : &it->second;
}

void IdempotencyCache::Remember(std::uint64_t key, Result result) {
  if (key == 0 || capacity_ == 0) return;
  const auto [it, inserted] = map_.insert_or_assign(key, result);
  if (!inserted) return;  // Refreshed an existing key; FIFO entry stands.
  if (fifo_.size() < capacity_) {
    fifo_.push_back(key);
    return;
  }
  // Ring is full: evict the oldest key and reuse its slot.
  const std::uint64_t evicted = fifo_[fifo_head_];
  map_.erase(evicted);
  fifo_[fifo_head_] = key;
  fifo_head_ = (fifo_head_ + 1) % capacity_;
}

}  // namespace kspin::server
