// The kspin wire protocol: length-prefixed binary frames over TCP.
//
// Every message — request or response — is one frame:
//
//   offset size  field
//   0      4     magic 0x4B53504E ("KSPN" read as big-endian bytes)
//   4      1     protocol version (currently 2; servers accept >= 1 and
//                echo the request's version in the response)
//   5      1     opcode
//   6      2     reserved (must be 0)
//   8      8     request id (echoed verbatim in the response)
//   16     4     deadline_ms (requests: relative time budget; 0 = none)
//   20     4     payload size N (<= kMaxPayloadSize)
//   24     N     payload
//
// All integers are little-endian. Response payloads always start with one
// status byte (StatusCode); kOk is followed by the opcode's result body,
// anything else by a human-readable error string. docs/protocol.md is the
// normative spec; this header and it must change together.
//
// Version 5 repurposes the reserved u16 at offset 6 as a flags field on
// v5+ frames (it stays must-be-zero on v1-4 frames). The only defined
// flag, kFrameFlagTraceContext, marks a 17-byte trace trailer (u64
// trace_id, u64 parent_span_id, u8 trace flags) appended AFTER the
// request payload. The trailer is stripped before the opcode body is
// decoded, so v<=4 bodies are byte-identical and body codecs never see
// it.
#ifndef KSPIN_SERVER_WIRE_H_
#define KSPIN_SERVER_WIRE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace kspin::server {

inline constexpr std::uint32_t kMagic = 0x4B53504E;
/// Current protocol version. Version 2 added trailing latency-histogram
/// arrays to the STATS response and the METRICS opcode. Version 3 added
/// the live-mutation opcodes (INSERT_DOC / DELETE_DOC / UPDATE_DOC) and
/// FETCH_OPLOG for log-tailing replication; a later additive v3 revision
/// appended epoch fields to HEALTH / FETCH_OPLOG / mutation bodies and
/// the PROMOTE opcode + STALE_EPOCH status (decoders tolerate the short
/// pre-epoch bodies). Frames from versions 1 and 2 are still accepted
/// and answered with same-version bodies. Version 4 added the overload
/// signals: OVERLOADED error bodies may carry a trailing u32
/// retry-after hint (tolerant trailer, any version), and v4+ search
/// responses append a trailing flags byte (kSearchFlagDegraded) that
/// pre-v4 decoders would reject — hence the bump. Version 5 turns the
/// reserved header u16 into a flags field and defines
/// kFrameFlagTraceContext: a 17-byte trace trailer after the request
/// payload carrying (trace_id, parent_span_id, trace flags), plus the
/// DUMP_DIAG opcode for flight-recorder scrapes.
inline constexpr std::uint8_t kProtocolVersion = 5;
/// Oldest version a server still speaks.
inline constexpr std::uint8_t kMinProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
inline constexpr std::uint32_t kMaxPayloadSize = 1u << 20;

/// Frame-header flags (offset 6, u16 LE). Valid on v5+ frames only;
/// v1-4 senders must leave the field zero and v1-4 receivers reject
/// nonzero values (it was reserved).
inline constexpr std::uint16_t kFrameFlagTraceContext = 0x0001;

/// The optional per-request trace trailer (v5+, kFrameFlagTraceContext).
/// `trace_id` names the end-to-end request; `parent_span_id` is the
/// caller's span (0 = root); `flags` bit 0 = sampled-for-file-sink hint.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint8_t flags = 0;

  bool valid() const { return trace_id != 0; }
};

inline constexpr std::uint8_t kTraceFlagSampled = 0x01;
inline constexpr std::size_t kTraceTrailerSize = 17;

/// Appends the 17-byte trailer to an already-encoded request payload.
void AppendTraceTrailer(std::vector<std::uint8_t>* payload,
                        const TraceContext& context);

/// Splits a request payload into body and trace trailer according to the
/// frame flags: with kFrameFlagTraceContext set the last 17 bytes are the
/// trailer (false when the payload is shorter than that); without it the
/// whole payload is body and `*context` is cleared.
bool SplitTraceTrailer(std::span<const std::uint8_t> payload,
                       std::uint16_t frame_flags,
                       std::span<const std::uint8_t>* body,
                       TraceContext* context);

/// Request opcodes. Responses reuse the request's opcode.
enum class Opcode : std::uint8_t {
  /// Server-to-client only: final frame before the server closes a
  /// connection over a fatal stream error (bad magic/version, oversized
  /// frame). Carries an error status payload.
  kError = 0x00,
  kPing = 0x01,           ///< Liveness probe; empty payload both ways.
  kStats = 0x02,          ///< Server metrics snapshot.
  kHealth = 0x03,         ///< Role, snapshot sequence, uptime, queue depth.
  kMetrics = 0x04,        ///< Prometheus 0.0.4 text exposition (v2+).
  kDumpDiag = 0x05,       ///< Flight-recorder dump: spans + control-plane
                          ///< events as JSON lines (v5+).
  kSearchBoolean = 0x10,  ///< Boolean kNN over an and/or query string.
  kSearchRanked = 0x11,   ///< Relevance-ranked top-k.
  kPoiAdd = 0x20,         ///< Register a POI.
  kPoiClose = 0x21,       ///< Remove a POI from search.
  kPoiTag = 0x22,         ///< Add one keyword tag.
  kPoiUntag = 0x23,       ///< Remove one keyword tag.
  kInsertDoc = 0x24,      ///< Logged insert with idempotency key (v3).
  kDeleteDoc = 0x25,      ///< Logged delete with idempotency key (v3).
  kUpdateDoc = 0x26,      ///< Logged tag add/remove batch (v3).
  kSnapshot = 0x30,       ///< Write a crash-safe snapshot to disk.
  kReload = 0x31,         ///< Replace serving state from the newest valid
                          ///< snapshot on disk.
  kFetchSnapshot = 0x32,  ///< Stream a snapshot file in chunks (replication).
  kFetchOplog = 0x33,     ///< Tail op-log records from a sequence (v3).
  kPromote = 0x40,        ///< Admin: flip a replica to primary, bump the
                          ///< primary epoch (epoch-fenced failover).
};

/// First byte of every response payload.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kMalformedPayload = 1,   ///< Payload did not decode against the opcode.
  kBadQuery = 2,           ///< Query/argument rejected (syntax, bad id...).
  kOverloaded = 3,         ///< Admission queue full; retry later.
  kDeadlineExceeded = 4,   ///< Deadline passed before or during execution.
  kInternal = 5,           ///< Unexpected server-side failure.
  kUnsupported = 6,        ///< Unknown opcode or protocol version.
  kNotPrimary = 7,         ///< Write sent to a replica; the message is the
                           ///< primary's "host:port" — redirect there.
  kStaleEpoch = 8,         ///< Write sent to a fenced ex-primary: a higher
                           ///< primary epoch exists. Re-discover the
                           ///< primary (HEALTH) and retry there.
};

/// Human-readable status name (metrics, logs, CLI output).
std::string_view StatusName(StatusCode status);

/// Decoded frame header (excluding magic, which is validated away).
struct FrameHeader {
  std::uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  /// v5+ frame flags (kFrameFlag*). Always 0 on decoded v1-4 frames and
  /// ignored by EncodeFrame when version < 5 (the field was reserved).
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t deadline_ms = 0;
  std::uint32_t payload_size = 0;
};

/// Outcome of TryDecodeFrame. Anything but kNeedMore / kFrame is a fatal
/// stream error: the connection cannot be resynchronized and must close.
enum class DecodeResult {
  kNeedMore,    ///< Buffer holds a frame prefix; read more bytes.
  kFrame,       ///< A complete frame was decoded.
  kBadMagic,    ///< Stream does not start with kMagic.
  kBadVersion,  ///< Unsupported protocol version.
  kTooLarge,    ///< Declared payload exceeds kMaxPayloadSize.
};

/// Parses the frame at the start of `buffer` without consuming it. On
/// kFrame, `*header` is filled and `*frame_size` is the total byte count
/// (header + payload) to consume. On kBadVersion the header (including
/// request id) is still filled so an error can be addressed to the sender.
/// Never reads past `buffer`.
DecodeResult TryDecodeFrame(std::span<const std::uint8_t> buffer,
                            FrameHeader* header, std::size_t* frame_size);

/// Serializes a frame: header (with payload_size taken from `payload`)
/// followed by the payload bytes.
std::vector<std::uint8_t> EncodeFrame(const FrameHeader& header,
                                      std::span<const std::uint8_t> payload);

// ----- Payload primitives --------------------------------------------------

/// Append-only little-endian payload builder.
class PayloadWriter {
 public:
  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void U16(std::uint16_t v) { AppendLe(v); }
  void U32(std::uint32_t v) { AppendLe(v); }
  void U64(std::uint64_t v) { AppendLe(v); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    U64(bits);
  }
  /// u32 length prefix + raw bytes.
  void String(std::string_view s);

  const std::vector<std::uint8_t>& Bytes() const { return buffer_; }
  std::vector<std::uint8_t> Take() { return std::move(buffer_); }

 private:
  template <typename T>
  void AppendLe(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked little-endian payload cursor. A read past the end (or a
/// string longer than the remaining bytes) latches !ok(); subsequent reads
/// return zero values. Check ok() once after decoding a payload.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t U8() { return ReadLe<std::uint8_t>(); }
  std::uint16_t U16() { return ReadLe<std::uint16_t>(); }
  std::uint32_t U32() { return ReadLe<std::uint32_t>(); }
  std::uint64_t U64() { return ReadLe<std::uint64_t>(); }
  double F64() {
    const std::uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string String();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  /// ok() and the whole payload was consumed (trailing garbage rejected).
  bool Finished() const { return ok_ && AtEnd(); }

 private:
  template <typename T>
  T ReadLe() {
    if (!ok_ || data_.size() - pos_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ----- Request / response bodies ------------------------------------------

/// kSearchBoolean / kSearchRanked request body.
struct SearchRequest {
  VertexId vertex = kInvalidVertex;
  std::uint32_t k = 0;
  std::string query;
};

/// kPoiAdd request body.
struct PoiAddRequest {
  VertexId vertex = kInvalidVertex;
  std::string name;
  std::vector<std::string> keywords;
};

/// kPoiTag / kPoiUntag request body.
struct PoiTagRequest {
  ObjectId object = kInvalidObject;
  std::string keyword;
};

/// One search hit on the wire (kOk body: u32 count, then count of these).
struct WireResult {
  ObjectId object = kInvalidObject;
  Distance travel_time = kInfDistance;
  double score = 0.0;
  std::string name;
};

/// kHealth kOk response body. The epoch section (applied_sequence +
/// primary_epoch) is appended by epoch-aware servers; the decoder
/// tolerates its absence (older peers), leaving both fields 0.
struct HealthInfo {
  std::uint8_t role = 0;  ///< 0 = primary, 1 = replica.
  std::uint64_t snapshot_sequence = 0;  ///< Newest local snapshot (0 = none).
  std::uint64_t uptime_ms = 0;
  std::uint64_t queue_depth = 0;
  std::string primary_address;  ///< "host:port" on replicas, empty on primary.
  std::uint64_t applied_sequence = 0;  ///< Highest applied op-log sequence.
  std::uint64_t primary_epoch = 0;     ///< Highest primary epoch known here.
};

/// kFetchSnapshot request body. The replica drives the transfer: it asks
/// for byte ranges, so a retried chunk is idempotent. sequence 0 with
/// offset 0 means "newest valid snapshot"; the response pins the concrete
/// sequence, which the replica echoes on subsequent chunks.
struct FetchSnapshotRequest {
  std::uint64_t sequence = 0;  ///< 0 = newest valid (offset 0 only).
  std::uint64_t offset = 0;    ///< Byte offset into the snapshot file.
  std::uint32_t max_bytes = 0; ///< Chunk size cap; 0 = server default.
};

/// kFetchSnapshot kOk response body: one chunk of the snapshot file.
/// `bytes` is empty only when offset == total_size (zero-length tail).
struct SnapshotChunk {
  std::uint64_t sequence = 0;    ///< Snapshot being streamed.
  std::uint64_t total_size = 0;  ///< Whole-file byte count.
  std::uint64_t offset = 0;      ///< Offset of this chunk.
  std::string bytes;             ///< Chunk payload.
};

/// Largest chunk a FETCH_SNAPSHOT response will carry: the frame payload
/// budget minus the chunk envelope (status + sequence/total/offset/crc +
/// string length prefix).
inline constexpr std::uint32_t kMaxSnapshotChunkBytes = kMaxPayloadSize - 64;

// ----- Live mutations (v3) -------------------------------------------------

/// kInsertDoc request body (v3): register a POI through the durable write
/// path. `idempotency_key` is a client-chosen retry token (0 = none); a
/// resend with the same key returns the original result without applying
/// twice, so retrying clients may treat the operation as idempotent.
struct InsertDocRequest {
  std::uint64_t idempotency_key = 0;
  VertexId vertex = kInvalidVertex;
  std::string name;
  std::vector<std::string> keywords;
  /// Highest primary epoch the client has observed (0 = unknown). A
  /// primary seeing a higher epoch than its own is fenced: it rejects
  /// this and all later writes with kStaleEpoch. Trailing/optional on
  /// the wire.
  std::uint64_t fence_epoch = 0;
};

/// kDeleteDoc request body (v3).
struct DeleteDocRequest {
  std::uint64_t idempotency_key = 0;
  ObjectId object = kInvalidObject;
  std::uint64_t fence_epoch = 0;  ///< See InsertDocRequest::fence_epoch.
};

/// kUpdateDoc request body (v3): add and/or remove keyword tags on an
/// existing POI as one logged operation.
struct UpdateDocRequest {
  std::uint64_t idempotency_key = 0;
  ObjectId object = kInvalidObject;
  std::vector<std::string> add_keywords;
  std::vector<std::string> remove_keywords;
  std::uint64_t fence_epoch = 0;  ///< See InsertDocRequest::fence_epoch.
};

/// kInsertDoc / kDeleteDoc / kUpdateDoc kOk response body: the op-log
/// sequence the mutation was logged under and the affected object id
/// (newly assigned for inserts). `primary_epoch` (trailing/optional) lets
/// clients learn promotions from acks.
struct MutationReply {
  std::uint64_t sequence = 0;
  ObjectId object = kInvalidObject;
  std::uint64_t primary_epoch = 0;
};

/// kFetchOplog request body (v3): a replica asks for records *after* its
/// applied sequence. The server caps the batch at max_bytes of payload
/// (0 = server default). `requester_epoch` (trailing/optional) is the
/// highest epoch the requester knows; a primary seeing a higher epoch
/// than its own latches itself fenced.
struct FetchOplogRequest {
  std::uint64_t from_sequence = 0;
  std::uint32_t max_bytes = 0;
  std::uint64_t requester_epoch = 0;
};

/// One op-log record in a FETCH_OPLOG chunk. `payload` is the encoded
/// MutationRecord exactly as stored in the primary's log.
struct OplogWireRecord {
  std::uint64_t sequence = 0;
  std::string payload;
};

/// kFetchOplog kOk response body. `truncated` means the requested range
/// predates the oldest retained record — the replica must fall back to a
/// snapshot transfer. `last_sequence` is the primary's newest logged
/// sequence (an empty, non-truncated chunk with from_sequence ==
/// last_sequence means the replica is in sync).
struct OplogChunk {
  std::uint8_t truncated = 0;
  std::uint64_t last_sequence = 0;
  std::uint64_t oldest_sequence = 0;
  std::vector<OplogWireRecord> records;
  /// Serving side's primary epoch and the op-log sequence of the record
  /// that opened it (0 = epoch never changed / pre-epoch peer). A replica
  /// whose applied sequence reaches past `epoch_boundary_sequence` of a
  /// higher-epoch primary has divergent records to quarantine. Trailing/
  /// optional on the wire.
  std::uint64_t primary_epoch = 0;
  std::uint64_t epoch_boundary_sequence = 0;
};

/// kPromote request body: admin-gated replica→primary flip. The promotion
/// is rejected with kBadQuery when the replica's applied sequence is below
/// `min_applied_sequence` (operator guard against promoting a lagging
/// replica; 0 = no guard).
struct PromoteRequest {
  std::uint64_t min_applied_sequence = 0;
};

/// kPromote kOk response body.
struct PromoteReply {
  std::uint64_t epoch = 0;             ///< Primary epoch after the flip.
  std::uint64_t applied_sequence = 0;  ///< Applied op-log sequence at flip.
  std::uint8_t role = 0;               ///< Role after the call (0 = primary).
};

std::vector<std::uint8_t> EncodeSearchRequest(const SearchRequest& request);
bool DecodeSearchRequest(std::span<const std::uint8_t> payload,
                         SearchRequest* request);

std::vector<std::uint8_t> EncodePoiAddRequest(const PoiAddRequest& request);
bool DecodePoiAddRequest(std::span<const std::uint8_t> payload,
                         PoiAddRequest* request);

std::vector<std::uint8_t> EncodePoiTagRequest(const PoiTagRequest& request);
bool DecodePoiTagRequest(std::span<const std::uint8_t> payload,
                         PoiTagRequest* request);

std::vector<std::uint8_t> EncodeFetchSnapshotRequest(
    const FetchSnapshotRequest& request);
bool DecodeFetchSnapshotRequest(std::span<const std::uint8_t> payload,
                                FetchSnapshotRequest* request);

std::vector<std::uint8_t> EncodeInsertDocRequest(
    const InsertDocRequest& request);
bool DecodeInsertDocRequest(std::span<const std::uint8_t> payload,
                            InsertDocRequest* request);

std::vector<std::uint8_t> EncodeDeleteDocRequest(
    const DeleteDocRequest& request);
bool DecodeDeleteDocRequest(std::span<const std::uint8_t> payload,
                            DeleteDocRequest* request);

std::vector<std::uint8_t> EncodeUpdateDocRequest(
    const UpdateDocRequest& request);
bool DecodeUpdateDocRequest(std::span<const std::uint8_t> payload,
                            UpdateDocRequest* request);

std::vector<std::uint8_t> EncodeFetchOplogRequest(
    const FetchOplogRequest& request);
bool DecodeFetchOplogRequest(std::span<const std::uint8_t> payload,
                             FetchOplogRequest* request);

std::vector<std::uint8_t> EncodePromoteRequest(const PromoteRequest& request);
bool DecodePromoteRequest(std::span<const std::uint8_t> payload,
                          PromoteRequest* request);

/// Response bodies. Encode* produce the full response payload including
/// the status byte; Decode* expect the status byte already consumed.
std::vector<std::uint8_t> EncodeErrorResponse(StatusCode status,
                                              std::string_view message);
/// Error body with a trailing u32 retry-after hint in milliseconds (v4,
/// "Overload control & degradation"). The trailer is tolerant: decoders
/// that stop after the message string keep working, and
/// ParseReplyEnvelope-style decoders read it when present. Carried on
/// OVERLOADED replies; 0 suppresses the trailer.
std::vector<std::uint8_t> EncodeErrorResponse(StatusCode status,
                                              std::string_view message,
                                              std::uint32_t retry_after_ms);
std::vector<std::uint8_t> EncodeOkResponse();  // Status byte only.

/// Search-response flags byte (v4+ trailing field).
inline constexpr std::uint8_t kSearchFlagDegraded = 0x01;

std::vector<std::uint8_t> EncodeSearchResponse(
    std::span<const WireResult> results);
/// v4-aware encoder: appends the flags byte only when the request's
/// `version` is >= 4 — pre-v4 decoders reject trailing bytes, so the
/// trailer must be version-gated (unlike the error-body hint above).
std::vector<std::uint8_t> EncodeSearchResponse(
    std::span<const WireResult> results, std::uint8_t flags,
    std::uint8_t version);
bool DecodeSearchResponse(PayloadReader& reader,
                          std::vector<WireResult>* results);
/// Tolerant v4 decoder: `*flags` receives the trailing flags byte when
/// present, 0 on a pre-v4 body.
bool DecodeSearchResponse(PayloadReader& reader,
                          std::vector<WireResult>* results,
                          std::uint8_t* flags);
std::vector<std::uint8_t> EncodeObjectIdResponse(ObjectId id);
/// kSnapshot / kReload kOk body: u64 snapshot sequence + file path.
std::vector<std::uint8_t> EncodeSnapshotResponse(std::uint64_t sequence,
                                                 std::string_view path);
bool DecodeSnapshotResponse(PayloadReader& reader, std::uint64_t* sequence,
                            std::string* path);
/// One raw histogram on the wire (STATS v2 trailing section): name, total
/// count, sum of recorded microseconds, and the per-bucket counts (bucket
/// i covers [2^i, 2^(i+1)) us; see LatencyHistogram).
struct WireHistogram {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum_micros = 0;
  std::vector<std::uint64_t> buckets;
};

/// Version-1 STATS body: u32 pair count + (string, u64) pairs.
std::vector<std::uint8_t> EncodeStatsResponse(
    std::span<const std::pair<std::string, std::uint64_t>> stats);
/// Version-2 STATS body: the v1 pairs followed by u32 histogram count +
/// histograms (name, u64 count, u64 sum_micros, u32 buckets, u64 each).
std::vector<std::uint8_t> EncodeStatsResponse(
    std::span<const std::pair<std::string, std::uint64_t>> stats,
    std::span<const WireHistogram> histograms);
/// Decodes both body versions: a payload ending after the pairs is v1
/// (histograms, if non-null, is left empty); trailing bytes must be the
/// v2 histogram section.
bool DecodeStatsResponse(
    PayloadReader& reader,
    std::vector<std::pair<std::string, std::uint64_t>>* stats,
    std::vector<WireHistogram>* histograms = nullptr);
/// kMetrics kOk body: one string holding the Prometheus text exposition.
std::vector<std::uint8_t> EncodeMetricsResponse(std::string_view text);
bool DecodeMetricsResponse(PayloadReader& reader, std::string* text);
/// kDumpDiag kOk body: one string of flight-recorder JSON lines (same
/// single-string shape as kMetrics; see docs/observability.md).
std::vector<std::uint8_t> EncodeDiagResponse(std::string_view text);
bool DecodeDiagResponse(PayloadReader& reader, std::string* text);
std::vector<std::uint8_t> EncodeHealthResponse(const HealthInfo& info);
bool DecodeHealthResponse(PayloadReader& reader, HealthInfo* info);
/// The chunk response carries a CRC32C of the chunk bytes; Decode verifies
/// it and fails on mismatch, so a flipped bit inside a chunk is caught at
/// the frame level (the replica additionally validates the reassembled
/// file end-to-end before installing).
std::vector<std::uint8_t> EncodeSnapshotChunkResponse(
    const SnapshotChunk& chunk);
bool DecodeSnapshotChunkResponse(PayloadReader& reader, SnapshotChunk* chunk);
std::vector<std::uint8_t> EncodeMutationResponse(const MutationReply& reply);
bool DecodeMutationResponse(PayloadReader& reader, MutationReply* reply);
/// Each record in the chunk carries a CRC32C of its payload; Decode
/// verifies every one and fails on mismatch, so a flipped bit inside a
/// shipped record is caught at the frame level (the replica additionally
/// re-validates when appending to its own log).
std::vector<std::uint8_t> EncodeOplogChunkResponse(const OplogChunk& chunk);
bool DecodeOplogChunkResponse(PayloadReader& reader, OplogChunk* chunk);
std::vector<std::uint8_t> EncodePromoteResponse(const PromoteReply& reply);
bool DecodePromoteResponse(PayloadReader& reader, PromoteReply* reply);

}  // namespace kspin::server

#endif  // KSPIN_SERVER_WIRE_H_
