#include "server/overload.h"

namespace kspin::server {
namespace {

double MeanMicros(const HistogramSnapshot& h) {
  if (h.count == 0) return 0.0;
  return static_cast<double>(h.sum_micros) / static_cast<double>(h.count);
}

}  // namespace

OverloadDecision OverloadController::Tick(
    const HistogramSnapshot& query_latency,
    const HistogramSnapshot& queue_sojourn, std::size_t queue_depth) {
  OverloadDecision decision;
  const HistogramSnapshot delta = Delta(query_latency, previous_latency_);
  const HistogramSnapshot sojourn_delta =
      Delta(queue_sojourn, previous_sojourn_);
  const std::uint64_t query_p99 =
      delta.count > 0 ? delta.PercentileMicros(0.99) : 0;
  const std::uint64_t sojourn_p99 =
      sojourn_delta.count > 0 ? sojourn_delta.PercentileMicros(0.99) : 0;
  decision.p99_us = std::max(query_p99, sojourn_p99);
  previous_latency_ = query_latency;
  previous_sojourn_ = queue_sojourn;
  const std::uint64_t slo_us =
      static_cast<std::uint64_t>(options_.latency_slo_ms) * 1000;
  decision.slo_violated = limiter_.Observe(decision.p99_us, slo_us);
  decision.admission_limit = limiter_.limit();
  const bool was_active = brownout_.active();
  decision.brownout = brownout_.Update(decision.slo_violated);
  decision.brownout_entered = decision.brownout && !was_active;
  decision.retry_after_ms =
      RetryAfterMs(queue_depth, MeanMicros(delta), decision.brownout);
  return decision;
}

std::uint32_t OverloadController::RetryAfterMs(std::size_t queue_depth,
                                               double mean_us,
                                               bool brownout) const {
  if (options_.retry_after_ms > 0) return options_.retry_after_ms;
  if (mean_us <= 0.0) mean_us = 1000.0;  // No samples yet: assume 1 ms.
  double drain_ms =
      static_cast<double>(queue_depth) * mean_us / 1000.0 / workers_;
  if (brownout) drain_ms *= 2.0;
  const double floor_ms =
      static_cast<double>(std::max<std::uint32_t>(options_.tick_interval_ms, 1));
  return static_cast<std::uint32_t>(std::clamp(drain_ms, floor_ms, 5000.0));
}

HistogramSnapshot OverloadController::Delta(
    const HistogramSnapshot& current, const HistogramSnapshot& previous) {
  HistogramSnapshot delta;
  delta.count = current.count - previous.count;
  delta.sum_micros = current.sum_micros - previous.sum_micros;
  for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    delta.buckets[i] = current.buckets[i] - previous.buckets[i];
  }
  return delta;
}

}  // namespace kspin::server
