#include "server/oplog.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "io/checksum.h"

namespace kspin::server {
namespace {

constexpr char kOplogMagic[8] = {'K', 'S', 'O', 'P', 'L', 'O', 'G', '1'};
constexpr char kOplogPrefix[] = "oplog-";
constexpr char kOplogSuffix[] = ".log";
constexpr char kTempSuffix[] = ".tmp";
constexpr std::size_t kSegmentHeaderBytes = 8 + 8;
constexpr std::size_t kRecordHeaderBytes = 4 + 4 + 8;
// A record larger than this is structurally invalid: nothing on the apply
// path encodes anywhere near it, so a giant length field means corruption.
constexpr std::uint32_t kMaxRecordPayload = 4u << 20;

void PutLe64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void PutLe32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t GetLe64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[i]} << (8 * i);
  return v;
}

std::uint32_t GetLe32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[i]} << (8 * i);
  return v;
}

// CRC of one record: the sequence (little-endian) chained with the payload.
std::uint32_t RecordCrc(std::uint64_t sequence,
                        std::span<const std::uint8_t> payload) {
  std::uint8_t seq_le[8];
  PutLe64(seq_le, sequence);
  const std::uint32_t seed = io::Crc32c(seq_le, sizeof seq_le);
  return io::Crc32c(payload.data(), payload.size(), seed);
}

bool WriteAllFd(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// The snapshot layer's fsync helpers are file-local, so the log carries
// its own (returning false instead of throwing: the append path reports
// failure through its return value).
bool FsyncFdQuiet(int fd) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

bool FsyncDirQuiet(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = FsyncFdQuiet(fd);
  ::close(fd);
  return ok;
}

struct SegmentScan {
  std::uint64_t first_sequence = 0;  ///< From the header (0 = bad header).
  std::uint64_t last_sequence = 0;   ///< 0 when the segment holds no record.
  std::uint64_t valid_bytes = 0;     ///< Header + every valid record.
  bool corrupt_tail = false;
  std::string detail;
  std::vector<OplogRecord> records;  ///< Filled only when collect is set.
};

// Reads one segment file, validating header and records; stops at the
// first invalid record. `expect_first` (nonzero) pins the header's first
// sequence (continuity across segments). Records with sequence >
// from_sequence are collected when `collect` is set. Returns false when
// the scan ended at damage rather than the genuine end of the segment.
bool ScanSegment(const std::string& path, std::uint64_t expect_first,
                 bool collect, std::uint64_t from_sequence,
                 SegmentScan* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out->detail = "cannot open " + path;
    out->corrupt_tail = true;
    return false;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    out->detail = "read failed for " + path;
    out->corrupt_tail = true;
    return false;
  }
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  if (bytes.size() < kSegmentHeaderBytes ||
      std::memcmp(data, kOplogMagic, 8) != 0) {
    out->detail = "bad segment header in " + path;
    out->corrupt_tail = true;
    return false;
  }
  out->first_sequence = GetLe64(data + 8);
  if (expect_first != 0 && out->first_sequence != expect_first) {
    out->detail = "segment " + path + " starts at sequence " +
                  std::to_string(out->first_sequence) + ", expected " +
                  std::to_string(expect_first);
    out->corrupt_tail = true;
    return false;
  }
  std::size_t pos = kSegmentHeaderBytes;
  std::uint64_t expect_seq = out->first_sequence;
  out->valid_bytes = pos;
  while (pos + kRecordHeaderBytes <= bytes.size()) {
    const std::uint32_t size = GetLe32(data + pos);
    const std::uint32_t crc = GetLe32(data + pos + 4);
    const std::uint64_t seq = GetLe64(data + pos + 8);
    if (size > kMaxRecordPayload ||
        pos + kRecordHeaderBytes + size > bytes.size()) {
      // A record running past EOF is a torn tail from a crash; an absurd
      // length field is bit rot. Both end the valid prefix here.
      out->corrupt_tail = true;
      out->detail = "torn or oversized record at byte " +
                    std::to_string(pos) + " of " + path;
      break;
    }
    const std::span<const std::uint8_t> payload(
        data + pos + kRecordHeaderBytes, size);
    if (RecordCrc(seq, payload) != crc) {
      out->corrupt_tail = true;
      out->detail = "record checksum mismatch at byte " +
                    std::to_string(pos) + " of " + path;
      break;
    }
    if (seq != expect_seq) {
      out->corrupt_tail = true;
      out->detail = "sequence discontinuity at byte " + std::to_string(pos) +
                    " of " + path + " (got " + std::to_string(seq) +
                    ", expected " + std::to_string(expect_seq) + ")";
      break;
    }
    if (collect && seq > from_sequence) {
      out->records.push_back(
          OplogRecord{seq, {payload.begin(), payload.end()}});
    }
    pos += kRecordHeaderBytes + size;
    out->valid_bytes = pos;
    out->last_sequence = seq;
    ++expect_seq;
  }
  if (!out->corrupt_tail && pos != bytes.size()) {
    // Trailing bytes too short for a record header: torn tail.
    out->corrupt_tail = true;
    out->detail = "truncated record header at byte " + std::to_string(pos) +
                  " of " + path;
  }
  return !out->corrupt_tail;
}

}  // namespace

std::string OplogSegmentFileName(std::uint64_t first_sequence) {
  char name[64];
  std::snprintf(name, sizeof name, "%s%06llu%s", kOplogPrefix,
                static_cast<unsigned long long>(first_sequence),
                kOplogSuffix);
  return name;
}

std::vector<std::pair<std::uint64_t, std::string>> FindOplogSegments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    const std::size_t prefix_len = sizeof(kOplogPrefix) - 1;
    const std::size_t suffix_len = sizeof(kOplogSuffix) - 1;
    if (name.size() <= prefix_len + suffix_len) continue;
    if (name.compare(0, prefix_len, kOplogPrefix) != 0) continue;
    if (name.compare(name.size() - suffix_len, suffix_len, kOplogSuffix) !=
        0) {
      continue;
    }
    const char* digits = name.data() + prefix_len;
    const char* digits_end = name.data() + name.size() - suffix_len;
    std::uint64_t seq = 0;
    const auto [ptr, err] = std::from_chars(digits, digits_end, seq);
    if (err != std::errc() || ptr != digits_end) continue;
    out.emplace_back(seq, entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

OplogReplayResult ReplayOplog(
    const std::string& dir, std::uint64_t from_sequence,
    const std::function<void(const OplogRecord&)>& apply) {
  OplogReplayResult result;
  if (dir.empty()) return result;
  const auto segments = FindOplogSegments(dir);
  std::uint64_t expect_first = 0;
  for (const auto& [first_seq, path] : segments) {
    SegmentScan scan;
    const bool clean =
        ScanSegment(path, expect_first, /*collect=*/true, from_sequence,
                    &scan);
    for (const OplogRecord& record : scan.records) {
      apply(record);
      ++result.records_applied;
    }
    if (scan.last_sequence != 0) result.last_sequence = scan.last_sequence;
    if (!clean) {
      result.stopped_at_corruption = true;
      result.corruption_detail = scan.detail;
      break;  // Everything after a bad record is unreachable history.
    }
    expect_first = scan.last_sequence == 0 ? scan.first_sequence
                                           : scan.last_sequence + 1;
  }
  return result;
}

Oplog::Oplog(OplogOptions options) : options_(std::move(options)) {}

Oplog::~Oplog() { Close(); }

bool Oplog::Crash(OplogPhase phase) {
  if (options_.hooks.on_phase && !options_.hooks.on_phase(phase)) {
    crashed_ = true;
    return true;
  }
  return false;
}

bool Oplog::Open(std::uint64_t next_sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_sequence_ = next_sequence > 0 ? next_sequence - 1 : 0;
  if (!Enabled()) {
    durable_sequence_ = appended_sequence_ = last_sequence_;
    return true;
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
  // Remove stray temp files from a crashed rotation.
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    const std::size_t tmp_len = sizeof(kTempSuffix) - 1;
    if (name.size() > tmp_len &&
        name.compare(name.size() - tmp_len, tmp_len, kTempSuffix) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
  const auto segments = FindOplogSegments(options_.dir);
  std::uint64_t expect_first = 0;
  std::uint64_t last_valid = 0;
  oldest_sequence_ = 0;
  active_path_.clear();
  bool drop_rest = false;
  for (const auto& [first_seq, path] : segments) {
    if (drop_rest) {
      // Unreachable history beyond a damaged segment.
      std::filesystem::remove(path, ec);
      continue;
    }
    SegmentScan scan;
    const bool clean =
        ScanSegment(path, expect_first, /*collect=*/false, 0, &scan);
    if (scan.valid_bytes < kSegmentHeaderBytes) {
      // Header never made it to disk: the file holds nothing recoverable.
      std::filesystem::remove(path, ec);
      drop_rest = true;
      continue;
    }
    if (oldest_sequence_ == 0 && scan.last_sequence != 0) {
      oldest_sequence_ = scan.first_sequence;
    }
    if (scan.last_sequence != 0) last_valid = scan.last_sequence;
    active_path_ = path;
    active_first_sequence_ = scan.first_sequence;
    active_bytes_ = scan.valid_bytes;
    if (!clean) {
      // Truncate the torn/corrupt tail away so the writer resumes on a
      // fully valid prefix.
      std::filesystem::resize_file(path, scan.valid_bytes, ec);
      if (ec) return false;
      drop_rest = true;
      continue;
    }
    expect_first = scan.last_sequence == 0 ? scan.first_sequence
                                           : scan.last_sequence + 1;
  }
  last_sequence_ = std::max(last_valid, last_sequence_);
  durable_sequence_ = appended_sequence_ = last_sequence_;
  if (active_path_.empty()) {
    if (!CreateSegmentLocked(last_sequence_ + 1)) return false;
  }
  return OpenSegmentForAppend(active_path_, active_bytes_);
}

bool Oplog::CreateSegmentLocked(std::uint64_t first_sequence) {
  const std::string path =
      options_.dir + "/" + OplogSegmentFileName(first_sequence);
  std::uint8_t header[kSegmentHeaderBytes];
  std::memcpy(header, kOplogMagic, 8);
  PutLe64(header + 8, first_sequence);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (!WriteAllFd(fd, header, sizeof header) || !FsyncFdQuiet(fd)) {
    ::close(fd);
    return false;
  }
  ::close(fd);
  if (!FsyncDirQuiet(options_.dir)) return false;
  active_path_ = path;
  active_first_sequence_ = first_sequence;
  active_bytes_ = kSegmentHeaderBytes;
  return true;
}

bool Oplog::OpenSegmentForAppend(const std::string& path,
                                 std::uint64_t size) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) return false;
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool Oplog::RotateLocked() {
  if (Crash(OplogPhase::kBeforeRotate)) return false;
  // Seal the active segment: everything in it must be durable before the
  // successor becomes visible, so replay never finds a hole between
  // segments.
  if (!FsyncFdQuiet(fd_)) return false;
  durable_sequence_ = appended_sequence_;
  const std::uint64_t next_first = last_sequence_ + 1;
  const std::string path =
      options_.dir + "/" + OplogSegmentFileName(next_first);
  const std::string tmp = path + kTempSuffix;
  std::uint8_t header[kSegmentHeaderBytes];
  std::memcpy(header, kOplogMagic, 8);
  PutLe64(header + 8, next_first);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  if (!WriteAllFd(fd, header, sizeof header) || !FsyncFdQuiet(fd)) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (Crash(OplogPhase::kAfterRotateTemp)) return false;
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (Crash(OplogPhase::kAfterRotateRename)) return false;
  if (!FsyncDirQuiet(options_.dir)) return false;
  if (!OpenSegmentForAppend(path, kSegmentHeaderBytes)) return false;
  active_path_ = path;
  active_first_sequence_ = next_first;
  active_bytes_ = kSegmentHeaderBytes;
  return true;
}

std::uint64_t Oplog::Append(std::span<const std::uint8_t> payload,
                            std::uint64_t sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (crashed_) return 0;
  if (payload.size() > kMaxRecordPayload) return 0;
  if (!Enabled()) {
    const std::uint64_t seq =
        sequence != 0 ? sequence : last_sequence_ + 1;
    if (seq <= last_sequence_) return 0;
    last_sequence_ = appended_sequence_ = durable_sequence_ = seq;
    appends_.fetch_add(1, std::memory_order_relaxed);
    return seq;
  }
  // Sequences in a durable log must stay dense: replay validates
  // record-to-record continuity, so a caller with a gap (a replica that
  // just installed a snapshot) must Reset() instead.
  if (sequence != 0 && sequence != last_sequence_ + 1) return 0;
  const std::uint64_t seq = last_sequence_ + 1;
  if (fd_ < 0) return 0;
  if (active_bytes_ >= options_.segment_bytes &&
      active_bytes_ > kSegmentHeaderBytes) {
    if (!RotateLocked()) return 0;
  }
  // One buffer, one write(2): a concurrent ReadRange never observes a
  // record split across writes (a partially visible record fails its CRC
  // and just ends the reader's batch at the tail).
  std::vector<std::uint8_t> record(kRecordHeaderBytes + payload.size());
  PutLe32(record.data(), static_cast<std::uint32_t>(payload.size()));
  PutLe32(record.data() + 4, RecordCrc(seq, payload));
  PutLe64(record.data() + 8, seq);
  std::memcpy(record.data() + kRecordHeaderBytes, payload.data(),
              payload.size());
  if (!WriteAllFd(fd_, record.data(), record.size())) return 0;
  active_bytes_ += record.size();
  last_sequence_ = seq;
  appended_sequence_ = seq;
  if (oldest_sequence_ == 0) oldest_sequence_ = seq;
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (Crash(OplogPhase::kAfterRecordWrite)) return 0;
  return seq;
}

bool Oplog::Sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (crashed_) return false;
  if (!Enabled()) return true;
  if (durable_sequence_ >= appended_sequence_) return true;  // Covered.
  // Group commit: one fsync covers everything appended before it started.
  // Appends that land while it runs are not covered (`covers` is latched
  // under the lock) and trigger their own.
  const std::uint64_t covers = appended_sequence_;
  const int fd = fd_;
  lock.unlock();
  const bool ok = FsyncFdQuiet(fd);
  lock.lock();
  if (!ok) return false;
  fsync_batches_.fetch_add(1, std::memory_order_relaxed);
  if (covers > durable_sequence_) durable_sequence_ = covers;
  if (Crash(OplogPhase::kAfterSync)) return false;
  return true;
}

bool Oplog::Reset(std::uint64_t next_sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!Enabled()) {
    last_sequence_ = next_sequence > 0 ? next_sequence - 1 : 0;
    durable_sequence_ = appended_sequence_ = last_sequence_;
    return true;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::error_code ec;
  for (const auto& [seq, path] : FindOplogSegments(options_.dir)) {
    std::filesystem::remove(path, ec);
  }
  last_sequence_ = next_sequence > 0 ? next_sequence - 1 : 0;
  durable_sequence_ = appended_sequence_ = last_sequence_;
  oldest_sequence_ = 0;
  if (!CreateSegmentLocked(last_sequence_ + 1)) return false;
  return OpenSegmentForAppend(active_path_, active_bytes_);
}

std::size_t Oplog::TruncateThrough(std::uint64_t sequence) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!Enabled()) return 0;
  const auto segments = FindOplogSegments(options_.dir);
  std::size_t removed = 0;
  std::error_code ec;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_seq, path] = segments[i];
    if (first_seq == active_first_sequence_) break;  // Keep the active one.
    // A sealed segment's records end right before its successor's first
    // sequence; delete it only when every one of them is covered.
    const std::uint64_t next_first = i + 1 < segments.size()
                                         ? segments[i + 1].first
                                         : active_first_sequence_;
    if (next_first == 0 || next_first - 1 > sequence) break;
    std::filesystem::remove(path, ec);
    if (ec) break;
    ++removed;
    oldest_sequence_ = next_first;
  }
  return removed;
}

std::size_t Oplog::QuarantineTail(std::uint64_t first_quarantined,
                                  std::string* out_path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!Enabled() || first_quarantined == 0) return 0;
  if (last_sequence_ < first_quarantined) return 0;
  // Collect the divergent records. ScanSegment collects strictly-greater
  // sequences, so ask from the boundary's predecessor.
  std::vector<OplogRecord> records;
  for (const auto& [first_seq, path] : FindOplogSegments(options_.dir)) {
    SegmentScan scan;
    ScanSegment(path, 0, /*collect=*/true, first_quarantined - 1, &scan);
    for (OplogRecord& record : scan.records) {
      records.push_back(std::move(record));
    }
    if (scan.corrupt_tail) break;
  }
  if (records.empty()) return 0;
  const std::string qdir = options_.dir + "/quarantine";
  std::error_code ec;
  std::filesystem::create_directories(qdir, ec);
  if (ec) return static_cast<std::size_t>(-1);
  char name[64];
  std::snprintf(name, sizeof name, "divergent-%06llu.log",
                static_cast<unsigned long long>(first_quarantined));
  const std::string path = qdir + "/" + name;
  if (out_path != nullptr) *out_path = path;
  if (std::filesystem::exists(path, ec)) return records.size();
  // Same temp/fsync/rename/dir-fsync discipline as segment rotation, so a
  // crash mid-quarantine leaves either no file or a complete one.
  const std::string tmp = path + kTempSuffix;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return static_cast<std::size_t>(-1);
  std::uint8_t header[kSegmentHeaderBytes];
  std::memcpy(header, kOplogMagic, 8);
  PutLe64(header + 8, records.front().sequence);
  bool ok = WriteAllFd(fd, header, sizeof header);
  for (const OplogRecord& record : records) {
    if (!ok) break;
    std::uint8_t record_header[kRecordHeaderBytes];
    PutLe32(record_header,
            static_cast<std::uint32_t>(record.payload.size()));
    PutLe32(record_header + 4, RecordCrc(record.sequence, record.payload));
    PutLe64(record_header + 8, record.sequence);
    ok = WriteAllFd(fd, record_header, sizeof record_header) &&
         WriteAllFd(fd, record.payload.data(), record.payload.size());
  }
  ok = ok && FsyncFdQuiet(fd);
  ::close(fd);
  if (!ok || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return static_cast<std::size_t>(-1);
  }
  if (!FsyncDirQuiet(qdir)) return static_cast<std::size_t>(-1);
  return records.size();
}

bool Oplog::ReadRange(std::uint64_t from_sequence, std::uint64_t max_bytes,
                      std::vector<OplogRecord>* out, bool* truncated) const {
  *truncated = false;
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!Enabled()) return true;
    // The caller wants records starting at from_sequence + 1. If the
    // oldest retained record is newer than that, history was truncated
    // away and the caller must fall back to a snapshot transfer.
    if (oldest_sequence_ != 0 && from_sequence + 1 < oldest_sequence_ &&
        from_sequence < last_sequence_) {
      *truncated = true;
      return true;
    }
    segments = FindOplogSegments(options_.dir);
  }
  // Per-record cost charged against max_bytes: payload plus the FETCH_OPLOG
  // wire envelope (sequence + crc + length prefix, rounded up), so a
  // frame-sized budget yields a chunk that encodes within one frame.
  constexpr std::uint64_t kRecordWireOverhead = 32;
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    // Skip segments that end at or before from_sequence: a sealed
    // segment's records stop right before its successor's first sequence.
    if (i + 1 < segments.size() &&
        segments[i + 1].first <= from_sequence + 1) {
      continue;
    }
    SegmentScan scan;
    ScanSegment(segments[i].second, 0, /*collect=*/true, from_sequence,
                &scan);
    for (OplogRecord& record : scan.records) {
      const std::uint64_t cost = record.payload.size() + kRecordWireOverhead;
      if (max_bytes != 0 && !out->empty() && used + cost > max_bytes) {
        return true;  // Budget reached; never return an empty batch early.
      }
      used += cost;
      out->push_back(std::move(record));
    }
    if (scan.corrupt_tail) break;  // Tail in flux (or damaged): stop here.
  }
  return true;
}

std::uint64_t Oplog::LastSequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_sequence_;
}

std::uint64_t Oplog::OldestSequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return oldest_sequence_;
}

std::uint64_t Oplog::DurableSequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return durable_sequence_;
}

void Oplog::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (!crashed_) FsyncFdQuiet(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace kspin::server
